//! # rtrm — Runtime Resource Management with Workload Prediction
//!
//! A complete, self-contained reproduction of *Niknafs, Ukhov, Eles, Peng —
//! "Runtime Resource Management with Workload Prediction", DAC 2019*: an
//! energy-minimizing, deadline-guaranteeing resource manager for
//! heterogeneous embedded platforms that can plan around a prediction of the
//! next incoming request.
//!
//! This umbrella crate re-exports the workspace's sub-crates:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`platform`] | `rtrm-platform` | system model: resources, task types, traces |
//! | [`trace`] | `rtrm-trace` | the paper's Sec 5.1 workload generator |
//! | [`milp`] | `rtrm-milp` | simplex + branch & bound MILP solver |
//! | [`sched`] | `rtrm-sched` | EDF timeline engine (preemptive CPU / non-preemptive GPU) |
//! | [`predict`] | `rtrm-predict` | oracle predictor with error injection, online predictors |
//! | [`core`] | `rtrm-core` | the resource managers: heuristic, exact, MILP-encoded |
//! | [`sim`] | `rtrm-sim` | discrete-event simulator and parallel batch runner |
//!
//! # Quickstart
//!
//! ```
//! use rand::SeedableRng;
//! use rtrm::prelude::*;
//!
//! // The paper's platform: 5 CPUs + 1 GPU, 100 task types.
//! let platform = Platform::paper_default();
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let catalog = generate_catalog(&platform, &CatalogConfig::paper(), &mut rng);
//!
//! // A very-tight-deadline trace at the calibrated operating point.
//! let cfg = TraceConfig { length: 100, ..TraceConfig::calibrated_vt() };
//! let trace = generate_trace(&catalog, &cfg, &mut rng);
//!
//! // Simulate the fast heuristic with a perfectly accurate predictor.
//! let sim = Simulator::new(&platform, &catalog, SimConfig::default());
//! let mut oracle = OraclePredictor::perfect(&trace, catalog.len());
//! let report = sim.run(&trace, &mut HeuristicRm::new(), Some(&mut oracle));
//!
//! assert_eq!(report.deadline_misses, 0);
//! println!("rejection: {:.1}%  energy: {}", report.rejection_percent(), report.energy);
//! ```

#![warn(missing_docs)]

pub use rtrm_core as core;
pub use rtrm_milp as milp;
pub use rtrm_platform as platform;
pub use rtrm_predict as predict;
pub use rtrm_sched as sched;
pub use rtrm_sim as sim;
pub use rtrm_trace as trace;

/// One-stop imports for the common workflow: build a platform, generate a
/// workload, pick a manager and a predictor, simulate.
pub mod prelude {
    pub use rtrm_core::{
        Activation, Assignment, Candidate, Decision, ExactRm, HeuristicRm, JobView, MilpRm,
        Placement, ResourceManager,
    };
    pub use rtrm_platform::{
        Energy, Platform, Request, RequestId, Resource, ResourceId, ResourceKind, TaskCatalog,
        TaskType, TaskTypeId, Time, Trace,
    };
    pub use rtrm_predict::{
        ErrorModel, HistoryPredictor, OraclePredictor, OverheadModel, Prediction, Predictor,
    };
    pub use rtrm_sched::{is_schedulable, simulate, JobKey, PlannedJob};
    pub use rtrm_sim::{
        mean_energy, mean_rejection_percent, run_batch, PhantomDeadline, SimConfig, SimReport,
        Simulator, Summary,
    };
    pub use rtrm_trace::{
        generate_catalog, generate_trace, generate_traces, CatalogConfig, Tightness, TraceConfig,
    };
}
