#!/usr/bin/env sh
# Local CI gate: formatting, lints, and the tier-1 verify from ROADMAP.md.
set -eu

cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> rustdoc gate: cargo doc --no-deps (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet

echo "==> tier-1: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

echo "==> full workspace tests"
cargo test -q --workspace

echo "==> differential suites: incremental EDF timeline + phantom fast path + unified event queue + warm-pool sweep"
cargo test -q -p rtrm-sched --test incremental
cargo test -q -p rtrm-core --test phantom_fastpath
cargo test -q -p rtrm-core --test prune_differential
cargo test -q -p rtrm-core --test warmstart_differential
cargo test -q -p rtrm-core --test presolve_differential
cargo test -q -p rtrm-sim --test phantom_differential
cargo test -q -p rtrm-sim --test unified_queue
cargo test -q -p rtrm-bench --test sweep_differential

echo "==> horizon: confidence gate properties + theta-endpoint differentials"
cargo test -q -p rtrm-core --test horizon_gate
cargo test -q -p rtrm-sim --test horizon_differential

echo "==> service: sharded-vs-sequential differential + overload degradation + histogram merge"
cargo test -q -p rtrm-service --test service_differential
cargo test -q -p rtrm-service --test overload
cargo test -q -p rtrm-service --test histogram_merge

echo "==> fault injection: anytime MILP ladder + batch quarantine + sweep persistence"
cargo test -q -p rtrm-sim --test anytime_milp
cargo test -q -p rtrm-sim --test fault_injection
cargo test -q -p rtrm-bench --test fault_injection

echo "==> chaos: cooperative sweep workers killed mid-protocol (hard 300 s timeout)"
# The suite spawns real child worker processes; the timeout turns a hung
# orphan into a build failure instead of a wedged CI run.
timeout 300 cargo test -q -p rtrm-bench --test chaos_coop

echo "==> BENCH_*.json schema sanity"
cargo test -q -p rtrm-bench --test bench_json_schema

echo "CI OK"
