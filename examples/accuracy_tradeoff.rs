//! How accurate does the prediction need to be? (paper Sec 5.4 in miniature)
//!
//! Sweeps the oracle's task-type accuracy and arrival-time accuracy on a
//! small very-tight-deadline workload and prints the resulting rejection
//! rates next to the predictor-off baseline.
//!
//! ```sh
//! cargo run --release --example accuracy_tradeoff
//! ```

use rand::SeedableRng;
use rtrm::prelude::*;

fn main() {
    let platform = Platform::paper_default();
    let mut rng = rand::rngs::StdRng::seed_from_u64(9);
    let catalog = generate_catalog(&platform, &CatalogConfig::paper(), &mut rng);
    let config = TraceConfig {
        length: 150,
        ..TraceConfig::calibrated_vt()
    };
    let traces = generate_traces(&catalog, &config, 12, 9);
    let sim = Simulator::new(
        &platform,
        &catalog,
        SimConfig {
            phantom_deadline: PhantomDeadline::MinWcetTimes(1.5),
            ..SimConfig::default()
        },
    );

    let mean_rejection = |error: Option<ErrorModel>| -> f64 {
        let total: f64 = traces
            .iter()
            .enumerate()
            .map(|(i, trace)| {
                let report = match error {
                    None => sim.run(trace, &mut HeuristicRm::new(), None),
                    Some(e) => {
                        let mut oracle =
                            OraclePredictor::new(trace, catalog.len(), e, 100 + i as u64);
                        sim.run(trace, &mut HeuristicRm::new(), Some(&mut oracle))
                    }
                };
                report.rejection_percent()
            })
            .sum();
        total / traces.len() as f64
    };

    let off = mean_rejection(None);
    println!("VT workload, heuristic manager, 12 traces x 150 requests\n");
    println!("predictor off: {off:.2}% rejection\n");

    println!("task-type accuracy sweep (arrival times exact):");
    for acc in [1.0, 0.75, 0.5, 0.25] {
        let r = mean_rejection(Some(ErrorModel::with_type_accuracy(acc)));
        println!("  accuracy {acc:.2}: {r:.2}%  (benefit {:+.2})", off - r);
    }

    println!("\narrival-time accuracy sweep (types exact):");
    for acc in [1.0, 0.75, 0.5, 0.25] {
        let r = mean_rejection(Some(ErrorModel::with_arrival_accuracy(acc)));
        println!("  accuracy {acc:.2}: {r:.2}%  (benefit {:+.2})", off - r);
    }

    println!("\nthe paper's conclusion: below ~50% accuracy prediction stops paying off");
}
