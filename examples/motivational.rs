//! The paper's motivational example (Sec 3, Table 1, Fig 1), narrated
//! decision by decision.
//!
//! Two CPUs and a GPU; τ1 arrives at t=0 (relative deadline 8), τ2 at t=1
//! (relative deadline 5). Without prediction the manager parks τ1 on the
//! GPU — the cheapest choice — and must then reject τ2 (acceptance 1/2).
//! Knowing τ2 is coming, it maps τ1 to CPU1 and reserves the GPU
//! (acceptance 2/2 at 8.8 J).
//!
//! ```sh
//! cargo run --release --example motivational
//! ```

use rtrm::prelude::*;
use rtrm::sched::JobKey;

fn platform_and_catalog() -> (Platform, TaskCatalog) {
    let platform = Platform::builder()
        .cpu("cpu1")
        .cpu("cpu2")
        .gpu("gpu")
        .build();
    let ids: Vec<_> = platform.ids().collect();
    let tau1 = TaskType::builder(0, &platform)
        .profile(ids[0], Time::new(8.0), Energy::new(7.3))
        .profile(ids[1], Time::new(12.0), Energy::new(8.4))
        .profile(ids[2], Time::new(5.0), Energy::new(2.0))
        .build();
    let tau2 = TaskType::builder(1, &platform)
        .profile(ids[0], Time::new(7.0), Energy::new(6.2))
        .profile(ids[1], Time::new(8.5), Energy::new(7.5))
        .profile(ids[2], Time::new(3.0), Energy::new(1.5))
        .build();
    (platform, TaskCatalog::new(vec![tau1, tau2]))
}

fn describe(platform: &Platform, decision: &Decision) {
    if !decision.admitted {
        println!("    -> REJECTED (no feasible plan)");
        return;
    }
    for a in &decision.assignments {
        println!(
            "    -> {} on {}{}",
            a.key,
            platform.resource(a.resource).name(),
            if a.restart {
                " (restarted from scratch)"
            } else {
                ""
            }
        );
    }
    println!(
        "    planned remaining energy: {:.2} J{}",
        decision.objective.value(),
        if decision.used_prediction {
            " (plan honours the predicted task)"
        } else {
            ""
        }
    );
}

fn main() {
    let (platform, catalog) = platform_and_catalog();
    let mut rm = ExactRm::new();

    println!("=== scenario (a): no prediction ===");
    let tau1 = JobView::fresh(
        JobKey(1),
        TaskTypeId::new(0),
        Time::new(0.0),
        Time::new(8.0),
    );
    println!("t=0: τ1 arrives (deadline 8)");
    let d1 = rm.decide(&Activation {
        now: Time::new(0.0),
        platform: &platform,
        catalog: &catalog,
        active: &[],
        arriving: tau1,
        predicted: &[],
    });
    describe(&platform, &d1);

    // τ1 has executed 1 of its 5 GPU units by t=1.
    let mut tau1_running = tau1;
    tau1_running.placement = Some(Placement {
        resource: d1.assignments[0].resource,
        remaining_fraction: 4.0 / 5.0,
        started: true,
        speed: 1.0,
    });
    let tau2 = JobView::fresh(
        JobKey(2),
        TaskTypeId::new(1),
        Time::new(1.0),
        Time::new(6.0),
    );
    println!("t=1: τ2 arrives (deadline 5, absolute 6); τ1 is running on the GPU");
    let d2 = rm.decide(&Activation {
        now: Time::new(1.0),
        platform: &platform,
        catalog: &catalog,
        active: &[tau1_running],
        arriving: tau2,
        predicted: &[],
    });
    describe(&platform, &d2);
    println!("    acceptance rate: 1/2\n");

    println!("=== scenario (b): accurate prediction of τ2 ===");
    let phantom = JobView::fresh(
        JobKey(99),
        TaskTypeId::new(1),
        Time::new(1.0),
        Time::new(6.0),
    );
    println!("t=0: τ1 arrives; the predictor announces τ2 at t=1");
    let d1 = rm.decide(&Activation {
        now: Time::new(0.0),
        platform: &platform,
        catalog: &catalog,
        active: &[],
        arriving: tau1,
        predicted: std::slice::from_ref(&phantom),
    });
    describe(&platform, &d1);

    let mut tau1_on_cpu = tau1;
    tau1_on_cpu.placement = Some(Placement {
        resource: d1.assignments[0].resource,
        remaining_fraction: 7.0 / 8.0,
        started: true,
        speed: 1.0,
    });
    println!("t=1: τ2 actually arrives");
    let d2 = rm.decide(&Activation {
        now: Time::new(1.0),
        platform: &platform,
        catalog: &catalog,
        active: &[tau1_on_cpu],
        arriving: tau2,
        predicted: &[],
    });
    describe(&platform, &d2);
    println!("    acceptance rate: 2/2 — full-run energy 7.3 + 1.5 = 8.8 J");
    println!("    (versus 3.5 J for the non-predicting manager when the");
    println!("     prediction was wrong — accuracy matters; see Sec 5.4)");
}
