//! Quickstart: generate the paper's workload, run the fast heuristic with
//! and without prediction, and compare.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use rand::SeedableRng;
use rtrm::prelude::*;

fn main() {
    // The paper's platform (5 CPUs + 1 GPU) and catalog (100 task types).
    let platform = Platform::paper_default();
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);
    let catalog = generate_catalog(&platform, &CatalogConfig::paper(), &mut rng);

    // Ten very-tight-deadline traces at the calibrated operating point.
    let config = TraceConfig {
        length: 200,
        ..TraceConfig::calibrated_vt()
    };
    let traces = generate_traces(&catalog, &config, 10, 42);

    let sim = Simulator::new(&platform, &catalog, SimConfig::default());

    println!("trace  prediction  rejection%  energy      plans-with-phantom");
    let mut rej = [0.0f64; 2];
    for (i, trace) in traces.iter().enumerate() {
        // Without prediction.
        let off = sim.run(trace, &mut HeuristicRm::new(), None);
        // With a perfectly accurate predictor for this trace.
        let mut oracle = OraclePredictor::perfect(trace, catalog.len());
        let on = sim.run(trace, &mut HeuristicRm::new(), Some(&mut oracle));

        println!(
            "{i:>5}  {:>10}  {:>9.1}  {:>10.1}  {:>6}",
            "off",
            off.rejection_percent(),
            off.energy.value(),
            "-"
        );
        println!(
            "{i:>5}  {:>10}  {:>9.1}  {:>10.1}  {:>6}",
            "on",
            on.rejection_percent(),
            on.energy.value(),
            on.used_prediction
        );
        rej[0] += off.rejection_percent();
        rej[1] += on.rejection_percent();

        assert_eq!(
            off.deadline_misses, 0,
            "admitted tasks never miss deadlines"
        );
        assert_eq!(on.deadline_misses, 0);
    }

    println!(
        "\nmean rejection: {:.2}% without prediction, {:.2}% with accurate prediction",
        rej[0] / traces.len() as f64,
        rej[1] / traces.len() as f64
    );
}
