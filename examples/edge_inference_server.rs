//! A domain scenario: an edge video-analytics node.
//!
//! The platform mixes two fast "big" CPUs, two slow "little" CPUs and one
//! GPU. Three request types with hand-modelled profiles:
//!
//! * `detect`  — heavy CNN inference: fast on the GPU, slow on CPUs;
//! * `track`   — light correlation tracker: fine on any CPU;
//! * `encode`  — medium encoder: GPU-capable, CPU-feasible.
//!
//! Requests arrive in camera bursts (a detect, then tracks, occasionally an
//! encode). Because the burst structure is regular, the *history-based*
//! predictor (Markov types + EWMA gaps) learns it online — no oracle —
//! and the manager admits more work at lower energy.
//!
//! ```sh
//! cargo run --release --example edge_inference_server
//! ```

use rand::Rng;
use rand::SeedableRng;
use rtrm::prelude::*;

fn build_platform() -> Platform {
    Platform::builder()
        .cpu("big0")
        .cpu("big1")
        .cpu("little0")
        .cpu("little1")
        .gpu("gpu0")
        .build()
}

fn build_catalog(platform: &Platform) -> TaskCatalog {
    let r: Vec<_> = platform.ids().collect();
    // (big, little, gpu) WCET / energy per type. Little cores are slower
    // but lower power; the GPU is fastest for vision kernels.
    let detect = TaskType::builder(0, platform)
        .profile(r[0], Time::new(30.0), Energy::new(12.0))
        .profile(r[1], Time::new(30.0), Energy::new(12.0))
        .profile(r[2], Time::new(55.0), Energy::new(8.0))
        .profile(r[3], Time::new(55.0), Energy::new(8.0))
        .profile(r[4], Time::new(6.0), Energy::new(2.5))
        .uniform_migration(Time::new(2.0), Energy::new(0.8))
        .build();
    let track = TaskType::builder(1, platform)
        .profile(r[0], Time::new(4.0), Energy::new(1.6))
        .profile(r[1], Time::new(4.0), Energy::new(1.6))
        .profile(r[2], Time::new(7.0), Energy::new(1.0))
        .profile(r[3], Time::new(7.0), Energy::new(1.0))
        // Trackers are branchy; the GPU cannot run them (dummy profile
        // omitted = not executable there).
        .uniform_migration(Time::new(0.5), Energy::new(0.2))
        .build();
    let encode = TaskType::builder(2, platform)
        .profile(r[0], Time::new(12.0), Energy::new(5.0))
        .profile(r[1], Time::new(12.0), Energy::new(5.0))
        .profile(r[2], Time::new(20.0), Energy::new(3.5))
        .profile(r[3], Time::new(20.0), Energy::new(3.5))
        .profile(r[4], Time::new(5.0), Energy::new(1.8))
        .uniform_migration(Time::new(1.0), Energy::new(0.4))
        .build();
    TaskCatalog::new(vec![detect, track, encode])
}

/// A bursty camera workload: every frame period a `detect` (tight,
/// GPU-only deadline), two `track`s, and an `encode`. The energy-greedy
/// manager parks the encode on the GPU, where it blocks the next frame's
/// detect — unless it knows the detect is coming.
fn camera_trace(length: usize, seed: u64) -> Trace {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut requests = Vec::new();
    let mut t = 0.0;
    while requests.len() < length {
        let jitter: f64 = rng.gen_range(-0.3..0.3);
        // (type, offset within burst, relative deadline)
        let pattern: &[(usize, f64, f64)] = &[
            (0, 0.0, 7.0),
            (1, 2.0, 10.0),
            (1, 3.5, 10.0),
            (2, 5.0, 30.0),
        ];
        for &(ty, offset, deadline) in pattern {
            if requests.len() >= length {
                break;
            }
            requests.push(Request {
                id: RequestId::new(requests.len()),
                arrival: Time::new(t + offset),
                task_type: TaskTypeId::new(ty),
                deadline: Time::new(deadline),
            });
        }
        t += 9.0 + jitter; // frame period in arbitrary ms
    }
    Trace::new(requests)
}

fn main() {
    let platform = build_platform();
    let catalog = build_catalog(&platform);
    let trace = camera_trace(300, 7);

    // Phantom deadlines follow the tightest per-type requirement (detect's
    // deadline is ~1.2x its GPU WCET).
    let sim = Simulator::new(
        &platform,
        &catalog,
        SimConfig {
            phantom_deadline: PhantomDeadline::MinWcetTimes(1.2),
            ..SimConfig::default()
        },
    );

    println!("edge inference server: 2 big + 2 little CPUs + 1 GPU, 300 requests\n");
    println!(
        "{:<34} {:>9} {:>10} {:>8}",
        "configuration", "rejected", "energy", "phantom"
    );

    let off = sim.run(&trace, &mut HeuristicRm::new(), None);
    println!(
        "{:<34} {:>8.1}% {:>10.1} {:>8}",
        "heuristic, no prediction",
        off.rejection_percent(),
        off.energy.value(),
        "-"
    );

    // Online predictor: learns the burst pattern from history alone.
    let mut history = HistoryPredictor::new(catalog.len(), 0.4);
    let online = sim.run(&trace, &mut HeuristicRm::new(), Some(&mut history));
    println!(
        "{:<34} {:>8.1}% {:>10.1} {:>8}",
        "heuristic, history predictor",
        online.rejection_percent(),
        online.energy.value(),
        online.used_prediction
    );

    // Upper bound: a perfect oracle.
    let mut oracle = OraclePredictor::perfect(&trace, catalog.len());
    let perfect = sim.run(&trace, &mut HeuristicRm::new(), Some(&mut oracle));
    println!(
        "{:<34} {:>8.1}% {:>10.1} {:>8}",
        "heuristic, perfect oracle",
        perfect.rejection_percent(),
        perfect.energy.value(),
        perfect.used_prediction
    );

    let exact = sim.run(&trace, &mut ExactRm::new(), None);
    println!(
        "{:<34} {:>8.1}% {:>10.1} {:>8}",
        "exact optimizer, no prediction",
        exact.rejection_percent(),
        exact.energy.value(),
        "-"
    );

    assert_eq!(off.deadline_misses, 0);
    assert_eq!(online.deadline_misses, 0);
    assert_eq!(perfect.deadline_misses, 0);
    assert_eq!(exact.deadline_misses, 0);
    println!("\nall admitted tasks met their deadlines");
}
