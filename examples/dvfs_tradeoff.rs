//! DVFS extension walk-through: slow down when slack allows, race when
//! deadlines demand — and watch what greedy slowing does to admission.
//!
//! ```sh
//! cargo run --release --example dvfs_tradeoff
//! ```

use rand::SeedableRng;
use rtrm::prelude::*;

fn build(dvfs: bool) -> Platform {
    let mut b = Platform::builder();
    for i in 0..3 {
        if dvfs {
            b.cpu_with_dvfs(format!("cpu{i}"), &[0.5, 0.75, 1.0]);
        } else {
            b.cpu(format!("cpu{i}"));
        }
    }
    b.gpu("gpu0");
    b.build()
}

fn main() {
    println!("DVFS trade-off: 3 CPUs (levels 0.5/0.75/1.0) + 1 GPU\n");
    println!(
        "{:<22} {:>12} {:>12} {:>12}",
        "configuration", "rejection%", "energy", "energy/task"
    );

    for (label, dvfs, tight) in [
        ("fixed freq, loose", false, false),
        ("DVFS, loose", true, false),
        ("fixed freq, tight", false, true),
        ("DVFS, tight", true, true),
    ] {
        let platform = build(dvfs);
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let catalog = generate_catalog(&platform, &CatalogConfig::paper(), &mut rng);
        let base = if tight {
            TraceConfig::calibrated_vt()
        } else {
            TraceConfig::calibrated_lt()
        };
        let trace = generate_trace(
            &catalog,
            &TraceConfig {
                length: 250,
                ..base
            },
            &mut rng,
        );
        let sim = Simulator::new(&platform, &catalog, SimConfig::default());
        let report = sim.run(&trace, &mut HeuristicRm::new(), None);
        assert_eq!(report.deadline_misses, 0);
        println!(
            "{:<22} {:>12.1} {:>12.1} {:>12.2}",
            label,
            report.rejection_percent(),
            report.energy.value(),
            report.energy.value() / report.accepted.max(1) as f64
        );
    }

    println!();
    println!("DVFS cuts energy per accepted task sharply, but greedy slowing");
    println!("consumes the very slack later arrivals would have needed — the");
    println!("admission rate drops. See `ext_dvfs` for the full sweep.");
}
