//! Plugging a custom predictor into the resource manager.
//!
//! Any type implementing [`Predictor`] can feed the manager. This example
//! builds a periodic-pattern predictor for a strictly periodic sensor
//! workload, and compares it against the bundled history predictor.
//!
//! ```sh
//! cargo run --release --example custom_predictor
//! ```

use rtrm::prelude::*;

/// Predicts a fixed period and a round-robin type cycle — exactly right for
/// a static sensor schedule, useless for anything else.
#[derive(Debug)]
struct PeriodicPredictor {
    period: Time,
    cycle: Vec<TaskTypeId>,
    seen: usize,
    last_arrival: Option<Time>,
}

impl PeriodicPredictor {
    fn new(period: Time, cycle: Vec<TaskTypeId>) -> Self {
        PeriodicPredictor {
            period,
            cycle,
            seen: 0,
            last_arrival: None,
        }
    }
}

impl Predictor for PeriodicPredictor {
    fn observe(&mut self, request: &Request) {
        self.seen += 1;
        self.last_arrival = Some(request.arrival);
    }

    fn predict_next(&mut self) -> Option<Prediction> {
        let last = self.last_arrival?;
        // Alternating gaps: 1 unit after a light task, period-1 after heavy.
        let gap = if self.seen % 2 == 1 {
            self.period
        } else {
            Time::new(9.0)
        };
        Some(Prediction {
            task_type: self.cycle[self.seen % self.cycle.len()],
            arrival: last + gap,
        })
    }

    fn reset(&mut self) {
        self.seen = 0;
        self.last_arrival = None;
    }
}

fn main() {
    // One CPU + one GPU. Every period: a `light` housekeeping task, then —
    // one time unit later — an urgent `heavy` task only the GPU can meet.
    // Greedily parking the light task on the (cheaper) GPU starts it
    // immediately and blocks the heavy one; prediction avoids the trap.
    let platform = Platform::builder().cpus(1).gpu("gpu0").build();
    let ids: Vec<_> = platform.ids().collect();
    let heavy = TaskType::builder(0, &platform)
        .profile(ids[0], Time::new(9.0), Energy::new(6.0))
        .profile(ids[1], Time::new(3.0), Energy::new(1.2))
        .build();
    let light = TaskType::builder(1, &platform)
        .profile(ids[0], Time::new(4.0), Energy::new(2.0))
        .profile(ids[1], Time::new(2.0), Energy::new(0.9))
        .build();
    let catalog = TaskCatalog::new(vec![heavy, light]);

    let requests: Vec<Request> = (0..200)
        .map(|i| {
            let period = (i / 2) as f64 * 10.0;
            if i % 2 == 0 {
                Request {
                    id: RequestId::new(i),
                    arrival: Time::new(period),
                    task_type: TaskTypeId::new(1), // light first
                    deadline: Time::new(8.0),
                }
            } else {
                Request {
                    id: RequestId::new(i),
                    arrival: Time::new(period + 1.0),
                    task_type: TaskTypeId::new(0), // urgent heavy
                    deadline: Time::new(3.9),      // GPU-only, no slack
                }
            }
        })
        .collect();
    let trace = Trace::new(requests);

    // The urgent task's deadline is 1.3x its GPU WCET; give the phantom the
    // same tightness so the reservation actually binds.
    let sim = Simulator::new(
        &platform,
        &catalog,
        SimConfig {
            phantom_deadline: PhantomDeadline::MinWcetTimes(1.3),
            ..SimConfig::default()
        },
    );

    let base = sim.run(&trace, &mut HeuristicRm::new(), None);

    // After observing request k, the next is heavy for even k, light for
    // odd k; the gap alternates 1 and 9.
    let mut periodic =
        PeriodicPredictor::new(Time::new(1.0), vec![TaskTypeId::new(0), TaskTypeId::new(1)]);
    let custom = sim.run(&trace, &mut HeuristicRm::new(), Some(&mut periodic));

    let mut history = HistoryPredictor::new(catalog.len(), 0.3);
    let learned = sim.run(&trace, &mut HeuristicRm::new(), Some(&mut history));

    println!("periodic sensor workload, 200 requests");
    for (label, r) in [
        ("no prediction", &base),
        ("custom periodic predictor", &custom),
        ("bundled history predictor", &learned),
    ] {
        println!(
            "  {label:<28} rejection {:>5.1}%  energy {:>8.1}  phantom plans {}",
            r.rejection_percent(),
            r.energy.value(),
            r.used_prediction
        );
    }
    assert!(custom.used_prediction > 0);
}
