//! Whole-pipeline integration tests: generator → predictor → manager →
//! simulator, across all three managers.

use rand::SeedableRng;
use rtrm::prelude::*;

fn workload(len: usize, n: usize, seed: u64) -> (Platform, TaskCatalog, Vec<Trace>) {
    let platform = Platform::paper_default();
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let catalog = generate_catalog(&platform, &CatalogConfig::paper(), &mut rng);
    let cfg = TraceConfig {
        length: len,
        ..TraceConfig::calibrated_vt()
    };
    let traces = generate_traces(&catalog, &cfg, n, seed);
    (platform, catalog, traces)
}

#[test]
fn all_three_managers_run_the_same_workload() {
    // Short trace: MilpRm solves a full MILP per activation, and this test
    // also runs under unoptimized builds.
    let (platform, catalog, traces) = workload(25, 1, 1);
    let sim = Simulator::new(&platform, &catalog, SimConfig::default());
    for trace in &traces {
        let h = sim.run(trace, &mut HeuristicRm::new(), None);
        let e = sim.run(trace, &mut ExactRm::new(), None);
        let m = sim.run(trace, &mut MilpRm::new(), None);
        for r in [&h, &e, &m] {
            assert_eq!(r.deadline_misses, 0);
            assert_eq!(r.requests, trace.len());
            assert_eq!(r.accepted + r.rejected, r.requests);
        }
        // The two exact optimizers take identical decisions without
        // prediction, so whole-trace results must coincide.
        assert_eq!(e.accepted, m.accepted, "exact vs milp acceptance");
        assert!(
            (e.energy.value() - m.energy.value()).abs() < 1e-4,
            "exact vs milp energy: {} vs {}",
            e.energy,
            m.energy
        );
    }
}

#[test]
fn prediction_plus_overhead_pipeline() {
    let (platform, catalog, traces) = workload(80, 2, 7);
    for coeff in [0.0, 0.1] {
        let sim = Simulator::new(
            &platform,
            &catalog,
            SimConfig {
                overhead: OverheadModel::fraction_of_interarrival(coeff),
                phantom_deadline: PhantomDeadline::MinWcetTimes(1.5),
                ..SimConfig::default()
            },
        );
        for trace in &traces {
            let mut oracle = OraclePredictor::perfect(trace, catalog.len());
            let report = sim.run(trace, &mut HeuristicRm::new(), Some(&mut oracle));
            assert_eq!(report.deadline_misses, 0);
            assert_eq!(report.completed, report.accepted);
        }
    }
}

#[test]
fn run_batch_spans_managers_and_predictors() {
    let (platform, catalog, traces) = workload(50, 4, 3);
    let config = SimConfig::default();
    let reports = run_batch(
        &platform,
        &catalog,
        &config,
        &traces,
        |i| {
            if i % 2 == 0 {
                Box::new(HeuristicRm::new())
            } else {
                Box::new(ExactRm::new())
            }
        },
        |i| {
            if i < 2 {
                let p: Box<dyn Predictor + Send> =
                    Box::new(OraclePredictor::perfect(&traces[i], catalog.len()));
                Some(p)
            } else {
                None
            }
        },
    );
    assert_eq!(reports.len(), 4);
    assert!(reports.iter().all(|r| r.deadline_misses == 0));
    assert!(reports[0].used_prediction > 0);
    assert_eq!(reports[2].used_prediction, 0);
}

#[test]
fn seeded_pipeline_is_fully_deterministic() {
    let run = || {
        let (platform, catalog, traces) = workload(70, 1, 11);
        let sim = Simulator::new(&platform, &catalog, SimConfig::default());
        let mut oracle = OraclePredictor::new(
            &traces[0],
            catalog.len(),
            ErrorModel {
                type_accuracy: 0.8,
                arrival_accuracy: 0.9,
            },
            5,
        );
        sim.run(&traces[0], &mut HeuristicRm::new(), Some(&mut oracle))
    };
    assert_eq!(run(), run());
}

#[test]
fn prelude_exposes_the_working_set() {
    // Compile-time check that the prelude covers the whole workflow.
    fn assert_usable() {
        let _ = Platform::builder();
        let _ = CatalogConfig::paper();
        let _ = TraceConfig::paper_vt();
        let _ = ErrorModel::perfect();
        let _ = OverheadModel::none();
        let _: fn() -> HeuristicRm = HeuristicRm::new;
        let _: fn() -> ExactRm = ExactRm::new;
        let _: fn() -> MilpRm = MilpRm::new;
    }
    assert_usable();
}

#[test]
fn milp_solver_reachable_through_umbrella() {
    use rtrm::milp::{Model, Sense};
    let mut m = Model::new(Sense::Maximize);
    let x = m.binary(2.0);
    let y = m.binary(3.0);
    m.add_le(&[(x, 1.0), (y, 1.0)], 1.0);
    let sol = m.solve().expect("feasible");
    assert_eq!(sol.objective(), 3.0);
}
