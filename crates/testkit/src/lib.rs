//! # rtrm-testkit
//!
//! A tiny fail-point registry for deterministic fault injection, in the
//! spirit of the `fail` crate (which the offline workspace cannot depend
//! on). Production code plants named *hooks* at the places where faults can
//! strike — a solver deadline check, a per-trace simulation, a checkpoint
//! publish — and tests *arm* those hooks with an [`Action`] to inject a
//! stall, a panic, or an I/O error exactly where and as often as they want.
//!
//! The registry is always compiled (cfg-gating a library for its own
//! integration tests does not compose across crates), but the disarmed fast
//! path is a single relaxed atomic load, so hooks cost nothing in
//! production.
//!
//! Fail points are process-global: tests that arm the same name must not run
//! concurrently within one test binary (use distinct names per test).
//!
//! # Examples
//!
//! ```
//! use rtrm_testkit as fail;
//!
//! // Production code plants a hook:
//! fn publish() -> Result<(), String> {
//!     if fail::should_fail_io("doc::publish") {
//!         return Err("injected".to_string());
//!     }
//!     Ok(())
//! }
//!
//! assert!(publish().is_ok()); // disarmed: nothing happens
//! let guard = fail::arm_with("doc::publish", fail::Action::IoError, None, Some(1));
//! assert!(publish().is_err()); // armed: first call fails ...
//! assert!(publish().is_ok()); // ... and the budget of 1 is spent
//! assert_eq!(guard.hits(), 1);
//! drop(guard); // disarm (automatic at end of scope)
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// What an armed fail point does when its hook fires.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action {
    /// [`maybe_panic`] panics with the given message.
    Panic(String),
    /// [`triggered`] returns `true` (used to force timeouts/stalls).
    Trigger,
    /// [`should_fail_io`] returns `true` (the caller fabricates the error).
    IoError,
    /// [`maybe_die`] aborts the whole process — no unwinding, no `Drop`
    /// cleanup — simulating a worker killed mid-protocol (`kill -9`, OOM
    /// kill, power loss). Only meaningful in spawned child processes; armed
    /// from the environment via [`arm_from_env`].
    Abort,
}

impl Action {
    /// Discriminant equality, so a hook only consumes firings of its own
    /// action kind (e.g. a `maybe_die` probe must not eat the budget of a
    /// point armed with [`Action::IoError`]).
    fn kind_matches(&self, other: &Action) -> bool {
        std::mem::discriminant(self) == std::mem::discriminant(other)
    }
}

#[derive(Debug)]
struct FailPoint {
    action: Action,
    /// Only fire when the hook passes this key (`None` = fire for any key).
    key: Option<u64>,
    /// Remaining firings (`None` = unlimited).
    remaining: Option<u32>,
    /// Times this point has fired.
    hits: u32,
}

/// Number of currently armed fail points; the disarmed fast path.
static ARMED: AtomicUsize = AtomicUsize::new(0);

fn registry() -> &'static Mutex<HashMap<String, FailPoint>> {
    static REGISTRY: OnceLock<Mutex<HashMap<String, FailPoint>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Disarms its fail point when dropped.
///
/// Returned by [`arm`]/[`arm_with`]; hold it for the duration of the test.
#[derive(Debug)]
#[must_use = "dropping the guard disarms the fail point immediately"]
pub struct Guard {
    name: String,
}

impl Guard {
    /// How many times the armed point has fired so far.
    #[must_use]
    pub fn hits(&self) -> u32 {
        registry()
            .lock()
            .expect("fail-point registry poisoned")
            .get(&self.name)
            .map_or(0, |p| p.hits)
    }
}

impl Drop for Guard {
    fn drop(&mut self) {
        let mut map = registry().lock().expect("fail-point registry poisoned");
        if map.remove(&self.name).is_some() {
            ARMED.fetch_sub(1, Ordering::Relaxed);
        }
    }
}

/// Arms `name` with `action` for every key, unlimited firings.
pub fn arm(name: &str, action: Action) -> Guard {
    arm_with(name, action, None, None)
}

/// Arms `name` with `action`, optionally restricted to one hook `key` and a
/// maximum number of firings (`times`).
///
/// Re-arming an already armed name replaces its configuration.
///
/// # Panics
///
/// Panics if the registry mutex is poisoned (a previous test panicked while
/// holding it — which the registry never does).
pub fn arm_with(name: &str, action: Action, key: Option<u64>, times: Option<u32>) -> Guard {
    let mut map = registry().lock().expect("fail-point registry poisoned");
    let previous = map.insert(
        name.to_string(),
        FailPoint {
            action,
            key,
            remaining: times,
            hits: 0,
        },
    );
    if previous.is_none() {
        ARMED.fetch_add(1, Ordering::Relaxed);
    }
    Guard {
        name: name.to_string(),
    }
}

/// Checks whether `name` is armed for `key` with an action of `probe`'s
/// kind and, if so, consumes one firing and returns its action. The kind
/// filter keeps co-located hooks independent: production code may plant
/// both a `maybe_die` and a `should_fail_io` at one fail point, and a test
/// arming `IoError` must not have its budget silently drained by the
/// death probe.
fn fire(name: &str, key: u64, probe: &Action) -> Option<Action> {
    if ARMED.load(Ordering::Relaxed) == 0 {
        return None;
    }
    let mut map = registry().lock().expect("fail-point registry poisoned");
    let point = map.get_mut(name)?;
    if point.key.is_some_and(|k| k != key) || !point.action.kind_matches(probe) {
        return None;
    }
    match &mut point.remaining {
        Some(0) => return None,
        Some(n) => *n -= 1,
        None => {}
    }
    point.hits += 1;
    Some(point.action.clone())
}

/// Hook: `true` when `name` is armed with [`Action::Trigger`] for `key`.
///
/// Plant at the condition a test wants to force (e.g. "the wall-clock
/// deadline expired").
#[must_use]
pub fn triggered(name: &str, key: u64) -> bool {
    matches!(fire(name, key, &Action::Trigger), Some(Action::Trigger))
}

/// Hook: panics when `name` is armed with [`Action::Panic`] for `key`.
///
/// # Panics
///
/// Panics with the armed message — that is the point.
pub fn maybe_panic(name: &str, key: u64) {
    if let Some(Action::Panic(message)) = fire(name, key, &Action::Panic(String::new())) {
        panic!("{message}");
    }
}

/// Hook: `true` when `name` is armed with [`Action::IoError`] (any key).
///
/// The caller fabricates the `std::io::Error` itself, keeping this crate
/// dependency-free.
#[must_use]
pub fn should_fail_io(name: &str) -> bool {
    matches!(fire(name, 0, &Action::IoError), Some(Action::IoError))
}

/// Hook: aborts the process when `name` is armed with [`Action::Abort`] for
/// `key` — the crash-injection point of the chaos suites. `abort` (not
/// `exit`) means no unwinding and no `Drop` cleanup runs: lock files, claim
/// files, and half-written temp files are left exactly as a killed worker
/// would leave them.
pub fn maybe_die(name: &str, key: u64) {
    if let Some(Action::Abort) = fire(name, key, &Action::Abort) {
        // A diagnostic on stderr, then hard death.
        eprintln!("rtrm-testkit: fail point {name} (key {key}) aborting the process");
        std::process::abort();
    }
}

/// Arms fail points from the `RTRM_FAILPOINTS` environment variable —
/// the cross-process channel of the chaos suites, since a spawned worker
/// cannot share the parent's in-process registry.
///
/// Grammar (entries separated by `;`):
///
/// ```text
/// RTRM_FAILPOINTS = entry [ ";" entry ]*
/// entry           = name "=" action [ "@" times ] [ "#" key ]
/// action          = "abort" | "panic" | "trigger" | "io"
/// ```
///
/// `times` bounds the number of firings, `key` restricts the point to one
/// hook key — both as in [`arm_with`]. Malformed entries are skipped with a
/// warning on stderr (a chaos run must not be derailed by a typo acting as
/// "no fault injected" silently — the warning makes it visible).
///
/// Returns the guards; callers keep them alive for the process lifetime
/// (typically via [`std::mem::forget`] or by holding them in `main`).
#[must_use]
pub fn arm_from_env() -> Vec<Guard> {
    let Ok(spec) = std::env::var("RTRM_FAILPOINTS") else {
        return Vec::new();
    };
    let mut guards = Vec::new();
    for entry in spec.split(';').filter(|e| !e.trim().is_empty()) {
        match parse_entry(entry.trim()) {
            Some((name, action, key, times)) => {
                guards.push(arm_with(&name, action, key, times));
            }
            None => eprintln!("rtrm-testkit: skipping malformed RTRM_FAILPOINTS entry '{entry}'"),
        }
    }
    guards
}

/// Parses one `name=action[@times][#key]` entry of [`arm_from_env`].
fn parse_entry(entry: &str) -> Option<(String, Action, Option<u64>, Option<u32>)> {
    let (name, rest) = entry.split_once('=')?;
    if name.is_empty() {
        return None;
    }
    let (rest, key) = match rest.split_once('#') {
        Some((r, k)) => (r, Some(k.parse().ok()?)),
        None => (rest, None),
    };
    let (action, times) = match rest.split_once('@') {
        Some((a, t)) => (a, Some(t.parse().ok()?)),
        None => (rest, None),
    };
    let action = match action {
        "abort" => Action::Abort,
        "panic" => Action::Panic(format!("injected by RTRM_FAILPOINTS at {name}")),
        "trigger" => Action::Trigger,
        "io" => Action::IoError,
        _ => return None,
    };
    Some((name.to_string(), action, key, times))
}

#[cfg(test)]
mod tests {
    use super::*;

    // Each test arms its own unique name: fail points are process-global
    // and the test harness runs these concurrently.

    #[test]
    fn disarmed_hooks_do_nothing() {
        assert!(!triggered("t::never-armed", 0));
        assert!(!should_fail_io("t::never-armed"));
        maybe_panic("t::never-armed", 0); // must not panic
    }

    #[test]
    fn trigger_fires_and_guard_disarms() {
        let guard = arm("t::trigger", Action::Trigger);
        assert!(triggered("t::trigger", 0));
        assert!(triggered("t::trigger", 42));
        assert_eq!(guard.hits(), 2);
        drop(guard);
        assert!(!triggered("t::trigger", 0));
    }

    #[test]
    fn key_restricts_firing() {
        let _guard = arm_with("t::keyed", Action::Trigger, Some(3), None);
        assert!(!triggered("t::keyed", 2));
        assert!(triggered("t::keyed", 3));
        assert!(!triggered("t::keyed", 4));
    }

    #[test]
    fn times_bounds_firing() {
        let guard = arm_with("t::bounded", Action::IoError, None, Some(2));
        assert!(should_fail_io("t::bounded"));
        assert!(should_fail_io("t::bounded"));
        assert!(!should_fail_io("t::bounded"));
        assert_eq!(guard.hits(), 2);
    }

    #[test]
    fn panic_action_panics_with_message() {
        let _guard = arm("t::panic", Action::Panic("injected boom".to_string()));
        let err = std::panic::catch_unwind(|| maybe_panic("t::panic", 7))
            .expect_err("armed panic point must panic");
        let message = err
            .downcast_ref::<String>()
            .cloned()
            .expect("panic! with a formatted message yields a String payload");
        assert_eq!(message, "injected boom");
    }

    #[test]
    fn rearming_replaces_configuration() {
        let _a = arm_with("t::rearm", Action::Trigger, Some(1), None);
        let _b = arm_with("t::rearm", Action::Trigger, Some(2), None);
        assert!(!triggered("t::rearm", 1));
        assert!(triggered("t::rearm", 2));
    }

    #[test]
    fn hooks_only_consume_their_own_action_kind() {
        // Co-located hooks: a death probe at an IoError-armed point must
        // neither fire nor drain the budget.
        let guard = arm_with("t::kinds", Action::IoError, None, Some(1));
        maybe_die("t::kinds", 0); // would abort if it matched
        assert!(!triggered("t::kinds", 0));
        assert_eq!(guard.hits(), 0, "foreign probes consumed the budget");
        assert!(should_fail_io("t::kinds"));
        assert!(!should_fail_io("t::kinds"), "budget of 1 is spent");
    }

    #[test]
    fn disarmed_maybe_die_is_a_no_op() {
        maybe_die("t::die-never-armed", 0); // must not abort
    }

    #[test]
    fn env_entries_parse() {
        let (name, action, key, times) = parse_entry("sweep::claim=abort").expect("parses");
        assert_eq!(name, "sweep::claim");
        assert_eq!(action, Action::Abort);
        assert_eq!((key, times), (None, None));

        let (name, action, key, times) = parse_entry("sweep::part_publish=io@2#7").expect("parses");
        assert_eq!(name, "sweep::part_publish");
        assert_eq!(action, Action::IoError);
        assert_eq!((key, times), (Some(7), Some(2)));

        let (_, action, _, times) = parse_entry("a=trigger@1").expect("parses");
        assert_eq!(action, Action::Trigger);
        assert_eq!(times, Some(1));
        assert!(matches!(
            parse_entry("a=panic").expect("parses").1,
            Action::Panic(_)
        ));

        assert!(parse_entry("no-equals").is_none());
        assert!(parse_entry("=abort").is_none());
        assert!(parse_entry("a=explode").is_none());
        assert!(parse_entry("a=abort@notanumber").is_none());
    }
}
