//! # rtrm-testkit
//!
//! A tiny fail-point registry for deterministic fault injection, in the
//! spirit of the `fail` crate (which the offline workspace cannot depend
//! on). Production code plants named *hooks* at the places where faults can
//! strike — a solver deadline check, a per-trace simulation, a checkpoint
//! publish — and tests *arm* those hooks with an [`Action`] to inject a
//! stall, a panic, or an I/O error exactly where and as often as they want.
//!
//! The registry is always compiled (cfg-gating a library for its own
//! integration tests does not compose across crates), but the disarmed fast
//! path is a single relaxed atomic load, so hooks cost nothing in
//! production.
//!
//! Fail points are process-global: tests that arm the same name must not run
//! concurrently within one test binary (use distinct names per test).
//!
//! # Examples
//!
//! ```
//! use rtrm_testkit as fail;
//!
//! // Production code plants a hook:
//! fn publish() -> Result<(), String> {
//!     if fail::should_fail_io("doc::publish") {
//!         return Err("injected".to_string());
//!     }
//!     Ok(())
//! }
//!
//! assert!(publish().is_ok()); // disarmed: nothing happens
//! let guard = fail::arm_with("doc::publish", fail::Action::IoError, None, Some(1));
//! assert!(publish().is_err()); // armed: first call fails ...
//! assert!(publish().is_ok()); // ... and the budget of 1 is spent
//! assert_eq!(guard.hits(), 1);
//! drop(guard); // disarm (automatic at end of scope)
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// What an armed fail point does when its hook fires.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action {
    /// [`maybe_panic`] panics with the given message.
    Panic(String),
    /// [`triggered`] returns `true` (used to force timeouts/stalls).
    Trigger,
    /// [`should_fail_io`] returns `true` (the caller fabricates the error).
    IoError,
}

#[derive(Debug)]
struct FailPoint {
    action: Action,
    /// Only fire when the hook passes this key (`None` = fire for any key).
    key: Option<u64>,
    /// Remaining firings (`None` = unlimited).
    remaining: Option<u32>,
    /// Times this point has fired.
    hits: u32,
}

/// Number of currently armed fail points; the disarmed fast path.
static ARMED: AtomicUsize = AtomicUsize::new(0);

fn registry() -> &'static Mutex<HashMap<String, FailPoint>> {
    static REGISTRY: OnceLock<Mutex<HashMap<String, FailPoint>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Disarms its fail point when dropped.
///
/// Returned by [`arm`]/[`arm_with`]; hold it for the duration of the test.
#[derive(Debug)]
#[must_use = "dropping the guard disarms the fail point immediately"]
pub struct Guard {
    name: String,
}

impl Guard {
    /// How many times the armed point has fired so far.
    #[must_use]
    pub fn hits(&self) -> u32 {
        registry()
            .lock()
            .expect("fail-point registry poisoned")
            .get(&self.name)
            .map_or(0, |p| p.hits)
    }
}

impl Drop for Guard {
    fn drop(&mut self) {
        let mut map = registry().lock().expect("fail-point registry poisoned");
        if map.remove(&self.name).is_some() {
            ARMED.fetch_sub(1, Ordering::Relaxed);
        }
    }
}

/// Arms `name` with `action` for every key, unlimited firings.
pub fn arm(name: &str, action: Action) -> Guard {
    arm_with(name, action, None, None)
}

/// Arms `name` with `action`, optionally restricted to one hook `key` and a
/// maximum number of firings (`times`).
///
/// Re-arming an already armed name replaces its configuration.
///
/// # Panics
///
/// Panics if the registry mutex is poisoned (a previous test panicked while
/// holding it — which the registry never does).
pub fn arm_with(name: &str, action: Action, key: Option<u64>, times: Option<u32>) -> Guard {
    let mut map = registry().lock().expect("fail-point registry poisoned");
    let previous = map.insert(
        name.to_string(),
        FailPoint {
            action,
            key,
            remaining: times,
            hits: 0,
        },
    );
    if previous.is_none() {
        ARMED.fetch_add(1, Ordering::Relaxed);
    }
    Guard {
        name: name.to_string(),
    }
}

/// Checks whether `name` is armed for `key` and, if so, consumes one firing
/// and returns its action.
fn fire(name: &str, key: u64) -> Option<Action> {
    if ARMED.load(Ordering::Relaxed) == 0 {
        return None;
    }
    let mut map = registry().lock().expect("fail-point registry poisoned");
    let point = map.get_mut(name)?;
    if point.key.is_some_and(|k| k != key) {
        return None;
    }
    match &mut point.remaining {
        Some(0) => return None,
        Some(n) => *n -= 1,
        None => {}
    }
    point.hits += 1;
    Some(point.action.clone())
}

/// Hook: `true` when `name` is armed with [`Action::Trigger`] for `key`.
///
/// Plant at the condition a test wants to force (e.g. "the wall-clock
/// deadline expired").
#[must_use]
pub fn triggered(name: &str, key: u64) -> bool {
    matches!(fire(name, key), Some(Action::Trigger))
}

/// Hook: panics when `name` is armed with [`Action::Panic`] for `key`.
///
/// # Panics
///
/// Panics with the armed message — that is the point.
pub fn maybe_panic(name: &str, key: u64) {
    if let Some(Action::Panic(message)) = fire(name, key) {
        panic!("{message}");
    }
}

/// Hook: `true` when `name` is armed with [`Action::IoError`] (any key).
///
/// The caller fabricates the `std::io::Error` itself, keeping this crate
/// dependency-free.
#[must_use]
pub fn should_fail_io(name: &str) -> bool {
    matches!(fire(name, 0), Some(Action::IoError))
}

#[cfg(test)]
mod tests {
    use super::*;

    // Each test arms its own unique name: fail points are process-global
    // and the test harness runs these concurrently.

    #[test]
    fn disarmed_hooks_do_nothing() {
        assert!(!triggered("t::never-armed", 0));
        assert!(!should_fail_io("t::never-armed"));
        maybe_panic("t::never-armed", 0); // must not panic
    }

    #[test]
    fn trigger_fires_and_guard_disarms() {
        let guard = arm("t::trigger", Action::Trigger);
        assert!(triggered("t::trigger", 0));
        assert!(triggered("t::trigger", 42));
        assert_eq!(guard.hits(), 2);
        drop(guard);
        assert!(!triggered("t::trigger", 0));
    }

    #[test]
    fn key_restricts_firing() {
        let _guard = arm_with("t::keyed", Action::Trigger, Some(3), None);
        assert!(!triggered("t::keyed", 2));
        assert!(triggered("t::keyed", 3));
        assert!(!triggered("t::keyed", 4));
    }

    #[test]
    fn times_bounds_firing() {
        let guard = arm_with("t::bounded", Action::IoError, None, Some(2));
        assert!(should_fail_io("t::bounded"));
        assert!(should_fail_io("t::bounded"));
        assert!(!should_fail_io("t::bounded"));
        assert_eq!(guard.hits(), 2);
    }

    #[test]
    fn panic_action_panics_with_message() {
        let _guard = arm("t::panic", Action::Panic("injected boom".to_string()));
        let err = std::panic::catch_unwind(|| maybe_panic("t::panic", 7))
            .expect_err("armed panic point must panic");
        let message = err
            .downcast_ref::<String>()
            .cloned()
            .expect("panic! with a formatted message yields a String payload");
        assert_eq!(message, "injected boom");
    }

    #[test]
    fn rearming_replaces_configuration() {
        let _a = arm_with("t::rearm", Action::Trigger, Some(1), None);
        let _b = arm_with("t::rearm", Action::Trigger, Some(2), None);
        assert!(!triggered("t::rearm", 1));
        assert!(triggered("t::rearm", 2));
    }
}
