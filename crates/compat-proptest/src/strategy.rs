//! The [`Strategy`] trait and the combinators used by this workspace:
//! ranges, tuples, [`Just`], [`Map`] (`prop_map`), [`Union`]
//! (`prop_oneof!`) and [`BoxedStrategy`].

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

use rand::Rng;

use crate::test_runner::TestRng;

/// A generator of random test-case values.
///
/// Unlike upstream proptest there is no value tree / shrinking: a strategy
/// simply samples a value from the runner's RNG. Combinators are
/// `Sized`-gated so the trait stays object-safe for [`BoxedStrategy`].
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value: Debug;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms produced values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Erases the strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A type-erased [`Strategy`].
pub struct BoxedStrategy<V>(Box<dyn Strategy<Value = V>>);

impl<V: Debug> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn sample(&self, rng: &mut TestRng) -> V {
        self.0.sample(rng)
    }
}

/// A strategy that always produces a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Chooses uniformly among several strategies (backs `prop_oneof!`).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V: Debug> Union<V> {
    /// Builds a union over `options`; panics if empty.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(
            !options.is_empty(),
            "prop_oneof! needs at least one strategy"
        );
        Union { options }
    }
}

impl<V: Debug> Strategy for Union<V> {
    type Value = V;

    fn sample(&self, rng: &mut TestRng) -> V {
        let idx = rng.gen_range(0..self.options.len());
        self.options[idx].sample(rng)
    }
}

macro_rules! range_strategies {
    ($($t:ty),+ $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )+};
}

range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($($S:ident : $idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}

tuple_strategy!(A: 0);
tuple_strategy!(A: 0, B: 1);
tuple_strategy!(A: 0, B: 1, C: 2);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8, J: 9);
