//! `any::<T>()` for the primitive types the workspace samples directly.

use std::fmt::Debug;
use std::marker::PhantomData;

use rand::Rng;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical whole-domain strategy, reachable via [`any`].
pub trait Arbitrary: Debug + Sized {
    /// Draws an unconstrained value of this type.
    fn generate(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_via_standard {
    ($($t:ty),+ $(,)?) => {$(
        impl Arbitrary for $t {
            fn generate(rng: &mut TestRng) -> Self {
                rng.gen()
            }
        }
    )+};
}

arbitrary_via_standard!(bool, u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, isize, f32, f64);

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<fn() -> T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::generate(rng)
    }
}

/// Strategy producing any value of `T` (upstream `proptest::arbitrary::any`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}
