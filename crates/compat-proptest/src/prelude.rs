//! One-stop imports mirroring `proptest::prelude`.

pub use crate::arbitrary::any;
pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};

/// Namespace mirror of upstream's `prelude::prop` (e.g.
/// `prop::collection::vec`, `prop::option::of`).
pub mod prop {
    pub use crate::collection;
    pub use crate::option;
    pub use crate::strategy;
}
