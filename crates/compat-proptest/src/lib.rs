//! Offline drop-in subset of `proptest`.
//!
//! Provides the strategy combinators and the `proptest!` family of macros
//! used by this workspace's test suites, backed by a deterministic
//! random-case runner (seeded per test from its file/name, overridable with
//! `PROPTEST_SEED`). Differences from upstream, by design:
//!
//! * **No shrinking.** A failing case prints its full `Debug` input and the
//!   run seed instead of a minimized counterexample. Re-running with
//!   `PROPTEST_SEED=<seed>` reproduces the exact sequence.
//! * **No regression-file replay.** Upstream `*.proptest-regressions` seeds
//!   encode upstream's RNG; they cannot be replayed here. Persistent
//!   counterexamples should be committed as explicit `#[test]` functions
//!   (see `crates/core/tests/cross_validation.rs` for the pattern).
//! * Case counts honour `PROPTEST_CASES` as a global multiplier-free
//!   override, useful for overnight fuzzing.

#![warn(missing_docs)]

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

/// Defines deterministic property tests over strategies.
///
/// Mirrors upstream `proptest!`: an optional
/// `#![proptest_config(...)]` header followed by `#[test]` functions whose
/// arguments are drawn from strategies with `pattern in strategy` syntax.
#[macro_export]
macro_rules! proptest {
    (@impl $cfg:expr; $( $(#[$meta:meta])* fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let strategy = ( $( $strat, )+ );
                $crate::test_runner::execute(
                    &config,
                    concat!(file!(), "::", stringify!($name)),
                    &strategy,
                    |( $($pat,)+ )| {
                        $body
                        ::core::result::Result::Ok(())
                    },
                );
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl $cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl $crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

/// Fails the current property case with a formatted message (the case's
/// input and seed are reported by the runner).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current property case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`\n{}",
                l,
                r,
                format!($($fmt)+),
            )));
        }
    }};
}

/// Fails the current property case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            l
        );
    }};
}

/// Rejects the current case (it is re-drawn, not counted) unless the
/// precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

/// Chooses uniformly between several strategies producing the same value
/// type (upstream's unweighted `prop_oneof!`).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
