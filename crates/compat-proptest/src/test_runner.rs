//! The deterministic case runner behind `proptest!`.

use std::panic::{self, AssertUnwindSafe};

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::strategy::Strategy;

/// The RNG handed to strategies. One instance per `proptest!` test run,
/// seeded deterministically from the test's path (see [`execute`]).
pub type TestRng = StdRng;

/// Runner configuration. Only the fields the workspace touches are exposed.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful (non-rejected) cases required to pass.
    pub cases: u32,
    /// Cap on `prop_assume!` rejections across the whole run.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// Default config with a custom case count.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 65536,
        }
    }
}

/// Why a single test case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The case's preconditions did not hold; it is re-drawn, not counted.
    Reject(String),
    /// The property is false for this input.
    Fail(String),
}

impl TestCaseError {
    /// Builds a [`TestCaseError::Reject`].
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }

    /// Builds a [`TestCaseError::Fail`].
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }
}

/// Outcome of one property case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// FNV-1a, used to derive a stable per-test seed from its path.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn base_seed(test_path: &str) -> u64 {
    if let Ok(s) = std::env::var("PROPTEST_SEED") {
        s.parse::<u64>()
            .unwrap_or_else(|_| panic!("PROPTEST_SEED must be a u64, got {s:?}"))
    } else {
        fnv1a(test_path.as_bytes())
    }
}

fn case_count(config: &ProptestConfig) -> u32 {
    match std::env::var("PROPTEST_CASES") {
        Ok(s) => s
            .parse::<u32>()
            .unwrap_or_else(|_| panic!("PROPTEST_CASES must be a u32, got {s:?}")),
        Err(_) => config.cases,
    }
}

/// Runs `body` against `config.cases` sampled inputs, panicking (with the
/// offending input and the run seed) on the first failure.
///
/// The RNG is seeded from a hash of `test_path`, so runs are reproducible
/// and independent of test execution order; `PROPTEST_SEED` overrides the
/// seed and `PROPTEST_CASES` the case count.
pub fn execute<S, F>(config: &ProptestConfig, test_path: &str, strategy: &S, mut body: F)
where
    S: Strategy,
    F: FnMut(S::Value) -> TestCaseResult,
{
    let seed = base_seed(test_path);
    let cases = case_count(config);
    let mut rng = TestRng::seed_from_u64(seed);
    let mut passed: u32 = 0;
    let mut rejects: u32 = 0;
    while passed < cases {
        let value = strategy.sample(&mut rng);
        // Captured before the body runs so panicking cases can still be
        // reported.
        let shown = format!("{:?}", value);
        match panic::catch_unwind(AssertUnwindSafe(|| body(value))) {
            Ok(Ok(())) => passed += 1,
            Ok(Err(TestCaseError::Reject(_))) => {
                rejects += 1;
                assert!(
                    rejects <= config.max_global_rejects,
                    "{test_path}: too many rejected cases ({rejects}) after {passed} passes; \
                     loosen the generator or raise max_global_rejects"
                );
            }
            Ok(Err(TestCaseError::Fail(reason))) => {
                panic!(
                    "{test_path}: property failed after {passed} passing case(s)\n\
                     input: {shown}\n{reason}\n\
                     reproduce with PROPTEST_SEED={seed}"
                );
            }
            Err(payload) => {
                eprintln!(
                    "{test_path}: panic during case after {passed} passing case(s)\n\
                     input: {shown}\n\
                     reproduce with PROPTEST_SEED={seed}"
                );
                panic::resume_unwind(payload);
            }
        }
    }
}
