//! `prop::option::of`.

use rand::Rng;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// The strategy returned by [`of`].
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        if rng.gen_bool(0.5) {
            Some(self.inner.sample(rng))
        } else {
            None
        }
    }
}

/// Strategy producing `Some` of `inner`'s values half the time and `None`
/// otherwise.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}
