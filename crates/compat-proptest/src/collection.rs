//! `prop::collection::vec` and the [`SizeRange`] it accepts.

use std::ops::{Range, RangeInclusive};

use rand::Rng;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A range of collection sizes, convertible from `usize` ranges or an exact
/// length.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    min: usize,
    /// Exclusive upper bound; always > `min`.
    end: usize,
}

impl From<usize> for SizeRange {
    fn from(len: usize) -> Self {
        SizeRange {
            min: len,
            end: len + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.end > r.start, "empty size range {r:?}");
        SizeRange {
            min: r.start,
            end: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.end() >= r.start(), "empty size range {r:?}");
        SizeRange {
            min: *r.start(),
            end: *r.end() + 1,
        }
    }
}

/// The strategy returned by [`vec()`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        let len = rng.gen_range(self.size.min..self.size.end);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// Strategy producing a `Vec` whose length is drawn from `size` and whose
/// elements are drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
