//! No-op `Serialize`/`Deserialize` derives for the offline serde compat
//! crate: they accept (and ignore) `#[serde(...)]` attributes and emit an
//! empty marker-trait impl. Only plain (non-generic) structs and enums are
//! supported — which covers every derived type in this workspace; the macro
//! fails loudly if a generic type ever shows up.

use proc_macro::{TokenStream, TokenTree};

/// Extracts the type name from a `struct`/`enum` item, rejecting generics.
fn type_name(input: TokenStream) -> String {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    while i < tokens.len() {
        if let TokenTree::Ident(id) = &tokens[i] {
            let kw = id.to_string();
            if kw == "struct" || kw == "enum" {
                let name = match tokens.get(i + 1) {
                    Some(TokenTree::Ident(name)) => name.to_string(),
                    other => panic!("serde compat derive: expected type name, got {other:?}"),
                };
                if let Some(TokenTree::Punct(p)) = tokens.get(i + 2) {
                    assert!(
                        p.as_char() != '<',
                        "serde compat derive does not support generic types (type `{name}`); \
                         extend crates/compat-serde-derive if one is needed"
                    );
                }
                return name;
            }
        }
        i += 1;
    }
    panic!("serde compat derive: no struct or enum found in input");
}

/// Derives the no-op `serde::Serialize` marker impl.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl ::serde::Serialize for {name} {{}}")
        .parse()
        .expect("generated impl parses")
}

/// Derives the no-op `serde::Deserialize` marker impl.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .expect("generated impl parses")
}
