//! Offline drop-in subset of the `rand` crate.
//!
//! This workspace pins all third-party dependencies to in-repo compat crates
//! so it builds in sandboxed environments with no registry access. Only the
//! API surface the workspace actually uses is provided: the [`Rng`] /
//! [`RngCore`] / [`SeedableRng`] traits and [`rngs::StdRng`].
//!
//! `StdRng` here is xoshiro256** seeded via SplitMix64 — deterministic and
//! of high statistical quality, but **not** the upstream ChaCha12 generator:
//! seeds produce different streams than the real `rand` crate. All
//! reproducibility guarantees within this repository (fixed seeds in tests,
//! benches, and experiment configs) refer to this generator.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: a source of uniform `u64`s.
pub trait RngCore {
    /// Returns the next pseudo-random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next pseudo-random `u32` (upper half of [`next_u64`]).
    ///
    /// [`next_u64`]: RngCore::next_u64
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be instantiated from a seed.
pub trait SeedableRng: Sized {
    /// Fixed-size seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with SplitMix64 —
    /// the common deterministic-test entry point.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Types that can be sampled uniformly from a generator (the `Standard`
/// distribution of the real crate).
pub trait Standard: Sized {
    /// Draws one value.
    fn gen_from<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn gen_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn gen_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn gen_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn gen_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn gen_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

/// Range types [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width range: every value is admissible.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as Standard>::gen_from(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let u = <$t as Standard>::gen_from(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}

range_float!(f32, f64);

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of `T` from its standard distribution (`f64`/`f32`
    /// uniform in `[0, 1)`, integers full-width uniform, `bool` fair coin).
    fn gen<T: Standard>(&mut self) -> T {
        T::gen_from(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**.
    ///
    /// Not the upstream ChaCha12 `StdRng` — same API, different stream.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // An all-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen_range(1.2..4.0);
            assert!((1.2..4.0).contains(&x));
            let y: f64 = rng.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn int_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 6];
        for _ in 0..500 {
            let x: usize = rng.gen_range(0..6);
            seen[x] = true;
            let z: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&z));
        }
        assert!(seen.iter().all(|&s| s), "all values of 0..6 reached");
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
