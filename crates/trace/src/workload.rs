//! Request-trace generation (paper Sec 5.1, second half).
//!
//! Arrivals are a random walk with `Gaussian(1.2, 0.4²)` increments; each
//! arrival is assigned a uniformly random task type; the relative deadline is
//! `RWCET × C` where `RWCET` is the type's WCET on a uniformly random
//! executable resource and `C` is drawn uniformly from `[1.5, 2)` for the
//! very-tight (VT) group or `[2, 6)` for the less-tight (LT) group.

use rand::Rng;
use serde::{Deserialize, Serialize};

use rtrm_platform::{Request, RequestId, TaskCatalog, TaskTypeId, Time, Trace};

use crate::dist::{uniform, Gaussian};

/// Deadline-tightness group of a trace (paper Sec 5.1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Tightness {
    /// Very tight deadlines: coefficient uniform in `[1.5, 2)` (the VT group).
    VeryTight,
    /// Less tight deadlines: coefficient uniform in `[2, 6)` (the LT group).
    LessTight,
    /// Custom coefficient range.
    Custom {
        /// Inclusive lower bound of the deadline coefficient.
        lo: f64,
        /// Exclusive upper bound of the deadline coefficient.
        hi: f64,
    },
}

impl Tightness {
    pub(crate) fn range(self) -> (f64, f64) {
        match self {
            Tightness::VeryTight => (1.5, 2.0),
            Tightness::LessTight => (2.0, 6.0),
            Tightness::Custom { lo, hi } => (lo, hi),
        }
    }
}

/// Parameters of the trace generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceConfig {
    /// Number of requests per trace (paper: 500).
    pub length: usize,
    /// Mean of the interarrival Gaussian.
    pub interarrival_mean: f64,
    /// Standard deviation of the interarrival Gaussian.
    pub interarrival_std: f64,
    /// Lower clamp on interarrival gaps (keeps arrivals strictly ordered
    /// despite Gaussian tails; the paper leaves tail handling unspecified).
    pub interarrival_floor: f64,
    /// Deadline tightness group.
    pub tightness: Tightness,
}

impl TraceConfig {
    /// The paper's literal VT configuration: interarrival `N(1.2, 0.4²)`,
    /// deadline coefficient `U[1.5, 2)`.
    ///
    /// Note: combined with [`CatalogConfig::paper`](crate::CatalogConfig::paper)
    /// on the 6-resource platform this offers ≈5.6× more work than the
    /// platform can serve, far above the operating point implied by the
    /// paper's reported 24.5–31 % rejection — see `DESIGN.md` §3. Use the
    /// [`calibrated_vt`](TraceConfig::calibrated_vt) preset to land in the
    /// paper's regime.
    #[must_use]
    pub fn paper_vt() -> Self {
        TraceConfig {
            length: 500,
            interarrival_mean: 1.2,
            interarrival_std: 0.4,
            interarrival_floor: 0.01,
            tightness: Tightness::VeryTight,
        }
    }

    /// The paper's literal LT configuration (deadline coefficient `U[2, 6)`).
    #[must_use]
    pub fn paper_lt() -> Self {
        TraceConfig {
            tightness: Tightness::LessTight,
            ..TraceConfig::paper_vt()
        }
    }

    /// VT traces rescaled to the paper's *operating point*: the interarrival
    /// mean/std are multiplied so that the no-prediction rejection rate of
    /// the resource managers falls in the paper's reported 24.5–31 % band
    /// (see `EXPERIMENTS.md` for the calibration run).
    #[must_use]
    pub fn calibrated_vt() -> Self {
        TraceConfig {
            interarrival_mean: 2.8,
            interarrival_std: 2.8 / 3.0,
            ..TraceConfig::paper_vt()
        }
    }

    /// LT traces at the calibrated operating point.
    #[must_use]
    pub fn calibrated_lt() -> Self {
        TraceConfig {
            tightness: Tightness::LessTight,
            ..TraceConfig::calibrated_vt()
        }
    }
}

/// Generates one request trace against `catalog`.
///
/// # Panics
///
/// Panics if `config.length` is zero or the catalog is empty.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use rtrm_platform::Platform;
/// use rtrm_trace::{generate_catalog, generate_trace, CatalogConfig, TraceConfig};
///
/// let platform = Platform::paper_default();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let catalog = generate_catalog(&platform, &CatalogConfig::paper(), &mut rng);
/// let trace = generate_trace(&catalog, &TraceConfig::paper_vt(), &mut rng);
/// assert_eq!(trace.len(), 500);
/// ```
pub fn generate_trace<R: Rng + ?Sized>(
    catalog: &TaskCatalog,
    config: &TraceConfig,
    rng: &mut R,
) -> Trace {
    assert!(config.length > 0, "trace must contain at least one request");
    assert!(!catalog.is_empty(), "catalog must not be empty");

    let gap_dist = Gaussian::new(config.interarrival_mean, config.interarrival_std);
    let (c_lo, c_hi) = config.tightness.range();

    let mut requests = Vec::with_capacity(config.length);
    let mut arrival = 0.0f64;
    for index in 0..config.length {
        if index > 0 {
            arrival += gap_dist.sample_at_least(rng, config.interarrival_floor);
        }
        let type_id = TaskTypeId::new(rng.gen_range(0..catalog.len()));
        let task_type = catalog.task_type(type_id);

        // RWCET: the WCET on a uniformly random executable resource.
        let executable: Vec<_> = task_type.executable_resources().collect();
        let resource = executable[rng.gen_range(0..executable.len())];
        let rwcet = task_type.wcet(resource).expect("resource is executable");
        let coefficient = uniform(rng, c_lo, c_hi);

        requests.push(Request {
            id: RequestId::new(index),
            arrival: Time::new(arrival),
            task_type: type_id,
            deadline: rwcet * coefficient,
        });
    }
    Trace::new(requests)
}

/// Generates a reproducible batch of traces: trace `i` uses a child seed
/// derived from `seed` and `i`, so batches can be regenerated independently
/// of batch size or iteration order.
pub fn generate_traces(
    catalog: &TaskCatalog,
    config: &TraceConfig,
    count: usize,
    seed: u64,
) -> Vec<Trace> {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    (0..count)
        .map(|i| {
            let mut rng =
                StdRng::seed_from_u64(seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i as u64 + 1)));
            generate_trace(catalog, config, &mut rng)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate_catalog, CatalogConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rtrm_platform::Platform;

    fn setup() -> TaskCatalog {
        let platform = Platform::paper_default();
        let mut rng = StdRng::seed_from_u64(11);
        generate_catalog(&platform, &CatalogConfig::paper(), &mut rng)
    }

    #[test]
    fn interarrival_statistics_match() {
        let catalog = setup();
        let cfg = TraceConfig {
            length: 5_000,
            ..TraceConfig::paper_vt()
        };
        let trace = generate_trace(&catalog, &cfg, &mut StdRng::seed_from_u64(2));
        let mean = trace.mean_interarrival().unwrap().value();
        assert!((mean - 1.2).abs() < 0.05, "mean interarrival={mean}");
    }

    #[test]
    fn deadlines_are_rwcet_multiples_in_range() {
        let catalog = setup();
        let trace = generate_trace(
            &catalog,
            &TraceConfig::paper_vt(),
            &mut StdRng::seed_from_u64(3),
        );
        for req in trace.iter() {
            let t = catalog.task_type(req.task_type);
            // The coefficient must be recoverable against *some* executable
            // resource's WCET within [1.5, 2).
            let ok = t.executable_resources().any(|r| {
                let c = req.deadline / t.wcet(r).unwrap();
                (1.5..2.0).contains(&c)
            });
            assert!(ok, "deadline {:?} not explainable", req.deadline);
        }
    }

    #[test]
    fn lt_deadlines_are_looser_on_average() {
        let catalog = setup();
        let vt = generate_trace(
            &catalog,
            &TraceConfig::paper_vt(),
            &mut StdRng::seed_from_u64(4),
        );
        let lt = generate_trace(
            &catalog,
            &TraceConfig::paper_lt(),
            &mut StdRng::seed_from_u64(4),
        );
        let mean = |t: &rtrm_platform::Trace| {
            t.iter().map(|r| r.deadline.value()).sum::<f64>() / t.len() as f64
        };
        assert!(
            mean(&lt) > mean(&vt) * 1.5,
            "vt={} lt={}",
            mean(&vt),
            mean(&lt)
        );
    }

    #[test]
    fn batch_generation_is_reproducible_and_distinct() {
        let catalog = setup();
        let a = generate_traces(&catalog, &TraceConfig::paper_vt(), 3, 77);
        let b = generate_traces(&catalog, &TraceConfig::paper_vt(), 3, 77);
        assert_eq!(a, b);
        assert_ne!(a[0], a[1], "different child seeds produce different traces");
    }

    #[test]
    fn custom_tightness() {
        let catalog = setup();
        let cfg = TraceConfig {
            tightness: Tightness::Custom { lo: 10.0, hi: 11.0 },
            ..TraceConfig::paper_vt()
        };
        let trace = generate_trace(&catalog, &cfg, &mut StdRng::seed_from_u64(5));
        for req in trace.iter() {
            let t = catalog.task_type(req.task_type);
            assert!(req.deadline.value() >= 10.0 * t.min_wcet().value() * 0.999);
        }
    }
}
