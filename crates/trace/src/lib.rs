//! # rtrm-trace
//!
//! Synthetic workload generation reproducing Sec 5.1 of *Niknafs et al.,
//! DAC 2019*: a catalog of task types with Gaussian per-CPU profiles and a
//! GPU speedup factor, plus request traces with Gaussian interarrivals and
//! deadline coefficients for the paper's very-tight (VT) and less-tight (LT)
//! groups.
//!
//! All generation is deterministic given a seed, and batches derive
//! independent child seeds per trace ([`generate_traces`]).
//!
//! Beyond the paper's stationary stream, [`WorkloadPattern`] renders
//! non-stationary arrival-rate profiles — sinusoidal diurnal days
//! ([`DiurnalConfig`]), weekday/weekend cycles ([`WeeklyConfig`]), and the
//! Markov-modulated burst process ([`BurstyConfig`]) — under the same
//! child-seed scheme ([`generate_pattern_traces`]), so patterned sweeps
//! stay reproducible.
//!
//! # Examples
//!
//! ```
//! use rand::SeedableRng;
//! use rtrm_platform::Platform;
//! use rtrm_trace::{generate_catalog, generate_traces, CatalogConfig, TraceConfig};
//!
//! let platform = Platform::paper_default();
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let catalog = generate_catalog(&platform, &CatalogConfig::paper(), &mut rng);
//! let traces = generate_traces(&catalog, &TraceConfig::calibrated_vt(), 10, 7);
//! assert_eq!(traces.len(), 10);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod bursty;
mod catalog;
mod dist;
mod io;
mod pattern;
mod workload;

pub use bursty::{generate_bursty_trace, BurstyConfig};
pub use catalog::{generate_catalog, CatalogConfig};
pub use dist::{uniform, Gaussian};
pub use io::{read_trace_csv, write_trace_csv, ReadTraceError};
pub use pattern::{generate_pattern_traces, DiurnalConfig, WeeklyConfig, WorkloadPattern};
pub use workload::{generate_trace, generate_traces, Tightness, TraceConfig};
