//! Plain-text (CSV) trace persistence.
//!
//! Traces are flat request streams, so a four-column CSV
//! (`id,arrival,task_type,deadline`) round-trips them exactly without
//! pulling a serialization-format dependency into the workspace. The format
//! is also convenient for importing request streams recorded elsewhere.

use std::fmt;
use std::io::{BufRead, Write};

use rtrm_platform::{Request, RequestId, TaskTypeId, Time, Trace};

/// Error produced when parsing a trace CSV.
#[derive(Debug)]
pub enum ReadTraceError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed line (1-based line number and description).
    Parse {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        message: String,
    },
}

impl fmt::Display for ReadTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReadTraceError::Io(e) => write!(f, "i/o error reading trace: {e}"),
            ReadTraceError::Parse { line, message } => {
                write!(f, "trace csv line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for ReadTraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReadTraceError::Io(e) => Some(e),
            ReadTraceError::Parse { .. } => None,
        }
    }
}

impl From<std::io::Error> for ReadTraceError {
    fn from(e: std::io::Error) -> Self {
        ReadTraceError::Io(e)
    }
}

/// Writes `trace` as CSV (`id,arrival,task_type,deadline`, one header line).
///
/// A `&mut` reference can be passed as the writer.
///
/// # Errors
///
/// Propagates any I/O error from `writer`.
///
/// # Examples
///
/// ```
/// use rtrm_platform::{Request, RequestId, TaskTypeId, Time, Trace};
/// use rtrm_trace::{read_trace_csv, write_trace_csv};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let trace = Trace::new(vec![Request {
///     id: RequestId::new(0),
///     arrival: Time::new(0.5),
///     task_type: TaskTypeId::new(3),
///     deadline: Time::new(12.0),
/// }]);
/// let mut buffer = Vec::new();
/// write_trace_csv(&trace, &mut buffer)?;
/// let back = read_trace_csv(buffer.as_slice())?;
/// assert_eq!(back, trace);
/// # Ok(())
/// # }
/// ```
pub fn write_trace_csv<W: Write>(trace: &Trace, mut writer: W) -> std::io::Result<()> {
    writeln!(writer, "id,arrival,task_type,deadline")?;
    for r in trace.iter() {
        // RFC-ready float formatting: full round-trip precision.
        writeln!(
            writer,
            "{},{:?},{},{:?}",
            r.id.index(),
            r.arrival.value(),
            r.task_type.index(),
            r.deadline.value()
        )?;
    }
    Ok(())
}

/// Reads a trace written by [`write_trace_csv`] (or hand-authored in the
/// same four-column format). A `&mut` reference can be passed as the
/// reader.
///
/// # Errors
///
/// Returns [`ReadTraceError::Io`] on I/O failure and
/// [`ReadTraceError::Parse`] on malformed content — including out-of-order
/// arrivals or non-dense ids, which [`Trace::new`] would reject by panic.
pub fn read_trace_csv<R: BufRead>(reader: R) -> Result<Trace, ReadTraceError> {
    let mut requests = Vec::new();
    for (index, line) in reader.lines().enumerate() {
        let line = line?;
        let text = line.trim();
        if index == 0 {
            if text != "id,arrival,task_type,deadline" {
                return Err(ReadTraceError::Parse {
                    line: 1,
                    message: format!("unexpected header {text:?}"),
                });
            }
            continue;
        }
        if text.is_empty() {
            continue;
        }
        let fields: Vec<&str> = text.split(',').collect();
        if fields.len() != 4 {
            return Err(ReadTraceError::Parse {
                line: index + 1,
                message: format!("expected 4 fields, found {}", fields.len()),
            });
        }
        let parse_usize = |s: &str, what: &str| {
            s.parse::<usize>().map_err(|e| ReadTraceError::Parse {
                line: index + 1,
                message: format!("bad {what} {s:?}: {e}"),
            })
        };
        let parse_time = |s: &str, what: &str| {
            let v = s.parse::<f64>().map_err(|e| ReadTraceError::Parse {
                line: index + 1,
                message: format!("bad {what} {s:?}: {e}"),
            })?;
            if !v.is_finite() {
                return Err(ReadTraceError::Parse {
                    line: index + 1,
                    message: format!("{what} must be finite, found {s:?}"),
                });
            }
            Ok(Time::new(v))
        };
        let id = parse_usize(fields[0], "id")?;
        let arrival = parse_time(fields[1], "arrival")?;
        let task_type = parse_usize(fields[2], "task_type")?;
        let deadline = parse_time(fields[3], "deadline")?;
        if id != requests.len() {
            return Err(ReadTraceError::Parse {
                line: index + 1,
                message: format!("ids must be dense: expected {}, found {id}", requests.len()),
            });
        }
        if let Some(prev) = requests.last() {
            let prev: &Request = prev;
            if prev.arrival > arrival {
                return Err(ReadTraceError::Parse {
                    line: index + 1,
                    message: "arrivals must be non-decreasing".into(),
                });
            }
        }
        requests.push(Request {
            id: RequestId::new(id),
            arrival,
            task_type: TaskTypeId::new(task_type),
            deadline,
        });
    }
    Ok(Trace::new(requests))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate_catalog, generate_trace, CatalogConfig, TraceConfig};
    use rand::SeedableRng;
    use rtrm_platform::Platform;

    #[test]
    fn round_trip_preserves_generated_trace() {
        let platform = Platform::paper_default();
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let catalog = generate_catalog(&platform, &CatalogConfig::paper(), &mut rng);
        let trace = generate_trace(&catalog, &TraceConfig::calibrated_vt(), &mut rng);
        let mut buffer = Vec::new();
        write_trace_csv(&trace, &mut buffer).expect("write to memory");
        let back = read_trace_csv(buffer.as_slice()).expect("parse own output");
        assert_eq!(back, trace);
    }

    #[test]
    fn rejects_bad_header() {
        let err = read_trace_csv("arrival,id\n".as_bytes()).unwrap_err();
        assert!(
            matches!(err, ReadTraceError::Parse { line: 1, .. }),
            "{err}"
        );
    }

    #[test]
    fn rejects_wrong_field_count() {
        let data = "id,arrival,task_type,deadline\n0,1.0,2\n";
        let err = read_trace_csv(data.as_bytes()).unwrap_err();
        assert!(
            matches!(err, ReadTraceError::Parse { line: 2, .. }),
            "{err}"
        );
    }

    #[test]
    fn rejects_non_dense_ids() {
        let data = "id,arrival,task_type,deadline\n1,0.0,0,5.0\n";
        let err = read_trace_csv(data.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("dense"), "{err}");
    }

    #[test]
    fn rejects_time_travel() {
        let data = "id,arrival,task_type,deadline\n0,5.0,0,5.0\n1,1.0,0,5.0\n";
        let err = read_trace_csv(data.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("non-decreasing"), "{err}");
    }

    #[test]
    fn rejects_nan() {
        let data = "id,arrival,task_type,deadline\n0,NaN,0,5.0\n";
        let err = read_trace_csv(data.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("finite"), "{err}");
    }

    #[test]
    fn skips_blank_lines() {
        let data = "id,arrival,task_type,deadline\n0,0.0,1,5.0\n\n1,2.5,0,4.0\n";
        let trace = read_trace_csv(data.as_bytes()).expect("blank lines are fine");
        assert_eq!(trace.len(), 2);
        assert_eq!(trace.request(RequestId::new(1)).arrival, Time::new(2.5));
    }
}
