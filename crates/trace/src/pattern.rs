//! Patterned workload generation: periodic arrival-rate profiles
//! (diurnal/weekly) and the Markov-modulated burst process, under one
//! [`WorkloadPattern`] switch.
//!
//! The paper's generator draws interarrivals from a single stationary
//! Gaussian; production request streams are anything but stationary — they
//! breathe with the clock (daily peaks, quiet weekends) and with load
//! bursts. These generators modulate the *mean* of the interarrival
//! Gaussian with a deterministic rate profile, which is exactly the
//! structure the phase-binned `PatternHorizonPredictor` (rtrm-predict) is
//! built to learn. Task types and deadlines follow the paper's rules
//! unchanged (uniform type, deadline = RWCET × tightness coefficient), so
//! patterned traces drop into every existing manager and sweep.
//!
//! Batches derive child seeds with the same splitmix constant as
//! [`generate_traces`](crate::generate_traces), so patterned sweeps are
//! reproducible independent of batch size or iteration order.

use rand::Rng;
use serde::{Deserialize, Serialize};

use rtrm_platform::{Request, RequestId, TaskCatalog, TaskTypeId, Time, Trace};

use crate::bursty::{generate_bursty_trace, BurstyConfig};
use crate::dist::{uniform, Gaussian};
use crate::workload::Tightness;

/// A sinusoidal "time of day" rate profile: the interarrival mean swings
/// around its base over one period.
///
/// At absolute time `t` the gap Gaussian's mean is
/// `base_gap.0 × (1 + swing × sin(2π t / period))` — gaps shrink in the
/// trough (busy hours) and stretch at the crest (quiet hours); the std
/// scales by the same factor so the coefficient of variation is constant.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use rtrm_platform::Platform;
/// use rtrm_trace::{generate_catalog, CatalogConfig, DiurnalConfig, WorkloadPattern};
///
/// let platform = Platform::paper_default();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let catalog = generate_catalog(&platform, &CatalogConfig::paper(), &mut rng);
/// let pattern = WorkloadPattern::Diurnal(DiurnalConfig::default());
/// let trace = pattern.generate(&catalog, &mut rng);
/// assert_eq!(trace.len(), 500);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiurnalConfig {
    /// Number of requests per trace.
    pub length: usize,
    /// Length of one "day" in simulation time units.
    pub period: f64,
    /// `(mean, std)` of the interarrival Gaussian at the average rate.
    pub base_gap: (f64, f64),
    /// Relative modulation depth in `[0, 1)`: 0 is the paper's stationary
    /// generator, 0.9 swings the mean gap between 0.1× and 1.9× base.
    pub swing: f64,
    /// Lower clamp on interarrival gaps.
    pub interarrival_floor: f64,
    /// Deadline tightness group (same rule as the paper's generator).
    pub tightness: Tightness,
}

impl Default for DiurnalConfig {
    /// Calibrated-operating-point gaps (`N(2.8, 0.93²)`), ~18-request days,
    /// a 0.6 swing.
    fn default() -> Self {
        DiurnalConfig {
            length: 500,
            period: 50.0,
            base_gap: (2.8, 2.8 / 3.0),
            swing: 0.6,
            interarrival_floor: 0.01,
            tightness: Tightness::VeryTight,
        }
    }
}

/// A week of diurnal days with quieter weekend days: the diurnal profile
/// of [`DiurnalConfig`] nested under a per-day multiplier.
///
/// Days cycle `0..days_per_week`; the last `weekend_days` of each week
/// multiply the gap mean by `weekend_gap_factor` (> 1 ⇒ sparser arrivals).
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use rtrm_platform::Platform;
/// use rtrm_trace::{generate_catalog, CatalogConfig, WeeklyConfig, WorkloadPattern};
///
/// let platform = Platform::paper_default();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let catalog = generate_catalog(&platform, &CatalogConfig::paper(), &mut rng);
/// let pattern = WorkloadPattern::Weekly(WeeklyConfig::default());
/// let trace = pattern.generate(&catalog, &mut rng);
/// assert_eq!(trace.len(), 500);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WeeklyConfig {
    /// Number of requests per trace.
    pub length: usize,
    /// Length of one day in simulation time units.
    pub day_period: f64,
    /// Days per week (the profile repeats at `day_period × days_per_week`).
    pub days_per_week: usize,
    /// How many trailing days of each week are "weekend".
    pub weekend_days: usize,
    /// Gap-mean multiplier on weekend days (> 1 ⇒ quieter weekends).
    pub weekend_gap_factor: f64,
    /// `(mean, std)` of the interarrival Gaussian at the weekday average.
    pub base_gap: (f64, f64),
    /// Within-day modulation depth in `[0, 1)` (see [`DiurnalConfig`]).
    pub swing: f64,
    /// Lower clamp on interarrival gaps.
    pub interarrival_floor: f64,
    /// Deadline tightness group.
    pub tightness: Tightness,
}

impl Default for WeeklyConfig {
    /// 7-day weeks of ~18-request days with a 2-day weekend at 2.5× gaps.
    fn default() -> Self {
        WeeklyConfig {
            length: 500,
            day_period: 50.0,
            days_per_week: 7,
            weekend_days: 2,
            weekend_gap_factor: 2.5,
            base_gap: (2.8, 2.8 / 3.0),
            swing: 0.6,
            interarrival_floor: 0.01,
            tightness: Tightness::VeryTight,
        }
    }
}

/// A named arrival-rate pattern; `generate` renders it to a [`Trace`].
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use rtrm_platform::Platform;
/// use rtrm_trace::{generate_catalog, BurstyConfig, CatalogConfig, WorkloadPattern};
///
/// let platform = Platform::paper_default();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let catalog = generate_catalog(&platform, &CatalogConfig::paper(), &mut rng);
/// let trace = WorkloadPattern::Bursty(BurstyConfig::default()).generate(&catalog, &mut rng);
/// assert_eq!(trace.len(), 500);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WorkloadPattern {
    /// Sinusoidal daily rate profile.
    Diurnal(DiurnalConfig),
    /// Diurnal days nested under a weekday/weekend cycle.
    Weekly(WeeklyConfig),
    /// Two-state Markov-modulated bursts (delegates to
    /// [`generate_bursty_trace`]).
    Bursty(BurstyConfig),
}

impl WorkloadPattern {
    /// Generates one trace of this pattern against `catalog`.
    ///
    /// # Panics
    ///
    /// Panics if the pattern's `length` is zero, the catalog is empty, or a
    /// pattern parameter is out of range (`swing` outside `[0, 1)`,
    /// non-positive periods, `weekend_days > days_per_week`).
    pub fn generate<R: Rng + ?Sized>(&self, catalog: &TaskCatalog, rng: &mut R) -> Trace {
        match self {
            WorkloadPattern::Diurnal(cfg) => {
                assert!(cfg.period > 0.0, "period must be positive");
                assert!((0.0..1.0).contains(&cfg.swing), "swing must be in [0, 1)");
                generate_modulated(
                    catalog,
                    cfg.length,
                    cfg.base_gap,
                    cfg.interarrival_floor,
                    cfg.tightness,
                    rng,
                    |t| diurnal_factor(t, cfg.period, cfg.swing),
                )
            }
            WorkloadPattern::Weekly(cfg) => {
                assert!(cfg.day_period > 0.0, "day_period must be positive");
                assert!((0.0..1.0).contains(&cfg.swing), "swing must be in [0, 1)");
                assert!(cfg.days_per_week > 0, "need at least one day per week");
                assert!(
                    cfg.weekend_days <= cfg.days_per_week,
                    "weekend cannot exceed the week"
                );
                generate_modulated(
                    catalog,
                    cfg.length,
                    cfg.base_gap,
                    cfg.interarrival_floor,
                    cfg.tightness,
                    rng,
                    |t| {
                        let day = (t / cfg.day_period) as usize % cfg.days_per_week;
                        let weekend = day >= cfg.days_per_week - cfg.weekend_days;
                        let day_factor = if weekend { cfg.weekend_gap_factor } else { 1.0 };
                        day_factor * diurnal_factor(t, cfg.day_period, cfg.swing)
                    },
                )
            }
            WorkloadPattern::Bursty(cfg) => generate_bursty_trace(catalog, cfg, rng),
        }
    }

    /// Requests per trace this pattern generates.
    #[must_use]
    pub fn length(&self) -> usize {
        match self {
            WorkloadPattern::Diurnal(cfg) => cfg.length,
            WorkloadPattern::Weekly(cfg) => cfg.length,
            WorkloadPattern::Bursty(cfg) => cfg.length,
        }
    }
}

/// Gap-mean multiplier of the sinusoidal day profile at absolute time `t`.
fn diurnal_factor(t: f64, period: f64, swing: f64) -> f64 {
    1.0 + swing * (std::f64::consts::TAU * t / period).sin()
}

/// Shared body of the modulated generators: a Gaussian gap whose mean (and
/// std, preserving the coefficient of variation) scales by `factor(t)` at
/// the previous arrival's instant; types and deadlines follow the paper's
/// rules exactly (uniform type, deadline = RWCET × U[tightness range)).
fn generate_modulated<R: Rng + ?Sized>(
    catalog: &TaskCatalog,
    length: usize,
    base_gap: (f64, f64),
    floor: f64,
    tightness: Tightness,
    rng: &mut R,
    mut factor: impl FnMut(f64) -> f64,
) -> Trace {
    assert!(length > 0, "trace must contain at least one request");
    assert!(!catalog.is_empty(), "catalog must not be empty");

    let (c_lo, c_hi) = tightness.range();
    let mut requests = Vec::with_capacity(length);
    let mut arrival = 0.0f64;
    for index in 0..length {
        if index > 0 {
            let f = factor(arrival);
            let dist = Gaussian::new(base_gap.0 * f, base_gap.1 * f);
            arrival += dist.sample_at_least(rng, floor);
        }
        let type_id = TaskTypeId::new(rng.gen_range(0..catalog.len()));
        let ty = catalog.task_type(type_id);
        let executable: Vec<_> = ty.executable_resources().collect();
        let resource = executable[rng.gen_range(0..executable.len())];
        let rwcet = ty.wcet(resource).expect("resource is executable");
        requests.push(Request {
            id: RequestId::new(index),
            arrival: Time::new(arrival),
            task_type: type_id,
            deadline: rwcet * uniform(rng, c_lo, c_hi),
        });
    }
    Trace::new(requests)
}

/// Generates a reproducible batch of patterned traces: trace `i` uses a
/// child seed derived from `seed` and `i` with the same scheme as
/// [`generate_traces`](crate::generate_traces), so batches regenerate
/// identically regardless of batch size or iteration order.
pub fn generate_pattern_traces(
    catalog: &TaskCatalog,
    pattern: &WorkloadPattern,
    count: usize,
    seed: u64,
) -> Vec<Trace> {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    (0..count)
        .map(|i| {
            let mut rng =
                StdRng::seed_from_u64(seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i as u64 + 1)));
            pattern.generate(catalog, &mut rng)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate_catalog, CatalogConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rtrm_platform::Platform;

    fn catalog() -> TaskCatalog {
        let platform = Platform::paper_default();
        generate_catalog(
            &platform,
            &CatalogConfig::paper(),
            &mut StdRng::seed_from_u64(3),
        )
    }

    /// Mean gap of the requests whose *previous* arrival satisfies `pick`.
    fn mean_gap_where(trace: &Trace, pick: impl Fn(f64) -> bool) -> f64 {
        let reqs: Vec<_> = trace.iter().collect();
        let gaps: Vec<f64> = reqs
            .windows(2)
            .filter(|w| pick(w[0].arrival.value()))
            .map(|w| (w[1].arrival - w[0].arrival).value())
            .collect();
        gaps.iter().sum::<f64>() / gaps.len() as f64
    }

    #[test]
    fn diurnal_rate_tracks_the_day_profile() {
        let cfg = DiurnalConfig {
            length: 4_000,
            ..DiurnalConfig::default()
        };
        let period = cfg.period;
        let trace =
            WorkloadPattern::Diurnal(cfg).generate(&catalog(), &mut StdRng::seed_from_u64(8));
        // sin > 0 over the first half-period ⇒ stretched gaps (quiet);
        // sin < 0 over the second ⇒ compressed gaps (busy).
        let quiet = mean_gap_where(&trace, |t| t.rem_euclid(period) < period / 2.0);
        let busy = mean_gap_where(&trace, |t| t.rem_euclid(period) >= period / 2.0);
        assert!(
            quiet > busy * 1.5,
            "quiet-phase gaps should dominate: quiet={quiet:.2} busy={busy:.2}"
        );
    }

    #[test]
    fn weekly_weekends_are_sparser() {
        let cfg = WeeklyConfig {
            length: 6_000,
            swing: 0.0, // isolate the weekday/weekend axis
            ..WeeklyConfig::default()
        };
        let (day, week, weekend_days, days) = (
            cfg.day_period,
            cfg.day_period * cfg.days_per_week as f64,
            cfg.weekend_days,
            cfg.days_per_week,
        );
        let trace =
            WorkloadPattern::Weekly(cfg).generate(&catalog(), &mut StdRng::seed_from_u64(9));
        let is_weekend = |t: f64| ((t.rem_euclid(week) / day) as usize) >= days - weekend_days;
        let weekend = mean_gap_where(&trace, is_weekend);
        let weekday = mean_gap_where(&trace, |t| !is_weekend(t));
        assert!(
            weekend > weekday * 1.8,
            "weekend gaps should be ~2.5×: weekend={weekend:.2} weekday={weekday:.2}"
        );
    }

    #[test]
    fn bursty_variant_delegates_exactly() {
        let catalog = catalog();
        let cfg = BurstyConfig::default();
        let via_pattern =
            WorkloadPattern::Bursty(cfg.clone()).generate(&catalog, &mut StdRng::seed_from_u64(5));
        let direct = generate_bursty_trace(&catalog, &cfg, &mut StdRng::seed_from_u64(5));
        assert_eq!(via_pattern, direct);
    }

    #[test]
    fn pattern_batches_are_reproducible_and_distinct() {
        let catalog = catalog();
        for pattern in [
            WorkloadPattern::Diurnal(DiurnalConfig::default()),
            WorkloadPattern::Weekly(WeeklyConfig::default()),
            WorkloadPattern::Bursty(BurstyConfig::default()),
        ] {
            let a = generate_pattern_traces(&catalog, &pattern, 3, 42);
            let b = generate_pattern_traces(&catalog, &pattern, 3, 42);
            assert_eq!(a, b, "{pattern:?} must regenerate identically");
            assert_ne!(a[0], a[1], "{pattern:?} child seeds must differ");
        }
    }

    /// The patterned child-seed scheme is bit-compatible with
    /// `generate_traces`' — a sweep can mix plain and patterned workloads
    /// under one master seed without seed collisions across indexes.
    #[test]
    fn child_seed_scheme_matches_generate_traces() {
        let catalog = catalog();
        let pattern = WorkloadPattern::Diurnal(DiurnalConfig {
            swing: 0.0,
            ..DiurnalConfig::default()
        });
        // swing 0 reduces the diurnal generator to the stationary one, so
        // identical child seeds must produce the identical trace.
        let plain = crate::generate_traces(&catalog, &crate::TraceConfig::calibrated_vt(), 2, 123);
        let patterned = generate_pattern_traces(&catalog, &pattern, 2, 123);
        assert_eq!(plain, patterned);
    }

    #[test]
    #[should_panic(expected = "swing must be in [0, 1)")]
    fn excessive_swing_rejected() {
        let cfg = DiurnalConfig {
            swing: 1.0,
            ..DiurnalConfig::default()
        };
        let _ = WorkloadPattern::Diurnal(cfg).generate(&catalog(), &mut StdRng::seed_from_u64(1));
    }

    #[test]
    #[should_panic(expected = "weekend cannot exceed the week")]
    fn oversized_weekend_rejected() {
        let cfg = WeeklyConfig {
            weekend_days: 8,
            ..WeeklyConfig::default()
        };
        let _ = WorkloadPattern::Weekly(cfg).generate(&catalog(), &mut StdRng::seed_from_u64(1));
    }
}
