//! Task-catalog generation (paper Sec 5.1, first half).
//!
//! For each of the (default 100) task types: per-CPU WCETs are drawn from
//! `Gaussian(40, 9²)` and per-CPU energies from `Gaussian(15, 3²)`; the GPU
//! profile is the CPU average divided by a random factor in `[2, 10)`
//! (independently for time and for energy). Migration overheads are a random
//! fraction in `[0.1, 0.2)` of the type's mean WCET / mean energy across
//! resources.

use rand::Rng;
use serde::{Deserialize, Serialize};

use rtrm_platform::{Energy, Platform, ResourceKind, TaskCatalog, TaskType, Time};

use crate::dist::{uniform, Gaussian};

/// Parameters of the catalog generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CatalogConfig {
    /// Number of task types to create (the paper's `L = 100`).
    pub num_types: usize,
    /// Mean of the per-CPU WCET Gaussian (paper: 40).
    pub cpu_wcet_mean: f64,
    /// Standard deviation of the per-CPU WCET Gaussian (paper: 9).
    pub cpu_wcet_std: f64,
    /// Mean of the per-CPU energy Gaussian (paper: 15).
    pub cpu_energy_mean: f64,
    /// Standard deviation of the per-CPU energy Gaussian (paper: 3).
    pub cpu_energy_std: f64,
    /// Uniform range of the GPU execution-time divisor (paper: 2–10).
    pub gpu_time_divisor: (f64, f64),
    /// Uniform range of the GPU energy divisor (paper: 2–10).
    pub gpu_energy_divisor: (f64, f64),
    /// Uniform range of the migration overhead as a fraction of the type's
    /// mean WCET / mean energy (paper: 0.1–0.2).
    pub migration_fraction: (f64, f64),
    /// Lower clamp for sampled WCETs/energies, as a fraction of the mean;
    /// keeps Gaussian tails physical (not part of the paper, which leaves
    /// tail handling unspecified).
    pub floor_fraction: f64,
}

impl Default for CatalogConfig {
    /// The paper's Sec 5.1 parameters.
    fn default() -> Self {
        CatalogConfig {
            num_types: 100,
            cpu_wcet_mean: 40.0,
            cpu_wcet_std: 9.0,
            cpu_energy_mean: 15.0,
            cpu_energy_std: 3.0,
            gpu_time_divisor: (2.0, 10.0),
            gpu_energy_divisor: (2.0, 10.0),
            migration_fraction: (0.1, 0.2),
            floor_fraction: 0.1,
        }
    }
}

impl CatalogConfig {
    /// The paper's configuration (alias of [`Default`]).
    #[must_use]
    pub fn paper() -> Self {
        CatalogConfig::default()
    }
}

/// Generates a task catalog for `platform` according to `config`.
///
/// Every type is executable on all resources (the paper's types are), so the
/// "dummy value" path for non-executable pairs is exercised only by
/// hand-built catalogs.
///
/// # Panics
///
/// Panics if `config.num_types` is zero or the platform has no CPU.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use rtrm_platform::Platform;
/// use rtrm_trace::{generate_catalog, CatalogConfig};
///
/// let platform = Platform::paper_default();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let catalog = generate_catalog(&platform, &CatalogConfig::paper(), &mut rng);
/// assert_eq!(catalog.len(), 100);
/// ```
pub fn generate_catalog<R: Rng + ?Sized>(
    platform: &Platform,
    config: &CatalogConfig,
    rng: &mut R,
) -> TaskCatalog {
    assert!(
        config.num_types > 0,
        "catalog must contain at least one type"
    );
    let cpus: Vec<_> = platform.ids_of_kind(ResourceKind::Cpu).collect();
    let gpus: Vec<_> = platform.ids_of_kind(ResourceKind::Gpu).collect();
    assert!(
        !cpus.is_empty(),
        "catalog generation needs at least one CPU"
    );

    let wcet_dist = Gaussian::new(config.cpu_wcet_mean, config.cpu_wcet_std);
    let energy_dist = Gaussian::new(config.cpu_energy_mean, config.cpu_energy_std);
    let wcet_floor = config.floor_fraction * config.cpu_wcet_mean;
    let energy_floor = config.floor_fraction * config.cpu_energy_mean;

    let mut types = Vec::with_capacity(config.num_types);
    for index in 0..config.num_types {
        let mut builder = TaskType::builder(index, platform);

        let mut cpu_wcets = Vec::with_capacity(cpus.len());
        let mut cpu_energies = Vec::with_capacity(cpus.len());
        for &cpu in &cpus {
            let wcet = wcet_dist.sample_at_least(rng, wcet_floor);
            let energy = energy_dist.sample_at_least(rng, energy_floor);
            builder.profile(cpu, Time::new(wcet), Energy::new(energy));
            cpu_wcets.push(wcet);
            cpu_energies.push(energy);
        }
        let avg_wcet = cpu_wcets.iter().sum::<f64>() / cpu_wcets.len() as f64;
        let avg_energy = cpu_energies.iter().sum::<f64>() / cpu_energies.len() as f64;

        let mut wcet_sum = cpu_wcets.iter().sum::<f64>();
        let mut energy_sum = cpu_energies.iter().sum::<f64>();
        for &gpu in &gpus {
            let t_div = uniform(rng, config.gpu_time_divisor.0, config.gpu_time_divisor.1);
            let e_div = uniform(
                rng,
                config.gpu_energy_divisor.0,
                config.gpu_energy_divisor.1,
            );
            let (w, e) = (avg_wcet / t_div, avg_energy / e_div);
            builder.profile(gpu, Time::new(w), Energy::new(e));
            wcet_sum += w;
            energy_sum += e;
        }

        // Migration overhead: one fraction per type for time, one for energy,
        // of the mean over *all* resources (paper Sec 5.1, last paragraph).
        let n = (cpus.len() + gpus.len()) as f64;
        let t_frac = uniform(
            rng,
            config.migration_fraction.0,
            config.migration_fraction.1,
        );
        let e_frac = uniform(
            rng,
            config.migration_fraction.0,
            config.migration_fraction.1,
        );
        builder.uniform_migration(
            Time::new(t_frac * wcet_sum / n),
            Energy::new(e_frac * energy_sum / n),
        );

        types.push(builder.build());
    }
    TaskCatalog::new(types)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rtrm_platform::ResourceId;

    #[test]
    fn paper_catalog_statistics() {
        let platform = Platform::paper_default();
        let mut rng = StdRng::seed_from_u64(99);
        let cfg = CatalogConfig {
            num_types: 400,
            ..CatalogConfig::paper()
        };
        let catalog = generate_catalog(&platform, &cfg, &mut rng);

        let cpu0 = ResourceId::new(0);
        let gpu = ResourceId::new(5);
        let wcets: Vec<f64> = catalog
            .iter()
            .map(|t| t.wcet(cpu0).unwrap().value())
            .collect();
        let mean = wcets.iter().sum::<f64>() / wcets.len() as f64;
        assert!((mean - 40.0).abs() < 2.0, "cpu wcet mean={mean}");

        // GPU is faster and cheaper than the CPU average by 2–10×.
        for t in catalog.iter() {
            let avg_cpu: f64 = (0..5)
                .map(|i| t.wcet(ResourceId::new(i)).unwrap().value())
                .sum::<f64>()
                / 5.0;
            let ratio = avg_cpu / t.wcet(gpu).unwrap().value();
            assert!((2.0..10.0001).contains(&ratio), "ratio={ratio}");
        }
    }

    #[test]
    fn migration_fraction_in_range() {
        let platform = Platform::paper_default();
        let mut rng = StdRng::seed_from_u64(5);
        let catalog = generate_catalog(&platform, &CatalogConfig::paper(), &mut rng);
        for t in catalog.iter() {
            let m = t.migration(ResourceId::new(0), ResourceId::new(1));
            let frac_t = m.time / t.mean_wcet();
            let frac_e = m.energy / t.mean_energy();
            assert!((0.1..0.2).contains(&frac_t), "time fraction={frac_t}");
            assert!((0.1..0.2).contains(&frac_e), "energy fraction={frac_e}");
            // Diagonal stays zero.
            let d = t.migration(ResourceId::new(2), ResourceId::new(2));
            assert_eq!(d.time, Time::ZERO);
        }
    }

    #[test]
    fn deterministic_for_equal_seeds() {
        let platform = Platform::paper_default();
        let a = generate_catalog(
            &platform,
            &CatalogConfig::paper(),
            &mut StdRng::seed_from_u64(3),
        );
        let b = generate_catalog(
            &platform,
            &CatalogConfig::paper(),
            &mut StdRng::seed_from_u64(3),
        );
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least one type")]
    fn zero_types_rejected() {
        let platform = Platform::paper_default();
        let cfg = CatalogConfig {
            num_types: 0,
            ..CatalogConfig::paper()
        };
        let _ = generate_catalog(&platform, &cfg, &mut StdRng::seed_from_u64(0));
    }
}
