//! Minimal distribution sampling (Gaussian via Box–Muller, uniform ranges).
//!
//! The offline dependency set contains `rand` but not `rand_distr`, so the
//! two distributions the paper's generator needs are implemented here.

use rand::Rng;

/// A Gaussian distribution `N(mean, std²)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gaussian {
    mean: f64,
    std: f64,
}

impl Gaussian {
    /// Creates a Gaussian with the given mean and standard deviation.
    ///
    /// # Panics
    ///
    /// Panics if `std` is negative or either parameter is non-finite.
    #[must_use]
    pub fn new(mean: f64, std: f64) -> Self {
        assert!(
            mean.is_finite() && std.is_finite(),
            "parameters must be finite"
        );
        assert!(std >= 0.0, "standard deviation must be non-negative");
        Gaussian { mean, std }
    }

    /// Draws one sample (Box–Muller transform).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Avoid u1 = 0 which would take ln(0).
        let u1: f64 = loop {
            let u = rng.gen::<f64>();
            if u > f64::MIN_POSITIVE {
                break u;
            }
        };
        let u2: f64 = rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        self.mean + self.std * z
    }

    /// Draws a sample, redrawing until it is at least `floor` (truncated
    /// Gaussian). Used to keep WCETs, energies and interarrival gaps
    /// physically meaningful despite Gaussian tails.
    ///
    /// # Panics
    ///
    /// Panics if `floor` is more than 10 standard deviations above the mean
    /// (the truncation would almost never terminate, indicating a
    /// misconfiguration).
    pub fn sample_at_least<R: Rng + ?Sized>(&self, rng: &mut R, floor: f64) -> f64 {
        assert!(
            floor <= self.mean + 10.0 * self.std.max(f64::MIN_POSITIVE),
            "floor {floor} unreachable for N({}, {}²)",
            self.mean,
            self.std
        );
        loop {
            let x = self.sample(rng);
            if x >= floor {
                return x;
            }
        }
    }

    /// The distribution mean.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The distribution standard deviation.
    #[must_use]
    pub fn std(&self) -> f64 {
        self.std
    }
}

/// Samples uniformly from `[lo, hi)` (or returns `lo` when the range is
/// empty/degenerate).
pub fn uniform<R: Rng + ?Sized>(rng: &mut R, lo: f64, hi: f64) -> f64 {
    if hi > lo {
        rng.gen_range(lo..hi)
    } else {
        lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gaussian_moments_converge() {
        let mut rng = StdRng::seed_from_u64(42);
        let g = Gaussian::new(40.0, 9.0);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| g.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 40.0).abs() < 0.3, "mean={mean}");
        assert!((var.sqrt() - 9.0).abs() < 0.3, "std={}", var.sqrt());
    }

    #[test]
    fn truncation_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        let g = Gaussian::new(1.2, 0.4);
        for _ in 0..2_000 {
            assert!(g.sample_at_least(&mut rng, 0.05) >= 0.05);
        }
    }

    #[test]
    fn uniform_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1_000 {
            let x = uniform(&mut rng, 1.5, 2.0);
            assert!((1.5..2.0).contains(&x));
        }
        assert_eq!(uniform(&mut rng, 3.0, 3.0), 3.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_std_rejected() {
        let _ = Gaussian::new(0.0, -1.0);
    }
}
