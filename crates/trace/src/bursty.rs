//! Markov-modulated (bursty) trace generation.
//!
//! The paper's generator draws interarrivals from a single Gaussian, but
//! the real streams its prior work predicts (Google cluster traces)
//! alternate between bursts and lulls. This generator adds a two-state
//! Markov-modulated arrival process — the workload on which *phase-aware*
//! predictors (e.g. [`TwoPhasePredictor`]) separate from plain smoothing.
//!
//! [`TwoPhasePredictor`]: https://docs.rs/rtrm-predict

use rand::Rng;
use serde::{Deserialize, Serialize};

use rtrm_platform::{Request, RequestId, TaskCatalog, TaskTypeId, Time, Trace};

use crate::dist::{uniform, Gaussian};
use crate::workload::Tightness;

/// Parameters of the two-phase (burst / lull) arrival process.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BurstyConfig {
    /// Number of requests per trace.
    pub length: usize,
    /// Interarrival Gaussian inside a burst.
    pub burst_gap: (f64, f64),
    /// Interarrival Gaussian inside a lull.
    pub lull_gap: (f64, f64),
    /// Mean number of requests per phase; at every arrival the phase flips
    /// with probability `1 / mean_phase_len` (geometric phase lengths).
    pub mean_phase_len: f64,
    /// Lower clamp on interarrival gaps.
    pub interarrival_floor: f64,
    /// Deadline tightness group (same rule as the paper's generator).
    pub tightness: Tightness,
}

impl Default for BurstyConfig {
    /// Bursts 4× denser than the calibrated operating point, lulls 2×
    /// sparser, ~25-request phases.
    fn default() -> Self {
        BurstyConfig {
            length: 500,
            burst_gap: (0.7, 0.25),
            lull_gap: (5.6, 1.8),
            mean_phase_len: 25.0,
            interarrival_floor: 0.01,
            tightness: Tightness::VeryTight,
        }
    }
}

/// Which phase the process is in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Burst,
    Lull,
}

/// Generates one bursty trace against `catalog`.
///
/// # Panics
///
/// Panics if `config.length` is zero, the catalog is empty, or
/// `mean_phase_len < 1`.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use rtrm_platform::Platform;
/// use rtrm_trace::{generate_bursty_trace, generate_catalog, BurstyConfig, CatalogConfig};
///
/// let platform = Platform::paper_default();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let catalog = generate_catalog(&platform, &CatalogConfig::paper(), &mut rng);
/// let trace = generate_bursty_trace(&catalog, &BurstyConfig::default(), &mut rng);
/// assert_eq!(trace.len(), 500);
/// ```
pub fn generate_bursty_trace<R: Rng + ?Sized>(
    catalog: &TaskCatalog,
    config: &BurstyConfig,
    rng: &mut R,
) -> Trace {
    assert!(config.length > 0, "trace must contain at least one request");
    assert!(!catalog.is_empty(), "catalog must not be empty");
    assert!(
        config.mean_phase_len >= 1.0,
        "phases must span >= 1 request"
    );

    let burst = Gaussian::new(config.burst_gap.0, config.burst_gap.1);
    let lull = Gaussian::new(config.lull_gap.0, config.lull_gap.1);
    let flip_p = 1.0 / config.mean_phase_len;
    let (c_lo, c_hi) = match config.tightness {
        Tightness::VeryTight => (1.5, 2.0),
        Tightness::LessTight => (2.0, 6.0),
        Tightness::Custom { lo, hi } => (lo, hi),
    };

    let mut phase = Phase::Burst;
    let mut arrival = 0.0f64;
    let mut requests = Vec::with_capacity(config.length);
    for index in 0..config.length {
        if index > 0 {
            if rng.gen::<f64>() < flip_p {
                phase = match phase {
                    Phase::Burst => Phase::Lull,
                    Phase::Lull => Phase::Burst,
                };
            }
            let dist = match phase {
                Phase::Burst => &burst,
                Phase::Lull => &lull,
            };
            arrival += dist.sample_at_least(rng, config.interarrival_floor);
        }
        let type_id = TaskTypeId::new(rng.gen_range(0..catalog.len()));
        let ty = catalog.task_type(type_id);
        let executable: Vec<_> = ty.executable_resources().collect();
        let resource = executable[rng.gen_range(0..executable.len())];
        let rwcet = ty.wcet(resource).expect("resource is executable");
        requests.push(Request {
            id: RequestId::new(index),
            arrival: Time::new(arrival),
            task_type: type_id,
            deadline: rwcet * uniform(rng, c_lo, c_hi),
        });
    }
    Trace::new(requests)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate_catalog, CatalogConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rtrm_platform::Platform;

    fn catalog() -> TaskCatalog {
        let platform = Platform::paper_default();
        generate_catalog(
            &platform,
            &CatalogConfig::paper(),
            &mut StdRng::seed_from_u64(3),
        )
    }

    #[test]
    fn bursty_gaps_are_bimodal() {
        let catalog = catalog();
        let cfg = BurstyConfig {
            length: 3_000,
            ..BurstyConfig::default()
        };
        let trace = generate_bursty_trace(&catalog, &cfg, &mut StdRng::seed_from_u64(4));
        let gaps: Vec<f64> = trace
            .iter()
            .collect::<Vec<_>>()
            .windows(2)
            .map(|w| (w[1].arrival - w[0].arrival).value())
            .collect();
        let short = gaps.iter().filter(|g| **g < 2.0).count();
        let long = gaps.iter().filter(|g| **g > 3.5).count();
        // Both phases are substantially represented.
        assert!(short > gaps.len() / 5, "short gaps: {short}/{}", gaps.len());
        assert!(long > gaps.len() / 5, "long gaps: {long}/{}", gaps.len());
    }

    #[test]
    fn phase_persistence_creates_runs() {
        // Consecutive short gaps should cluster far beyond i.i.d. mixing:
        // count transitions between short/long regimes.
        let catalog = catalog();
        let cfg = BurstyConfig {
            length: 2_000,
            mean_phase_len: 40.0,
            ..BurstyConfig::default()
        };
        let trace = generate_bursty_trace(&catalog, &cfg, &mut StdRng::seed_from_u64(5));
        let regimes: Vec<bool> = trace
            .iter()
            .collect::<Vec<_>>()
            .windows(2)
            .map(|w| (w[1].arrival - w[0].arrival).value() < 2.8)
            .collect();
        let switches = regimes.windows(2).filter(|w| w[0] != w[1]).count();
        // i.i.d. 50/50 would switch ~1000 times; 40-request phases ~50.
        assert!(switches < 400, "switches={switches}");
    }

    #[test]
    fn deterministic_per_seed() {
        let catalog = catalog();
        let cfg = BurstyConfig::default();
        let a = generate_bursty_trace(&catalog, &cfg, &mut StdRng::seed_from_u64(9));
        let b = generate_bursty_trace(&catalog, &cfg, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "phases must span")]
    fn tiny_phase_rejected() {
        let catalog = catalog();
        let cfg = BurstyConfig {
            mean_phase_len: 0.5,
            ..BurstyConfig::default()
        };
        let _ = generate_bursty_trace(&catalog, &cfg, &mut StdRng::seed_from_u64(1));
    }
}
