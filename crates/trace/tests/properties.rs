//! Property-based tests for the workload generator and trace I/O.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use rtrm_platform::Platform;
use rtrm_trace::{
    generate_catalog, generate_trace, read_trace_csv, write_trace_csv, CatalogConfig, Tightness,
    TraceConfig,
};

fn any_trace_config() -> impl Strategy<Value = TraceConfig> {
    (
        1usize..120,
        0.5f64..6.0,
        0.0f64..2.0,
        prop_oneof![
            Just(Tightness::VeryTight),
            Just(Tightness::LessTight),
            (1.1f64..3.0, 0.5f64..5.0)
                .prop_map(|(lo, extra)| Tightness::Custom { lo, hi: lo + extra }),
        ],
    )
        .prop_map(|(length, mean, std, tightness)| TraceConfig {
            length,
            interarrival_mean: mean,
            interarrival_std: std,
            interarrival_floor: 0.01,
            tightness,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Generated traces always satisfy the structural invariants `Trace`
    /// promises: dense ids, non-decreasing arrivals, positive deadlines.
    #[test]
    fn generated_traces_are_well_formed(cfg in any_trace_config(), seed in any::<u64>()) {
        let platform = Platform::paper_default();
        let mut rng = StdRng::seed_from_u64(seed);
        let catalog = generate_catalog(&platform, &CatalogConfig::paper(), &mut rng);
        let trace = generate_trace(&catalog, &cfg, &mut rng);
        prop_assert_eq!(trace.len(), cfg.length);
        let mut prev = None;
        for (i, r) in trace.iter().enumerate() {
            prop_assert_eq!(r.id.index(), i);
            prop_assert!(r.deadline.value() > 0.0);
            prop_assert!(r.task_type.index() < catalog.len());
            if let Some(p) = prev {
                prop_assert!(p <= r.arrival);
                prop_assert!((r.arrival - p).value() >= cfg.interarrival_floor - 1e-12);
            }
            prev = Some(r.arrival);
        }
    }

    /// Every deadline is explainable as RWCET × C for some executable
    /// resource and a coefficient inside the group's range.
    #[test]
    fn deadlines_stay_in_coefficient_range(seed in any::<u64>()) {
        let platform = Platform::paper_default();
        let mut rng = StdRng::seed_from_u64(seed);
        let catalog = generate_catalog(&platform, &CatalogConfig::paper(), &mut rng);
        let cfg = TraceConfig { length: 60, ..TraceConfig::paper_vt() };
        let trace = generate_trace(&catalog, &cfg, &mut rng);
        for r in trace.iter() {
            let ty = catalog.task_type(r.task_type);
            let ok = ty.executable_resources().any(|res| {
                let c = r.deadline / ty.wcet(res).expect("executable");
                (1.5..2.0 + 1e-9).contains(&c)
            });
            prop_assert!(ok, "deadline {:?} has no generating RWCET", r.deadline);
        }
    }

    /// CSV round-trip is lossless for arbitrary generated traces.
    #[test]
    fn csv_round_trip(cfg in any_trace_config(), seed in any::<u64>()) {
        let platform = Platform::paper_default();
        let mut rng = StdRng::seed_from_u64(seed);
        let catalog = generate_catalog(&platform, &CatalogConfig::paper(), &mut rng);
        let trace = generate_trace(&catalog, &cfg, &mut rng);
        let mut buffer = Vec::new();
        write_trace_csv(&trace, &mut buffer).expect("in-memory write");
        let back = read_trace_csv(buffer.as_slice()).expect("parse own output");
        prop_assert_eq!(back, trace);
    }

    /// Catalog profiles respect the configured GPU divisor range and floors.
    #[test]
    fn catalog_respects_ranges(seed in any::<u64>()) {
        let platform = Platform::paper_default();
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = CatalogConfig { num_types: 20, ..CatalogConfig::paper() };
        let catalog = generate_catalog(&platform, &cfg, &mut rng);
        let gpu = platform
            .ids_of_kind(rtrm_platform::ResourceKind::Gpu)
            .next()
            .expect("paper platform has a GPU");
        for ty in catalog.iter() {
            let cpu_wcets: Vec<f64> = platform
                .ids_of_kind(rtrm_platform::ResourceKind::Cpu)
                .map(|r| ty.wcet(r).expect("cpu profile").value())
                .collect();
            let avg = cpu_wcets.iter().sum::<f64>() / cpu_wcets.len() as f64;
            let ratio = avg / ty.wcet(gpu).expect("gpu profile").value();
            prop_assert!((2.0..10.0 + 1e-9).contains(&ratio), "ratio={ratio}");
            for w in &cpu_wcets {
                prop_assert!(*w >= cfg.floor_fraction * cfg.cpu_wcet_mean - 1e-9);
            }
        }
    }
}
