//! `rtrm-service` — a long-running streaming admission service over the
//! paper's resource managers.
//!
//! The batch pipeline (`rtrm-sim`) answers "what fraction of a finished
//! trace would have been admitted?"; this crate answers the operational
//! question "what does admission look like as a *service*": requests arrive
//! one at a time on an open-loop schedule, each must be answered now, and
//! the interesting numbers are decide-latency tails (p50/p99/p999),
//! throughput, and what happens under overload.
//!
//! # Dataflow
//!
//! ```text
//!             load generator (open loop)
//!                      │ events sorted by arrival
//!                      ▼
//!          shard by trace id (trace % shards)
//!          │                │               │
//!     ingress Ring     ingress Ring     ingress Ring    (bounded — full
//!          │                │               │            ring = backpressure,
//!          ▼                ▼               ▼            never an unbounded queue)
//!      RM worker        RM worker       RM worker
//!      warm SimScratch + one Session per trace
//!      backlog-scaled anytime budget (overload ladder)
//!          │                │               │
//!     completion Ring  completion Ring  completion Ring
//!          └────────────────┼───────────────┘
//!                           ▼
//!                       collector
//!          latency histograms · verdict counters · throughput
//! ```
//!
//! Each worker owns one warm [`SimScratch`] and a [`Session`](rtrm_sim::Session) per trace it
//! serves; decisions depend only on simulated time (request arrivals), so
//! with a fixed solver budget the verdicts are identical at any shard
//! count — `tests/service_differential.rs` pins this against the sequential
//! [`Simulator`].
//!
//! # Overload policy
//!
//! Under backlog the service does not queue unboundedly: workers read their
//! ingress depth and shrink the manager's anytime wall-clock budget
//! ([`ResourceManager::set_wall_clock`]) toward zero ([`scaled_budget`]),
//! which makes every MILP rung hand back its incumbent (or fall through to
//! the heuristic floor) immediately. The verdict is still feasibility-safe,
//! just possibly suboptimal — counted in [`ServiceReport::degraded`].

#![warn(missing_docs)]

mod histogram;
mod loadgen;
mod ring;

pub use histogram::LatencyHistogram;
pub use loadgen::{generate_load, merge_events, Arrivals, LoadConfig, LoadEvent};
pub use ring::Ring;

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use rtrm_core::{Decision, HorizonPolicy, ResourceManager};
use rtrm_platform::{Platform, Request, TaskCatalog, Time, Trace};
use rtrm_predict::Predictor;
use rtrm_sim::{SimConfig, SimReport, SimScratch, Simulator};

/// When the manager runs with an anytime wall-clock budget, how that budget
/// shrinks as a shard's ingress backlog grows (the overload ladder).
#[derive(Debug, Clone, PartialEq)]
pub struct OverloadPolicy {
    /// Backlog at or below which the full budget applies.
    pub backlog_lo: usize,
    /// Backlog at or above which the budget is zero — every solver rung
    /// expires immediately and the decision comes from the anytime
    /// incumbent or the heuristic floor.
    pub backlog_hi: usize,
}

impl Default for OverloadPolicy {
    /// Full budget up to 4 queued requests, heuristic floor from 64 up.
    fn default() -> Self {
        OverloadPolicy {
            backlog_lo: 4,
            backlog_hi: 64,
        }
    }
}

/// The wall-clock budget (seconds) a worker grants the manager when its
/// ingress backlog is `backlog` deep: `full` at or below `backlog_lo`, zero
/// at or above `backlog_hi`, linear in between. Pure so the ladder policy
/// itself is unit-testable.
#[must_use]
pub fn scaled_budget(full: f64, backlog: usize, policy: &OverloadPolicy) -> f64 {
    let lo = policy.backlog_lo;
    let hi = policy.backlog_hi.max(lo + 1);
    if backlog <= lo {
        full
    } else if backlog >= hi {
        0.0
    } else {
        full * (hi - backlog) as f64 / (hi - lo) as f64
    }
}

/// Service configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceConfig {
    /// Number of shard workers (clamped to `1..=traces`).
    pub shards: usize,
    /// Per-shard ingress ring capacity (rounded up to a power of two). The
    /// producer backpressures when a ring is full — the queue never grows.
    pub ingress_capacity: usize,
    /// Simulation semantics (phantom deadline, start gates, …) — the same
    /// knobs as the batch pipeline.
    pub sim: SimConfig,
    /// Full anytime wall-clock budget (seconds) granted to the manager when
    /// a shard is idle; `None` disables budget control entirely (the
    /// manager's own settings stand, and verdicts are deterministic).
    pub budget: Option<f64>,
    /// How the budget shrinks with backlog (only read when `budget` is
    /// `Some`).
    pub overload: OverloadPolicy,
    /// Wall seconds the producer waits per simulated time unit, pacing the
    /// open loop in real time; `0.0` releases the whole load as fast as the
    /// rings accept it (firehose — the overload regime).
    pub time_scale: f64,
    /// Keep every per-request [`Verdict`] in the report (costs memory
    /// proportional to the load; the differential test uses it).
    pub record_verdicts: bool,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            shards: 2,
            ingress_capacity: 64,
            sim: SimConfig::default(),
            budget: None,
            overload: OverloadPolicy::default(),
            time_scale: 0.0,
            record_verdicts: false,
        }
    }
}

/// One admission verdict as published on a shard's completion ring.
#[derive(Debug, Clone)]
pub struct Verdict {
    /// Originating trace (the shard key).
    pub trace: usize,
    /// Request index within the trace.
    pub request: usize,
    /// The manager's decision.
    pub decision: Decision,
    /// Wall nanoseconds the admission step took (the decide latency).
    pub decide_nanos: u64,
    /// Wall nanoseconds from ingress enqueue to verdict (queueing included).
    pub end_to_end_nanos: u64,
}

/// Aggregated outcome of one service run.
#[derive(Debug, Clone)]
pub struct ServiceReport {
    /// Requests served.
    pub requests: u64,
    /// Requests admitted.
    pub admitted: u64,
    /// Requests rejected.
    pub rejected: u64,
    /// Verdicts that were degraded (anytime incumbent or heuristic floor
    /// after a solver timeout) — the overload ladder's footprint.
    pub degraded: u64,
    /// Total solver rung timeouts across all verdicts.
    pub solver_timeouts: u64,
    /// Decide-latency histogram (the admission step alone).
    pub decide: LatencyHistogram,
    /// End-to-end latency histogram (ingress queueing included).
    pub end_to_end: LatencyHistogram,
    /// Wall nanoseconds for the whole run (first enqueue to last verdict).
    pub wall_nanos: u64,
    /// Verdicts per wall-clock second.
    pub throughput_per_sec: f64,
    /// Deepest ingress backlog any worker observed.
    pub max_backlog: usize,
    /// Events the producer had to spin on because a ring was full.
    pub backpressure_waits: u64,
    /// Shard workers the run used (after clamping).
    pub shards: usize,
    /// Final per-trace simulation reports (sessions drained), sorted by
    /// trace id — directly comparable to [`Simulator::run`] outputs.
    pub trace_reports: Vec<SimReport>,
    /// Every verdict, when [`ServiceConfig::record_verdicts`] is set.
    pub verdicts: Option<Vec<Verdict>>,
}

/// What travels on a shard's ingress ring.
struct IngressEvent {
    trace: usize,
    request: Request,
    enqueued: Instant,
}

/// Per-trace prediction setup for [`run_service_with`]: the predictor a
/// worker feeds observed arrivals into, the confidence-gated horizon policy
/// its session runs under, and the per-activation prediction overhead to
/// charge.
pub struct PredictorSetup {
    /// The online predictor for this trace's stream (one per trace, like
    /// managers — prediction state never leaks across traces).
    pub predictor: Box<dyn Predictor + Send>,
    /// Horizon policy installed on the trace's session via
    /// [`Session::set_horizon`](rtrm_sim::Session::set_horizon); `None`
    /// keeps [`ServiceConfig::sim`]'s [`SimConfig::horizon`].
    pub horizon: Option<HorizonPolicy>,
    /// Prediction overhead charged per activation (what
    /// [`Simulator::run`] derives from [`SimConfig::overhead`] and the
    /// trace's mean interarrival — a session cannot compute it because it
    /// never sees the whole trace).
    pub overhead: Time,
}

impl std::fmt::Debug for PredictorSetup {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PredictorSetup")
            .field("horizon", &self.horizon)
            .field("overhead", &self.overhead)
            .finish_non_exhaustive()
    }
}

/// A worker's per-trace serving state: the open session plus the manager and
/// predictor dedicated to that trace.
struct TraceSlot {
    session: rtrm_sim::Session,
    manager: Box<dyn ResourceManager + Send>,
    predictor: Option<Box<dyn Predictor + Send>>,
}

/// Runs the service over `traces`: an open-loop producer feeds the merged
/// request stream through per-shard bounded ingress rings into `shards`
/// workers (requests sharded by `trace % shards`), each owning a warm
/// [`SimScratch`] plus one manager and one [`Session`](rtrm_sim::Session) per trace;
/// verdicts flow back through per-shard completion rings into a collector
/// that builds the latency histograms. Returns once every request has a
/// verdict and all sessions are drained.
///
/// `make_manager(trace)` builds the resource manager for each trace —
/// managers are per-trace (as in the batch pipeline), so admission state
/// never leaks across traces.
///
/// # Panics
///
/// Panics if `traces` is empty, or (debug builds) if an admitted task
/// misses its deadline — the same invariant as [`Simulator::run`].
#[must_use]
pub fn run_service<M>(
    platform: &Platform,
    catalog: &TaskCatalog,
    config: &ServiceConfig,
    traces: &[Trace],
    make_manager: M,
) -> ServiceReport
where
    M: Fn(usize) -> Box<dyn ResourceManager + Send> + Sync,
{
    run_service_with(platform, catalog, config, traces, make_manager, |_| None)
}

/// [`run_service`] with per-trace workload prediction: `make_predictor(trace)`
/// returns the [`PredictorSetup`] for each trace (or `None` to serve that
/// trace without prediction). Each worker observes its traces' arrivals into
/// the per-trace predictor, and the setup's horizon policy is installed on
/// the trace's [`Session`](rtrm_sim::Session) via
/// [`set_horizon`](rtrm_sim::Session::set_horizon) — so a service can run
/// confidence-gated multi-step admission per stream.
///
/// # Panics
///
/// Same as [`run_service`].
#[must_use]
pub fn run_service_with<M, P>(
    platform: &Platform,
    catalog: &TaskCatalog,
    config: &ServiceConfig,
    traces: &[Trace],
    make_manager: M,
    make_predictor: P,
) -> ServiceReport
where
    M: Fn(usize) -> Box<dyn ResourceManager + Send> + Sync,
    P: Fn(usize) -> Option<PredictorSetup> + Sync,
{
    assert!(!traces.is_empty(), "service needs at least one trace");
    let shards = config.shards.clamp(1, traces.len());
    let events = merge_events(traces);

    let ingress: Vec<Ring<IngressEvent>> = (0..shards)
        .map(|_| Ring::with_capacity(config.ingress_capacity))
        .collect();
    let completions: Vec<Ring<Verdict>> = (0..shards)
        .map(|_| Ring::with_capacity(config.ingress_capacity.max(64)))
        .collect();

    let producer_done = AtomicBool::new(false);
    let workers_done = AtomicUsize::new(0);
    let max_backlog = AtomicUsize::new(0);
    let trace_reports: Mutex<Vec<(usize, SimReport)>> = Mutex::new(Vec::new());

    let total: u64 = events.len() as u64;
    let start = Instant::now();
    let mut backpressure_waits = 0u64;

    let mut report = std::thread::scope(|scope| {
        // Shard workers.
        for shard in 0..shards {
            let ingress = &ingress[shard];
            let completion = &completions[shard];
            let producer_done = &producer_done;
            let workers_done = &workers_done;
            let max_backlog = &max_backlog;
            let trace_reports = &trace_reports;
            let make_manager = &make_manager;
            let make_predictor = &make_predictor;
            scope.spawn(move || {
                let simulator = Simulator::new(platform, catalog, config.sim.clone());
                let mut scratch = SimScratch::new();
                // One world per service run: build the placement index once
                // and let every session this shard serves scan shortlists.
                scratch.prime(&simulator);
                let mut sessions: HashMap<usize, TraceSlot> = HashMap::new();
                loop {
                    let Some(event) = ingress.try_pop() else {
                        if producer_done.load(Ordering::Acquire) && ingress.is_empty() {
                            break;
                        }
                        std::hint::spin_loop();
                        continue;
                    };
                    let backlog = ingress.len();
                    max_backlog.fetch_max(backlog + 1, Ordering::Relaxed);
                    let slot = sessions.entry(event.trace).or_insert_with(|| {
                        let setup = make_predictor(event.trace);
                        let overhead = setup.as_ref().map_or(Time::ZERO, |s| s.overhead);
                        let mut session = simulator.session(overhead);
                        if let Some(horizon) = setup.as_ref().and_then(|s| s.horizon) {
                            session.set_horizon(Some(horizon));
                        }
                        TraceSlot {
                            session,
                            manager: make_manager(event.trace),
                            predictor: setup.map(|s| s.predictor),
                        }
                    });
                    if let Some(full) = config.budget {
                        slot.manager.set_wall_clock(Some(scaled_budget(
                            full,
                            backlog,
                            &config.overload,
                        )));
                    }
                    let decide_start = Instant::now();
                    let decision = slot.session.admit(
                        &simulator,
                        &event.request,
                        slot.manager.as_mut(),
                        slot.predictor
                            .as_mut()
                            .map(|p| &mut **p as &mut dyn Predictor),
                        &mut scratch,
                    );
                    let decide_nanos = decide_start.elapsed().as_nanos() as u64;
                    let end_to_end_nanos = event.enqueued.elapsed().as_nanos() as u64;
                    let mut verdict = Verdict {
                        trace: event.trace,
                        request: event.request.id.index(),
                        decision,
                        decide_nanos,
                        end_to_end_nanos,
                    };
                    // The completion ring is drained continuously by the
                    // collector; spin until it takes the verdict.
                    loop {
                        match completion.try_push(verdict) {
                            Ok(()) => break,
                            Err(back) => {
                                verdict = back;
                                std::hint::spin_loop();
                            }
                        }
                    }
                }
                // Drain every session this shard served; reports become
                // comparable to whole-trace batch runs.
                let mut drained: Vec<(usize, SimReport)> = sessions
                    .into_iter()
                    .map(|(trace, slot)| {
                        (trace, slot.session.into_report(&simulator, &mut scratch))
                    })
                    .collect();
                trace_reports
                    .lock()
                    .expect("trace report lock poisoned")
                    .append(&mut drained);
                workers_done.fetch_add(1, Ordering::Release);
            });
        }

        // Collector: aggregates verdicts while workers run.
        let completions = &completions;
        let collector = scope.spawn(move || {
            let mut report = ServiceReport {
                requests: 0,
                admitted: 0,
                rejected: 0,
                degraded: 0,
                solver_timeouts: 0,
                decide: LatencyHistogram::new(),
                end_to_end: LatencyHistogram::new(),
                wall_nanos: 0,
                throughput_per_sec: 0.0,
                max_backlog: 0,
                backpressure_waits: 0,
                shards,
                trace_reports: Vec::new(),
                verdicts: None,
            };
            let mut verdicts: Option<Vec<Verdict>> = config.record_verdicts.then(Vec::new);
            let mut collected = 0u64;
            while collected < total {
                let mut idle = true;
                for completion in completions {
                    while let Some(verdict) = completion.try_pop() {
                        idle = false;
                        collected += 1;
                        report.requests += 1;
                        if verdict.decision.admitted {
                            report.admitted += 1;
                        } else {
                            report.rejected += 1;
                        }
                        if verdict.decision.degraded {
                            report.degraded += 1;
                        }
                        report.solver_timeouts += u64::from(verdict.decision.solver_timeouts);
                        report.decide.record(verdict.decide_nanos);
                        report.end_to_end.record(verdict.end_to_end_nanos);
                        if let Some(out) = verdicts.as_mut() {
                            out.push(verdict);
                        }
                    }
                }
                if idle {
                    std::hint::spin_loop();
                }
            }
            report.verdicts = verdicts;
            report
        });

        // Producer (open loop) on the scope's own thread.
        for event in &events {
            if config.time_scale > 0.0 {
                let due = std::time::Duration::from_secs_f64(
                    event.request.arrival.value() * config.time_scale,
                );
                while start.elapsed() < due {
                    std::hint::spin_loop();
                }
            }
            let shard = event.trace % shards;
            let mut item = IngressEvent {
                trace: event.trace,
                request: event.request,
                enqueued: Instant::now(),
            };
            let mut waited = false;
            loop {
                match ingress[shard].try_push(item) {
                    Ok(()) => break,
                    Err(back) => {
                        item = back;
                        if !waited {
                            waited = true;
                            backpressure_waits += 1;
                        }
                        std::hint::spin_loop();
                    }
                }
            }
        }
        producer_done.store(true, Ordering::Release);

        collector.join().expect("collector panicked")
    });

    report.wall_nanos = start.elapsed().as_nanos() as u64;
    report.throughput_per_sec = if report.wall_nanos == 0 {
        0.0
    } else {
        report.requests as f64 * 1e9 / report.wall_nanos as f64
    };
    report.max_backlog = max_backlog.load(Ordering::Relaxed);
    report.backpressure_waits = backpressure_waits;
    let mut drained = trace_reports
        .into_inner()
        .expect("trace report lock poisoned");
    drained.sort_by_key(|(trace, _)| *trace);
    report.trace_reports = drained.into_iter().map(|(_, r)| r).collect();
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_budget_follows_the_ladder() {
        let policy = OverloadPolicy {
            backlog_lo: 4,
            backlog_hi: 12,
        };
        assert_eq!(scaled_budget(1.0, 0, &policy), 1.0);
        assert_eq!(scaled_budget(1.0, 4, &policy), 1.0);
        assert_eq!(scaled_budget(1.0, 8, &policy), 0.5);
        assert_eq!(scaled_budget(1.0, 12, &policy), 0.0);
        assert_eq!(scaled_budget(1.0, 500, &policy), 0.0);
        // Midpoints interpolate linearly.
        let mid = scaled_budget(2.0, 6, &policy);
        assert!((mid - 1.5).abs() < 1e-12, "got {mid}");
    }

    #[test]
    fn scaled_budget_tolerates_degenerate_policy() {
        // hi <= lo must not divide by zero: hi is clamped to lo + 1.
        let policy = OverloadPolicy {
            backlog_lo: 8,
            backlog_hi: 8,
        };
        assert_eq!(scaled_budget(1.0, 8, &policy), 1.0);
        assert_eq!(scaled_budget(1.0, 9, &policy), 0.0);
    }
}
