//! A bounded lock-free MPMC ring buffer (Vyukov's sequence-numbered slot
//! design), used as the service's ingress and completion queues.
//!
//! Every slot carries its own sequence counter: a producer claims a slot by
//! advancing the enqueue cursor when the slot's sequence says it is empty
//! for this lap, writes the value, then publishes by bumping the sequence;
//! consumers mirror the dance on the dequeue cursor. No slot is ever read
//! and written concurrently, the queue never allocates after construction,
//! and a full queue reports backpressure instead of growing — the property
//! the admission service leans on to keep its ingress bounded under
//! overload.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};

/// One slot: the sequence number encodes which lap the slot belongs to and
/// whether it currently holds a value.
struct Slot<T> {
    sequence: AtomicUsize,
    value: UnsafeCell<MaybeUninit<T>>,
}

/// A bounded lock-free multi-producer multi-consumer queue.
///
/// # Examples
///
/// ```
/// use rtrm_service::Ring;
///
/// let ring: Ring<u32> = Ring::with_capacity(4);
/// assert!(ring.try_push(1).is_ok());
/// assert!(ring.try_push(2).is_ok());
/// assert_eq!(ring.try_pop(), Some(1));
/// assert_eq!(ring.try_pop(), Some(2));
/// assert_eq!(ring.try_pop(), None);
/// ```
pub struct Ring<T> {
    slots: Box<[Slot<T>]>,
    mask: usize,
    /// Enqueue cursor: the next position a producer will claim.
    head: AtomicUsize,
    /// Dequeue cursor: the next position a consumer will claim.
    tail: AtomicUsize,
}

// SAFETY: values move through the queue by ownership; the sequence protocol
// guarantees a slot is accessed by exactly one thread at a time.
unsafe impl<T: Send> Send for Ring<T> {}
unsafe impl<T: Send> Sync for Ring<T> {}

impl<T> std::fmt::Debug for Ring<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ring")
            .field("capacity", &self.capacity())
            .field("len", &self.len())
            .finish()
    }
}

impl<T> Ring<T> {
    /// Creates a ring holding at least `capacity` elements (rounded up to
    /// the next power of two, minimum 2).
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(2).next_power_of_two();
        let slots = (0..capacity)
            .map(|i| Slot {
                sequence: AtomicUsize::new(i),
                value: UnsafeCell::new(MaybeUninit::uninit()),
            })
            .collect();
        Ring {
            slots,
            mask: capacity - 1,
            head: AtomicUsize::new(0),
            tail: AtomicUsize::new(0),
        }
    }

    /// Number of slots.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Approximate number of queued elements (exact when no push/pop is in
    /// flight). This is the service workers' backlog signal.
    #[must_use]
    pub fn len(&self) -> usize {
        let head = self.head.load(Ordering::Relaxed);
        let tail = self.tail.load(Ordering::Relaxed);
        head.saturating_sub(tail)
    }

    /// Whether the queue is (approximately) empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueues `value`, or hands it back when the queue is full — the
    /// caller decides whether to spin (backpressure) or drop.
    ///
    /// # Errors
    ///
    /// Returns `Err(value)` when the queue is full.
    pub fn try_push(&self, value: T) -> Result<(), T> {
        let mut pos = self.head.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos & self.mask];
            let seq = slot.sequence.load(Ordering::Acquire);
            let diff = seq as isize - pos as isize;
            if diff == 0 {
                // The slot is empty for this lap: race to claim it.
                match self.head.compare_exchange_weak(
                    pos,
                    pos.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: the claim above makes this thread the
                        // slot's only writer until the sequence is bumped.
                        unsafe { (*slot.value.get()).write(value) };
                        slot.sequence.store(pos.wrapping_add(1), Ordering::Release);
                        return Ok(());
                    }
                    Err(current) => pos = current,
                }
            } else if diff < 0 {
                // The slot still holds a value from the previous lap: full.
                return Err(value);
            } else {
                // Another producer claimed this position; follow the cursor.
                pos = self.head.load(Ordering::Relaxed);
            }
        }
    }

    /// Dequeues the oldest element, or `None` when the queue is empty.
    pub fn try_pop(&self) -> Option<T> {
        let mut pos = self.tail.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos & self.mask];
            let seq = slot.sequence.load(Ordering::Acquire);
            let diff = seq as isize - pos.wrapping_add(1) as isize;
            if diff == 0 {
                match self.tail.compare_exchange_weak(
                    pos,
                    pos.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: the claim above makes this thread the
                        // slot's only reader; the producer's Release store
                        // of the sequence made the value visible.
                        let value = unsafe { (*slot.value.get()).assume_init_read() };
                        slot.sequence
                            .store(pos.wrapping_add(self.mask + 1), Ordering::Release);
                        return Some(value);
                    }
                    Err(current) => pos = current,
                }
            } else if diff < 0 {
                return None;
            } else {
                pos = self.tail.load(Ordering::Relaxed);
            }
        }
    }
}

impl<T> Drop for Ring<T> {
    fn drop(&mut self) {
        while self.try_pop().is_some() {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn fifo_order_and_capacity_bound() {
        let ring: Ring<usize> = Ring::with_capacity(4);
        assert_eq!(ring.capacity(), 4);
        for i in 0..4 {
            assert!(ring.try_push(i).is_ok());
        }
        assert_eq!(ring.try_push(99), Err(99), "full ring refuses the value");
        assert_eq!(ring.len(), 4);
        for i in 0..4 {
            assert_eq!(ring.try_pop(), Some(i));
        }
        assert_eq!(ring.try_pop(), None);
        assert!(ring.is_empty());
    }

    #[test]
    fn capacity_rounds_up_to_power_of_two() {
        assert_eq!(Ring::<u8>::with_capacity(0).capacity(), 2);
        assert_eq!(Ring::<u8>::with_capacity(3).capacity(), 4);
        assert_eq!(Ring::<u8>::with_capacity(4).capacity(), 4);
        assert_eq!(Ring::<u8>::with_capacity(1000).capacity(), 1024);
    }

    #[test]
    fn wraps_around_many_laps() {
        let ring: Ring<usize> = Ring::with_capacity(2);
        for i in 0..1000 {
            assert!(ring.try_push(i).is_ok());
            assert_eq!(ring.try_pop(), Some(i));
        }
    }

    #[test]
    fn drops_remaining_values() {
        // A ring dropped half-full must drop its values exactly once.
        static DROPS: AtomicU64 = AtomicU64::new(0);
        struct Counted;
        impl Drop for Counted {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::Relaxed);
            }
        }
        let ring: Ring<Counted> = Ring::with_capacity(8);
        for _ in 0..5 {
            assert!(ring.try_push(Counted).is_ok());
        }
        drop(ring.try_pop());
        drop(ring);
        assert_eq!(DROPS.load(Ordering::Relaxed), 5);
    }

    #[test]
    fn mpsc_stress_preserves_per_producer_order_and_loses_nothing() {
        const PRODUCERS: u64 = 4;
        const PER_PRODUCER: u64 = 5_000;
        let ring: Ring<u64> = Ring::with_capacity(64);
        let mut seen: Vec<Vec<u64>> = vec![Vec::new(); PRODUCERS as usize];
        std::thread::scope(|scope| {
            for p in 0..PRODUCERS {
                let ring = &ring;
                scope.spawn(move || {
                    for i in 0..PER_PRODUCER {
                        let mut item = p * PER_PRODUCER + i;
                        loop {
                            match ring.try_push(item) {
                                Ok(()) => break,
                                Err(back) => {
                                    item = back;
                                    std::hint::spin_loop();
                                }
                            }
                        }
                    }
                });
            }
            let mut received = 0;
            while received < PRODUCERS * PER_PRODUCER {
                if let Some(v) = ring.try_pop() {
                    seen[(v / PER_PRODUCER) as usize].push(v % PER_PRODUCER);
                    received += 1;
                } else {
                    std::hint::spin_loop();
                }
            }
        });
        for (p, values) in seen.iter().enumerate() {
            assert_eq!(
                values.len(),
                PER_PRODUCER as usize,
                "producer {p} lost items"
            );
            assert!(
                values.windows(2).all(|w| w[0] < w[1]),
                "producer {p} order violated"
            );
        }
    }
}
