//! An HDR-style log-linear latency histogram: fixed memory, bounded
//! relative error, mergeable across shards.
//!
//! Values (nanoseconds) land in buckets that are exact below 64 and then
//! split every power of two into 32 linear sub-buckets, so any reported
//! quantile is within ~3.2 % of the true value while the whole histogram is
//! a flat array of ~1.9 k counters — recording on the hot verdict path is
//! one index computation and one increment, no allocation.

/// Sub-bucket resolution: each power-of-two octave splits into
/// `2^SUB_BITS = 32` linear buckets.
const SUB_BITS: u32 = 5;
const SUB: usize = 1 << SUB_BITS;
/// Bucket count covering the full `u64` range.
const BUCKETS: usize = (64 - SUB_BITS as usize + 1) * SUB;

/// Bucket index of `value`: identity below `2 * SUB`, log-linear above.
fn bucket(value: u64) -> usize {
    let msb = 63 - (value | 1).leading_zeros();
    if msb <= SUB_BITS {
        value as usize
    } else {
        let octave = (msb - SUB_BITS) as usize;
        (octave + 1) * SUB + ((value >> octave) as usize - SUB)
    }
}

/// Largest value mapping to bucket `index` (the bound quantiles report).
fn bucket_upper(index: usize) -> u64 {
    if index < 2 * SUB {
        index as u64
    } else {
        let octave = (index / SUB - 1) as u32;
        let low = ((index % SUB + SUB) as u64) << octave;
        // Parenthesised so the top bucket (upper bound `u64::MAX`) does not
        // overflow in the intermediate sum.
        low + ((1u64 << octave) - 1)
    }
}

/// A mergeable log-linear histogram of nanosecond latencies.
///
/// # Examples
///
/// ```
/// use rtrm_service::LatencyHistogram;
///
/// let mut h = LatencyHistogram::new();
/// for v in 1..=100u64 {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 100);
/// assert_eq!(h.quantile(0.5), 50);
/// assert_eq!(h.max(), 100);
/// ```
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    count: u64,
    min: u64,
    max: u64,
    sum: u128,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    #[must_use]
    pub fn new() -> Self {
        LatencyHistogram {
            counts: vec![0; BUCKETS],
            count: 0,
            min: u64::MAX,
            max: 0,
            sum: 0,
        }
    }

    /// Records one value.
    pub fn record(&mut self, value: u64) {
        self.counts[bucket(value)] += 1;
        self.count += 1;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.sum += u128::from(value);
    }

    /// Number of recorded values.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest recorded value (0 when empty).
    #[must_use]
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value.
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of the recorded values (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The value at quantile `q` in `[0, 1]`: an upper bound on the true
    /// quantile, within one sub-bucket (~3.2 % relative error), clamped to
    /// the recorded maximum. The edges are exact: `q ≤ 0.0` is the smallest
    /// recorded value and `q ≥ 1.0` the largest (both tracked outside the
    /// buckets). Returns 0 when empty.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        // Without this, the `clamp(1, …)` below would silently redefine
        // q = 0 as the *first* value's bucket upper bound — an overestimate
        // of the minimum — and q = 1 would report the maximum's bucket
        // bound instead of the maximum.
        if q <= 0.0 {
            return self.min;
        }
        if q >= 1.0 {
            return self.max;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (index, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return bucket_upper(index).min(self.max);
            }
        }
        self.max
    }

    /// Folds another histogram into this one (shard aggregation).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.sum += other.sum;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_monotone_and_cover_u64() {
        let mut previous = None;
        for &v in &[
            0u64,
            1,
            63,
            64,
            65,
            127,
            128,
            1_000,
            1_000_000,
            u64::MAX / 2,
            u64::MAX,
        ] {
            let b = bucket(v);
            assert!(b < BUCKETS, "bucket({v}) = {b} out of range");
            assert!(bucket_upper(b) >= v, "upper({b}) < {v}");
            if let Some((pv, pb)) = previous {
                assert!(b >= pb, "bucket not monotone between {pv} and {v}");
            }
            previous = Some((v, b));
        }
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = LatencyHistogram::new();
        for v in 0..64u64 {
            h.record(v);
        }
        // The 32nd-smallest of 0..64 is 31; sub-64 buckets are exact.
        assert_eq!(h.quantile(0.5), 31);
        assert_eq!(h.quantile(1.0), 63);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 63);
    }

    #[test]
    fn quantiles_have_bounded_relative_error() {
        let mut h = LatencyHistogram::new();
        // A deterministic spread over five decades.
        let values: Vec<u64> = (1..=10_000u64).map(|i| i * i).collect();
        for &v in &values {
            h.record(v);
        }
        for &q in &[0.0, 0.5, 0.9, 0.99, 0.999, 1.0] {
            // `max(1)` keeps the rank subtraction from underflowing at
            // q = 0.0 (where the true quantile is the smallest value).
            let rank = ((q * values.len() as f64).ceil() as usize).max(1);
            let exact = values[(rank - 1).min(values.len() - 1)];
            let approx = h.quantile(q);
            assert!(approx >= exact, "q{q}: {approx} < exact {exact}");
            let error = (approx - exact) as f64 / exact as f64;
            assert!(error <= 1.0 / 32.0 + 1e-9, "q{q}: error {error}");
        }
    }

    #[test]
    fn merge_equals_combined_recording() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut combined = LatencyHistogram::new();
        for i in 0..1_000u64 {
            let v = i * 37 + 5;
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            combined.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), combined.count());
        assert_eq!(a.min(), combined.min());
        assert_eq!(a.max(), combined.max());
        assert_eq!(a.mean(), combined.mean());
        for &q in &[0.1, 0.5, 0.9, 0.99, 0.999, 1.0] {
            assert_eq!(a.quantile(q), combined.quantile(q));
        }
    }

    #[test]
    fn quantile_edges_are_exact_min_and_max() {
        let mut h = LatencyHistogram::new();
        // 1000 and 1007 share a log-linear bucket (octave 4, 16-wide), so
        // the bucket walk alone would report the shared upper bound (1007)
        // for both edges; the exact min must win at q = 0.
        assert_eq!(bucket(1000), bucket(1007));
        h.record(1000);
        h.record(1007);
        assert_eq!(h.quantile(0.0), 1000);
        assert_eq!(h.quantile(1.0), 1007);
        // Out-of-range probes clamp to the same edge semantics.
        assert_eq!(h.quantile(-0.5), 1000);
        assert_eq!(h.quantile(1.5), 1007);
        // Interior quantiles still report bucket upper bounds.
        assert!(h.quantile(0.5) >= 1000);
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.99), 0);
    }
}
