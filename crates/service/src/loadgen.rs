//! Open-loop load generation for the admission service: per-application
//! request traces (reusing `rtrm-trace`'s catalog/deadline machinery) with
//! Poisson or bursty arrival processes, merged into one global event stream
//! sorted by arrival.
//!
//! The generator is open-loop: arrivals are fixed up front and never react
//! to admission verdicts, which is exactly the regime where decide latency
//! at the tail (p99/p999) and overload behaviour are meaningful.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use rtrm_platform::{Request, TaskCatalog, Time, Trace};
use rtrm_trace::{generate_bursty_trace, generate_trace, BurstyConfig, TraceConfig};

/// Arrival process of the open-loop generator.
#[derive(Debug, Clone, PartialEq)]
pub enum Arrivals {
    /// Memoryless (Poisson) arrivals: exponential interarrival gaps with
    /// the given mean — the classic open-loop service workload.
    Poisson {
        /// Mean interarrival gap per trace (simulated time units).
        mean_gap: f64,
    },
    /// Two-state Markov burst/lull arrivals
    /// ([`rtrm_trace::generate_bursty_trace`]).
    Bursty(BurstyConfig),
}

/// Parameters of one load run.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadConfig {
    /// Number of independent traces (one application / session each).
    pub traces: usize,
    /// Requests per trace.
    pub trace_len: usize,
    /// Master seed; each trace derives an independent child seed.
    pub seed: u64,
    /// Arrival process.
    pub arrivals: Arrivals,
}

/// One entry of the merged event stream: which trace the request belongs to
/// (the service's shard key) and the request itself.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadEvent {
    /// Index of the originating trace.
    pub trace: usize,
    /// The request (arrival in simulated time).
    pub request: Request,
}

/// Generates the load's traces: request content (types, deadlines) comes
/// from the paper's generator at the calibrated VT operating point; the
/// arrival process is then imposed per [`LoadConfig::arrivals`]. Trace `i`
/// uses a child seed derived from `seed` and `i` (same derivation as
/// [`rtrm_trace::generate_traces`]), so load runs are reproducible.
///
/// # Panics
///
/// Panics if `traces` or `trace_len` is zero, or the catalog is empty.
#[must_use]
pub fn generate_load(catalog: &TaskCatalog, config: &LoadConfig) -> Vec<Trace> {
    assert!(config.traces > 0, "load needs at least one trace");
    (0..config.traces)
        .map(|i| {
            let mut rng = StdRng::seed_from_u64(
                config.seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i as u64 + 1)),
            );
            match &config.arrivals {
                Arrivals::Poisson { mean_gap } => {
                    let base = generate_trace(
                        catalog,
                        &TraceConfig {
                            length: config.trace_len,
                            ..TraceConfig::calibrated_vt()
                        },
                        &mut rng,
                    );
                    poissonify(&base, *mean_gap, &mut rng)
                }
                Arrivals::Bursty(bursty) => generate_bursty_trace(
                    catalog,
                    &BurstyConfig {
                        length: config.trace_len,
                        ..bursty.clone()
                    },
                    &mut rng,
                ),
            }
        })
        .collect()
}

/// Rewrites a trace's arrivals as a Poisson process with mean gap
/// `mean_gap`, keeping every request's type and *relative* deadline (which
/// moves with the arrival, so deadline tightness is preserved).
fn poissonify(trace: &Trace, mean_gap: f64, rng: &mut StdRng) -> Trace {
    let mut arrival = 0.0f64;
    let requests = trace
        .iter()
        .enumerate()
        .map(|(i, request)| {
            if i > 0 {
                // Inverse-CDF exponential sampling; 1 - u keeps the argument
                // strictly positive.
                let u: f64 = rng.gen();
                arrival += -mean_gap * (1.0 - u).ln();
            }
            Request {
                arrival: Time::new(arrival),
                ..*request
            }
        })
        .collect();
    Trace::new(requests)
}

/// Merges per-trace request streams into one global arrival-ordered event
/// stream (ties break by trace index, so the merge is deterministic).
#[must_use]
pub fn merge_events(traces: &[Trace]) -> Vec<LoadEvent> {
    let mut events: Vec<LoadEvent> = traces
        .iter()
        .enumerate()
        .flat_map(|(trace, t)| {
            t.iter().map(move |request| LoadEvent {
                trace,
                request: *request,
            })
        })
        .collect();
    events.sort_by(|a, b| {
        (a.request.arrival, a.trace, a.request.id.index()).cmp(&(
            b.request.arrival,
            b.trace,
            b.request.id.index(),
        ))
    });
    events
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtrm_platform::Platform;
    use rtrm_trace::{generate_catalog, CatalogConfig};

    fn catalog() -> TaskCatalog {
        let platform = Platform::paper_default();
        generate_catalog(
            &platform,
            &CatalogConfig::paper(),
            &mut StdRng::seed_from_u64(5),
        )
    }

    #[test]
    fn poisson_load_is_reproducible_with_exponential_gaps() {
        let catalog = catalog();
        let config = LoadConfig {
            traces: 3,
            trace_len: 2_000,
            seed: 11,
            arrivals: Arrivals::Poisson { mean_gap: 2.0 },
        };
        let a = generate_load(&catalog, &config);
        let b = generate_load(&catalog, &config);
        assert_eq!(a, b, "same seed, same load");
        assert_ne!(a[0], a[1], "child seeds differ per trace");

        // Exponential gaps: mean ≈ mean_gap, and the classic memoryless
        // signature mean ≈ std.
        let gaps: Vec<f64> = a[0]
            .iter()
            .collect::<Vec<_>>()
            .windows(2)
            .map(|w| (w[1].arrival - w[0].arrival).value())
            .collect();
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        let var = gaps.iter().map(|g| (g - mean).powi(2)).sum::<f64>() / gaps.len() as f64;
        assert!((mean - 2.0).abs() < 0.15, "mean gap {mean}");
        assert!(
            (var.sqrt() / mean - 1.0).abs() < 0.1,
            "cv {} should be ~1 for exponential gaps",
            var.sqrt() / mean
        );
    }

    #[test]
    fn poissonify_preserves_types_and_relative_deadlines() {
        let catalog = catalog();
        let config = LoadConfig {
            traces: 1,
            trace_len: 100,
            seed: 3,
            arrivals: Arrivals::Poisson { mean_gap: 1.0 },
        };
        let load = generate_load(&catalog, &config);
        let base = generate_trace(
            &catalog,
            &TraceConfig {
                length: 100,
                ..TraceConfig::calibrated_vt()
            },
            &mut StdRng::seed_from_u64(3 ^ 0x9E37_79B9_7F4A_7C15u64),
        );
        for (a, b) in load[0].iter().zip(base.iter()) {
            assert_eq!(a.task_type, b.task_type);
            assert_eq!(a.deadline, b.deadline, "relative deadline preserved");
        }
    }

    #[test]
    fn merged_stream_is_arrival_ordered_and_complete() {
        let catalog = catalog();
        let load = generate_load(
            &catalog,
            &LoadConfig {
                traces: 4,
                trace_len: 50,
                seed: 9,
                arrivals: Arrivals::Poisson { mean_gap: 1.5 },
            },
        );
        let events = merge_events(&load);
        assert_eq!(events.len(), 200);
        assert!(events
            .windows(2)
            .all(|w| w[0].request.arrival <= w[1].request.arrival));
        for trace in 0..4 {
            let per_trace: Vec<_> = events.iter().filter(|e| e.trace == trace).collect();
            assert_eq!(per_trace.len(), 50);
            assert!(
                per_trace
                    .windows(2)
                    .all(|w| w[0].request.id < w[1].request.id),
                "per-trace request order preserved"
            );
        }
    }

    #[test]
    fn bursty_load_uses_the_markov_generator() {
        let catalog = catalog();
        let load = generate_load(
            &catalog,
            &LoadConfig {
                traces: 1,
                trace_len: 500,
                seed: 21,
                arrivals: Arrivals::Bursty(BurstyConfig::default()),
            },
        );
        assert_eq!(load[0].len(), 500);
    }
}
