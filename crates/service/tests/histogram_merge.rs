//! Property suite for [`LatencyHistogram::merge`]: cross-process latency
//! collectors (one histogram per worker shard, folded at report time) rely
//! on merged shards being indistinguishable from recording the same values
//! into a single histogram. Since `merge` adds the bucket-count arrays and
//! folds min/max/sum, the property is *exact* equality of every observable
//! — and both the single and merged histograms must keep the log-linear
//! layout's quantile guarantee: an upper bound on the true quantile within
//! one sub-bucket (≤ 1/32 relative error, exact below 64).

use proptest::prelude::*;
use rtrm_service::LatencyHistogram;

/// Latency samples spread over the full u64 octave range (a raw `u64`
/// shifted right by 0..64 hits every bucket size class), each tagged with
/// the worker shard (0..4) that records it — an arbitrary split of one
/// recording across up to four histograms.
fn sharded_samples() -> impl Strategy<Value = Vec<(u64, usize)>> {
    prop::collection::vec((any::<u64>(), 0u32..64, 0usize..4), 0..64)
        .prop_map(|v| v.into_iter().map(|(x, s, w)| (x >> s, w)).collect())
}

/// The true quantile of the raw samples: the `ceil(q·n)`-th smallest.
fn true_quantile(sorted: &[u64], q: f64) -> u64 {
    let target = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[target - 1]
}

proptest! {
    /// Merging arbitrary split recordings is exactly equivalent to one
    /// histogram recording everything: count, min, max, mean (bit-equal),
    /// and every quantile agree.
    #[test]
    fn merged_shards_equal_single_recording(samples in sharded_samples()) {
        let mut single = LatencyHistogram::new();
        let mut shards = vec![LatencyHistogram::new(); 4];
        for &(value, shard) in &samples {
            single.record(value);
            shards[shard].record(value);
        }
        let mut merged = LatencyHistogram::new();
        for shard in &shards {
            merged.merge(shard);
        }

        prop_assert_eq!(merged.count(), single.count());
        prop_assert_eq!(merged.min(), single.min());
        prop_assert_eq!(merged.max(), single.max());
        prop_assert_eq!(merged.mean().to_bits(), single.mean().to_bits());
        for q in [0.0, 0.01, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0] {
            prop_assert_eq!(
                merged.quantile(q),
                single.quantile(q),
                "quantile({}) diverged after merge", q
            );
        }
    }

    /// The quantile-error contract survives the merge: for every probe
    /// quantile, the merged histogram reports an upper bound on the true
    /// quantile of the raw samples, within one sub-bucket (≤ 1/32 relative
    /// error; exact for values below 64 where buckets are unit-width).
    #[test]
    fn merged_quantiles_keep_the_sub_bucket_error_bound(samples in sharded_samples()) {
        prop_assume!(!samples.is_empty());
        let mut shards = vec![LatencyHistogram::new(); 4];
        let mut sorted: Vec<u64> = Vec::with_capacity(samples.len());
        for &(value, shard) in &samples {
            shards[shard].record(value);
            sorted.push(value);
        }
        sorted.sort_unstable();
        let mut merged = LatencyHistogram::new();
        for shard in &shards {
            merged.merge(shard);
        }

        for q in [0.0, 0.01, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0] {
            let truth = true_quantile(&sorted, q);
            let reported = merged.quantile(q);
            prop_assert!(
                reported >= truth,
                "quantile({}) = {} under-reports the true {}", q, reported, truth
            );
            let error = (reported - truth) as f64;
            prop_assert!(
                error <= truth as f64 / 32.0,
                "quantile({}) = {} overshoots the true {} by more than 1/32", q, reported, truth
            );
        }
    }
}
