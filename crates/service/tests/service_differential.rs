//! Differential contract of the service: because sessions advance on
//! *simulated* time and requests are sharded by trace, the sharded service
//! must produce decisions identical to the sequential [`Simulator`] run on
//! each trace — at any shard count, under any interleaving, with latency
//! pacing on or off.

use rand::SeedableRng;
use rtrm_core::{ExactRm, HeuristicRm, ResourceManager};
use rtrm_platform::{Platform, TaskCatalog, Trace};
use rtrm_service::{generate_load, run_service, Arrivals, LoadConfig, ServiceConfig};
use rtrm_sim::{SimConfig, Simulator};
use rtrm_trace::{generate_catalog, CatalogConfig};

fn world(seed: u64, traces: usize, trace_len: usize) -> (Platform, TaskCatalog, Vec<Trace>) {
    let platform = Platform::paper_default();
    let catalog = generate_catalog(
        &platform,
        &CatalogConfig::paper(),
        &mut rand::rngs::StdRng::seed_from_u64(seed),
    );
    let load = generate_load(
        &catalog,
        &LoadConfig {
            traces,
            trace_len,
            seed,
            arrivals: Arrivals::Poisson { mean_gap: 2.8 },
        },
    );
    (platform, catalog, load)
}

fn assert_service_matches_batch<M>(seed: u64, traces: usize, trace_len: usize, make_manager: M)
where
    M: Fn(usize) -> Box<dyn ResourceManager + Send> + Sync,
{
    let (platform, catalog, load) = world(seed, traces, trace_len);
    let sim = Simulator::new(&platform, &catalog, SimConfig::default());

    // Sequential ground truth: one whole-trace batch run per trace.
    let baseline: Vec<_> = load
        .iter()
        .enumerate()
        .map(|(trace, t)| sim.run(t, make_manager(trace).as_mut(), None))
        .collect();

    for shards in [1usize, 2, 4, 8] {
        let config = ServiceConfig {
            shards,
            ingress_capacity: 16,
            record_verdicts: true,
            ..ServiceConfig::default()
        };
        let report = run_service(&platform, &catalog, &config, &load, &make_manager);

        assert_eq!(report.requests as usize, traces * trace_len);
        assert_eq!(report.shards, shards.min(traces));
        assert_eq!(
            report.trace_reports, baseline,
            "shards={shards}: drained per-trace reports must be bit-identical to batch runs"
        );

        // Per-request decision identity: replay the baseline decisions and
        // compare verdict by verdict.
        let verdicts = report.verdicts.as_ref().expect("verdicts recorded");
        assert_eq!(verdicts.len(), traces * trace_len);
        let mut admitted_by_trace: Vec<Vec<(usize, bool)>> = vec![Vec::new(); traces];
        for v in verdicts {
            admitted_by_trace[v.trace].push((v.request, v.decision.admitted));
        }
        for (trace, decisions) in admitted_by_trace.iter_mut().enumerate() {
            decisions.sort_by_key(|(request, _)| *request);
            let admitted = decisions.iter().filter(|(_, a)| *a).count();
            assert_eq!(
                admitted, baseline[trace].accepted,
                "shards={shards}, trace={trace}: admitted set must match the batch run"
            );
            assert_eq!(
                decisions.len(),
                trace_len,
                "shards={shards}, trace={trace}: every request gets exactly one verdict"
            );
        }
    }
}

#[test]
fn sharded_service_matches_sequential_heuristic() {
    assert_service_matches_batch(41, 6, 60, |_| Box::new(HeuristicRm::new()));
}

#[test]
fn sharded_service_matches_sequential_exact() {
    // The exact manager carries a warm timeline pool through
    // `decide_with_pool`; small traces keep debug-build solves fast.
    assert_service_matches_batch(42, 4, 25, |_| Box::new(ExactRm::new()));
}

/// Verdict identity is also wall-clock independent: pacing the open loop
/// (nonzero `time_scale`) changes latencies but not one decision.
#[test]
fn pacing_does_not_change_decisions() {
    let (platform, catalog, load) = world(7, 3, 40);
    let firehose = run_service(
        &platform,
        &catalog,
        &ServiceConfig {
            shards: 3,
            record_verdicts: true,
            time_scale: 0.0,
            ..ServiceConfig::default()
        },
        &load,
        |_| Box::new(HeuristicRm::new()),
    );
    let paced = run_service(
        &platform,
        &catalog,
        &ServiceConfig {
            shards: 3,
            record_verdicts: true,
            // ~60 simulated units/trace × 2.8 gap ≈ sub-second run.
            time_scale: 2e-3,
            ..ServiceConfig::default()
        },
        &load,
        |_| Box::new(HeuristicRm::new()),
    );
    assert_eq!(firehose.trace_reports, paced.trace_reports);
    assert_eq!(firehose.admitted, paced.admitted);
    assert_eq!(firehose.rejected, paced.rejected);
    let key = |vs: &Vec<rtrm_service::Verdict>| {
        let mut keys: Vec<_> = vs
            .iter()
            .map(|v| (v.trace, v.request, v.decision.admitted))
            .collect();
        keys.sort_unstable();
        keys
    };
    assert_eq!(
        key(firehose.verdicts.as_ref().unwrap()),
        key(paced.verdicts.as_ref().unwrap())
    );
}
