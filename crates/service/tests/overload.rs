//! Overload behaviour of the service: with the MILP solver stalled (every
//! branch & bound deadline check "expires") and the whole load released as
//! a firehose, the service must *degrade* through the anytime-budget ladder
//! — every admission coming from the heuristic floor, every expiry counted
//! — rather than queue unboundedly or fail. This is the acceptance-criteria
//! fault-injection pin for the overload path.

use std::sync::Mutex;

use rand::SeedableRng;
use rtrm_core::MilpRm;
use rtrm_platform::{Platform, TaskCatalog, Trace};
use rtrm_service::{
    generate_load, run_service, Arrivals, LoadConfig, OverloadPolicy, ServiceConfig,
};
use rtrm_trace::{generate_catalog, BurstyConfig, CatalogConfig};

/// Fail points are process-global; serialize the tests that arm one.
static STALL: Mutex<()> = Mutex::new(());

fn world(seed: u64, traces: usize, trace_len: usize) -> (Platform, TaskCatalog, Vec<Trace>) {
    let platform = Platform::paper_default();
    let catalog = generate_catalog(
        &platform,
        &CatalogConfig::paper(),
        &mut rand::rngs::StdRng::seed_from_u64(seed),
    );
    let load = generate_load(
        &catalog,
        &LoadConfig {
            traces,
            trace_len,
            seed,
            arrivals: Arrivals::Bursty(BurstyConfig::default()),
        },
    );
    (platform, catalog, load)
}

/// Firehose load into a stalled MILP: the run completes, nothing waits in
/// an unbounded queue (the ingress rings are the only queues and they are
/// bounded by construction), and every admission is a degraded one — the
/// budget ladder's floor — with the expiries on the books.
#[test]
fn stalled_solver_under_firehose_degrades_instead_of_queueing() {
    let _serial = STALL.lock().unwrap_or_else(|e| e.into_inner());
    let (platform, catalog, load) = world(3, 4, 40);

    // Stall the solver at the root of every B&B tree: each budgeted rung
    // expires immediately without an incumbent.
    let _stall =
        rtrm_testkit::arm_with("milp::stall", rtrm_testkit::Action::Trigger, Some(0), None);

    let config = ServiceConfig {
        shards: 2,
        ingress_capacity: 8,
        budget: Some(1e-3),
        overload: OverloadPolicy {
            backlog_lo: 0,
            backlog_hi: 4,
        },
        time_scale: 0.0, // firehose: the overload regime
        ..ServiceConfig::default()
    };
    let report = run_service(&platform, &catalog, &config, &load, |_| {
        Box::new(MilpRm::new())
    });

    assert_eq!(report.requests, 160, "every request got a verdict");
    assert!(report.admitted > 0, "the floor must keep admitting work");
    assert!(
        report.solver_timeouts > 0,
        "the stalled rungs' expiries must be counted"
    );
    assert_eq!(
        report.degraded, report.admitted,
        "with the solver fully stalled, every admission is degraded"
    );
    assert!(
        report.max_backlog <= 8,
        "backlog {} must never exceed the bounded ingress ring",
        report.max_backlog
    );
    for trace_report in &report.trace_reports {
        assert_eq!(
            trace_report.deadline_misses, 0,
            "degraded plans must stay feasible"
        );
    }
}

/// Budget control is strictly opt-in: with `budget: None` the service never
/// calls `set_wall_clock`, the manager's default (infinite) budget stands,
/// and no timeout or degradation can ever be counted — the deterministic
/// regime the differential suite relies on.
#[test]
fn budget_control_only_engages_when_configured() {
    let _serial = STALL.lock().unwrap_or_else(|e| e.into_inner());
    let (platform, catalog, load) = world(11, 2, 30);

    let unbudgeted = run_service(
        &platform,
        &catalog,
        &ServiceConfig {
            shards: 2,
            ..ServiceConfig::default()
        },
        &load,
        |_| Box::new(MilpRm::new()),
    );
    assert_eq!(unbudgeted.solver_timeouts, 0);
    assert_eq!(unbudgeted.degraded, 0);
    assert_eq!(unbudgeted.requests, 60);
}
