//! The anytime wall-clock contract of the solver: a budget cut-off returns
//! the best incumbent (labelled), never a wrong answer; no budget means the
//! behaviour is byte-for-byte what it always was.

use std::sync::Mutex;

use rtrm_milp::{Model, Sense, Solution, SolveError, SolveOptions, Termination};

/// Fail points are process-global; every test in this binary that solves a
/// model takes this lock so an armed `milp::stall` cannot leak into a
/// concurrently running test.
static STALL: Mutex<()> = Mutex::new(());

/// A small knapsack-flavoured MILP with a known optimum and enough binaries
/// that branch & bound explores a non-trivial tree.
fn knapsack(n: usize) -> Model {
    let mut m = Model::new(Sense::Maximize);
    let vars: Vec<_> = (0..n).map(|i| m.binary(1.0 + (i % 7) as f64)).collect();
    // Interlocking capacity rows keep the LP relaxation fractional.
    for w in 0..3 {
        let terms: Vec<_> = vars
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, 1.0 + ((i + w) % 5) as f64))
            .collect();
        m.add_le(&terms, 2.0 * n as f64 / 3.0);
    }
    m
}

fn solve_default(m: &Model) -> Solution {
    m.solve_with(&SolveOptions::default())
        .expect("knapsack is feasible")
}

#[test]
fn zero_budget_times_out_without_incumbent() {
    let _serial = STALL.lock().unwrap();
    let m = knapsack(12);
    let err = m
        .solve_with(&SolveOptions::with_wall_clock(0.0))
        .expect_err("a zero budget cannot produce an incumbent");
    assert_eq!(err, SolveError::TimedOut);
}

#[test]
fn unbounded_budget_matches_default_solve() {
    let _serial = STALL.lock().unwrap();
    let m = knapsack(12);
    let reference = solve_default(&m);
    assert_eq!(reference.termination(), Termination::Optimal);
    assert!(reference.is_optimal());

    // An explicit but generous budget must not perturb the search at all.
    let budgeted = m
        .solve_with(&SolveOptions::with_wall_clock(1e6))
        .expect("budget far above the solve time");
    assert_eq!(budgeted, reference);

    // And infinity is the default: no deadline is even constructed.
    let infinite = m
        .solve_with(&SolveOptions::with_wall_clock(f64::INFINITY))
        .expect("infinite budget");
    assert_eq!(infinite, reference);
}

#[test]
fn injected_stall_returns_incumbent_labelled_timed_out() {
    let _serial = STALL.lock().unwrap();
    let m = knapsack(12);
    let reference = solve_default(&m);
    // DFS dives toward integral solutions quickly: the incumbent found by
    // the time the stall fires (well past the first dive) is feasible. The
    // key must stay below the full tree size (~39 nodes for knapsack(12))
    // or the solve finishes before the stall can fire.
    let _stall =
        rtrm_testkit::arm_with("milp::stall", rtrm_testkit::Action::Trigger, Some(20), None);
    let sol = m
        .solve_with(&SolveOptions::default())
        .expect("20 nodes are enough for a first incumbent");
    assert_eq!(sol.termination(), Termination::TimedOut);
    assert!(!sol.is_optimal());
    assert!(sol.nodes_explored() <= 20);
    // The incumbent is a feasible integral point, no better than optimal.
    assert!(m.is_feasible_point(sol.values(), 1e-6));
    assert!(sol.objective() <= reference.objective() + 1e-9);
}

#[test]
fn injected_stall_at_the_root_times_out_without_incumbent() {
    let _serial = STALL.lock().unwrap();
    let m = knapsack(12);
    let _stall =
        rtrm_testkit::arm_with("milp::stall", rtrm_testkit::Action::Trigger, Some(0), None);
    let err = m
        .solve_with(&SolveOptions::default())
        .expect_err("stall before the root node leaves no incumbent");
    assert_eq!(err, SolveError::TimedOut);
}

#[test]
fn tiny_real_budget_never_misreports_optimality() {
    let _serial = STALL.lock().unwrap();
    // A real (non-injected) expiry: whatever the machine's speed, the
    // result is either a correct optimum or an honestly labelled incumbent
    // / timeout — never a wrong answer.
    let m = knapsack(14);
    let reference = solve_default(&m);
    for budget in [1e-9, 1e-6, 1e-4] {
        match m.solve_with(&SolveOptions::with_wall_clock(budget)) {
            Ok(sol) => {
                assert!(m.is_feasible_point(sol.values(), 1e-6), "budget {budget}");
                assert!(sol.objective() <= reference.objective() + 1e-9);
                if sol.is_optimal() {
                    assert_eq!(sol.objective(), reference.objective());
                }
            }
            Err(err) => assert_eq!(err, SolveError::TimedOut, "budget {budget}"),
        }
    }
}
