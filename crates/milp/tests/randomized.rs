//! Randomized cross-validation of the MILP solver against brute force.

use proptest::prelude::*;
use rtrm_milp::{Model, Sense, SolveError};

/// Enumerative optimum with an explicit sense (avoids reading private state).
fn brute(model: &Model, n: usize, sense: Sense) -> Option<f64> {
    let mut best: Option<f64> = None;
    for mask in 0u32..(1 << n) {
        let point: Vec<f64> = (0..n).map(|j| f64::from((mask >> j) & 1)).collect();
        if model.is_feasible_point(&point, 1e-7) {
            let obj = model.objective_at(&point);
            best = Some(match (best, sense) {
                (None, _) => obj,
                (Some(b), Sense::Minimize) => b.min(obj),
                (Some(b), Sense::Maximize) => b.max(obj),
            });
        }
    }
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random 0/1 knapsacks: solver optimum equals enumeration.
    #[test]
    fn knapsack_matches_enumeration(
        items in prop::collection::vec((1.0f64..20.0, 1.0f64..20.0), 1..10),
        cap_frac in 0.2f64..0.9,
    ) {
        let mut m = Model::new(Sense::Maximize);
        let vars: Vec<_> = items.iter().map(|(value, _)| m.binary(*value)).collect();
        let total_w: f64 = items.iter().map(|(_, w)| w).sum();
        let cap = cap_frac * total_w;
        let terms: Vec<_> = vars.iter().zip(&items).map(|(v, (_, w))| (*v, *w)).collect();
        m.add_le(&terms, cap);

        let expected = brute(&m, items.len(), Sense::Maximize).expect("0 vector feasible");
        let sol = m.solve().expect("knapsack is feasible");
        prop_assert!((sol.objective() - expected).abs() < 1e-6,
            "solver={} brute={}", sol.objective(), expected);
        prop_assert!(m.is_feasible_point(sol.values(), 1e-6));
    }

    /// Random set-cover style minimization with ≥ constraints.
    #[test]
    fn cover_matches_enumeration(
        costs in prop::collection::vec(1.0f64..10.0, 2..8),
        rows in prop::collection::vec(prop::collection::vec(0u8..2, 2..8), 1..5),
    ) {
        let n = costs.len();
        let mut m = Model::new(Sense::Minimize);
        let vars: Vec<_> = costs.iter().map(|c| m.binary(*c)).collect();
        let mut any_constraint = false;
        for row in &rows {
            let terms: Vec<_> = vars
                .iter()
                .zip(row.iter().cycle())
                .take(n)
                .filter(|(_, inc)| **inc == 1)
                .map(|(v, _)| (*v, 1.0))
                .collect();
            if !terms.is_empty() {
                m.add_ge(&terms, 1.0);
                any_constraint = true;
            }
        }
        prop_assume!(any_constraint);

        let expected = brute(&m, n, Sense::Minimize);
        match (m.solve(), expected) {
            (Ok(sol), Some(e)) => {
                prop_assert!((sol.objective() - e).abs() < 1e-6,
                    "solver={} brute={}", sol.objective(), e);
            }
            (Err(SolveError::Infeasible), None) => {}
            (got, want) => prop_assert!(false, "mismatch: got={got:?} want={want:?}"),
        }
    }

    /// Mixed problems: continuous + integer variables; check feasibility and
    /// that the reported objective matches the returned point.
    #[test]
    fn mixed_solutions_are_consistent(
        int_obj in prop::collection::vec(-5.0f64..5.0, 1..4),
        cont_obj in prop::collection::vec(-5.0f64..5.0, 1..4),
        budget in 5.0f64..30.0,
    ) {
        let mut m = Model::new(Sense::Minimize);
        let ints: Vec<_> = int_obj.iter().map(|c| m.integer(0.0, 4.0, *c)).collect();
        let conts: Vec<_> = cont_obj.iter().map(|c| m.continuous(0.0, 10.0, *c)).collect();
        let mut terms: Vec<_> = ints.iter().map(|v| (*v, 1.0)).collect();
        terms.extend(conts.iter().map(|v| (*v, 1.0)));
        m.add_le(&terms, budget);
        // Force some activity so the zero point is not always optimal.
        m.add_ge(&terms, 1.0);

        let sol = m.solve().expect("feasible by construction");
        prop_assert!(m.is_feasible_point(sol.values(), 1e-5));
        prop_assert!((m.objective_at(sol.values()) - sol.objective()).abs() < 1e-6);
    }
}

#[test]
fn node_limit_reported() {
    // A problem needing branching with a 1-node budget must fail cleanly.
    let mut m = Model::new(Sense::Maximize);
    let a = m.binary(1.0);
    let b = m.binary(1.0);
    m.add_le(&[(a, 2.0), (b, 2.0)], 3.0);
    let opts = rtrm_milp::SolveOptions {
        max_nodes: 1,
        ..Default::default()
    };
    // With one node only the root relaxation (fractional) is explored.
    assert_eq!(m.solve_with(&opts), Err(SolveError::NodeLimit));
}

#[test]
fn equality_milp() {
    // x + y = 3 with binaries is infeasible; with integers in [0,3] feasible.
    let mut m = Model::new(Sense::Minimize);
    let x = m.binary(1.0);
    let y = m.binary(1.0);
    m.add_eq(&[(x, 1.0), (y, 1.0)], 3.0);
    assert_eq!(m.solve(), Err(SolveError::Infeasible));

    let mut m2 = Model::new(Sense::Minimize);
    let x = m2.integer(0.0, 3.0, 1.0);
    let y = m2.integer(0.0, 3.0, 2.0);
    m2.add_eq(&[(x, 1.0), (y, 1.0)], 3.0);
    let sol = m2.solve().expect("feasible");
    assert_eq!(sol.value(x), 3.0);
    assert_eq!(sol.value(y), 0.0);
}
