//! Branching and presolve regression tests: both children of a branch are
//! eventually explored when no budget binds (the push order only affects
//! *which* is explored first), a child LP hitting its pivot budget is
//! surfaced honestly (never `Termination::Optimal`), warm starts return
//! exactly the cold solution, and the singleton-equality presolve preserves
//! solutions.

use std::sync::Mutex;

use rtrm_milp::{Model, Sense, Solution, SolveError, SolveOptions, Termination};

/// Fail points are process-global; every test in this binary that solves a
/// model takes this lock so an armed `milp::pivot_limit` cannot leak into a
/// concurrently running test.
static SERIAL: Mutex<()> = Mutex::new(());

/// A small knapsack-flavoured MILP with a known optimum and enough binaries
/// that branch & bound explores a non-trivial tree.
fn knapsack_with_vars(n: usize) -> (Model, Vec<rtrm_milp::VarId>) {
    let mut m = Model::new(Sense::Maximize);
    let vars: Vec<_> = (0..n).map(|i| m.binary(1.0 + (i % 7) as f64)).collect();
    for w in 0..3 {
        let terms: Vec<_> = vars
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, 1.0 + ((i + w) % 5) as f64))
            .collect();
        m.add_le(&terms, 2.0 * n as f64 / 3.0);
    }
    (m, vars)
}

fn knapsack(n: usize) -> Model {
    knapsack_with_vars(n).0
}

/// Brute-forces the knapsack optimum over all 2^n binary points.
fn brute_force(n: usize) -> f64 {
    let mut best = f64::NEG_INFINITY;
    for mask in 0..(1u32 << n) {
        let point: Vec<f64> = (0..n).map(|i| f64::from(mask >> i & 1)).collect();
        let m = knapsack(n);
        if m.is_feasible_point(&point, 1e-9) {
            best = best.max(m.objective_at(&point));
        }
    }
    best
}

#[test]
fn no_subtree_is_dropped_regardless_of_push_order() {
    let _serial = SERIAL.lock().unwrap();
    // If either child of any branch were abandoned, some instance in this
    // family would miss its brute-force optimum.
    for n in 4..=10 {
        let m = knapsack(n);
        let sol = m.solve().expect("knapsack is feasible");
        assert_eq!(sol.termination(), Termination::Optimal, "n={n}");
        assert_eq!(sol.objective(), brute_force(n), "n={n}");
    }
}

#[test]
fn optimum_in_second_explored_child_fractional_above_half() {
    let _serial = SERIAL.lock().unwrap();
    // Root LP: x = 0.6, y = 1 (frac > 0.5 → up child x≥1 explored first and
    // is infeasible). The optimum x=0, y=1 lives in the down child, explored
    // second — it must still be found.
    let mut m = Model::new(Sense::Maximize);
    let x = m.binary(10.0);
    let y = m.continuous(0.0, 1.0, 1.0);
    m.add_le(&[(x, 10.0), (y, 1.0)], 7.0);
    let sol = m.solve().expect("feasible");
    assert_eq!(sol.termination(), Termination::Optimal);
    assert_eq!(sol.value(x), 0.0);
    assert!((sol.objective() - 1.0).abs() < 1e-9);
}

#[test]
fn optimum_in_second_explored_child_fractional_below_half() {
    let _serial = SERIAL.lock().unwrap();
    // Root LP: x ≈ 0.46 (frac ≤ 0.5 → down child x=0 explored first, giving
    // an incumbent of cost 4). The optimum x=1, y=0.7 of cost 2.4 lives in
    // the up child, explored second — it must still be found.
    let mut m = Model::new(Sense::Minimize);
    let x = m.binary(1.0);
    let y = m.continuous(0.0, 4.0, 2.0);
    m.add_ge(&[(x, 4.0), (y, 1.0)], 2.0);
    m.add_le(&[(x, 1.0), (y, -1.0)], 0.3);
    let sol = m.solve().expect("feasible");
    assert_eq!(sol.termination(), Termination::Optimal);
    assert_eq!(sol.value(x), 1.0);
    assert!((sol.objective() - 2.4).abs() < 1e-9);
}

#[test]
fn pivot_limit_mid_search_is_never_reported_optimal() {
    let _serial = SERIAL.lock().unwrap();
    let m = knapsack(12);
    let reference = m.solve().expect("feasible");
    assert_eq!(reference.iteration_limit_hits(), 0);
    // Abandon one child subtree mid-search: the result may be the optimum by
    // luck, but it must never be *labelled* optimal, and the hit must be
    // visible to degradation accounting.
    for key in [5, 10, 20] {
        let _fp = rtrm_testkit::arm_with(
            "milp::pivot_limit",
            rtrm_testkit::Action::Trigger,
            Some(key),
            None,
        );
        let sol = m.solve().expect("an incumbent exists before the hit");
        assert_ne!(sol.termination(), Termination::Optimal, "key={key}");
        assert_eq!(sol.termination(), Termination::IterationLimit, "key={key}");
        assert_eq!(sol.iteration_limit_hits(), 1, "key={key}");
        assert!(m.is_feasible_point(sol.values(), 1e-6), "key={key}");
        assert!(sol.objective() <= reference.objective() + 1e-9);
    }
}

#[test]
fn pivot_limit_at_the_root_fails_with_iteration_limit() {
    let _serial = SERIAL.lock().unwrap();
    let m = knapsack(12);
    // Node 1 is the root: its subtree is the whole search, so abandoning it
    // leaves no incumbent at all.
    let _fp = rtrm_testkit::arm_with(
        "milp::pivot_limit",
        rtrm_testkit::Action::Trigger,
        Some(1),
        None,
    );
    let err = m
        .solve()
        .expect_err("no incumbent without the root subtree");
    assert_eq!(err, SolveError::IterationLimit);
}

fn solve_warm(m: &Model, warm: Option<Vec<f64>>) -> Result<Solution, SolveError> {
    m.solve_with(&SolveOptions {
        warm_start: warm,
        ..SolveOptions::default()
    })
}

#[test]
fn warm_started_solve_matches_cold_exactly() {
    let _serial = SERIAL.lock().unwrap();
    for n in [8, 10, 12] {
        let m = knapsack(n);
        let cold = m.solve().expect("feasible");
        // Warm-start from the cold optimum itself: the strongest possible
        // incumbent. Values, objective and termination must be identical;
        // only the node count may shrink.
        let warm = solve_warm(&m, Some(cold.values().to_vec())).expect("feasible");
        assert_eq!(warm.values(), cold.values(), "n={n}");
        assert_eq!(warm.objective(), cold.objective(), "n={n}");
        assert_eq!(warm.termination(), cold.termination(), "n={n}");
        assert!(warm.nodes_explored() <= cold.nodes_explored(), "n={n}");

        // A feasible but sub-optimal warm start must not perturb the result
        // either.
        let zero = vec![0.0; m.num_vars()];
        let warm0 = solve_warm(&m, Some(zero)).expect("feasible");
        assert_eq!(warm0.values(), cold.values(), "n={n}");
        assert_eq!(warm0.termination(), cold.termination(), "n={n}");
    }
}

#[test]
fn warm_start_of_equal_cost_alternate_optimum_is_replaced() {
    let _serial = SERIAL.lock().unwrap();
    // Two symmetric optima; warm-starting from one must still return the
    // point the *search* reaches (the cold answer), not echo the injection.
    let mut m = Model::new(Sense::Maximize);
    let x = m.binary(1.0);
    let y = m.binary(1.0);
    m.add_le(&[(x, 1.0), (y, 1.0)], 1.0);
    let cold = m.solve().expect("feasible");
    let other = vec![1.0 - cold.value(x), 1.0 - cold.value(y)];
    assert!(m.is_feasible_point(&other, 1e-9));
    let warm = solve_warm(&m, Some(other)).expect("feasible");
    assert_eq!(warm.values(), cold.values());
    assert_eq!(warm.termination(), Termination::Optimal);
}

/// The anytime contract under truncation: a warm start must never *lose*
/// ground against the cold solve. Bit-identity is only guaranteed while the
/// injected incumbent survives to the cut (the rung then reruns cold); once
/// a leaf replaces the seed, warm may legitimately hold a *better* incumbent
/// than cold at the same budget — what it must never do is error where cold
/// has an incumbent, or return a worse one.
fn assert_no_warm_regression(
    m: &Model,
    warm: &Result<Solution, SolveError>,
    cold: &Result<Solution, SolveError>,
    context: &str,
) {
    match (warm, cold) {
        (Err(_), Ok(c)) => panic!(
            "{context}: warm solve discarded the search ({warm:?}) where cold \
             kept an incumbent of objective {}",
            c.objective()
        ),
        // A warm error can only come from the cold rerun, so it must be the
        // cold solve's own error.
        (Err(w), Err(c)) => assert_eq!(w, c, "{context}"),
        // Warm holding an incumbent cold never reached is allowed.
        (Ok(w), _) => {
            assert!(m.is_feasible_point(w.values(), 1e-6), "{context}");
            if let Ok(c) = cold {
                // Maximize sense: warm's incumbent is never worse.
                assert!(
                    w.objective() >= c.objective() - 1e-9,
                    "{context}: warm objective {} below cold {}",
                    w.objective(),
                    c.objective()
                );
            }
        }
    }
}

#[test]
fn warm_start_under_node_limit_never_regresses_cold() {
    let _serial = SERIAL.lock().unwrap();
    // A binding node budget must not turn a cold anytime incumbent into a
    // warm failure: an injected incumbent that survives the cut triggers a
    // cold rerun, so for every budget the warm result is at least the cold
    // one — `Err(NodeLimit)` only where the cold solve also finds nothing.
    // n=14 with budgets 18..=25 is the known regression window: there the
    // cold solve holds a `NodeLimit` incumbent while the seeded search is
    // cut before any leaf replaces the injection.
    for (n, budgets) in [(12, vec![1, 3, 8, 20, 60, 200]), (14, (18..=25).collect())] {
        let m = knapsack(n);
        let optimum = m.solve().expect("feasible");
        for max_nodes in budgets {
            let limits = SolveOptions {
                max_nodes,
                ..SolveOptions::default()
            };
            let cold = m.solve_with(&limits);
            let warm = m.solve_with(&SolveOptions {
                warm_start: Some(optimum.values().to_vec()),
                ..limits
            });
            assert_no_warm_regression(&m, &warm, &cold, &format!("n={n} max_nodes={max_nodes}"));
            if let Ok(w) = &warm {
                // A truncated warm solve may prove optimality early (the seed
                // prunes the rest of the tree), but an `Optimal` label must
                // mean the true optimum.
                if w.termination() == Termination::Optimal {
                    assert!(
                        (w.objective() - optimum.objective()).abs() < 1e-9,
                        "n={n} max_nodes={max_nodes}: Optimal label on objective {} != {}",
                        w.objective(),
                        optimum.objective()
                    );
                }
            }
        }
    }
}

#[test]
fn warm_start_under_pivot_limit_never_regresses_cold() {
    let _serial = SERIAL.lock().unwrap();
    // A single child LP hitting its pivot budget abandons one subtree; with
    // the optimum injected and unmatched, the warm solve must fall back to
    // the cold outcome instead of discarding the whole otherwise-complete
    // solve as `Err(IterationLimit)` (the fail point is keyed by node count
    // with unlimited firings, so the cold rerun deterministically re-hits
    // it).
    // Keys 11..=14 are the known regression window: the cold solve keeps an
    // `IterationLimit` incumbent there while the injected seed survives to
    // the cut.
    let m = knapsack(12);
    let optimum = m.solve().expect("feasible").values().to_vec();
    for key in [1, 5, 10, 11, 12, 13, 14, 20] {
        let _fp = rtrm_testkit::arm_with(
            "milp::pivot_limit",
            rtrm_testkit::Action::Trigger,
            Some(key),
            None,
        );
        let cold = m.solve();
        let warm = solve_warm(&m, Some(optimum.clone()));
        assert_no_warm_regression(&m, &warm, &cold, &format!("key={key}"));
        if let Ok(sol) = &warm {
            // The seed may prune the tree below `key` nodes, in which case
            // no subtree was ever abandoned and `Optimal` is legitimate;
            // whenever a hit is recorded, optimality must not be claimed.
            if sol.iteration_limit_hits() > 0 {
                assert_ne!(
                    sol.termination(),
                    Termination::Optimal,
                    "key={key}: a solve with an abandoned subtree must not claim optimality"
                );
            }
        }
    }
}

#[test]
fn infeasible_or_malformed_warm_starts_are_ignored() {
    let _serial = SERIAL.lock().unwrap();
    let m = knapsack(10);
    let cold = m.solve().expect("feasible");
    // All-ones violates the capacity rows; wrong length is malformed.
    for bad in [Some(vec![1.0; m.num_vars()]), Some(vec![0.0; 3])] {
        let sol = solve_warm(&m, bad).expect("feasible");
        assert_eq!(sol, cold);
    }
}

fn solve_presolve(m: &Model, presolve: bool) -> Result<Solution, SolveError> {
    m.solve_with(&SolveOptions {
        presolve,
        ..SolveOptions::default()
    })
}

#[test]
fn singleton_equality_fixing_preserves_the_solution() {
    let _serial = SERIAL.lock().unwrap();
    let (mut m, vars) = knapsack_with_vars(10);
    // Pin two variables by singleton equality rows (indices 1 → 1, 4 → 0).
    m.add_eq(&[(vars[1], 1.0)], 1.0);
    m.add_eq(&[(vars[4], 2.0)], 0.0);
    let with = solve_presolve(&m, true).expect("feasible");
    let without = solve_presolve(&m, false).expect("feasible");
    assert_eq!(with.values(), without.values());
    assert_eq!(with.objective(), without.objective());
    assert_eq!(with.value(vars[1]), 1.0);
    assert_eq!(with.value(vars[4]), 0.0);
}

#[test]
fn contradictory_singleton_rows_are_infeasible_both_ways() {
    let _serial = SERIAL.lock().unwrap();
    for presolve in [true, false] {
        // Binary fixed to a non-integral value.
        let mut m = Model::new(Sense::Minimize);
        let x = m.binary(1.0);
        m.add_eq(&[(x, 2.0)], 1.0); // x = 0.5
        assert_eq!(
            solve_presolve(&m, presolve).expect_err("x=0.5 is not integral"),
            SolveError::Infeasible,
            "presolve={presolve}"
        );

        // Value outside the variable's bounds.
        let mut m = Model::new(Sense::Minimize);
        let y = m.continuous(0.0, 1.0, 1.0);
        m.add_eq(&[(y, 1.0)], 3.0);
        assert_eq!(
            solve_presolve(&m, presolve).expect_err("y=3 exceeds its bound"),
            SolveError::Infeasible,
            "presolve={presolve}"
        );

        // Two singleton rows that disagree.
        let mut m = Model::new(Sense::Minimize);
        let z = m.continuous(0.0, 5.0, 1.0);
        m.add_eq(&[(z, 1.0)], 2.0);
        m.add_eq(&[(z, 1.0)], 3.0);
        assert_eq!(
            solve_presolve(&m, presolve).expect_err("z cannot be 2 and 3"),
            SolveError::Infeasible,
            "presolve={presolve}"
        );
    }
}
