//! CPLEX-LP-format rendering of a [`Model`] — the lingua franca for
//! inspecting MILP encodings and feeding them to external solvers for
//! spot-checks.

use std::fmt::Write as _;

use crate::model::{Cmp, Model, Sense, VarKind};

impl Model {
    /// Renders the model in CPLEX LP format: objective, constraints,
    /// bounds, and the integer section. Variables are named `x0, x1, …` in
    /// creation order.
    ///
    /// # Examples
    ///
    /// ```
    /// use rtrm_milp::{Model, Sense};
    ///
    /// let mut m = Model::new(Sense::Maximize);
    /// let a = m.binary(3.0);
    /// let b = m.binary(4.0);
    /// m.add_le(&[(a, 2.0), (b, 3.0)], 4.0);
    /// let text = m.to_lp_string();
    /// assert!(text.starts_with("Maximize"));
    /// assert!(text.contains("c0: 2 x0 + 3 x1 <= 4"));
    /// ```
    #[must_use]
    pub fn to_lp_string(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            match self.sense {
                Sense::Minimize => "Minimize",
                Sense::Maximize => "Maximize",
            }
        );
        let objective: Vec<String> = self
            .vars
            .iter()
            .enumerate()
            .filter(|(_, v)| v.objective != 0.0)
            .map(|(i, v)| format!("{} x{i}", fmt_num(v.objective)))
            .collect();
        let _ = writeln!(
            out,
            " obj: {}",
            if objective.is_empty() {
                "0".to_string()
            } else {
                join_terms(&objective)
            }
        );

        let _ = writeln!(out, "Subject To");
        for (ci, c) in self.constraints.iter().enumerate() {
            let terms: Vec<String> = c
                .terms
                .iter()
                .map(|(v, coeff)| format!("{} x{}", fmt_num(*coeff), v.index()))
                .collect();
            let op = match c.cmp {
                Cmp::Le => "<=",
                Cmp::Eq => "=",
                Cmp::Ge => ">=",
            };
            let _ = writeln!(
                out,
                " c{ci}: {} {op} {}",
                join_terms(&terms),
                fmt_num(c.rhs)
            );
        }

        let _ = writeln!(out, "Bounds");
        for (i, v) in self.vars.iter().enumerate() {
            let lo = if v.lower == f64::NEG_INFINITY {
                "-inf".to_string()
            } else {
                fmt_num(v.lower)
            };
            let hi = if v.upper == f64::INFINITY {
                "+inf".to_string()
            } else {
                fmt_num(v.upper)
            };
            let _ = writeln!(out, " {lo} <= x{i} <= {hi}");
        }

        let integers: Vec<String> = self
            .vars
            .iter()
            .enumerate()
            .filter(|(_, v)| v.kind == VarKind::Integer)
            .map(|(i, _)| format!("x{i}"))
            .collect();
        if !integers.is_empty() {
            let _ = writeln!(out, "General\n {}", integers.join(" "));
        }
        let _ = writeln!(out, "End");
        out
    }
}

/// `1` instead of `1.0000`, full precision otherwise.
fn fmt_num(x: f64) -> String {
    if x == x.trunc() && x.abs() < 1e15 {
        format!("{}", x as i64)
    } else {
        format!("{x}")
    }
}

/// `a + b - c` with signs folded into the separators.
fn join_terms(terms: &[String]) -> String {
    let mut out = String::new();
    for (i, t) in terms.iter().enumerate() {
        if i == 0 {
            out.push_str(t);
        } else if let Some(stripped) = t.strip_prefix('-') {
            out.push_str(" - ");
            out.push_str(stripped.trim_start());
        } else {
            out.push_str(" + ");
            out.push_str(t);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use crate::{Model, Sense};

    #[test]
    fn lp_output_is_complete() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.continuous(0.0, 10.0, 1.5);
        let y = m.integer(-2.0, 5.0, -1.0);
        let z = m.continuous(f64::NEG_INFINITY, f64::INFINITY, 0.0);
        m.add_ge(&[(x, 1.0), (y, -2.0)], 3.0);
        m.add_eq(&[(z, 1.0)], 0.5);
        let text = m.to_lp_string();
        assert!(text.starts_with("Minimize\n obj: 1.5 x0 - 1 x1\n"));
        assert!(text.contains("c0: 1 x0 - 2 x1 >= 3"));
        assert!(text.contains("c1: 1 x2 = 0.5"));
        assert!(text.contains(" 0 <= x0 <= 10"));
        assert!(text.contains(" -2 <= x1 <= 5"));
        assert!(text.contains(" -inf <= x2 <= +inf"));
        assert!(text.contains("General\n x1"));
        assert!(text.trim_end().ends_with("End"));
    }

    #[test]
    fn empty_objective_renders_zero() {
        let mut m = Model::new(Sense::Maximize);
        let _ = m.continuous(0.0, 1.0, 0.0);
        assert!(m.to_lp_string().contains("obj: 0"));
    }
}
