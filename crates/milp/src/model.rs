//! Model-builder API for linear and mixed-integer linear programs.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of a decision variable within its [`Model`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct VarId(pub(crate) u32);

impl VarId {
    /// Returns the variable's index in the model.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// Domain of a decision variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum VarKind {
    /// Real-valued within its bounds.
    Continuous,
    /// Integer-valued within its bounds (binary = integer in `[0, 1]`).
    Integer,
}

/// A decision variable: bounds, kind, objective coefficient.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Variable {
    pub(crate) lower: f64,
    pub(crate) upper: f64,
    pub(crate) kind: VarKind,
    pub(crate) objective: f64,
}

/// Comparison operator of a linear constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Cmp {
    /// `expr ≤ rhs`
    Le,
    /// `expr = rhs`
    Eq,
    /// `expr ≥ rhs`
    Ge,
}

impl fmt::Display for Cmp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Cmp::Le => write!(f, "<="),
            Cmp::Eq => write!(f, "="),
            Cmp::Ge => write!(f, ">="),
        }
    }
}

/// A linear constraint `Σ coeff·var  cmp  rhs`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Constraint {
    pub(crate) terms: Vec<(VarId, f64)>,
    pub(crate) cmp: Cmp,
    pub(crate) rhs: f64,
}

/// Optimization direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum Sense {
    /// Minimize the objective (default).
    #[default]
    Minimize,
    /// Maximize the objective.
    Maximize,
}

/// A mixed-integer linear program under construction.
///
/// # Examples
///
/// A tiny knapsack:
///
/// ```
/// use rtrm_milp::{Model, Sense};
///
/// let mut m = Model::new(Sense::Maximize);
/// let a = m.binary(3.0); // value 3, weight 2
/// let b = m.binary(4.0); // value 4, weight 3
/// m.add_le(&[(a, 2.0), (b, 3.0)], 4.0);
/// let sol = m.solve()?;
/// assert_eq!(sol.objective(), 4.0);
/// assert_eq!(sol.value(b).round(), 1.0);
/// # Ok::<(), rtrm_milp::SolveError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct Model {
    pub(crate) sense: Sense,
    pub(crate) vars: Vec<Variable>,
    pub(crate) constraints: Vec<Constraint>,
}

impl Model {
    /// Creates an empty model with the given optimization sense.
    #[must_use]
    pub fn new(sense: Sense) -> Self {
        Model {
            sense,
            vars: Vec::new(),
            constraints: Vec::new(),
        }
    }

    /// Adds a variable.
    ///
    /// # Panics
    ///
    /// Panics if `lower > upper` or either bound is NaN.
    pub fn var(&mut self, kind: VarKind, lower: f64, upper: f64, objective: f64) -> VarId {
        assert!(!lower.is_nan() && !upper.is_nan(), "bounds must not be NaN");
        assert!(lower <= upper, "lower bound must not exceed upper bound");
        assert!(
            objective.is_finite(),
            "objective coefficient must be finite"
        );
        let id = VarId(u32::try_from(self.vars.len()).expect("variable count fits in u32"));
        self.vars.push(Variable {
            lower,
            upper,
            kind,
            objective,
        });
        id
    }

    /// Adds a continuous variable in `[lower, upper]`.
    pub fn continuous(&mut self, lower: f64, upper: f64, objective: f64) -> VarId {
        self.var(VarKind::Continuous, lower, upper, objective)
    }

    /// Adds a binary (0/1) variable.
    pub fn binary(&mut self, objective: f64) -> VarId {
        self.var(VarKind::Integer, 0.0, 1.0, objective)
    }

    /// Adds an integer variable in `[lower, upper]`.
    pub fn integer(&mut self, lower: f64, upper: f64, objective: f64) -> VarId {
        self.var(VarKind::Integer, lower, upper, objective)
    }

    fn constraint(&mut self, terms: &[(VarId, f64)], cmp: Cmp, rhs: f64) {
        assert!(rhs.is_finite(), "constraint rhs must be finite");
        for (v, c) in terms {
            assert!(v.index() < self.vars.len(), "unknown variable {v}");
            assert!(c.is_finite(), "constraint coefficient must be finite");
        }
        self.constraints.push(Constraint {
            terms: terms.to_vec(),
            cmp,
            rhs,
        });
    }

    /// Adds `Σ terms ≤ rhs`.
    pub fn add_le(&mut self, terms: &[(VarId, f64)], rhs: f64) {
        self.constraint(terms, Cmp::Le, rhs);
    }

    /// Adds `Σ terms ≥ rhs`.
    pub fn add_ge(&mut self, terms: &[(VarId, f64)], rhs: f64) {
        self.constraint(terms, Cmp::Ge, rhs);
    }

    /// Adds `Σ terms = rhs`.
    pub fn add_eq(&mut self, terms: &[(VarId, f64)], rhs: f64) {
        self.constraint(terms, Cmp::Eq, rhs);
    }

    /// Number of variables.
    #[must_use]
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Number of constraints.
    #[must_use]
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Returns `true` if no variable is integer-constrained.
    #[must_use]
    pub fn is_pure_lp(&self) -> bool {
        self.vars.iter().all(|v| v.kind == VarKind::Continuous)
    }

    /// Solves the model (LP relaxation via two-phase simplex, plus branch &
    /// bound when integer variables are present) with default options.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::Infeasible`] if no assignment satisfies all
    /// constraints, [`SolveError::Unbounded`] if the objective is unbounded,
    /// and [`SolveError::NodeLimit`] if branch & bound exhausts its node
    /// budget before proving optimality.
    pub fn solve(&self) -> Result<Solution, SolveError> {
        crate::branch::solve(self, &crate::SolveOptions::default())
    }

    /// Like [`solve`](Model::solve) with explicit options.
    ///
    /// # Errors
    ///
    /// See [`solve`](Model::solve); additionally returns
    /// [`SolveError::TimedOut`] when
    /// [`SolveOptions::max_wall_clock_secs`](crate::SolveOptions::max_wall_clock_secs)
    /// expires before any incumbent is found (an expiry *with* an incumbent
    /// returns it, labelled [`Termination::TimedOut`]).
    pub fn solve_with(&self, options: &crate::SolveOptions) -> Result<Solution, SolveError> {
        crate::branch::solve(self, options)
    }

    /// Evaluates the objective at a point (useful in tests).
    ///
    /// # Panics
    ///
    /// Panics if `point` has the wrong length.
    #[must_use]
    pub fn objective_at(&self, point: &[f64]) -> f64 {
        assert_eq!(point.len(), self.vars.len(), "point/variable mismatch");
        self.vars
            .iter()
            .zip(point)
            .map(|(v, x)| v.objective * x)
            .sum()
    }

    /// Returns `true` if `point` satisfies all bounds and constraints within
    /// tolerance `tol`.
    ///
    /// # Panics
    ///
    /// Panics if `point` has the wrong length.
    #[must_use]
    pub fn is_feasible_point(&self, point: &[f64], tol: f64) -> bool {
        assert_eq!(point.len(), self.vars.len(), "point/variable mismatch");
        for (v, &x) in self.vars.iter().zip(point) {
            if x < v.lower - tol || x > v.upper + tol {
                return false;
            }
            if v.kind == VarKind::Integer && (x - x.round()).abs() > tol {
                return false;
            }
        }
        for c in &self.constraints {
            let lhs: f64 = c
                .terms
                .iter()
                .map(|(v, coeff)| coeff * point[v.index()])
                .sum();
            let ok = match c.cmp {
                Cmp::Le => lhs <= c.rhs + tol,
                Cmp::Ge => lhs >= c.rhs - tol,
                Cmp::Eq => (lhs - c.rhs).abs() <= tol,
            };
            if !ok {
                return false;
            }
        }
        true
    }
}

/// How a returned [`Solution`] was obtained: proven optimal, or the best
/// incumbent when a budget cut the search short (the *anytime* outcomes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum Termination {
    /// The search space was exhausted; the solution is proven optimal.
    #[default]
    Optimal,
    /// The node budget ran out; the solution is the best incumbent found.
    NodeLimit,
    /// The wall-clock budget ([`crate::SolveOptions::max_wall_clock_secs`])
    /// expired; the solution is the best incumbent found.
    TimedOut,
    /// A node's simplex hit its pivot budget, so parts of the tree were
    /// skipped; the solution is the best incumbent found.
    IterationLimit,
}

/// An optimal (or best-found) solution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Solution {
    pub(crate) values: Vec<f64>,
    pub(crate) objective: f64,
    pub(crate) nodes: u64,
    pub(crate) termination: Termination,
    #[serde(default)]
    pub(crate) iteration_limit_hits: u64,
}

impl Solution {
    /// Value of one variable.
    #[must_use]
    pub fn value(&self, var: VarId) -> f64 {
        self.values[var.index()]
    }

    /// All variable values, in variable order.
    #[must_use]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Objective value at the solution.
    #[must_use]
    pub fn objective(&self) -> f64 {
        self.objective
    }

    /// Branch & bound nodes explored (1 for pure LPs).
    #[must_use]
    pub fn nodes_explored(&self) -> u64 {
        self.nodes
    }

    /// Whether the solution is proven optimal or an anytime incumbent.
    #[must_use]
    pub fn termination(&self) -> Termination {
        self.termination
    }

    /// How many branch & bound nodes abandoned their subtree because the
    /// node's LP relaxation hit the simplex pivot budget. Nonzero counts mean
    /// parts of the tree were skipped, so callers doing degradation
    /// accounting should treat the solution as an incumbent even when it
    /// happens to match the optimum.
    #[must_use]
    pub fn iteration_limit_hits(&self) -> u64 {
        self.iteration_limit_hits
    }

    /// `true` when the search terminated with a proof of optimality.
    #[must_use]
    pub fn is_optimal(&self) -> bool {
        self.termination == Termination::Optimal
    }
}

/// Why a model could not be solved to optimality.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SolveError {
    /// No assignment satisfies all constraints.
    Infeasible,
    /// The objective can be improved without bound.
    Unbounded,
    /// Branch & bound hit its node budget before proving optimality.
    NodeLimit,
    /// The simplex iteration limit was hit (numerical trouble).
    IterationLimit,
    /// The wall-clock budget expired before any incumbent was found.
    TimedOut,
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::Infeasible => write!(f, "model is infeasible"),
            SolveError::Unbounded => write!(f, "objective is unbounded"),
            SolveError::NodeLimit => write!(f, "branch and bound node limit exceeded"),
            SolveError::IterationLimit => write!(f, "simplex iteration limit exceeded"),
            SolveError::TimedOut => write!(f, "wall-clock budget expired with no incumbent"),
        }
    }
}

impl std::error::Error for SolveError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.continuous(0.0, 10.0, 1.0);
        let y = m.binary(2.0);
        m.add_le(&[(x, 1.0), (y, 1.0)], 5.0);
        assert_eq!(m.num_vars(), 2);
        assert_eq!(m.num_constraints(), 1);
        assert!(!m.is_pure_lp());
    }

    #[test]
    fn feasibility_check() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.continuous(0.0, 10.0, 1.0);
        m.add_ge(&[(x, 1.0)], 2.0);
        assert!(m.is_feasible_point(&[2.0], 1e-9));
        assert!(!m.is_feasible_point(&[1.0], 1e-9));
        assert!(!m.is_feasible_point(&[11.0], 1e-9));
    }

    #[test]
    fn integer_feasibility_check() {
        let mut m = Model::new(Sense::Minimize);
        let _ = m.integer(0.0, 5.0, 1.0);
        assert!(m.is_feasible_point(&[3.0], 1e-9));
        assert!(!m.is_feasible_point(&[2.5], 1e-9));
    }

    #[test]
    #[should_panic(expected = "lower bound must not exceed")]
    fn inverted_bounds_rejected() {
        let mut m = Model::new(Sense::Minimize);
        let _ = m.continuous(3.0, 1.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "unknown variable")]
    fn foreign_variable_rejected() {
        let mut m1 = Model::new(Sense::Minimize);
        let mut m2 = Model::new(Sense::Minimize);
        let _ = m1.continuous(0.0, 1.0, 0.0);
        let x1 = m1.continuous(0.0, 1.0, 0.0);
        let _ = m2.continuous(0.0, 1.0, 0.0);
        m2.add_le(&[(x1, 1.0)], 1.0); // x1 has index 1, m2 has only 1 var
    }

    #[test]
    fn objective_eval() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.continuous(0.0, 1.0, 3.0);
        let _ = m.continuous(0.0, 1.0, -1.0);
        assert_eq!(m.objective_at(&[2.0, 4.0]), 2.0);
        let _ = x;
    }
}
