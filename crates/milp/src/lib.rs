//! # rtrm-milp
//!
//! A small, self-contained mixed-integer linear programming solver: a dense
//! two-phase primal simplex for LP relaxations and depth-first branch & bound
//! for integrality. It exists so that the exact resource manager of
//! *Niknafs et al., DAC 2019* can be expressed as the paper writes it
//! (Sec 4.2) without an external solver, and it is cross-validated against a
//! combinatorial branch & bound in `rtrm-core`.
//!
//! Problem sizes in this workspace are tens of variables and constraints;
//! the implementation favours robustness (Bland's anti-cycling fallback,
//! explicit tolerances) over large-scale performance.
//!
//! # Examples
//!
//! An assignment problem with binaries:
//!
//! ```
//! use rtrm_milp::{Model, Sense};
//!
//! // Assign 2 tasks to 2 machines, cost matrix [[4, 2], [3, 5]].
//! let mut m = Model::new(Sense::Minimize);
//! let x: Vec<Vec<_>> = (0..2)
//!     .map(|t| (0..2).map(|r| m.binary([[4.0, 2.0], [3.0, 5.0]][t][r])).collect())
//!     .collect();
//! for t in 0..2 {
//!     m.add_eq(&[(x[t][0], 1.0), (x[t][1], 1.0)], 1.0); // each task placed once
//! }
//! for r in 0..2 {
//!     m.add_le(&[(x[0][r], 1.0), (x[1][r], 1.0)], 1.0); // each machine ≤ 1 task
//! }
//! let sol = m.solve()?;
//! assert_eq!(sol.objective(), 5.0); // task 0 → machine 1, task 1 → machine 0
//! # Ok::<(), rtrm_milp::SolveError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod branch;
mod lp_format;
mod model;
mod simplex;

pub use model::{Cmp, Model, Sense, Solution, SolveError, Termination, VarId, VarKind, Variable};

use serde::{Deserialize, Serialize};

/// Tuning knobs for [`Model::solve_with`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SolveOptions {
    /// Maximum branch & bound nodes before giving up with
    /// [`SolveError::NodeLimit`].
    pub max_nodes: u64,
    /// Simplex pivot budget shared across one node's LP solve.
    pub max_simplex_iterations: usize,
    /// A value within this distance of an integer counts as integral.
    pub integrality_tolerance: f64,
    /// Nodes whose relaxation cannot improve the incumbent by more than this
    /// are pruned.
    pub objective_tolerance: f64,
    /// Wall-clock budget in seconds for the whole solve (branch & bound and
    /// the simplex iterations inside each node). `f64::INFINITY` (the
    /// default) disables the deadline entirely — no clock is ever read. On
    /// expiry the best incumbent is returned labelled
    /// [`Termination::TimedOut`]; with no incumbent the solve fails with
    /// [`SolveError::TimedOut`]. This is the *anytime* knob: a runtime
    /// resource manager sets it to its per-decision latency budget.
    pub max_wall_clock_secs: f64,
    /// Optional starting incumbent: a full assignment (one value per
    /// variable, in variable order). If it is feasible within
    /// [`integrality_tolerance`](SolveOptions::integrality_tolerance) it
    /// seeds branch & bound's incumbent so subtrees that cannot beat it are
    /// pruned from node one. While the injected incumbent is current, the
    /// bound test uses the *exact* comparison (no
    /// [`objective_tolerance`](SolveOptions::objective_tolerance) slack) and
    /// a search-discovered solution of *equal* cost replaces it, so the
    /// returned solution is always one the search itself reached — warm and
    /// cold solves return identical values, not just identical objectives.
    /// An infeasible warm start is silently ignored.
    #[serde(default)]
    pub warm_start: Option<Vec<f64>>,
    /// Fix variables forced by singleton equality rows (`a·x = b` with a
    /// single term) before the search starts, removing their columns from
    /// every simplex tableau. Defaults to `true`; disable to A/B the
    /// reduction.
    #[serde(default = "default_presolve")]
    pub presolve: bool,
}

fn default_presolve() -> bool {
    true
}

impl SolveOptions {
    /// Default options with an explicit wall-clock budget in seconds.
    #[must_use]
    pub fn with_wall_clock(secs: f64) -> Self {
        SolveOptions {
            max_wall_clock_secs: secs,
            ..SolveOptions::default()
        }
    }
}

impl Default for SolveOptions {
    fn default() -> Self {
        SolveOptions {
            max_nodes: 1_000_000,
            max_simplex_iterations: 50_000,
            integrality_tolerance: 1e-6,
            objective_tolerance: 1e-9,
            max_wall_clock_secs: f64::INFINITY,
            warm_start: None,
            presolve: default_presolve(),
        }
    }
}
