//! Dense two-phase primal simplex over the bounded-variable model.
//!
//! The model is lowered to standard computational form (`min c·y`,
//! `A·y = b`, `y ≥ 0`, `b ≥ 0`): each bounded variable is shifted to its
//! lower bound (or mirrored around its upper bound, or split into a
//! positive/negative pair when free), finite upper bounds become explicit
//! rows, inequalities get slack variables, and rows without a ready basic
//! column get artificials that phase 1 drives to zero.
//!
//! Dantzig pricing with a Bland's-rule fallback (anti-cycling) is used.
//! Problem sizes in this workspace are small (tens of variables), so a dense
//! tableau is the simplest robust choice.

use std::time::{Duration, Instant};

use crate::model::{Cmp, Model, Sense};

const PIVOT_EPS: f64 = 1e-9;
const FEAS_EPS: f64 = 1e-7;

/// Wall-clock cut-off shared by branch & bound and the simplex inside each
/// node. An unbounded deadline never reads the clock, so the default
/// configuration pays nothing for the anytime machinery.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Deadline {
    at: Option<Instant>,
}

impl Deadline {
    /// A deadline `max_secs` from now; `f64::INFINITY` (or any non-finite
    /// value) means no deadline.
    pub(crate) fn new(max_secs: f64) -> Self {
        let at = max_secs
            .is_finite()
            // Clamp: `from_secs_f64` rejects negatives and overflows, and
            // ~31 years is as good as unbounded.
            .then(|| Instant::now() + Duration::from_secs_f64(max_secs.clamp(0.0, 1e9)));
        Deadline { at }
    }

    /// `true` once the wall clock has passed the deadline.
    pub(crate) fn expired(&self) -> bool {
        self.at.is_some_and(|at| Instant::now() >= at)
    }
}

/// Outcome of an LP solve, in model space.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum LpOutcome {
    /// Optimal: objective value (in the model's sense) and variable values.
    Optimal { objective: f64, values: Vec<f64> },
    /// No feasible point.
    Infeasible,
    /// Objective improves without bound.
    Unbounded,
    /// Iteration budget exhausted (numerical trouble).
    IterationLimit,
    /// The wall-clock deadline expired mid-solve.
    TimedOut,
}

/// How one model variable is recovered from standard-form variables.
#[derive(Debug, Clone, Copy)]
enum Recover {
    /// `x = lb + y[i]`
    Shifted { y: usize, lb: f64 },
    /// `x = ub − y[i]` (used when only the upper bound is finite)
    Mirrored { y: usize, ub: f64 },
    /// `x = y[pos] − y[neg]` (free variable)
    Split { pos: usize, neg: usize },
    /// `x = c` (fixed by equal bounds)
    Fixed(f64),
}

/// Solves the LP relaxation of `model` with per-variable bounds overridden by
/// `lower`/`upper` (branch & bound supplies tightened bounds).
pub(crate) fn solve_lp(
    model: &Model,
    lower: &[f64],
    upper: &[f64],
    max_iterations: usize,
    deadline: &Deadline,
) -> LpOutcome {
    debug_assert_eq!(lower.len(), model.num_vars());
    debug_assert_eq!(upper.len(), model.num_vars());

    // ---- Lower variables to standard form -------------------------------
    let mut recover = Vec::with_capacity(model.num_vars());
    let mut n_struct = 0usize; // structural y variables
    let mut ub_rows: Vec<(usize, f64)> = Vec::new(); // y_i ≤ span
    for (j, _) in model.vars.iter().enumerate() {
        let (lb, ub) = (lower[j], upper[j]);
        if lb > ub {
            return LpOutcome::Infeasible;
        }
        if lb == ub {
            recover.push(Recover::Fixed(lb));
        } else if lb.is_finite() {
            let y = n_struct;
            n_struct += 1;
            if ub.is_finite() {
                ub_rows.push((y, ub - lb));
            }
            recover.push(Recover::Shifted { y, lb });
        } else if ub.is_finite() {
            let y = n_struct;
            n_struct += 1;
            recover.push(Recover::Mirrored { y, ub });
        } else {
            let pos = n_struct;
            let neg = n_struct + 1;
            n_struct += 2;
            recover.push(Recover::Split { pos, neg });
        }
    }

    // Objective over y (internally always minimized).
    let sign = match model.sense {
        Sense::Minimize => 1.0,
        Sense::Maximize => -1.0,
    };
    // The model-space objective is recomputed at the end via
    // `objective_at`, so constant offsets from bound shifts are dropped here.
    let mut c = vec![0.0; n_struct];
    for (var, rec) in model.vars.iter().zip(&recover) {
        let co = sign * var.objective;
        match *rec {
            Recover::Shifted { y, .. } => c[y] += co,
            Recover::Mirrored { y, .. } => c[y] -= co,
            Recover::Split { pos, neg } => {
                c[pos] += co;
                c[neg] -= co;
            }
            Recover::Fixed(_) => {}
        }
    }

    // ---- Assemble equality rows over y (slack columns appended later) ----
    struct Row {
        coeffs: Vec<f64>, // over structural y
        cmp: Cmp,
        rhs: f64,
    }
    let mut rows: Vec<Row> = Vec::with_capacity(model.constraints.len() + ub_rows.len());
    for con in &model.constraints {
        let mut coeffs = vec![0.0; n_struct];
        let mut rhs = con.rhs;
        for &(v, a) in &con.terms {
            match recover[v.index()] {
                Recover::Shifted { y, lb } => {
                    coeffs[y] += a;
                    rhs -= a * lb;
                }
                Recover::Mirrored { y, ub } => {
                    coeffs[y] -= a;
                    rhs -= a * ub;
                }
                Recover::Split { pos, neg } => {
                    coeffs[pos] += a;
                    coeffs[neg] -= a;
                }
                Recover::Fixed(val) => rhs -= a * val,
            }
        }
        rows.push(Row {
            coeffs,
            cmp: con.cmp,
            rhs,
        });
    }
    for &(y, span) in &ub_rows {
        let mut coeffs = vec![0.0; n_struct];
        coeffs[y] = 1.0;
        rows.push(Row {
            coeffs,
            cmp: Cmp::Le,
            rhs: span,
        });
    }

    let m = rows.len();
    let n_slack = rows.iter().filter(|r| r.cmp != Cmp::Eq).count();
    // Column layout: [structural | slacks | artificials], then rhs.
    let mut a = vec![vec![0.0; n_struct + n_slack]; m];
    let mut b = vec![0.0; m];
    let mut slack_col = n_struct;
    let mut basis_candidate: Vec<Option<usize>> = vec![None; m];
    for (i, row) in rows.iter().enumerate() {
        let mut flip = 1.0;
        if row.rhs < 0.0 {
            flip = -1.0;
        }
        for (j, &v) in row.coeffs.iter().enumerate() {
            a[i][j] = flip * v;
        }
        b[i] = flip * row.rhs;
        match row.cmp {
            Cmp::Le => {
                a[i][slack_col] = flip; // +1 if not flipped
                if flip > 0.0 {
                    basis_candidate[i] = Some(slack_col);
                }
                slack_col += 1;
            }
            Cmp::Ge => {
                a[i][slack_col] = -flip; // surplus
                if flip < 0.0 {
                    basis_candidate[i] = Some(slack_col);
                }
                slack_col += 1;
            }
            Cmp::Eq => {}
        }
    }

    // Artificials for rows without a ready basic column.
    let n_art = basis_candidate.iter().filter(|c| c.is_none()).count();
    let n_total = n_struct + n_slack + n_art;
    let mut tab = vec![vec![0.0; n_total + 1]; m];
    let mut basis = vec![0usize; m];
    let mut art_col = n_struct + n_slack;
    for i in 0..m {
        tab[i][..n_struct + n_slack].copy_from_slice(&a[i]);
        tab[i][n_total] = b[i];
        match basis_candidate[i] {
            Some(col) => basis[i] = col,
            None => {
                tab[i][art_col] = 1.0;
                basis[i] = art_col;
                art_col += 1;
            }
        }
    }

    let mut iterations_left = max_iterations;

    // ---- Phase 1: minimize the sum of artificials ------------------------
    if n_art > 0 {
        let mut cost1 = vec![0.0; n_total];
        for c in cost1.iter_mut().skip(n_struct + n_slack) {
            *c = 1.0;
        }
        match run_simplex(
            &mut tab,
            &mut basis,
            &cost1,
            &mut iterations_left,
            n_total,
            deadline,
        ) {
            SimplexEnd::Optimal(obj1) => {
                if obj1 > FEAS_EPS {
                    return LpOutcome::Infeasible;
                }
            }
            SimplexEnd::Unbounded => unreachable!("phase-1 objective is bounded below by 0"),
            SimplexEnd::IterationLimit => return LpOutcome::IterationLimit,
            SimplexEnd::TimedOut => return LpOutcome::TimedOut,
        }
        // Drive any artificial still basic (at zero) out of the basis.
        for i in 0..m {
            if basis[i] >= n_struct + n_slack {
                if let Some(col) =
                    (0..n_struct + n_slack).find(|&col| tab[i][col].abs() > PIVOT_EPS)
                {
                    pivot(&mut tab, &mut basis, i, col, n_total);
                } // else: redundant row; the zero artificial stays harmlessly.
            }
        }
    }

    // ---- Phase 2: original objective (artificial columns frozen) ---------
    let mut cost2 = vec![0.0; n_total];
    cost2[..n_struct].copy_from_slice(&c);
    let eligible = n_struct + n_slack; // artificials may not re-enter
    match run_simplex(
        &mut tab,
        &mut basis,
        &cost2,
        &mut iterations_left,
        eligible,
        deadline,
    ) {
        SimplexEnd::Optimal(_) => {}
        SimplexEnd::Unbounded => return LpOutcome::Unbounded,
        SimplexEnd::IterationLimit => return LpOutcome::IterationLimit,
        SimplexEnd::TimedOut => return LpOutcome::TimedOut,
    }

    // ---- Recover model-space solution ------------------------------------
    let mut y = vec![0.0; n_total];
    for i in 0..m {
        y[basis[i]] = tab[i][n_total];
    }
    let values: Vec<f64> = recover
        .iter()
        .map(|rec| match *rec {
            Recover::Shifted { y: i, lb } => lb + y[i],
            Recover::Mirrored { y: i, ub } => ub - y[i],
            Recover::Split { pos, neg } => y[pos] - y[neg],
            Recover::Fixed(v) => v,
        })
        .collect();
    let objective = model.objective_at(&values);
    LpOutcome::Optimal { objective, values }
}

#[derive(Debug)]
enum SimplexEnd {
    Optimal(f64),
    Unbounded,
    IterationLimit,
    TimedOut,
}

/// Runs primal simplex on the tableau in place. `eligible` limits the
/// columns allowed to enter the basis (used to freeze artificials in
/// phase 2). Returns the objective value `cost·y` at the final basis.
fn run_simplex(
    tab: &mut [Vec<f64>],
    basis: &mut [usize],
    cost: &[f64],
    iterations_left: &mut usize,
    eligible: usize,
    deadline: &Deadline,
) -> SimplexEnd {
    let m = tab.len();
    let n_total = cost.len();
    let rhs_col = n_total;
    // Dantzig pricing for the first stretch, then Bland's rule to guarantee
    // termination under degeneracy.
    let bland_after = 20 * (m + n_total);
    let mut iter = 0usize;

    loop {
        if *iterations_left == 0 {
            return SimplexEnd::IterationLimit;
        }
        // Amortize the clock read: pivots are cheap, deadlines coarse.
        if iter & 127 == 0 && deadline.expired() {
            return SimplexEnd::TimedOut;
        }
        *iterations_left -= 1;
        iter += 1;

        // Reduced costs: r_j = c_j − c_B · B⁻¹ A_j (computed from tableau).
        let mut entering: Option<usize> = None;
        let mut best = -PIVOT_EPS * 10.0;
        for j in 0..eligible {
            if basis.contains(&j) {
                continue;
            }
            let mut r = cost[j];
            for i in 0..m {
                let cb = cost[basis[i]];
                if cb != 0.0 {
                    r -= cb * tab[i][j];
                }
            }
            if iter > bland_after {
                // Bland: first improving column.
                if r < -FEAS_EPS {
                    entering = Some(j);
                    break;
                }
            } else if r < best {
                best = r;
                entering = Some(j);
            }
        }
        let Some(col) = entering else {
            let mut obj = 0.0;
            for i in 0..m {
                obj += cost[basis[i]] * tab[i][rhs_col];
            }
            return SimplexEnd::Optimal(obj);
        };

        // Ratio test (Bland ties: smallest basis index).
        let mut leave: Option<usize> = None;
        let mut best_ratio = f64::INFINITY;
        for i in 0..m {
            if tab[i][col] > PIVOT_EPS {
                let ratio = tab[i][rhs_col] / tab[i][col];
                if ratio < best_ratio - PIVOT_EPS
                    || (ratio < best_ratio + PIVOT_EPS
                        && leave.is_some_and(|l| basis[i] < basis[l]))
                {
                    best_ratio = ratio;
                    leave = Some(i);
                }
            }
        }
        let Some(row) = leave else {
            return SimplexEnd::Unbounded;
        };
        pivot(tab, basis, row, col, n_total);
    }
}

/// Gauss-Jordan pivot on `(row, col)`.
fn pivot(tab: &mut [Vec<f64>], basis: &mut [usize], row: usize, col: usize, n_total: usize) {
    let p = tab[row][col];
    debug_assert!(p.abs() > PIVOT_EPS, "pivot element too small");
    for v in &mut tab[row][..=n_total] {
        *v /= p;
    }
    let pivot_row = tab[row].clone();
    for (i, r) in tab.iter_mut().enumerate() {
        if i != row {
            let f = r[col];
            if f != 0.0 {
                for (v, pv) in r[..=n_total].iter_mut().zip(&pivot_row[..=n_total]) {
                    *v -= f * pv;
                }
            }
        }
    }
    basis[row] = col;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Model, Sense};

    fn solve(model: &Model) -> LpOutcome {
        let lower: Vec<f64> = model.vars.iter().map(|v| v.lower).collect();
        let upper: Vec<f64> = model.vars.iter().map(|v| v.upper).collect();
        solve_lp(model, &lower, &upper, 10_000, &Deadline::new(f64::INFINITY))
    }

    fn optimal(model: &Model) -> (f64, Vec<f64>) {
        match solve(model) {
            LpOutcome::Optimal { objective, values } => (objective, values),
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn maximize_with_two_constraints() {
        // max 3x + 5y s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18 → (2, 6), obj 36.
        let mut m = Model::new(Sense::Maximize);
        let x = m.continuous(0.0, f64::INFINITY, 3.0);
        let y = m.continuous(0.0, f64::INFINITY, 5.0);
        m.add_le(&[(x, 1.0)], 4.0);
        m.add_le(&[(y, 2.0)], 12.0);
        m.add_le(&[(x, 3.0), (y, 2.0)], 18.0);
        let (obj, v) = optimal(&m);
        assert!((obj - 36.0).abs() < 1e-6);
        assert!((v[0] - 2.0).abs() < 1e-6 && (v[1] - 6.0).abs() < 1e-6);
    }

    #[test]
    fn minimize_with_ge_constraints_needs_phase1() {
        // min 2x + 3y s.t. x + y ≥ 4, x ≥ 1 → (4, 0)? check: obj 8 at (4,0).
        let mut m = Model::new(Sense::Minimize);
        let x = m.continuous(0.0, f64::INFINITY, 2.0);
        let y = m.continuous(0.0, f64::INFINITY, 3.0);
        m.add_ge(&[(x, 1.0), (y, 1.0)], 4.0);
        m.add_ge(&[(x, 1.0)], 1.0);
        let (obj, v) = optimal(&m);
        assert!((obj - 8.0).abs() < 1e-6, "obj={obj} v={v:?}");
    }

    #[test]
    fn equality_constraints() {
        // min x + y s.t. x + 2y = 6, x − y = 0 → x = y = 2, obj 4.
        let mut m = Model::new(Sense::Minimize);
        let x = m.continuous(0.0, f64::INFINITY, 1.0);
        let y = m.continuous(0.0, f64::INFINITY, 1.0);
        m.add_eq(&[(x, 1.0), (y, 2.0)], 6.0);
        m.add_eq(&[(x, 1.0), (y, -1.0)], 0.0);
        let (obj, v) = optimal(&m);
        assert!((obj - 4.0).abs() < 1e-6);
        assert!((v[0] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn infeasible_detected() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.continuous(0.0, 1.0, 1.0);
        m.add_ge(&[(x, 1.0)], 2.0);
        assert_eq!(solve(&m), LpOutcome::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.continuous(0.0, f64::INFINITY, 1.0);
        m.add_ge(&[(x, 1.0)], 0.0);
        assert_eq!(solve(&m), LpOutcome::Unbounded);
    }

    #[test]
    fn free_variable_split() {
        // min x s.t. x ≥ −5 with free x → −5.
        let mut m = Model::new(Sense::Minimize);
        let x = m.continuous(f64::NEG_INFINITY, f64::INFINITY, 1.0);
        m.add_ge(&[(x, 1.0)], -5.0);
        let (obj, _) = optimal(&m);
        assert!((obj + 5.0).abs() < 1e-6);
    }

    #[test]
    fn mirrored_variable() {
        // max x with x ≤ 7 only (lb = −inf).
        let mut m = Model::new(Sense::Maximize);
        let x = m.continuous(f64::NEG_INFINITY, 7.0, 1.0);
        m.add_ge(&[(x, 1.0)], 0.0);
        let (obj, _) = optimal(&m);
        assert!((obj - 7.0).abs() < 1e-6);
    }

    #[test]
    fn fixed_variable() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.continuous(3.0, 3.0, 2.0);
        let y = m.continuous(0.0, 10.0, 1.0);
        m.add_ge(&[(x, 1.0), (y, 1.0)], 5.0);
        let (obj, v) = optimal(&m);
        assert!((v[0] - 3.0).abs() < 1e-9);
        assert!((obj - 8.0).abs() < 1e-6);
    }

    #[test]
    fn negative_rhs_rows() {
        // x ≤ −1 with x in [−10, 10]: min −x → x = −1? No: min −x means
        // maximize x, so x = −1, obj = 1.
        let mut m = Model::new(Sense::Minimize);
        let x = m.continuous(-10.0, 10.0, -1.0);
        m.add_le(&[(x, 1.0)], -1.0);
        let (obj, v) = optimal(&m);
        assert!((v[0] + 1.0).abs() < 1e-6);
        assert!((obj - 1.0).abs() < 1e-6);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Classic degeneracy: multiple redundant constraints through origin.
        let mut m = Model::new(Sense::Maximize);
        let x = m.continuous(0.0, f64::INFINITY, 0.75);
        let y = m.continuous(0.0, f64::INFINITY, -150.0);
        let z = m.continuous(0.0, f64::INFINITY, 0.02);
        let w = m.continuous(0.0, f64::INFINITY, -6.0);
        m.add_le(&[(x, 0.25), (y, -60.0), (z, -0.04), (w, 9.0)], 0.0);
        m.add_le(&[(x, 0.5), (y, -90.0), (z, -0.02), (w, 3.0)], 0.0);
        m.add_le(&[(z, 1.0)], 1.0);
        match solve(&m) {
            LpOutcome::Optimal { objective, .. } => {
                assert!((objective - 0.05).abs() < 1e-6, "obj={objective}");
            }
            other => panic!("Beale cycling example failed: {other:?}"),
        }
    }
}
