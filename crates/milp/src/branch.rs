//! Depth-first branch & bound over the LP relaxation.

use crate::model::{Model, Sense, Solution, SolveError, Termination, VarKind};
use crate::simplex::{solve_lp, Deadline, LpOutcome};
use crate::SolveOptions;

/// Solves `model` to proven optimality (or reports why it could not).
///
/// The search is *anytime* along three axes — node budget, simplex pivot
/// budget, and the wall-clock deadline of
/// [`SolveOptions::max_wall_clock_secs`]: when any of them cuts the search
/// short, the best incumbent found so far is returned with the matching
/// [`Termination`] label, and only a cut-off with no incumbent at all is an
/// error. A warm-started solve whose injected incumbent was never replaced
/// reruns cold when a node or pivot budget binds, so these anytime
/// semantics are those of the cold solve with or without a warm start (see
/// the rerun comment at the end of this function). The `milp::stall` fail
/// point (keyed by the node count) forces the deadline check to fire
/// deterministically in fault-injection tests.
pub(crate) fn solve(model: &Model, options: &SolveOptions) -> Result<Solution, SolveError> {
    let mut lower: Vec<f64> = model.vars.iter().map(|v| v.lower).collect();
    let mut upper: Vec<f64> = model.vars.iter().map(|v| v.upper).collect();

    // Presolve: a singleton equality row `a·x = b` forces `x = b/a`; tighten
    // the root bounds so the simplex drops the column from every tableau (a
    // variable with equal bounds is substituted out before phase 1). The row
    // itself stays in the model and reduces to a redundant constant, which
    // phase 1 absorbs.
    if options.presolve {
        for c in &model.constraints {
            if c.cmp != crate::model::Cmp::Eq || c.terms.len() != 1 {
                continue;
            }
            let (var, coeff) = c.terms[0];
            if coeff == 0.0 {
                if c.rhs != 0.0 {
                    return Err(SolveError::Infeasible);
                }
                continue;
            }
            let j = var.index();
            let mut v = c.rhs / coeff;
            if model.vars[j].kind == VarKind::Integer {
                if (v - v.round()).abs() > options.integrality_tolerance {
                    return Err(SolveError::Infeasible);
                }
                v = v.round();
            }
            if v < lower[j] || v > upper[j] {
                return Err(SolveError::Infeasible);
            }
            lower[j] = v;
            upper[j] = v;
        }
    }

    // Internally compare in "minimize" direction.
    let dir = match model.sense {
        Sense::Minimize => 1.0,
        Sense::Maximize => -1.0,
    };

    let deadline = Deadline::new(options.max_wall_clock_secs);
    let mut best: Option<(f64, Vec<f64>)> = None; // (dir·objective, values)

    // Seed the incumbent from a caller-supplied warm start, if it checks out
    // as a feasible point. `injected` marks that the incumbent came from
    // outside the search; while it is set, the bound test below uses the
    // exact comparison (no `objective_tolerance` slack) so a subtree holding
    // an equally good or better optimum is never cut, and an equally good
    // search-discovered leaf *replaces* the injected point. Both together
    // guarantee the returned values are ones the search itself reached, so
    // warm and cold solves of the same model agree exactly.
    let mut injected = false;
    if let Some(ws) = &options.warm_start {
        if ws.len() == model.vars.len() {
            let mut snapped = ws.clone();
            for (j, var) in model.vars.iter().enumerate() {
                if var.kind == VarKind::Integer {
                    snapped[j] = snapped[j].round();
                }
            }
            let tol = options.integrality_tolerance;
            let within_root = snapped
                .iter()
                .zip(lower.iter().zip(&upper))
                .all(|(&x, (&lb, &ub))| x >= lb - tol && x <= ub + tol);
            if within_root && model.is_feasible_point(&snapped, tol) {
                best = Some((dir * model.objective_at(&snapped), snapped));
                injected = true;
            }
        }
    }

    let mut nodes: u64 = 0;
    let mut stack = vec![(lower, upper)];
    let mut hit_node_limit = false;
    let mut hit_iteration_limit = false;
    let mut iteration_limit_hits: u64 = 0;
    let mut hit_time_limit = false;

    while let Some((lb, ub)) = stack.pop() {
        if rtrm_testkit::triggered("milp::stall", nodes) || deadline.expired() {
            hit_time_limit = true;
            break;
        }
        if nodes >= options.max_nodes {
            hit_node_limit = true;
            break;
        }
        nodes += 1;

        // The `milp::pivot_limit` fail point (keyed by the node count)
        // simulates a child LP exhausting its pivot budget, so tests can pin
        // that such paths never report `Termination::Optimal`.
        let outcome = if rtrm_testkit::triggered("milp::pivot_limit", nodes) {
            LpOutcome::IterationLimit
        } else {
            solve_lp(model, &lb, &ub, options.max_simplex_iterations, &deadline)
        };
        let (objective, values) = match outcome {
            LpOutcome::Optimal { objective, values } => (objective, values),
            LpOutcome::Infeasible => continue,
            LpOutcome::Unbounded => {
                // An unbounded relaxation at the root means the MILP is
                // unbounded or infeasible; we report unbounded, matching LP
                // solver convention. Deeper nodes inherit the root bounds,
                // so this can only trigger at the root.
                return Err(SolveError::Unbounded);
            }
            LpOutcome::IterationLimit => {
                hit_iteration_limit = true;
                iteration_limit_hits += 1;
                continue;
            }
            LpOutcome::TimedOut => {
                hit_time_limit = true;
                break;
            }
        };

        // Bound: prune nodes that cannot beat the incumbent. An injected
        // incumbent prunes with the exact bound — no tolerance slack —
        // because its cost is a feasible value, not a proven one: shaving
        // `objective_tolerance` off it could cut the subtree holding a
        // strictly better optimum.
        if let Some((best_obj, _)) = &best {
            let prune = if injected {
                dir * objective > *best_obj
            } else {
                dir * objective >= *best_obj - options.objective_tolerance
            };
            if prune {
                continue;
            }
        }

        // Pick the branching variable, pseudocost-lite: the fractional
        // integer variable with the largest objective impact (|coefficient|)
        // branches first, so both children move the bound the most.
        // Tie-break most-fractional (closest to x.5), then lowest index, so
        // the choice — and with it the whole tree — is deterministic.
        let mut branch_var: Option<(usize, f64, f64)> = None; // (j, |coeff|, dist)
        for (j, var) in model.vars.iter().enumerate() {
            if var.kind != VarKind::Integer {
                continue;
            }
            let x = values[j];
            if (x - x.round()).abs() <= options.integrality_tolerance {
                continue;
            }
            let dist_to_half = (x - x.floor() - 0.5).abs();
            let score = var.objective.abs();
            let better = match &branch_var {
                None => true,
                Some((_, s, d)) => score > *s || (score == *s && dist_to_half < *d),
            };
            if better {
                branch_var = Some((j, score, dist_to_half));
            }
        }

        match branch_var {
            None => {
                // Integral: candidate incumbent. Snap integers exactly.
                let mut snapped = values;
                for (j, var) in model.vars.iter().enumerate() {
                    if var.kind == VarKind::Integer {
                        snapped[j] = snapped[j].round();
                    }
                }
                let obj = model.objective_at(&snapped);
                let key = dir * obj;
                // A search-discovered leaf must strictly beat a searched
                // incumbent, but it *replaces* an injected one of equal cost:
                // from then on the incumbent is a point the search reached,
                // and warm/cold runs hold identical state.
                let replaces = match best.as_ref() {
                    None => true,
                    Some((b, _)) => {
                        if injected {
                            key <= *b
                        } else {
                            key < *b
                        }
                    }
                };
                if replaces {
                    best = Some((key, snapped));
                    injected = false;
                }
            }
            Some((j, _, _)) => {
                let x = values[j];
                let floor = x.floor();
                let mut up_lb = lb.clone();
                let up_ub = ub.clone();
                up_lb[j] = floor + 1.0;
                let down_lb = lb;
                let mut down_ub = ub;
                down_ub[j] = floor;
                let up = (up_lb, up_ub);
                let down = (down_lb, down_ub);
                // Explore the side closer to the fractional value first.
                if x - floor > 0.5 {
                    stack.push(down);
                    stack.push(up);
                } else {
                    stack.push(up);
                    stack.push(down);
                }
            }
        }
    }

    // The injected incumbent never leaves the search: it only ever prunes.
    // Whenever it survives un-replaced — the tree was exhausted without a
    // leaf matching it (possible only through float corners in the
    // relaxation bound), or the node budget / a child LP's pivot budget
    // truncated a subtree before any leaf matched — rerun cold, so the
    // result is exactly what a cold solve returns: its best
    // search-discovered incumbent under the matching non-`Optimal`
    // [`Termination`], or the cold error only when even a cold solve finds
    // nothing. The rerun keeps the caller's full budgets (shrinking them
    // would change the cold result) and the warm run's effort is folded
    // into the returned accounting, so the up-to-2× spend stays visible.
    // Wall-clock expiry is the one exception — a rerun would double the
    // deadline — so it reports `Err(TimedOut)` instead of echoing the
    // caller's own point back, and callers already treat that as latency
    // degradation.
    if injected {
        if hit_time_limit {
            best = None;
        } else {
            let cold = SolveOptions {
                warm_start: None,
                ..options.clone()
            };
            return solve(model, &cold).map(|mut s| {
                s.nodes += nodes;
                s.iteration_limit_hits += iteration_limit_hits;
                s
            });
        }
    }

    match best {
        Some((_, values)) => {
            let objective = model.objective_at(&values);
            let termination = if hit_time_limit {
                Termination::TimedOut
            } else if hit_node_limit {
                Termination::NodeLimit
            } else if hit_iteration_limit {
                Termination::IterationLimit
            } else {
                Termination::Optimal
            };
            Ok(Solution {
                values,
                objective,
                nodes,
                termination,
                iteration_limit_hits,
            })
        }
        None if hit_time_limit => Err(SolveError::TimedOut),
        None if hit_node_limit => Err(SolveError::NodeLimit),
        None if hit_iteration_limit => Err(SolveError::IterationLimit),
        None => Err(SolveError::Infeasible),
    }
}
