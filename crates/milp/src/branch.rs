//! Depth-first branch & bound over the LP relaxation.

use crate::model::{Model, Sense, Solution, SolveError, Termination, VarKind};
use crate::simplex::{solve_lp, Deadline, LpOutcome};
use crate::SolveOptions;

/// Solves `model` to proven optimality (or reports why it could not).
///
/// The search is *anytime* along three axes — node budget, simplex pivot
/// budget, and the wall-clock deadline of
/// [`SolveOptions::max_wall_clock_secs`]: when any of them cuts the search
/// short, the best incumbent found so far is returned with the matching
/// [`Termination`] label, and only a cut-off with no incumbent at all is an
/// error. The `milp::stall` fail point (keyed by the node count) forces the
/// deadline check to fire deterministically in fault-injection tests.
pub(crate) fn solve(model: &Model, options: &SolveOptions) -> Result<Solution, SolveError> {
    let lower: Vec<f64> = model.vars.iter().map(|v| v.lower).collect();
    let upper: Vec<f64> = model.vars.iter().map(|v| v.upper).collect();

    // Internally compare in "minimize" direction.
    let dir = match model.sense {
        Sense::Minimize => 1.0,
        Sense::Maximize => -1.0,
    };

    let deadline = Deadline::new(options.max_wall_clock_secs);
    let mut best: Option<(f64, Vec<f64>)> = None; // (dir·objective, values)
    let mut nodes: u64 = 0;
    let mut stack = vec![(lower, upper)];
    let mut hit_node_limit = false;
    let mut hit_iteration_limit = false;
    let mut hit_time_limit = false;

    while let Some((lb, ub)) = stack.pop() {
        if rtrm_testkit::triggered("milp::stall", nodes) || deadline.expired() {
            hit_time_limit = true;
            break;
        }
        if nodes >= options.max_nodes {
            hit_node_limit = true;
            break;
        }
        nodes += 1;

        let outcome = solve_lp(model, &lb, &ub, options.max_simplex_iterations, &deadline);
        let (objective, values) = match outcome {
            LpOutcome::Optimal { objective, values } => (objective, values),
            LpOutcome::Infeasible => continue,
            LpOutcome::Unbounded => {
                // An unbounded relaxation at the root means the MILP is
                // unbounded or infeasible; we report unbounded, matching LP
                // solver convention. Deeper nodes inherit the root bounds,
                // so this can only trigger at the root.
                return Err(SolveError::Unbounded);
            }
            LpOutcome::IterationLimit => {
                hit_iteration_limit = true;
                continue;
            }
            LpOutcome::TimedOut => {
                hit_time_limit = true;
                break;
            }
        };

        // Bound: prune nodes that cannot beat the incumbent.
        if let Some((best_obj, _)) = &best {
            if dir * objective >= *best_obj - options.objective_tolerance {
                continue;
            }
        }

        // Pick the most fractional integer variable (closest to x.5).
        let mut branch_var: Option<(usize, f64)> = None;
        for (j, var) in model.vars.iter().enumerate() {
            if var.kind != VarKind::Integer {
                continue;
            }
            let x = values[j];
            if (x - x.round()).abs() <= options.integrality_tolerance {
                continue;
            }
            let dist_to_half = (x - x.floor() - 0.5).abs();
            if branch_var.is_none_or(|(_, d)| dist_to_half < d) {
                branch_var = Some((j, dist_to_half));
            }
        }

        match branch_var {
            None => {
                // Integral: candidate incumbent. Snap integers exactly.
                let mut snapped = values;
                for (j, var) in model.vars.iter().enumerate() {
                    if var.kind == VarKind::Integer {
                        snapped[j] = snapped[j].round();
                    }
                }
                let obj = model.objective_at(&snapped);
                let key = dir * obj;
                if best.as_ref().is_none_or(|(b, _)| key < *b) {
                    best = Some((key, snapped));
                }
            }
            Some((j, _)) => {
                let x = values[j];
                let floor = x.floor();
                // Down branch pushed last → explored first (DFS), which digs
                // toward integral solutions quickly.
                let mut up_lb = lb.clone();
                let up_ub = ub.clone();
                up_lb[j] = floor + 1.0;
                let down_lb = lb;
                let mut down_ub = ub;
                down_ub[j] = floor;
                let up = (up_lb, up_ub);
                let down = (down_lb, down_ub);
                // Explore the side closer to the fractional value first.
                if x - floor > 0.5 {
                    stack.push(down);
                    stack.push(up);
                } else {
                    stack.push(up);
                    stack.push(down);
                }
            }
        }
    }

    match best {
        Some((_, values)) => {
            let objective = model.objective_at(&values);
            let termination = if hit_time_limit {
                Termination::TimedOut
            } else if hit_node_limit {
                Termination::NodeLimit
            } else if hit_iteration_limit {
                Termination::IterationLimit
            } else {
                Termination::Optimal
            };
            Ok(Solution {
                values,
                objective,
                nodes,
                termination,
            })
        }
        None if hit_time_limit => Err(SolveError::TimedOut),
        None if hit_node_limit => Err(SolveError::NodeLimit),
        None if hit_iteration_limit => Err(SolveError::IterationLimit),
        None => Err(SolveError::Infeasible),
    }
}
