//! Parallel experiment runner: simulates many traces across worker threads.
//!
//! The paper's experiments average over hundreds of traces per
//! configuration; traces are independent, so they parallelize trivially.
//! A persistent pool of workers pulls *chunks* of trace indices from a
//! shared counter (`std::thread::scope`), and each worker keeps one warm
//! [`SimScratch`] — engine heaps, staging buffers, and the manager-side
//! [`rtrm_core::TimelinePool`] — for its whole lifetime, so the steady
//! state of a large batch allocates nothing in the simulator. Each report
//! lands in its own write-once slot — the chunked counter hands every trace
//! to exactly one worker, so no lock is ever contended on the results.
//!
//! Worker count resolution (documented clamping rule): an explicit
//! [`BatchOptions::workers`] wins, then the `RTRM_WORKERS` environment
//! variable, then [`std::thread::available_parallelism`]; whatever the
//! source, the count is clamped to at least 1 and at most the number of
//! traces (a worker with no possible work is never spawned).
//!
//! Fault isolation: a panic while simulating one trace does not take down
//! the batch. The worker catches it, **quarantines** that trace (index and
//! panic payload land in [`BatchStats::quarantined`]), rebuilds its warm
//! scratch — a panicking simulation can leave it in any state — and moves
//! on. A panic inside the caller's [`BatchOptions::on_trace`] hook is
//! quarantined the same way (the hook runs on the worker thread, inside the
//! pool). Every other trace's report is bit-identical to a clean run.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use rtrm_core::ResourceManager;
use rtrm_platform::{Platform, TaskCatalog, Trace};
use rtrm_predict::Predictor;

use crate::report::SimReport;
use crate::simulator::{SimConfig, SimScratch, Simulator};

/// Per-trace measurement handed to [`BatchOptions::on_trace`] and recorded
/// in [`BatchStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceStats {
    /// Index of the trace in the batch.
    pub trace: usize,
    /// Index of the worker that simulated it.
    pub worker: usize,
    /// Wall-clock nanoseconds the simulation took (manager and predictor
    /// construction included — that is part of the per-trace cost).
    pub nanos: u64,
    /// Requests in the trace.
    pub requests: usize,
    /// Requests the manager accepted.
    pub accepted: usize,
}

/// A trace that panicked mid-simulation and was quarantined by its worker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceFault {
    /// Index of the trace in the batch.
    pub trace: usize,
    /// The panic payload, stringified.
    pub panic: String,
}

/// Batch-level counters returned by [`run_batch_with`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchStats {
    /// Workers actually spawned (after the clamping rule).
    pub workers: usize,
    /// Chunk size used for dispatch.
    pub chunk: usize,
    /// Wall-clock nanoseconds per trace, in trace order (for a quarantined
    /// trace: the time until its panic).
    pub trace_nanos: Vec<u64>,
    /// Traces that panicked and were quarantined, in trace order. Their
    /// reports are missing from the result vector.
    pub quarantined: Vec<TraceFault>,
}

/// Tuning knobs for [`run_batch_with`]. `BatchOptions::default()` matches
/// the behaviour of [`run_batch`].
#[derive(Clone, Copy, Default)]
pub struct BatchOptions<'a> {
    /// Worker thread count. `None` reads `RTRM_WORKERS`, falling back to
    /// [`std::thread::available_parallelism`]. Whatever the source, the
    /// count is clamped to `1..=traces` (see [`resolve_workers`]).
    pub workers: Option<usize>,
    /// Traces claimed per counter increment. `None` picks
    /// `traces / (workers * 8)` clamped to `1..=32`: big enough to amortize
    /// the shared atomic, small enough that the slowest trace cannot strand
    /// a long tail behind one worker.
    pub chunk: Option<usize>,
    /// Called on the worker thread after each trace completes. Hooks must
    /// be cheap and thread-safe; they run inside the pool. A panicking hook
    /// quarantines its trace (the report is withheld, the fault lands in
    /// [`BatchStats::quarantined`]) instead of aborting the batch.
    pub on_trace: Option<&'a (dyn Fn(&TraceStats) + Sync)>,
}

impl std::fmt::Debug for BatchOptions<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchOptions")
            .field("workers", &self.workers)
            .field("chunk", &self.chunk)
            .field("on_trace", &self.on_trace.map(|_| "Fn(&TraceStats)"))
            .finish()
    }
}

/// Resolves the worker count for a batch of `traces` traces: `explicit`
/// wins, then the `RTRM_WORKERS` environment variable, then
/// [`std::thread::available_parallelism`] — and the result is clamped to
/// **at least 1 and at most `traces`** (with a floor of 1 for empty
/// batches). The clamp is pinned by unit tests.
#[must_use]
pub fn resolve_workers(explicit: Option<usize>, traces: usize) -> usize {
    let env = std::env::var("RTRM_WORKERS")
        .ok()
        .and_then(|v| v.parse().ok());
    resolve_workers_with(explicit, traces, env)
}

/// [`resolve_workers`] with the `RTRM_WORKERS` lookup already performed:
/// `env` is the parsed value of the variable (or `None` when unset /
/// unparsable). Injecting the lookup keeps the resolution rule testable
/// without mutating the process environment — `std::env::set_var` in a test
/// races every concurrently running `resolve_workers(None, _)` call.
#[must_use]
pub fn resolve_workers_with(explicit: Option<usize>, traces: usize, env: Option<usize>) -> usize {
    let requested = explicit.or(env).unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(4)
    });
    requested.clamp(1, traces.max(1))
}

/// Runs every trace through a fresh manager (and optional fresh predictor)
/// and returns the per-trace reports in trace order.
///
/// `make_manager(i)` and `make_predictor(i)` are called once per trace `i`
/// on the worker thread that simulates it. Returning `None` from
/// `make_predictor` disables prediction for that trace.
///
/// # Panics
///
/// Panics if any trace's simulation panicked (after the whole batch has
/// finished — the workers quarantine faults rather than abort). Use
/// [`run_batch_with`] to inspect [`BatchStats::quarantined`] instead.
///
/// Equivalent to [`run_batch_with`] with default [`BatchOptions`]; worker
/// count follows the `RTRM_WORKERS` / available-parallelism rule of
/// [`resolve_workers`].
///
/// # Examples
///
/// With the predictor path enabled — each trace gets its own perfectly
/// accurate oracle, so the managers plan around the true next request:
///
/// ```
/// use rand::SeedableRng;
/// use rtrm_core::HeuristicRm;
/// use rtrm_platform::Platform;
/// use rtrm_predict::{OraclePredictor, Predictor};
/// use rtrm_sim::{run_batch, SimConfig};
/// use rtrm_trace::{generate_catalog, generate_traces, CatalogConfig, TraceConfig};
///
/// let platform = Platform::paper_default();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(5);
/// let catalog = generate_catalog(&platform, &CatalogConfig::paper(), &mut rng);
/// let cfg = TraceConfig { length: 30, ..TraceConfig::calibrated_vt() };
/// let traces = generate_traces(&catalog, &cfg, 4, 5);
///
/// let reports = run_batch(
///     &platform,
///     &catalog,
///     &SimConfig::default(),
///     &traces,
///     |_| Box::new(HeuristicRm::new()),
///     |i| {
///         let oracle: Box<dyn Predictor + Send> =
///             Box::new(OraclePredictor::perfect(&traces[i], catalog.len()));
///         Some(oracle)
///     },
/// );
/// assert_eq!(reports.len(), 4);
/// // The oracle is consulted on every activation; at least some plans
/// // honour the predicted request.
/// assert!(reports.iter().any(|r| r.used_prediction > 0));
/// ```
pub fn run_batch<M, P>(
    platform: &Platform,
    catalog: &TaskCatalog,
    config: &SimConfig,
    traces: &[Trace],
    make_manager: M,
    make_predictor: P,
) -> Vec<SimReport>
where
    M: Fn(usize) -> Box<dyn ResourceManager + Send> + Sync,
    P: Fn(usize) -> Option<Box<dyn Predictor + Send>> + Sync,
{
    let (reports, stats) = run_batch_with(
        platform,
        catalog,
        config,
        traces,
        make_manager,
        make_predictor,
        &BatchOptions::default(),
    );
    if let Some(fault) = stats.quarantined.first() {
        panic!("trace {} panicked: {}", fault.trace, fault.panic);
    }
    reports
}

/// [`run_batch`] with explicit [`BatchOptions`], additionally returning the
/// per-trace timing and dispatch counters.
///
/// The reports are bit-identical to per-trace sequential
/// [`Simulator::run`] calls regardless of worker count, chunk size, or
/// scratch reuse (workers keep one warm [`SimScratch`] each); the
/// differential suite in `crates/bench/tests/sweep_differential.rs` asserts
/// this at batch scale.
///
/// A trace whose simulation panics is quarantined rather than aborting the
/// batch: its report is omitted (the result vector holds the surviving
/// reports, still in trace order) and the fault is recorded in
/// [`BatchStats::quarantined`]. The worker rebuilds its warm scratch before
/// continuing, so the surviving reports are unaffected by the fault.
pub fn run_batch_with<M, P>(
    platform: &Platform,
    catalog: &TaskCatalog,
    config: &SimConfig,
    traces: &[Trace],
    make_manager: M,
    make_predictor: P,
    options: &BatchOptions<'_>,
) -> (Vec<SimReport>, BatchStats)
where
    M: Fn(usize) -> Box<dyn ResourceManager + Send> + Sync,
    P: Fn(usize) -> Option<Box<dyn Predictor + Send>> + Sync,
{
    let workers = resolve_workers(options.workers, traces.len());
    let chunk = options
        .chunk
        .unwrap_or_else(|| (traces.len() / (workers * 8)).clamp(1, 32));
    let next = AtomicUsize::new(0);
    let results: Vec<OnceLock<SimReport>> = (0..traces.len()).map(|_| OnceLock::new()).collect();
    let nanos: Vec<OnceLock<u64>> = (0..traces.len()).map(|_| OnceLock::new()).collect();
    let faults: Mutex<Vec<TraceFault>> = Mutex::new(Vec::new());

    std::thread::scope(|scope| {
        for worker in 0..workers {
            let next = &next;
            let results = &results;
            let nanos = &nanos;
            let faults = &faults;
            let make_manager = &make_manager;
            let make_predictor = &make_predictor;
            scope.spawn(move || {
                let simulator = Simulator::new(platform, catalog, config.clone());
                let mut scratch = SimScratch::new();
                loop {
                    let start = next.fetch_add(chunk, Ordering::Relaxed);
                    if start >= traces.len() {
                        break;
                    }
                    for i in start..(start + chunk).min(traces.len()) {
                        let began = Instant::now();
                        let outcome = catch_unwind(AssertUnwindSafe(|| {
                            rtrm_testkit::maybe_panic("batch::trace", i as u64);
                            // Armed with an abort action, this kills the
                            // whole process mid-cell (no unwinding, no Drop
                            // cleanup) — the chaos suite's worker-death hook.
                            rtrm_testkit::maybe_die("batch::trace", i as u64);
                            let mut manager = make_manager(i);
                            let mut predictor = make_predictor(i);
                            simulator.run_with_scratch(
                                &traces[i],
                                manager.as_mut(),
                                predictor.as_deref_mut().map(|p| p as &mut dyn Predictor),
                                &mut scratch,
                            )
                        }));
                        let elapsed = began.elapsed().as_nanos() as u64;
                        nanos[i].set(elapsed).expect("trace timed exactly once");
                        match outcome {
                            Ok(report) => {
                                // The hook runs under its own catch_unwind:
                                // a panicking hook quarantines the trace
                                // (report withheld) instead of unwinding the
                                // worker and aborting the batch. The
                                // simulation itself completed cleanly, so
                                // the warm scratch needs no rebuild.
                                let hooked = catch_unwind(AssertUnwindSafe(|| {
                                    if let Some(hook) = options.on_trace {
                                        hook(&TraceStats {
                                            trace: i,
                                            worker,
                                            nanos: elapsed,
                                            requests: report.requests,
                                            accepted: report.accepted,
                                        });
                                    }
                                }));
                                match hooked {
                                    Ok(()) => results[i]
                                        .set(report)
                                        .expect("trace index dispatched to exactly one worker"),
                                    Err(payload) => faults
                                        .lock()
                                        .expect("fault list poisoned")
                                        .push(TraceFault {
                                            trace: i,
                                            // `&*`: downcast the payload, not the box.
                                            panic: panic_message(&*payload),
                                        }),
                                }
                            }
                            Err(payload) => {
                                // The unwound simulation can leave the warm
                                // scratch in any state; quarantine the trace
                                // and start the next one from a fresh one.
                                scratch = SimScratch::new();
                                faults
                                    .lock()
                                    .expect("fault list poisoned")
                                    .push(TraceFault {
                                        trace: i,
                                        // `&*`: downcast the payload, not the box.
                                        panic: panic_message(&*payload),
                                    });
                            }
                        }
                    }
                }
            });
        }
    });

    let mut quarantined = faults.into_inner().expect("fault list poisoned");
    quarantined.sort_by_key(|f| f.trace);
    let reports = results
        .into_iter()
        .enumerate()
        .filter_map(|(i, slot)| {
            let report = slot.into_inner();
            assert!(
                report.is_some() || quarantined.iter().any(|f| f.trace == i),
                "trace {i} neither simulated nor quarantined"
            );
            report
        })
        .collect();
    let stats = BatchStats {
        workers,
        chunk,
        trace_nanos: nanos
            .into_iter()
            .map(|slot| slot.into_inner().expect("every trace timed"))
            .collect(),
        quarantined,
    };
    (reports, stats)
}

/// Best-effort stringification of a caught panic payload (`&str` and
/// `String` payloads cover `panic!` with and without formatting). Other
/// payloads (`std::panic::panic_any`) cannot reveal their concrete type
/// through `dyn Any`, so common primitive types are probed by downcast and
/// reported with their type name and value; anything else falls back to the
/// opaque [`std::any::TypeId`].
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        return (*s).to_string();
    }
    if let Some(s) = payload.downcast_ref::<String>() {
        return s.clone();
    }
    macro_rules! probe {
        ($($t:ty),* $(,)?) => {
            $(if let Some(v) = payload.downcast_ref::<$t>() {
                return format!("non-string panic payload: {} = {v:?}", stringify!($t));
            })*
        };
    }
    probe!(i8, i16, i32, i64, i128, isize, u8, u16, u32, u64, u128, usize, f32, f64, bool, char);
    format!("non-string panic payload of type {:?}", payload.type_id())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rtrm_core::HeuristicRm;
    use rtrm_trace::{generate_catalog, generate_traces, CatalogConfig, TraceConfig};

    fn fixture(traces: usize, length: usize, seed: u64) -> (Platform, TaskCatalog, Vec<Trace>) {
        let platform = Platform::paper_default();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let catalog = generate_catalog(&platform, &CatalogConfig::paper(), &mut rng);
        let cfg = TraceConfig {
            length,
            ..TraceConfig::calibrated_vt()
        };
        let traces = generate_traces(&catalog, &cfg, traces, seed);
        (platform, catalog, traces)
    }

    #[test]
    fn batch_matches_sequential() {
        let (platform, catalog, traces) = fixture(6, 60, 8);
        let config = SimConfig::default();
        let parallel = run_batch(
            &platform,
            &catalog,
            &config,
            &traces,
            |_| Box::new(HeuristicRm::new()),
            |_| None,
        );

        let simulator = Simulator::new(&platform, &catalog, config);
        for (trace, report) in traces.iter().zip(&parallel) {
            let sequential = simulator.run(trace, &mut HeuristicRm::new(), None);
            assert_eq!(&sequential, report, "parallel run must be deterministic");
        }
    }

    #[test]
    fn batch_of_one_trace_uses_single_worker() {
        let (platform, catalog, traces) = fixture(1, 20, 11);
        let (reports, stats) = run_batch_with(
            &platform,
            &catalog,
            &SimConfig::default(),
            &traces,
            |_| Box::new(HeuristicRm::new()),
            |_| None,
            &BatchOptions {
                workers: Some(64),
                ..BatchOptions::default()
            },
        );
        assert_eq!(reports.len(), 1);
        assert_eq!(stats.workers, 1, "workers are clamped to the trace count");
    }

    #[test]
    fn worker_clamp_rule_is_pinned() {
        // The documented rule: >= 1 always, <= traces (floor 1 on empty).
        assert_eq!(resolve_workers(Some(0), 10), 1);
        assert_eq!(resolve_workers(Some(64), 6), 6);
        assert_eq!(resolve_workers(Some(4), 4), 4);
        assert_eq!(resolve_workers(Some(4), 0), 1);
        assert_eq!(resolve_workers(Some(1), 1), 1);
    }

    #[test]
    fn rtrm_workers_env_overrides_parallelism() {
        // The env lookup is injected (`resolve_workers_with`), so this test
        // never calls `std::env::set_var` — mutating `RTRM_WORKERS` here
        // would race every concurrent test that resolves with
        // `workers: None`.
        assert_eq!(resolve_workers_with(None, 100, Some(3)), 3);
        assert_eq!(
            resolve_workers_with(None, 2, Some(3)),
            2,
            "env count is still clamped"
        );
        assert_eq!(
            resolve_workers_with(Some(5), 100, Some(3)),
            5,
            "explicit beats env"
        );
        // Without env or explicit count the parallelism fallback applies,
        // still clamped to the trace count.
        assert_eq!(resolve_workers_with(None, 1, None), 1);
    }

    #[test]
    fn panic_messages_name_the_payload_type() {
        assert_eq!(panic_message(&"boom"), "boom");
        assert_eq!(panic_message(&"boom".to_string()), "boom");
        assert_eq!(panic_message(&42u32), "non-string panic payload: u32 = 42");
        assert_eq!(panic_message(&-1i64), "non-string panic payload: i64 = -1");
        assert_eq!(
            panic_message(&true),
            "non-string panic payload: bool = true"
        );
        // Unprobed types still identify themselves by TypeId.
        #[derive(Debug)]
        struct Opaque;
        let opaque = panic_message(&Opaque);
        assert!(
            opaque.starts_with("non-string panic payload of type "),
            "{opaque}"
        );
    }

    #[test]
    fn caught_panic_any_payload_reports_its_type() {
        let payload = std::panic::catch_unwind(|| std::panic::panic_any(7usize))
            .expect_err("panic_any must unwind");
        assert_eq!(
            panic_message(&*payload),
            "non-string panic payload: usize = 7"
        );
    }

    #[test]
    fn chunked_dispatch_keeps_trace_order_and_stats() {
        let (platform, catalog, traces) = fixture(9, 30, 3);
        let config = SimConfig::default();
        let hits = AtomicUsize::new(0);
        let (chunked, stats) = run_batch_with(
            &platform,
            &catalog,
            &config,
            &traces,
            |_| Box::new(HeuristicRm::new()),
            |_| None,
            &BatchOptions {
                workers: Some(2),
                chunk: Some(4),
                on_trace: Some(&|t: &TraceStats| {
                    assert!(t.nanos > 0);
                    assert_eq!(t.requests, 30);
                    hits.fetch_add(1, Ordering::Relaxed);
                }),
            },
        );
        assert_eq!(stats.workers, 2);
        assert_eq!(stats.chunk, 4);
        assert_eq!(stats.trace_nanos.len(), 9);
        assert!(stats.trace_nanos.iter().all(|&n| n > 0));
        assert_eq!(hits.load(Ordering::Relaxed), 9);

        let sequential = run_batch_with(
            &platform,
            &catalog,
            &config,
            &traces,
            |_| Box::new(HeuristicRm::new()),
            |_| None,
            &BatchOptions {
                workers: Some(1),
                chunk: Some(1),
                ..BatchOptions::default()
            },
        )
        .0;
        assert_eq!(chunked, sequential, "chunking must not change results");
    }

    #[test]
    fn warm_scratch_across_traces_matches_fresh_runs() {
        let (platform, catalog, traces) = fixture(5, 40, 21);
        let config = SimConfig::default();
        let simulator = Simulator::new(&platform, &catalog, config);
        let mut warm = SimScratch::new();
        for trace in &traces {
            let with_warm =
                simulator.run_with_scratch(trace, &mut HeuristicRm::new(), None, &mut warm);
            let fresh = simulator.run(trace, &mut HeuristicRm::new(), None);
            assert_eq!(with_warm, fresh, "scratch reuse must be invisible");
        }
    }
}
