//! Parallel experiment runner: simulates many traces across worker threads.
//!
//! The paper's experiments average over hundreds of traces per
//! configuration; traces are independent, so they parallelize trivially.
//! Workers pull trace indices from a shared counter (`std::thread::scope`),
//! and each builds its own manager/predictor from the supplied factories so
//! no cross-trace state leaks. Each report lands in its own write-once slot
//! — the index counter hands every trace to exactly one worker, so no lock
//! is ever contended on the results.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

use rtrm_core::ResourceManager;
use rtrm_platform::{Platform, TaskCatalog, Trace};
use rtrm_predict::Predictor;

use crate::report::SimReport;
use crate::simulator::{SimConfig, Simulator};

/// Runs every trace through a fresh manager (and optional fresh predictor)
/// and returns the per-trace reports in trace order.
///
/// `make_manager(i)` and `make_predictor(i)` are called once per trace `i`
/// on the worker thread that simulates it. Returning `None` from
/// `make_predictor` disables prediction for that trace.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use rtrm_core::HeuristicRm;
/// use rtrm_platform::Platform;
/// use rtrm_sim::{run_batch, SimConfig};
/// use rtrm_trace::{generate_catalog, generate_traces, CatalogConfig, TraceConfig};
///
/// let platform = Platform::paper_default();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(5);
/// let catalog = generate_catalog(&platform, &CatalogConfig::paper(), &mut rng);
/// let traces = generate_traces(&catalog, &TraceConfig::calibrated_vt(), 4, 5);
///
/// let reports = run_batch(
///     &platform,
///     &catalog,
///     &SimConfig::default(),
///     &traces,
///     |_| Box::new(HeuristicRm::new()),
///     |_| None,
/// );
/// assert_eq!(reports.len(), 4);
/// ```
pub fn run_batch<M, P>(
    platform: &Platform,
    catalog: &TaskCatalog,
    config: &SimConfig,
    traces: &[Trace],
    make_manager: M,
    make_predictor: P,
) -> Vec<SimReport>
where
    M: Fn(usize) -> Box<dyn ResourceManager + Send> + Sync,
    P: Fn(usize) -> Option<Box<dyn Predictor + Send>> + Sync,
{
    let next = AtomicUsize::new(0);
    let results: Vec<OnceLock<SimReport>> = (0..traces.len()).map(|_| OnceLock::new()).collect();
    let workers = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(4)
        .min(traces.len().max(1));

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let simulator = Simulator::new(platform, catalog, config.clone());
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= traces.len() {
                        break;
                    }
                    let mut manager = make_manager(i);
                    let mut predictor = make_predictor(i);
                    let report = simulator.run(
                        &traces[i],
                        manager.as_mut(),
                        predictor.as_deref_mut().map(|p| p as &mut dyn Predictor),
                    );
                    results[i]
                        .set(report)
                        .expect("trace index dispatched to exactly one worker");
                }
            });
        }
    });

    results
        .into_iter()
        .map(|slot| slot.into_inner().expect("every trace simulated"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rtrm_core::HeuristicRm;
    use rtrm_trace::{generate_catalog, generate_traces, CatalogConfig, TraceConfig};

    #[test]
    fn batch_matches_sequential() {
        let platform = Platform::paper_default();
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        let catalog = generate_catalog(&platform, &CatalogConfig::paper(), &mut rng);
        let cfg = TraceConfig {
            length: 60,
            ..TraceConfig::calibrated_vt()
        };
        let traces = generate_traces(&catalog, &cfg, 6, 8);

        let config = SimConfig::default();
        let parallel = run_batch(
            &platform,
            &catalog,
            &config,
            &traces,
            |_| Box::new(HeuristicRm::new()),
            |_| None,
        );

        let simulator = Simulator::new(&platform, &catalog, config);
        for (trace, report) in traces.iter().zip(&parallel) {
            let sequential = simulator.run(trace, &mut HeuristicRm::new(), None);
            assert_eq!(&sequential, report, "parallel run must be deterministic");
        }
    }

    #[test]
    fn batch_of_one_trace_uses_single_worker() {
        let platform = Platform::paper_default();
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let catalog = generate_catalog(&platform, &CatalogConfig::paper(), &mut rng);
        let cfg = TraceConfig {
            length: 20,
            ..TraceConfig::calibrated_vt()
        };
        let traces = generate_traces(&catalog, &cfg, 1, 3);
        let reports = run_batch(
            &platform,
            &catalog,
            &SimConfig::default(),
            &traces,
            |_| Box::new(HeuristicRm::new()),
            |_| None,
        );
        assert_eq!(reports.len(), 1);
    }
}
