//! # rtrm-sim
//!
//! Discrete-event simulation of prediction-aided runtime resource
//! management (*Niknafs et al., DAC 2019*): a [`Simulator`] drives request
//! traces through any [`rtrm_core::ResourceManager`], executing the chosen
//! plans with the same EDF timeline engine the managers use for
//! feasibility, charging execution energy continuously plus migration
//! overheads and energy wasted in GPU aborts, and enforcing the paper's
//! invariant that admitted tasks never miss deadlines.
//!
//! [`run_batch`] parallelizes independent traces across a persistent worker
//! pool for the paper-scale experiments: workers claim chunks of trace
//! indices and keep one warm [`SimScratch`] each (engine heaps plus the
//! manager-side timeline pool), so large batches allocate nothing in the
//! simulator at steady state. [`run_batch_with`] exposes the tuning knobs
//! (worker count, chunk size, per-trace hooks).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod report;
mod runner;
mod simulator;
mod stats;

pub use report::{mean_energy, mean_rejection_percent, SimReport, TaskOutcome, TaskRecord};
pub use runner::{
    resolve_workers, resolve_workers_with, run_batch, run_batch_with, BatchOptions, BatchStats,
    TraceFault, TraceStats,
};
pub use simulator::{PhantomDeadline, Session, SimConfig, SimScratch, Simulator};
pub use stats::Summary;
