//! Per-trace simulation reports and aggregation across trace batches.

use serde::{Deserialize, Serialize};

use rtrm_platform::{Energy, RequestId, ResourceId, Time};

/// Why a request left the system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TaskOutcome {
    /// Rejected at admission.
    Rejected,
    /// Admitted and completed by its deadline.
    Completed,
}

/// Per-request record, collected when
/// [`SimConfig::record_task_log`](crate::SimConfig::record_task_log) is set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskRecord {
    /// The request this record belongs to.
    pub request: RequestId,
    /// What happened to it.
    pub outcome: TaskOutcome,
    /// Resources the task was placed on, in order (re-placements append;
    /// empty for rejected tasks).
    pub placements: Vec<ResourceId>,
    /// Completion time (None for rejected tasks).
    pub finished: Option<Time>,
    /// Times the task was aborted and restarted from scratch.
    pub restarts: u32,
}

/// Outcome of simulating one trace under one resource-management policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Requests in the trace.
    pub requests: usize,
    /// Requests admitted by the manager.
    pub accepted: usize,
    /// Requests rejected (the paper's headline metric, as a percentage).
    pub rejected: usize,
    /// Admitted tasks that completed (equals `accepted` once the trace is
    /// drained).
    pub completed: usize,
    /// Admitted tasks that missed their deadline. The admission test
    /// guarantees zero; any other value indicates a simulator/manager bug
    /// and is asserted against in tests.
    pub deadline_misses: usize,
    /// Total energy consumed: execution energy of all (partially) executed
    /// work, migration overheads, and energy wasted in GPU aborts.
    pub energy: Energy,
    /// Of [`energy`](SimReport::energy): migration overhead lumps (`em`).
    pub migration_energy: Energy,
    /// Of [`energy`](SimReport::energy): work consumed by tasks that were
    /// later aborted and restarted from scratch (GPU aborts) — pure waste.
    pub wasted_energy: Energy,
    /// Activations whose chosen plan honoured the predicted task.
    pub used_prediction: usize,
    /// Total search effort reported by the manager.
    pub rm_nodes: u64,
    /// Fallback-ladder rungs whose solver hit its wall-clock budget, summed
    /// over all activations (0 unless the manager runs with an anytime
    /// budget).
    pub solver_timeouts: u64,
    /// Activations whose plan was *degraded*: taken from a ladder rung below
    /// one that timed out, or from the heuristic floor after every rung
    /// timed out or failed.
    pub degraded_activations: usize,
    /// Completion time of the last task.
    pub makespan: Time,
    /// Per-request records (empty unless
    /// [`SimConfig::record_task_log`](crate::SimConfig::record_task_log) is
    /// set).
    pub task_log: Vec<TaskRecord>,
    /// Busy time per resource (platform order) over the whole run —
    /// `busy / makespan` is the utilization that explains who the
    /// bottleneck is.
    pub busy_time: Vec<Time>,
}

impl SimReport {
    /// Utilization of one resource: busy time over the makespan (0 when
    /// nothing ran).
    ///
    /// # Panics
    ///
    /// Panics if `resource` is out of range for the simulated platform.
    #[must_use]
    pub fn utilization(&self, resource: ResourceId) -> f64 {
        if self.makespan <= Time::ZERO {
            return 0.0;
        }
        self.busy_time[resource.index()] / self.makespan
    }

    /// Rejected requests as a percentage of all requests.
    #[must_use]
    pub fn rejection_percent(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            100.0 * self.rejected as f64 / self.requests as f64
        }
    }

    /// Accepted requests as a percentage of all requests.
    #[must_use]
    pub fn acceptance_percent(&self) -> f64 {
        100.0 - self.rejection_percent()
    }
}

/// Mean rejection percentage over a batch of reports.
#[must_use]
pub fn mean_rejection_percent(reports: &[SimReport]) -> f64 {
    if reports.is_empty() {
        return 0.0;
    }
    reports
        .iter()
        .map(SimReport::rejection_percent)
        .sum::<f64>()
        / reports.len() as f64
}

/// Mean total energy over a batch of reports.
#[must_use]
pub fn mean_energy(reports: &[SimReport]) -> f64 {
    if reports.is_empty() {
        return 0.0;
    }
    reports.iter().map(|r| r.energy.value()).sum::<f64>() / reports.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(requests: usize, rejected: usize, energy: f64) -> SimReport {
        SimReport {
            requests,
            accepted: requests - rejected,
            rejected,
            completed: requests - rejected,
            deadline_misses: 0,
            energy: Energy::new(energy),
            migration_energy: Energy::ZERO,
            wasted_energy: Energy::ZERO,
            used_prediction: 0,
            rm_nodes: 0,
            solver_timeouts: 0,
            degraded_activations: 0,
            makespan: Time::ZERO,
            task_log: Vec::new(),
            busy_time: Vec::new(),
        }
    }

    #[test]
    fn percentages() {
        let r = report(200, 50, 1.0);
        assert_eq!(r.rejection_percent(), 25.0);
        assert_eq!(r.acceptance_percent(), 75.0);
    }

    #[test]
    fn aggregation() {
        let batch = [report(100, 10, 2.0), report(100, 30, 4.0)];
        assert_eq!(mean_rejection_percent(&batch), 20.0);
        assert_eq!(mean_energy(&batch), 3.0);
        assert_eq!(mean_rejection_percent(&[]), 0.0);
    }

    #[test]
    fn empty_trace_is_zero_percent() {
        let r = report(0, 0, 0.0);
        assert_eq!(r.rejection_percent(), 0.0);
    }
}
