//! The discrete-event simulator: drives a request trace through a resource
//! manager on a heterogeneous platform, executing the chosen plans with the
//! same EDF timeline engine the managers use for feasibility.

use rtrm_core::{Activation, Assignment, Candidate, JobView, Placement, ResourceManager};
use rtrm_platform::{Energy, Platform, ResourceId, TaskCatalog, TaskTypeId, Time, Trace};
use rtrm_predict::{OverheadModel, Prediction, Predictor};
use rtrm_sched::{simulate_into, EdfScratch, JobKey, JobOutcome, PlannedJob};

use crate::report::{SimReport, TaskOutcome, TaskRecord};

/// How the phantom task's relative deadline is chosen (the predictor
/// forecasts only type and arrival; the paper leaves the phantom's deadline
/// implicit).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PhantomDeadline {
    /// `coefficient × mean WCET` of the predicted type — the expectation of
    /// the trace generator's `RWCET × C` rule. Use the mean of the group's
    /// coefficient range (1.75 for VT, 4.0 for LT).
    MeanWcetTimes(f64),
    /// `coefficient × min WCET` of the predicted type (its fastest
    /// resource): a *pessimistic* phantom deadline. The generator's `RWCET`
    /// may come from the fastest resource with a low coefficient, and those
    /// are exactly the arrivals that need a reservation; planning for them
    /// costs energy but never acceptance (the manager falls back to a plan
    /// without the phantom when it does not fit).
    MinWcetTimes(f64),
    /// A fixed relative deadline.
    Fixed(Time),
}

impl PhantomDeadline {
    fn relative(&self, catalog: &TaskCatalog, task_type: TaskTypeId) -> Time {
        match *self {
            PhantomDeadline::MeanWcetTimes(c) => catalog.task_type(task_type).mean_wcet() * c,
            PhantomDeadline::MinWcetTimes(c) => catalog.task_type(task_type).min_wcet() * c,
            PhantomDeadline::Fixed(d) => d,
        }
    }
}

/// Simulation configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Prediction runtime overhead (Sec 5.5): delays the arriving task's
    /// earliest start by `coefficient × mean interarrival` while its
    /// absolute deadline stays put. Only charged when a predictor is in use.
    pub overhead: OverheadModel,
    /// Deadline model for the phantom task.
    pub phantom_deadline: PhantomDeadline,
    /// Honour the managers' planned start times on the phantom's
    /// non-preemptable resource ([`rtrm_core::Decision::start_gates`]).
    /// `true` follows the paper's "schedule the start of execution"
    /// semantics; `false` reverts to work-conserving dispatch, which
    /// silently gives away reserved slots (kept as an ablation knob).
    pub honour_start_gates: bool,
    /// Number of future requests the predictor is asked for at every
    /// activation. `1` reproduces the paper; larger values enable the
    /// multi-step-lookahead extension (`ext_lookahead`).
    pub lookahead: usize,
    /// Collect a per-request [`TaskRecord`](crate::TaskRecord) log in the
    /// report (placements, restarts, completion times). Off by default —
    /// the log costs memory proportional to the trace.
    pub record_task_log: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            overhead: OverheadModel::none(),
            phantom_deadline: PhantomDeadline::MeanWcetTimes(1.75),
            honour_start_gates: true,
            lookahead: 1,
            record_task_log: false,
        }
    }
}

/// One admitted, unfinished task inside the simulator.
#[derive(Debug, Clone)]
struct LiveJob {
    key: JobKey,
    task_type: TaskTypeId,
    release: Time,
    deadline: Time,
    resource: ResourceId,
    /// Busy time still owed on `resource` (work + pending migration debt).
    remaining_busy: Time,
    /// Execution energy still to be charged while `remaining_busy` drains.
    remaining_energy: Energy,
    started: bool,
    /// DVFS speed the placement runs at (1.0 without frequency scaling).
    speed: f64,
    /// Execution energy charged so far on the current run (waste if the
    /// run is aborted).
    consumed_this_run: Energy,
    /// Planned start time from the last reservation-carrying plan (see
    /// [`rtrm_core::Decision::start_gates`]): the job must not be dispatched
    /// before it. Replaced or cleared by the next admitted decision.
    gate: Option<Time>,
}

impl LiveJob {
    /// The manager's view: `remaining_fraction` is remaining busy time over
    /// the full WCET on the current resource, exactly matching the candidate
    /// cost model.
    fn view(&self, catalog: &TaskCatalog) -> JobView {
        let wcet = catalog
            .task_type(self.task_type)
            .wcet(self.resource)
            .expect("live job sits on an executable resource");
        // Fractions are measured against the *effective* WCET at the
        // placement's speed, matching the candidate cost model.
        let effective_wcet = wcet / self.speed;
        JobView {
            key: self.key,
            task_type: self.task_type,
            release: self.release,
            deadline: self.deadline,
            placement: Some(Placement {
                resource: self.resource,
                remaining_fraction: self.remaining_busy / effective_wcet,
                started: self.started,
                speed: self.speed,
            }),
        }
    }

    fn planned(&self, now: Time, platform: &Platform) -> PlannedJob {
        let pinned = self.started && !platform.resource(self.resource).kind().is_preemptable();
        let release = match self.gate {
            // A started job's gate has been honoured already.
            Some(gate) if !self.started => self.release.max(gate),
            _ => self.release,
        };
        PlannedJob {
            key: self.key,
            release: release.max(now),
            exec: self.remaining_busy,
            deadline: self.deadline,
            pinned,
        }
    }
}

/// Reusable buffers for [`Simulator::advance`]: one trace performs an
/// activation per request and an EDF run per resource per activation, so the
/// timeline engine's heaps and the per-resource staging vectors are kept warm
/// across the whole trace instead of being reallocated every event.
#[derive(Debug, Default)]
struct AdvanceScratch {
    edf: EdfScratch,
    members: Vec<usize>,
    planned: Vec<PlannedJob>,
    outcomes: Vec<JobOutcome>,
}

/// Drives traces through a [`ResourceManager`] and collects metrics.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use rtrm_core::HeuristicRm;
/// use rtrm_platform::Platform;
/// use rtrm_sim::{SimConfig, Simulator};
/// use rtrm_trace::{generate_catalog, generate_trace, CatalogConfig, TraceConfig};
///
/// let platform = Platform::paper_default();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
/// let catalog = generate_catalog(&platform, &CatalogConfig::paper(), &mut rng);
/// let trace = generate_trace(&catalog, &TraceConfig::calibrated_vt(), &mut rng);
///
/// let sim = Simulator::new(&platform, &catalog, SimConfig::default());
/// let report = sim.run(&trace, &mut HeuristicRm::new(), None);
/// assert_eq!(report.deadline_misses, 0);
/// assert_eq!(report.accepted + report.rejected, report.requests);
/// ```
#[derive(Debug)]
pub struct Simulator<'a> {
    platform: &'a Platform,
    catalog: &'a TaskCatalog,
    config: SimConfig,
}

impl<'a> Simulator<'a> {
    /// Creates a simulator over a platform and catalog.
    #[must_use]
    pub fn new(platform: &'a Platform, catalog: &'a TaskCatalog, config: SimConfig) -> Self {
        Simulator {
            platform,
            catalog,
            config,
        }
    }

    /// Runs one trace. When `predictor` is `Some`, the manager plans around
    /// the predicted next request and the configured prediction overhead is
    /// charged on every activation.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if an admitted task misses its deadline — the
    /// admission test makes this impossible unless a manager or the
    /// simulator itself is buggy. Release builds record it in the report.
    #[must_use]
    pub fn run(
        &self,
        trace: &Trace,
        manager: &mut dyn ResourceManager,
        mut predictor: Option<&mut dyn Predictor>,
    ) -> SimReport {
        let mut live: Vec<LiveJob> = Vec::new();
        let mut scratch = AdvanceScratch::default();
        let mut now = Time::ZERO;
        let mut report = SimReport {
            requests: trace.len(),
            accepted: 0,
            rejected: 0,
            completed: 0,
            deadline_misses: 0,
            energy: Energy::ZERO,
            migration_energy: Energy::ZERO,
            wasted_energy: Energy::ZERO,
            used_prediction: 0,
            rm_nodes: 0,
            makespan: Time::ZERO,
            task_log: Vec::new(),
            busy_time: vec![Time::ZERO; self.platform.len()],
        };
        if self.config.record_task_log {
            report.task_log = trace
                .iter()
                .map(|r| TaskRecord {
                    request: r.id,
                    outcome: TaskOutcome::Rejected,
                    placements: Vec::new(),
                    finished: None,
                    restarts: 0,
                })
                .collect();
        }
        let overhead = match (&predictor, trace.mean_interarrival()) {
            (Some(_), Some(gap)) => self.config.overhead.cost(gap),
            _ => Time::ZERO,
        };

        for request in trace.iter() {
            self.advance(
                &mut live,
                now,
                Some(request.arrival),
                &mut scratch,
                &mut report,
            );
            now = request.arrival;

            // Prediction: feed the actual arrival, then forecast the next
            // `lookahead` requests.
            let phantoms: Vec<JobView> = predictor
                .as_deref_mut()
                .map(|p| {
                    p.observe(request);
                    p.predict_horizon(self.config.lookahead)
                })
                .unwrap_or_default()
                .into_iter()
                .enumerate()
                .map(|(i, pred): (usize, Prediction)| {
                    let rel = self
                        .config
                        .phantom_deadline
                        .relative(self.catalog, pred.task_type);
                    JobView::fresh(
                        JobKey(u64::MAX - (request.id.index() * 64 + i) as u64),
                        pred.task_type,
                        pred.arrival.max(now),
                        pred.arrival.max(now) + rel,
                    )
                })
                .collect();

            let arriving = JobView::fresh(
                JobKey(request.id.index() as u64),
                request.task_type,
                request.arrival + overhead,
                request.absolute_deadline(),
            );
            let views: Vec<JobView> = live.iter().map(|j| j.view(self.catalog)).collect();
            let decision = manager.decide(&Activation {
                now,
                platform: self.platform,
                catalog: self.catalog,
                active: &views,
                arriving,
                predicted: &phantoms,
            });
            report.rm_nodes += decision.nodes;

            if decision.admitted {
                report.accepted += 1;
                if decision.used_prediction {
                    report.used_prediction += 1;
                }
                self.apply(
                    &mut live,
                    &views,
                    arriving,
                    &decision.assignments,
                    &mut report,
                );
                // Plan-following dispatch: hold jobs sharing the phantom's
                // non-preemptable resource to their planned start times, so
                // the reserved slot survives until the predicted request
                // materializes (or the next activation replans).
                for job in live.iter_mut() {
                    job.gate = if self.config.honour_start_gates {
                        decision
                            .start_gates
                            .iter()
                            .find(|(k, _)| *k == job.key)
                            .map(|(_, t)| *t)
                    } else {
                        None
                    };
                }
            } else {
                report.rejected += 1;
            }
        }

        // Drain: run everything that was admitted to completion.
        self.advance(&mut live, now, None, &mut scratch, &mut report);
        debug_assert!(live.is_empty(), "drained simulation must finish all jobs");
        debug_assert_eq!(report.deadline_misses, 0, "admitted task missed a deadline");
        report
    }

    /// Executes all live jobs from `now` to `horizon` (or to completion).
    fn advance(
        &self,
        live: &mut Vec<LiveJob>,
        now: Time,
        horizon: Option<Time>,
        scratch: &mut AdvanceScratch,
        report: &mut SimReport,
    ) {
        if live.is_empty() {
            return;
        }
        for resource in self.platform.ids() {
            scratch.members.clear();
            scratch
                .members
                .extend((0..live.len()).filter(|&i| live[i].resource == resource));
            if scratch.members.is_empty() {
                continue;
            }
            scratch.planned.clear();
            scratch.planned.extend(
                scratch
                    .members
                    .iter()
                    .map(|&i| live[i].planned(now, self.platform)),
            );
            let kind = self.platform.resource(resource).kind();
            simulate_into(
                kind,
                now,
                &scratch.planned,
                horizon,
                &mut scratch.edf,
                &mut scratch.outcomes,
            );
            for (&i, outcome) in scratch.members.iter().zip(scratch.outcomes.iter()) {
                let job = &mut live[i];
                if outcome.executed > Time::ZERO {
                    report.busy_time[resource.index()] += outcome.executed;
                    let share = outcome.executed / job.remaining_busy;
                    report.energy += job.remaining_energy * share;
                    job.consumed_this_run += job.remaining_energy * share;
                    job.remaining_energy = job.remaining_energy * (1.0 - share);
                    job.remaining_busy =
                        (job.remaining_busy - outcome.executed).clamp_non_negative();
                    job.started = true;
                }
                if let Some(finish) = outcome.finish {
                    job.remaining_busy = Time::ZERO;
                    report.completed += 1;
                    report.makespan = report.makespan.max(finish);
                    if self.config.record_task_log {
                        let idx = usize::try_from(job.key.0).unwrap_or(usize::MAX);
                        if let Some(record) = report.task_log.get_mut(idx) {
                            record.outcome = TaskOutcome::Completed;
                            record.finished = Some(finish);
                        }
                    }
                    if !finish.meets(job.deadline) {
                        report.deadline_misses += 1;
                        debug_assert!(
                            false,
                            "job {} finished {} past deadline {}",
                            job.key, finish, job.deadline
                        );
                    }
                }
            }
        }
        live.retain(|j| j.remaining_busy > Time::ZERO);
    }

    /// Applies an admitted decision: migrations (with energy lumps), GPU
    /// aborts (progress wasted), and admission of the arriving task.
    fn apply(
        &self,
        live: &mut Vec<LiveJob>,
        views: &[JobView],
        arriving: JobView,
        assignments: &[Assignment],
        report: &mut SimReport,
    ) {
        for a in assignments {
            if self.config.record_task_log {
                let idx = usize::try_from(a.key.0).unwrap_or(usize::MAX);
                if let Some(record) = report.task_log.get_mut(idx) {
                    if record.placements.last() != Some(&a.resource) || a.restart {
                        record.placements.push(a.resource);
                    }
                    if a.restart {
                        record.restarts += 1;
                    }
                }
            }
            if a.key == arriving.key {
                let c = self.matching_candidate(&arriving, a);
                live.push(LiveJob {
                    key: arriving.key,
                    task_type: arriving.task_type,
                    release: arriving.release,
                    deadline: arriving.deadline,
                    resource: a.resource,
                    remaining_busy: c.exec,
                    remaining_energy: c.energy,
                    started: false,
                    speed: a.speed,
                    consumed_this_run: Energy::ZERO,
                    gate: None,
                });
                continue;
            }
            let view = views
                .iter()
                .find(|v| v.key == a.key)
                .expect("assignment refers to an active job");
            let job = live
                .iter_mut()
                .find(|j| j.key == a.key)
                .expect("active job is live");
            let c = self.matching_candidate(view, a);
            if a.restart {
                // GPU abort: progress and its energy are wasted (already
                // charged to the total; attributed to waste here); the job
                // starts over.
                report.wasted_energy += job.consumed_this_run;
                job.consumed_this_run = Energy::ZERO;
                job.resource = a.resource;
                job.remaining_busy = c.exec;
                job.remaining_energy = c.energy;
                job.started = false;
                job.speed = a.speed;
            } else if a.resource != job.resource {
                // Migration: charge the energy overhead as a lump now; the
                // time overhead is part of the busy time (`c.exec`).
                let em = self
                    .catalog
                    .task_type(job.task_type)
                    .migration(job.resource, a.resource)
                    .energy;
                report.energy += em;
                report.migration_energy += em;
                job.resource = a.resource;
                job.remaining_busy = c.exec;
                job.remaining_energy = c.energy - em;
                job.speed = a.speed;
            } else {
                debug_assert!((job.remaining_busy.value() - c.exec.value()).abs() < 1e-6);
            }
        }
    }

    /// Finds the cost-model candidate matching an assignment.
    fn matching_candidate(&self, view: &JobView, a: &Assignment) -> Candidate {
        rtrm_core::candidates(view, self.platform, self.catalog, true)
            .into_iter()
            .find(|c| {
                c.resource == a.resource
                    && c.restart == a.restart
                    && (c.speed - a.speed).abs() < 1e-12
            })
            .expect("assignment corresponds to a valid candidate")
    }
}
