//! The discrete-event simulator: drives a request trace through a resource
//! manager on a heterogeneous platform, executing the chosen plans with the
//! same EDF timeline engine the managers use for feasibility.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use rtrm_core::{
    gate_horizon, Activation, Assignment, Candidate, Decision, HorizonPolicy, JobView, Placement,
    ResourceManager, TimelinePool,
};
use rtrm_platform::{
    Energy, Platform, Request, ResourceId, TaskCatalog, TaskTypeId, Time, Trace, TIME_EPSILON,
};
use rtrm_predict::{OverheadModel, Prediction, Predictor};
use rtrm_sched::{simulate_into, EdfScratch, JobKey, JobOutcome, PlannedJob};

use crate::report::{SimReport, TaskOutcome, TaskRecord};

/// How the phantom task's relative deadline is chosen (the predictor
/// forecasts only type and arrival; the paper leaves the phantom's deadline
/// implicit).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PhantomDeadline {
    /// `coefficient × mean WCET` of the predicted type — the expectation of
    /// the trace generator's `RWCET × C` rule. Use the mean of the group's
    /// coefficient range (1.75 for VT, 4.0 for LT).
    MeanWcetTimes(f64),
    /// `coefficient × min WCET` of the predicted type (its fastest
    /// resource): a *pessimistic* phantom deadline. The generator's `RWCET`
    /// may come from the fastest resource with a low coefficient, and those
    /// are exactly the arrivals that need a reservation; planning for them
    /// costs energy but never acceptance (the manager falls back to a plan
    /// without the phantom when it does not fit).
    MinWcetTimes(f64),
    /// A fixed relative deadline.
    Fixed(Time),
}

impl PhantomDeadline {
    fn relative(&self, catalog: &TaskCatalog, task_type: TaskTypeId) -> Time {
        match *self {
            PhantomDeadline::MeanWcetTimes(c) => catalog.task_type(task_type).mean_wcet() * c,
            PhantomDeadline::MinWcetTimes(c) => catalog.task_type(task_type).min_wcet() * c,
            PhantomDeadline::Fixed(d) => d,
        }
    }
}

/// Simulation configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Prediction runtime overhead (Sec 5.5): delays the arriving task's
    /// earliest start by `coefficient × mean interarrival` while its
    /// absolute deadline stays put. Only charged when a predictor is in use.
    pub overhead: OverheadModel,
    /// Deadline model for the phantom task.
    pub phantom_deadline: PhantomDeadline,
    /// Honour the managers' planned start times on the phantom's
    /// non-preemptable resource ([`rtrm_core::Decision::start_gates`]).
    /// `true` follows the paper's "schedule the start of execution"
    /// semantics; `false` reverts to work-conserving dispatch, which
    /// silently gives away reserved slots (kept as an ablation knob).
    pub honour_start_gates: bool,
    /// Number of future requests the predictor is asked for at every
    /// activation. `1` reproduces the paper; larger values enable the
    /// multi-step-lookahead extension (`ext_lookahead`). Ignored when
    /// [`horizon`](SimConfig::horizon) is set.
    pub lookahead: usize,
    /// Confidence-gated horizon admission ([`HorizonPolicy`]). When set, the
    /// predictor is asked for `depth` confidence-scored steps
    /// ([`Predictor::predict_horizon_confident`]) and only phantoms whose
    /// confidence strictly clears `theta` are planned around, highest
    /// confidence first. `None` (the default) keeps the legacy
    /// [`lookahead`](SimConfig::lookahead) path, where every predicted step
    /// becomes a phantom.
    pub horizon: Option<HorizonPolicy>,
    /// Collect a per-request [`TaskRecord`](crate::TaskRecord) log in the
    /// report (placements, restarts, completion times). Off by default —
    /// the log costs memory proportional to the trace.
    pub record_task_log: bool,
    /// Advance all resources through one global event queue per trace step
    /// (the default) instead of replaying each resource's timeline
    /// independently. Both paths compute identical outcomes; the
    /// per-resource replay is retained as the differential-testing reference
    /// and benchmark baseline.
    pub unified_event_queue: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            overhead: OverheadModel::none(),
            phantom_deadline: PhantomDeadline::MeanWcetTimes(1.75),
            honour_start_gates: true,
            lookahead: 1,
            horizon: None,
            record_task_log: false,
            unified_event_queue: true,
        }
    }
}

/// One admitted, unfinished task inside the simulator.
#[derive(Debug, Clone)]
struct LiveJob {
    key: JobKey,
    task_type: TaskTypeId,
    release: Time,
    deadline: Time,
    resource: ResourceId,
    /// Busy time still owed on `resource` (work + pending migration debt).
    remaining_busy: Time,
    /// Execution energy still to be charged while `remaining_busy` drains.
    remaining_energy: Energy,
    started: bool,
    /// DVFS speed the placement runs at (1.0 without frequency scaling).
    speed: f64,
    /// Execution energy charged so far on the current run (waste if the
    /// run is aborted).
    consumed_this_run: Energy,
    /// Planned start time from the last reservation-carrying plan (see
    /// [`rtrm_core::Decision::start_gates`]): the job must not be dispatched
    /// before it. Replaced or cleared by the next admitted decision.
    gate: Option<Time>,
}

impl LiveJob {
    /// The manager's view: `remaining_fraction` is remaining busy time over
    /// the full WCET on the current resource, exactly matching the candidate
    /// cost model.
    fn view(&self, catalog: &TaskCatalog) -> JobView {
        let wcet = catalog
            .task_type(self.task_type)
            .wcet(self.resource)
            .expect("live job sits on an executable resource");
        // Fractions are measured against the *effective* WCET at the
        // placement's speed, matching the candidate cost model.
        let effective_wcet = wcet / self.speed;
        JobView {
            key: self.key,
            task_type: self.task_type,
            release: self.release,
            deadline: self.deadline,
            placement: Some(Placement {
                resource: self.resource,
                remaining_fraction: self.remaining_busy / effective_wcet,
                started: self.started,
                speed: self.speed,
            }),
        }
    }

    fn planned(&self, now: Time, platform: &Platform) -> PlannedJob {
        let pinned = self.started && !platform.resource(self.resource).kind().is_preemptable();
        let release = match self.gate {
            // A started job's gate has been honoured already.
            Some(gate) if !self.started => self.release.max(gate),
            _ => self.release,
        };
        PlannedJob {
            key: self.key,
            release: release.max(now),
            exec: self.remaining_busy,
            deadline: self.deadline,
            pinned,
        }
    }
}

/// Reusable buffers for [`Simulator::advance`]: one trace performs an
/// activation per request and an EDF pass per activation, so the engine
/// heaps, the per-resource lanes, and the staging vectors are kept warm
/// across the whole trace instead of being reallocated every event.
#[derive(Debug, Default)]
struct AdvanceScratch {
    edf: EdfScratch,
    members: Vec<usize>,
    planned: Vec<PlannedJob>,
    outcomes: Vec<JobOutcome>,
    /// One outcome per live job (index-aligned), filled by either engine
    /// path and consumed by the shared application loop.
    all: Vec<JobOutcome>,
    /// Per-resource EDF state for the unified event queue.
    lanes: Vec<Lane>,
    /// The global event queue: at most one pending decision instant per
    /// lane, min-ordered by `(time, resource index)`.
    events: BinaryHeap<Reverse<(Time, u32)>>,
}

/// Per-resource state for the unified event queue: the resource's local EDF
/// queues plus its own clock. Each lane replays exactly the decision
/// sequence of the per-resource engine ([`simulate_into`]), but one event at
/// a time, so a single global heap drives all resources through one pass.
#[derive(Debug, Default)]
struct Lane {
    /// Jobs on this resource, in live order; the index into this vec is the
    /// EDF tie-break, matching the engine's input order.
    jobs: Vec<LaneJob>,
    /// Released, unfinished jobs, min-ordered by `(deadline, lane index)`.
    ready: BinaryHeap<Reverse<(Time, u32)>>,
    /// Not-yet-released jobs, min-ordered by `(release, lane index)`.
    release: BinaryHeap<Reverse<(Time, u32)>>,
    /// Non-preemptable lane only: the job occupying the resource (a pinned
    /// job initially; later the dispatched EDF head, running to completion).
    committed: Option<u32>,
    /// Lane-local clock, advanced with the engine's exact arithmetic.
    now: f64,
    /// Dispatched jobs run to completion (GPU semantics).
    non_preemptive: bool,
}

#[derive(Debug, Clone, Copy)]
struct LaneJob {
    /// Index into the simulator's live vec.
    live: usize,
    remaining: f64,
    deadline: Time,
    executed: f64,
    started: bool,
    finish: Option<f64>,
}

/// Reusable per-run state for [`Simulator::run_with_scratch`]: the advance
/// engine's heaps and lanes, the live-job and view staging vectors, and a
/// [`rtrm_core::TimelinePool`] handed to the manager on every activation
/// ([`rtrm_core::ResourceManager::decide_with_pool`]).
///
/// One trace run performs an activation per request and an EDF pass per
/// activation; with a warm scratch all of that state is reused, so a worker
/// simulating thousands of traces reaches zero steady-state allocation in
/// the simulator itself (managers may still allocate internally). A scratch
/// carries no results — reusing one across traces, managers, or simulators
/// yields bit-identical [`SimReport`]s to fresh state, which
/// `crates/bench/tests/sweep_differential.rs` asserts at batch scale.
#[derive(Debug, Default)]
pub struct SimScratch {
    advance: AdvanceScratch,
    pool: TimelinePool,
    live: Vec<LiveJob>,
    views: Vec<JobView>,
    phantoms: Vec<JobView>,
}

impl SimScratch {
    /// Creates an empty scratch; buffers grow on first use and stay warm.
    #[must_use]
    pub fn new() -> Self {
        SimScratch::default()
    }

    /// Installs (or refreshes) the pool's [`rtrm_platform::PlatformIndex`]
    /// for `simulator`'s world, so pruned managers scan precomputed
    /// shortlists instead of rebuilding candidate rows per activation.
    /// [`Simulator::run_with_scratch`] calls this itself; streaming callers
    /// ([`Session`]) should call it once per session batch — per-admit calls
    /// are safe but pay a fingerprint walk over the whole catalog each time.
    pub fn prime(&mut self, simulator: &Simulator<'_>) {
        self.pool
            .ensure_index(simulator.platform, simulator.catalog);
    }
}

/// A zeroed report for `requests` requests on a `resources`-resource
/// platform — the starting state of both batch runs and streaming sessions.
fn blank_report(requests: usize, resources: usize) -> SimReport {
    SimReport {
        requests,
        accepted: 0,
        rejected: 0,
        completed: 0,
        deadline_misses: 0,
        energy: Energy::ZERO,
        migration_energy: Energy::ZERO,
        wasted_energy: Energy::ZERO,
        used_prediction: 0,
        rm_nodes: 0,
        solver_timeouts: 0,
        degraded_activations: 0,
        makespan: Time::ZERO,
        task_log: Vec::new(),
        busy_time: vec![Time::ZERO; resources],
    }
}

/// A streaming admission session: the per-trace state of
/// [`Simulator::run_with_scratch`] held open so requests are admitted one
/// at a time — the entry point of the long-running service mode
/// (`rtrm-service`), where one shard worker interleaves many sessions over
/// a single warm [`SimScratch`].
///
/// The session owns what outlives a step (live jobs, the simulated clock,
/// the accumulating [`SimReport`]); the scratch's engine heaps, staging
/// buffers, and manager-side [`TimelinePool`] are borrowed per call, so any
/// number of sessions share one scratch without affecting each other's
/// decisions. Every step goes through the same private step function as the
/// batch path, so a session fed a trace's requests in order produces the
/// same decisions as [`Simulator::run`] on that trace (asserted
/// decision-for-decision by `crates/service/tests/service_differential.rs`).
#[derive(Debug)]
pub struct Session {
    live: Vec<LiveJob>,
    now: Time,
    overhead: Time,
    horizon: Option<HorizonPolicy>,
    report: SimReport,
}

impl Session {
    /// Admits (or rejects) one request, returning the manager's decision.
    ///
    /// Requests must be fed in nondecreasing arrival order — the simulated
    /// clock only moves forward.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) when a request arrives before the session's
    /// clock, or when an admitted task misses its deadline (like
    /// [`Simulator::run`]).
    pub fn admit(
        &mut self,
        simulator: &Simulator<'_>,
        request: &Request,
        manager: &mut dyn ResourceManager,
        predictor: Option<&mut dyn Predictor>,
        scratch: &mut SimScratch,
    ) -> Decision {
        debug_assert!(
            request.arrival >= self.now,
            "requests must be fed in arrival order (got {} before {})",
            request.arrival,
            self.now
        );
        self.report.requests += 1;
        simulator.step_request(
            request,
            manager,
            predictor,
            self.overhead,
            self.horizon,
            &mut self.now,
            &mut self.live,
            &mut scratch.advance,
            &mut scratch.pool,
            &mut scratch.views,
            &mut scratch.phantoms,
            &mut self.report,
        )
    }

    /// Runs every admitted, unfinished task to completion (the batch run's
    /// final drain). Call once after the last request; the session can keep
    /// serving afterwards, but a drain is not an idle wait — it fast-forwards
    /// the simulated clock past the last completion.
    pub fn drain(&mut self, simulator: &Simulator<'_>, scratch: &mut SimScratch) {
        simulator.advance(
            &mut self.live,
            self.now,
            None,
            &mut scratch.advance,
            &mut self.report,
        );
        debug_assert!(self.live.is_empty(), "drained session must finish all jobs");
        debug_assert_eq!(
            self.report.deadline_misses, 0,
            "admitted task missed a deadline"
        );
    }

    /// Replaces the session's confidence-gated horizon policy, effective
    /// from the next [`admit`](Session::admit). `None` reverts to the legacy
    /// [`SimConfig::lookahead`] path. Sessions start with the simulator's
    /// [`SimConfig::horizon`]; this setter lets a long-running service
    /// retune depth/θ per stream without reopening the session.
    pub fn set_horizon(&mut self, horizon: Option<HorizonPolicy>) {
        self.horizon = horizon;
    }

    /// The horizon policy currently in force (see
    /// [`set_horizon`](Session::set_horizon)).
    #[must_use]
    pub fn horizon(&self) -> Option<HorizonPolicy> {
        self.horizon
    }

    /// The report accumulated so far (drained totals only settle after
    /// [`drain`](Session::drain)).
    #[must_use]
    pub fn report(&self) -> &SimReport {
        &self.report
    }

    /// Drains the session and returns its final report.
    #[must_use]
    pub fn into_report(mut self, simulator: &Simulator<'_>, scratch: &mut SimScratch) -> SimReport {
        self.drain(simulator, scratch);
        self.report
    }
}

/// Bit-exact mirror of the EDF engine's `advance_job`, so the unified queue
/// reproduces [`simulate_into`] outcomes down to the last ULP (asserted by
/// the differential property suite in `tests/unified_queue.rs`).
fn lane_advance(job: &mut LaneJob, now: &mut f64, until: f64) -> bool {
    let dt = (until - *now).min(job.remaining).max(0.0);
    if dt > 0.0 {
        job.started = true;
        job.executed += dt;
        job.remaining -= dt;
        *now += dt;
    }
    if job.remaining <= TIME_EPSILON {
        job.remaining = 0.0;
        job.started = true;
        job.finish = Some(*now);
        return true;
    }
    false
}

/// Moves every job released by the lane clock into the ready queue.
fn lane_drain(lane: &mut Lane) {
    while let Some(&Reverse((release, seq))) = lane.release.peek() {
        if release.value() > lane.now + TIME_EPSILON {
            break;
        }
        lane.release.pop();
        lane.ready
            .push(Reverse((lane.jobs[seq as usize].deadline, seq)));
    }
}

/// The lane's next decision instant, or `None` when it is finished (clock at
/// the horizon, or no runnable work left). On a non-preemptable lane this
/// also dispatches the EDF head (commits it to run to completion), mirroring
/// the engine's pop-then-run order.
fn lane_next_event(lane: &mut Lane, horizon: f64) -> Option<f64> {
    if lane.now >= horizon - TIME_EPSILON {
        return None;
    }
    if lane.non_preemptive {
        if lane.committed.is_none() {
            match lane.ready.pop() {
                Some(Reverse((_, seq))) => lane.committed = Some(seq),
                None => {
                    // Idle: jump to the next release, if it is in range.
                    return match lane.release.peek() {
                        Some(&Reverse((k, _))) if k.value() < horizon => Some(k.value()),
                        _ => None,
                    };
                }
            }
        }
        let i = lane.committed.expect("just dispatched") as usize;
        Some(horizon.min(lane.now + lane.jobs[i].remaining))
    } else {
        match lane.ready.peek() {
            // Run the EDF head until it finishes, the horizon, or the next
            // release (which may preempt it).
            Some(&Reverse((_, seq))) => {
                let next_release = lane
                    .release
                    .peek()
                    .map_or(f64::INFINITY, |&Reverse((k, _))| k.value());
                Some(
                    horizon
                        .min(lane.now + lane.jobs[seq as usize].remaining)
                        .min(next_release),
                )
            }
            None => match lane.release.peek() {
                Some(&Reverse((k, _))) if k.value() < horizon => Some(k.value()),
                _ => None,
            },
        }
    }
}

/// Executes one engine-loop iteration on the lane, up to the armed decision
/// instant `until` (which [`lane_next_event`] computed from the same queue
/// state, untouched since — only the lane's own events mutate it).
fn lane_process(lane: &mut Lane, until: f64) {
    if lane.non_preemptive {
        if let Some(seq) = lane.committed {
            if lane_advance(&mut lane.jobs[seq as usize], &mut lane.now, until) {
                lane.committed = None;
                lane_drain(lane);
            }
            // Otherwise the horizon was hit mid-job: the clock now sits at
            // the horizon, the lane is never re-armed, nothing else runs.
            return;
        }
    } else if let Some(&Reverse((_, seq))) = lane.ready.peek() {
        if lane_advance(&mut lane.jobs[seq as usize], &mut lane.now, until) {
            lane.ready.pop();
        }
        lane_drain(lane);
        return;
    }
    // Idle jump to a release instant.
    lane.now = until;
    lane_drain(lane);
}

/// Drives traces through a [`ResourceManager`] and collects metrics.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use rtrm_core::HeuristicRm;
/// use rtrm_platform::Platform;
/// use rtrm_sim::{SimConfig, Simulator};
/// use rtrm_trace::{generate_catalog, generate_trace, CatalogConfig, TraceConfig};
///
/// let platform = Platform::paper_default();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
/// let catalog = generate_catalog(&platform, &CatalogConfig::paper(), &mut rng);
/// let trace = generate_trace(&catalog, &TraceConfig::calibrated_vt(), &mut rng);
///
/// let sim = Simulator::new(&platform, &catalog, SimConfig::default());
/// let report = sim.run(&trace, &mut HeuristicRm::new(), None);
/// assert_eq!(report.deadline_misses, 0);
/// assert_eq!(report.accepted + report.rejected, report.requests);
/// ```
#[derive(Debug)]
pub struct Simulator<'a> {
    platform: &'a Platform,
    catalog: &'a TaskCatalog,
    config: SimConfig,
}

impl<'a> Simulator<'a> {
    /// Creates a simulator over a platform and catalog.
    #[must_use]
    pub fn new(platform: &'a Platform, catalog: &'a TaskCatalog, config: SimConfig) -> Self {
        Simulator {
            platform,
            catalog,
            config,
        }
    }

    /// Runs one trace. When `predictor` is `Some`, the manager plans around
    /// the predicted next request and the configured prediction overhead is
    /// charged on every activation.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if an admitted task misses its deadline — the
    /// admission test makes this impossible unless a manager or the
    /// simulator itself is buggy. Release builds record it in the report.
    #[must_use]
    pub fn run(
        &self,
        trace: &Trace,
        manager: &mut dyn ResourceManager,
        predictor: Option<&mut dyn Predictor>,
    ) -> SimReport {
        self.run_with_scratch(trace, manager, predictor, &mut SimScratch::new())
    }

    /// Like [`run`](Simulator::run), but simulating inside a caller-held
    /// [`SimScratch`] so the engine heaps, staging vectors, and the
    /// manager's [`TimelinePool`] stay warm across traces. The report is
    /// bit-identical to [`run`](Simulator::run) with fresh state.
    ///
    /// This is the batch workers' entry point
    /// ([`run_batch`](crate::run_batch) holds one scratch per worker); call
    /// it directly when driving many traces through one thread.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if an admitted task misses its deadline, like
    /// [`run`](Simulator::run).
    #[must_use]
    pub fn run_with_scratch(
        &self,
        trace: &Trace,
        manager: &mut dyn ResourceManager,
        mut predictor: Option<&mut dyn Predictor>,
        scratch: &mut SimScratch,
    ) -> SimReport {
        let SimScratch {
            advance: scratch,
            pool,
            live,
            views,
            phantoms,
        } = scratch;
        pool.ensure_index(self.platform, self.catalog);
        live.clear();
        let mut now = Time::ZERO;
        let mut report = blank_report(trace.len(), self.platform.len());
        if self.config.record_task_log {
            report.task_log = trace
                .iter()
                .map(|r| TaskRecord {
                    request: r.id,
                    outcome: TaskOutcome::Rejected,
                    placements: Vec::new(),
                    finished: None,
                    restarts: 0,
                })
                .collect();
        }
        let overhead = match (&predictor, trace.mean_interarrival()) {
            (Some(_), Some(gap)) => self.config.overhead.cost(gap),
            _ => Time::ZERO,
        };

        for request in trace.iter() {
            let _ = self.step_request(
                request,
                manager,
                predictor.as_deref_mut(),
                overhead,
                self.config.horizon,
                &mut now,
                live,
                scratch,
                pool,
                views,
                phantoms,
                &mut report,
            );
        }

        // Drain: run everything that was admitted to completion.
        self.advance(live, now, None, scratch, &mut report);
        debug_assert!(live.is_empty(), "drained simulation must finish all jobs");
        debug_assert_eq!(report.deadline_misses, 0, "admitted task missed a deadline");
        report
    }

    /// Opens a streaming [`Session`]: the per-trace simulation state held
    /// open so requests can be fed one at a time instead of as a whole
    /// [`Trace`]. `overhead` is the per-activation prediction overhead to
    /// charge ([`Time::ZERO`] when no predictor is used — matching what
    /// [`run`](Simulator::run) computes for that case).
    ///
    /// Sessions advance on *simulated* time (request arrivals), so feeding
    /// the same requests in the same order yields decisions identical to a
    /// batch run, regardless of wall clock or how many sessions interleave
    /// on one thread. [`SimConfig::record_task_log`] is ignored by sessions
    /// (the per-request log needs the whole trace upfront).
    #[must_use]
    pub fn session(&self, overhead: Time) -> Session {
        Session {
            live: Vec::new(),
            now: Time::ZERO,
            overhead,
            horizon: self.config.horizon,
            report: blank_report(0, self.platform.len()),
        }
    }

    /// One admission step, shared verbatim by [`run_with_scratch`]
    /// (`Simulator::run_with_scratch`) and the streaming [`Session`] — the
    /// two paths cannot drift because this is the only implementation.
    #[allow(clippy::too_many_arguments)]
    fn step_request(
        &self,
        request: &Request,
        manager: &mut dyn ResourceManager,
        predictor: Option<&mut (dyn Predictor + '_)>,
        overhead: Time,
        horizon: Option<HorizonPolicy>,
        now: &mut Time,
        live: &mut Vec<LiveJob>,
        scratch: &mut AdvanceScratch,
        pool: &mut TimelinePool,
        views: &mut Vec<JobView>,
        phantoms: &mut Vec<JobView>,
        report: &mut SimReport,
    ) -> Decision {
        self.advance(live, *now, Some(request.arrival), scratch, report);
        *now = request.arrival;
        let now = *now;

        // Prediction: feed the actual arrival, then forecast. Without a
        // horizon policy every `lookahead` step becomes a phantom; with one,
        // the predictor's confidence-scored steps are gated on θ and ranked
        // highest-confidence-first before planning around them.
        phantoms.clear();
        let predicted: Vec<Prediction> = predictor
            .map(|p| {
                p.observe(request);
                match horizon {
                    Some(policy) => {
                        let mut scored: Vec<(f64, Prediction)> = p
                            .predict_horizon_confident(policy.depth)
                            .into_iter()
                            .map(|c| (c.confidence, c.prediction))
                            .collect();
                        gate_horizon(policy, &mut scored);
                        scored.into_iter().map(|(_, pred)| pred).collect()
                    }
                    None => p.predict_horizon(self.config.lookahead),
                }
            })
            .unwrap_or_default();
        phantoms.extend(predicted.into_iter().enumerate().map(|(i, pred)| {
            let rel = self
                .config
                .phantom_deadline
                .relative(self.catalog, pred.task_type);
            JobView::fresh(
                JobKey(u64::MAX - (request.id.index() * 64 + i) as u64),
                pred.task_type,
                pred.arrival.max(now),
                pred.arrival.max(now) + rel,
            )
        }));

        let arriving = JobView::fresh(
            JobKey(request.id.index() as u64),
            request.task_type,
            request.arrival + overhead,
            request.absolute_deadline(),
        );
        views.clear();
        views.extend(live.iter().map(|j| j.view(self.catalog)));
        let decision = manager.decide_with_pool(
            &Activation {
                now,
                platform: self.platform,
                catalog: self.catalog,
                active: views,
                arriving,
                predicted: phantoms,
            },
            pool,
        );
        report.rm_nodes += decision.nodes;
        report.solver_timeouts += u64::from(decision.solver_timeouts);
        report.degraded_activations += usize::from(decision.degraded);

        if decision.admitted {
            report.accepted += 1;
            if decision.used_prediction {
                report.used_prediction += 1;
            }
            self.apply(live, views, arriving, &decision.assignments, report);
            // Plan-following dispatch: hold jobs sharing the phantom's
            // non-preemptable resource to their planned start times, so
            // the reserved slot survives until the predicted request
            // materializes (or the next activation replans).
            for job in live.iter_mut() {
                job.gate = if self.config.honour_start_gates {
                    decision
                        .start_gates
                        .iter()
                        .find(|(k, _)| *k == job.key)
                        .map(|(_, t)| *t)
                } else {
                    None
                };
            }
        } else {
            report.rejected += 1;
        }
        decision
    }

    /// Executes all live jobs from `now` to `horizon` (or to completion).
    ///
    /// The outcomes are computed either by the unified global event queue
    /// (one pass over all resources) or by the per-resource replay
    /// (reference path), per [`SimConfig::unified_event_queue`]; both fill
    /// `scratch.all` index-aligned with `live`, and one shared loop applies
    /// them, so the two paths produce bit-identical reports.
    fn advance(
        &self,
        live: &mut Vec<LiveJob>,
        now: Time,
        horizon: Option<Time>,
        scratch: &mut AdvanceScratch,
        report: &mut SimReport,
    ) {
        if live.is_empty() {
            return;
        }
        if self.config.unified_event_queue {
            self.fill_outcomes_unified(live, now, horizon, scratch);
        } else {
            self.fill_outcomes_per_resource(live, now, horizon, scratch);
        }
        for (job, outcome) in live.iter_mut().zip(scratch.all.iter()) {
            if outcome.executed > Time::ZERO {
                report.busy_time[job.resource.index()] += outcome.executed;
                let share = outcome.executed / job.remaining_busy;
                report.energy += job.remaining_energy * share;
                job.consumed_this_run += job.remaining_energy * share;
                job.remaining_energy = job.remaining_energy * (1.0 - share);
                job.remaining_busy = (job.remaining_busy - outcome.executed).clamp_non_negative();
                job.started = true;
            }
            if let Some(finish) = outcome.finish {
                job.remaining_busy = Time::ZERO;
                report.completed += 1;
                report.makespan = report.makespan.max(finish);
                if self.config.record_task_log {
                    let idx = usize::try_from(job.key.0).unwrap_or(usize::MAX);
                    if let Some(record) = report.task_log.get_mut(idx) {
                        record.outcome = TaskOutcome::Completed;
                        record.finished = Some(finish);
                    }
                }
                if !finish.meets(job.deadline) {
                    report.deadline_misses += 1;
                    debug_assert!(
                        false,
                        "job {} finished {} past deadline {}",
                        job.key, finish, job.deadline
                    );
                }
            }
        }
        live.retain(|j| j.remaining_busy > Time::ZERO);
    }

    /// Reference outcome path: replay each resource's timeline independently
    /// through [`simulate_into`] (one full engine run per resource).
    fn fill_outcomes_per_resource(
        &self,
        live: &[LiveJob],
        now: Time,
        horizon: Option<Time>,
        scratch: &mut AdvanceScratch,
    ) {
        scratch.all.clear();
        scratch.all.extend(live.iter().map(|j| JobOutcome {
            key: j.key,
            executed: Time::ZERO,
            finish: None,
            started: false,
        }));
        for resource in self.platform.ids() {
            scratch.members.clear();
            scratch
                .members
                .extend((0..live.len()).filter(|&i| live[i].resource == resource));
            if scratch.members.is_empty() {
                continue;
            }
            scratch.planned.clear();
            scratch.planned.extend(
                scratch
                    .members
                    .iter()
                    .map(|&i| live[i].planned(now, self.platform)),
            );
            let kind = self.platform.resource(resource).kind();
            simulate_into(
                kind,
                now,
                &scratch.planned,
                horizon,
                &mut scratch.edf,
                &mut scratch.outcomes,
            );
            for (&i, outcome) in scratch.members.iter().zip(scratch.outcomes.iter()) {
                scratch.all[i] = *outcome;
            }
        }
    }

    /// Unified outcome path: all resources advance through one global event
    /// queue. Each heap pop executes one engine-loop iteration on one lane,
    /// so a trace step is a single pass over the merged decision instants
    /// instead of `R` independent timeline replays.
    fn fill_outcomes_unified(
        &self,
        live: &[LiveJob],
        now: Time,
        horizon: Option<Time>,
        scratch: &mut AdvanceScratch,
    ) {
        let horizon = horizon.map_or(f64::INFINITY, Time::value);
        let start = now.value();
        scratch
            .lanes
            .resize_with(self.platform.len(), Lane::default);
        for resource in self.platform.ids() {
            let lane = &mut scratch.lanes[resource.index()];
            lane.jobs.clear();
            lane.ready.clear();
            lane.release.clear();
            lane.committed = None;
            lane.now = start;
            lane.non_preemptive = !self.platform.resource(resource).kind().is_preemptable();
        }
        for (i, job) in live.iter().enumerate() {
            let planned = job.planned(now, self.platform);
            let lane = &mut scratch.lanes[job.resource.index()];
            let seq = u32::try_from(lane.jobs.len()).expect("lane job count fits in u32");
            let release = planned.release.max(now).value();
            lane.jobs.push(LaneJob {
                live: i,
                remaining: planned.exec.value(),
                deadline: planned.deadline,
                executed: 0.0,
                started: false,
                finish: None,
            });
            if planned.pinned {
                debug_assert!(lane.non_preemptive, "pinning is GPU-only");
                debug_assert!(lane.committed.is_none(), "at most one pinned job");
                lane.committed = Some(seq);
            } else if release <= start + TIME_EPSILON {
                lane.ready.push(Reverse((planned.deadline, seq)));
            } else {
                lane.release.push(Reverse((Time::new(release), seq)));
            }
        }
        scratch.events.clear();
        for resource in self.platform.ids() {
            let r = resource.index();
            if let Some(t) = lane_next_event(&mut scratch.lanes[r], horizon) {
                let r = u32::try_from(r).expect("resource count fits in u32");
                scratch.events.push(Reverse((Time::new(t), r)));
            }
        }
        while let Some(Reverse((t, r))) = scratch.events.pop() {
            let lane = &mut scratch.lanes[r as usize];
            lane_process(lane, t.value());
            if let Some(t) = lane_next_event(lane, horizon) {
                scratch.events.push(Reverse((Time::new(t), r)));
            }
        }
        scratch.all.clear();
        scratch.all.extend(live.iter().map(|j| JobOutcome {
            key: j.key,
            executed: Time::ZERO,
            finish: None,
            started: false,
        }));
        for lane in &scratch.lanes {
            for job in &lane.jobs {
                scratch.all[job.live] = JobOutcome {
                    key: live[job.live].key,
                    executed: Time::new(job.executed),
                    finish: job.finish.map(Time::new),
                    started: job.started,
                };
            }
        }
    }

    /// Applies an admitted decision: migrations (with energy lumps), GPU
    /// aborts (progress wasted), and admission of the arriving task.
    fn apply(
        &self,
        live: &mut Vec<LiveJob>,
        views: &[JobView],
        arriving: JobView,
        assignments: &[Assignment],
        report: &mut SimReport,
    ) {
        for a in assignments {
            if self.config.record_task_log {
                let idx = usize::try_from(a.key.0).unwrap_or(usize::MAX);
                if let Some(record) = report.task_log.get_mut(idx) {
                    if record.placements.last() != Some(&a.resource) || a.restart {
                        record.placements.push(a.resource);
                    }
                    if a.restart {
                        record.restarts += 1;
                    }
                }
            }
            if a.key == arriving.key {
                let c = self.matching_candidate(&arriving, a);
                live.push(LiveJob {
                    key: arriving.key,
                    task_type: arriving.task_type,
                    release: arriving.release,
                    deadline: arriving.deadline,
                    resource: a.resource,
                    remaining_busy: c.exec,
                    remaining_energy: c.energy,
                    started: false,
                    speed: a.speed,
                    consumed_this_run: Energy::ZERO,
                    gate: None,
                });
                continue;
            }
            let view = views
                .iter()
                .find(|v| v.key == a.key)
                .expect("assignment refers to an active job");
            let job = live
                .iter_mut()
                .find(|j| j.key == a.key)
                .expect("active job is live");
            let c = self.matching_candidate(view, a);
            if a.restart {
                // GPU abort: progress and its energy are wasted (already
                // charged to the total; attributed to waste here); the job
                // starts over.
                report.wasted_energy += job.consumed_this_run;
                job.consumed_this_run = Energy::ZERO;
                job.resource = a.resource;
                job.remaining_busy = c.exec;
                job.remaining_energy = c.energy;
                job.started = false;
                job.speed = a.speed;
            } else if a.resource != job.resource {
                // Migration: charge the energy overhead as a lump now; the
                // time overhead is part of the busy time (`c.exec`).
                let em = self
                    .catalog
                    .task_type(job.task_type)
                    .migration(job.resource, a.resource)
                    .energy;
                report.energy += em;
                report.migration_energy += em;
                job.resource = a.resource;
                job.remaining_busy = c.exec;
                job.remaining_energy = c.energy - em;
                job.speed = a.speed;
            } else {
                debug_assert!((job.remaining_busy.value() - c.exec.value()).abs() < 1e-6);
            }
        }
    }

    /// Finds the cost-model candidate matching an assignment.
    fn matching_candidate(&self, view: &JobView, a: &Assignment) -> Candidate {
        rtrm_core::candidates(view, self.platform, self.catalog, true)
            .into_iter()
            .find(|c| {
                c.resource == a.resource
                    && c.restart == a.restart
                    && (c.speed - a.speed).abs() < 1e-12
            })
            .expect("assignment corresponds to a valid candidate")
    }
}
