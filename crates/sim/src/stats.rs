//! Small-sample statistics for experiment aggregation: mean, standard
//! deviation, and a normal-approximation 95 % confidence interval over
//! per-trace metrics. The paper reports bare means over 500 traces; at the
//! reduced trace counts this repository defaults to, the interval makes the
//! noise floor explicit.

use serde::{Deserialize, Serialize};

use crate::report::SimReport;

/// Summary statistics of one metric over a batch of traces.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of samples.
    pub n: usize,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (Bessel-corrected), 0 for n < 2.
    pub std_dev: f64,
    /// Half-width of the 95 % confidence interval of the mean
    /// (`1.96 · σ / √n`), 0 for n < 2.
    pub ci95: f64,
}

impl Summary {
    /// Summarizes raw samples.
    ///
    /// # Examples
    ///
    /// ```
    /// use rtrm_sim::Summary;
    ///
    /// let s = Summary::of(&[10.0, 12.0, 14.0]);
    /// assert_eq!(s.mean, 12.0);
    /// assert!((s.std_dev - 2.0).abs() < 1e-12);
    /// ```
    #[must_use]
    pub fn of(samples: &[f64]) -> Self {
        let n = samples.len();
        if n == 0 {
            return Summary {
                n: 0,
                mean: 0.0,
                std_dev: 0.0,
                ci95: 0.0,
            };
        }
        let mean = samples.iter().sum::<f64>() / n as f64;
        if n < 2 {
            return Summary {
                n,
                mean,
                std_dev: 0.0,
                ci95: 0.0,
            };
        }
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64;
        let std_dev = var.sqrt();
        Summary {
            n,
            mean,
            std_dev,
            ci95: 1.96 * std_dev / (n as f64).sqrt(),
        }
    }

    /// Summarizes the rejection percentage of a report batch.
    #[must_use]
    pub fn rejection(reports: &[SimReport]) -> Self {
        let samples: Vec<f64> = reports.iter().map(SimReport::rejection_percent).collect();
        Summary::of(&samples)
    }

    /// Summarizes the total energy of a report batch.
    #[must_use]
    pub fn energy(reports: &[SimReport]) -> Self {
        let samples: Vec<f64> = reports.iter().map(|r| r.energy.value()).collect();
        Summary::of(&samples)
    }

    /// Returns `true` if the two means are separated by more than the sum
    /// of their confidence half-widths — a conservative "clearly different"
    /// test used by the harness when narrating results.
    #[must_use]
    pub fn clearly_below(&self, other: &Summary) -> bool {
        self.mean + self.ci95 < other.mean - other.ci95
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.2} ± {:.2} (n={})", self.mean, self.ci95, self.n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtrm_platform::{Energy, Time};

    fn report(rejected: usize) -> SimReport {
        SimReport {
            requests: 100,
            accepted: 100 - rejected,
            rejected,
            completed: 100 - rejected,
            deadline_misses: 0,
            energy: Energy::new(rejected as f64),
            migration_energy: Energy::ZERO,
            wasted_energy: Energy::ZERO,
            used_prediction: 0,
            rm_nodes: 0,
            solver_timeouts: 0,
            degraded_activations: 0,
            makespan: Time::ZERO,
            task_log: Vec::new(),
            busy_time: Vec::new(),
        }
    }

    #[test]
    fn moments() {
        let s = Summary::of(&[2.0, 4.0, 6.0, 8.0]);
        assert_eq!(s.n, 4);
        assert_eq!(s.mean, 5.0);
        assert!((s.std_dev - (20.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert!((s.ci95 - 1.96 * s.std_dev / 2.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_sizes() {
        assert_eq!(Summary::of(&[]).n, 0);
        let one = Summary::of(&[7.0]);
        assert_eq!(one.mean, 7.0);
        assert_eq!(one.ci95, 0.0);
    }

    #[test]
    fn from_reports() {
        let batch = [report(10), report(20), report(30)];
        let rej = Summary::rejection(&batch);
        assert_eq!(rej.mean, 20.0);
        let energy = Summary::energy(&batch);
        assert_eq!(energy.mean, 20.0);
    }

    #[test]
    fn clear_separation() {
        let low = Summary::of(&[1.0, 1.1, 0.9, 1.0]);
        let high = Summary::of(&[9.0, 9.1, 8.9, 9.0]);
        assert!(low.clearly_below(&high));
        assert!(!high.clearly_below(&low));
        let noisy = Summary::of(&[0.0, 20.0, 1.0, 15.0]);
        assert!(!noisy.clearly_below(&high), "wide intervals overlap");
    }

    #[test]
    fn display_is_compact() {
        let s = Summary::of(&[1.0, 3.0]);
        assert_eq!(format!("{s}"), "2.00 ± 1.96 (n=2)");
    }
}
