//! Differential suite for the with-phantom incremental fast path: end-to-end
//! simulations with prediction *on* (every activation plans around a
//! future-released phantom) must produce **bit-identical**
//! [`rtrm_sim::SimReport`]s whether feasibility probes are answered by the
//! incremental timelines (the segmented demand-criterion sweep on
//! preemptable resources) or by the pre-incremental memoized engine baseline
//! (`oracle_feasibility`). Admissions, placements, energies, gates — all of
//! it must compare equal, under both managers, on platforms with and without
//! a GPU.

use proptest::prelude::*;
use rand::SeedableRng;
use rtrm_core::{ExactRm, HeuristicRm, ResourceManager};
use rtrm_platform::{Platform, TaskCatalog, Trace};
use rtrm_predict::OraclePredictor;
use rtrm_sim::{SimConfig, Simulator};
use rtrm_trace::{generate_catalog, generate_traces, CatalogConfig, TraceConfig};

fn world(seed: u64, cpu_only: bool) -> (Platform, TaskCatalog, Vec<Trace>) {
    let platform = if cpu_only {
        let mut b = Platform::builder();
        b.cpus(3);
        b.build()
    } else {
        Platform::paper_default()
    };
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let catalog = generate_catalog(&platform, &CatalogConfig::paper(), &mut rng);
    let cfg = TraceConfig {
        length: 50,
        ..TraceConfig::calibrated_vt()
    };
    let traces = generate_traces(&catalog, &cfg, 2, seed);
    (platform, catalog, traces)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Incremental vs oracle feasibility, predictor on: identical reports.
    #[test]
    fn phantom_runs_match_oracle_feasibility_baseline(
        seed in any::<u64>(),
        exact in any::<bool>(),
        cpu_only in any::<bool>(),
    ) {
        let (platform, catalog, traces) = world(seed, cpu_only);
        let sim = Simulator::new(
            &platform,
            &catalog,
            SimConfig {
                record_task_log: true,
                ..SimConfig::default()
            },
        );
        for trace in &traces {
            let run = |oracle_feasibility: bool| {
                let mut heur = HeuristicRm::new();
                heur.oracle_feasibility = oracle_feasibility;
                let mut ex = ExactRm::new();
                ex.oracle_feasibility = oracle_feasibility;
                let rm: &mut dyn ResourceManager = if exact { &mut ex } else { &mut heur };
                let mut oracle = OraclePredictor::perfect(trace, catalog.len());
                sim.run(trace, rm, Some(&mut oracle))
            };
            prop_assert_eq!(run(false), run(true));
        }
    }
}
