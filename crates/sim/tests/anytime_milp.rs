//! Simulation-level contract of the anytime MILP manager: under ANY
//! wall-clock budget — including zero — the fallback ladder never emits an
//! infeasible plan and never rejects an activation the pure heuristic
//! (planning without prediction) would admit; a zero budget degrades the
//! whole run to exactly the pure heuristic's, and an unbounded budget is
//! bit-identical to no budget at all.

use proptest::prelude::*;
use rand::SeedableRng;
use rtrm_core::{Activation, Decision, HeuristicRm, MilpRm, ResourceManager};
use rtrm_platform::{Platform, TaskCatalog, Trace};
use rtrm_predict::OraclePredictor;
use rtrm_sim::{SimConfig, SimReport, Simulator};
use rtrm_trace::{generate_catalog, generate_traces, CatalogConfig, TraceConfig};

/// The budget lattice the ladder must survive: hard zero, sub-measurable,
/// realistically tight, generous, and "off".
const BUDGETS: [f64; 5] = [0.0, 1e-12, 1e-7, 1e-3, f64::INFINITY];

/// Full (unbudgeted) MILP solves are expensive in debug builds, so `length`
/// stays small where the tests exercise them.
fn world(seed: u64, length: usize) -> (Platform, TaskCatalog, Vec<Trace>) {
    let platform = Platform::paper_default();
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let catalog = generate_catalog(&platform, &CatalogConfig::paper(), &mut rng);
    let cfg = TraceConfig {
        length,
        ..TraceConfig::calibrated_vt()
    };
    let traces = generate_traces(&catalog, &cfg, 1, seed);
    (platform, catalog, traces)
}

/// Wraps the anytime manager and asserts two machine-independent
/// per-activation guarantees, however the wall-clock expiries land:
///
/// 1. **Floor guarantee** — whenever it rejects, the pure heuristic
///    planning *without prediction* rejects the same activation too. (A
///    rejection means either every rung was genuinely infeasible — so the
///    exact k=0 problem, a superset of the heuristic's, has no solution —
///    or a rung timed out and the heuristic floor itself failed.)
/// 2. **Degradation accounting** — an admitted decision that counted any
///    rung timeout must be marked `degraded`: the ladder descends, so every
///    timeout lands at or above the winning rung, meaning the plan is
///    either the expired winner's own anytime incumbent or comes from below
///    an expired rung. This pins the incumbent-accounting fix in
///    `decide_with_fallback_tracked` (a timed-out *winning* rung used to
///    report `degraded: false`).
struct NeverWorse {
    inner: MilpRm,
}

impl ResourceManager for NeverWorse {
    fn name(&self) -> &str {
        "never-worse"
    }

    fn decide(&mut self, activation: &Activation<'_>) -> Decision {
        let decision = self.inner.decide(activation);
        if decision.admitted && decision.solver_timeouts > 0 {
            assert!(
                decision.degraded,
                "admitted with {} rung timeout(s) but not marked degraded",
                decision.solver_timeouts
            );
        }
        if !decision.admitted {
            let unpredicted = Activation {
                predicted: &[],
                ..*activation
            };
            let floor = HeuristicRm::new().decide(&unpredicted);
            assert!(
                !floor.admitted,
                "anytime MILP rejected an activation the pure heuristic admits"
            );
        }
        decision
    }
}

fn run_anytime(sim: &Simulator, catalog: &TaskCatalog, trace: &Trace, budget: f64) -> SimReport {
    let mut manager = NeverWorse {
        inner: MilpRm::with_wall_clock(budget),
    };
    let mut oracle = OraclePredictor::perfect(trace, catalog.len());
    sim.run(trace, &mut manager, Some(&mut oracle))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// For random workloads and every budget on the lattice: all plans the
    /// ladder emits are feasible (zero deadline misses, everything admitted
    /// completes), no rejection is ever worse than the pure heuristic's
    /// (asserted per activation by [`NeverWorse`]), and an infinite budget
    /// never reads the clock — no timeout or degradation is ever counted.
    #[test]
    fn any_budget_is_feasible_and_never_worse(seed in any::<u64>(), budget_idx in 0usize..BUDGETS.len()) {
        let budget = BUDGETS[budget_idx];
        let (platform, catalog, traces) = world(seed, 15);
        let sim = Simulator::new(&platform, &catalog, SimConfig::default());
        for trace in &traces {
            let report = run_anytime(&sim, &catalog, trace, budget);
            prop_assert_eq!(report.deadline_misses, 0, "budget {}", budget);
            prop_assert_eq!(report.completed, report.accepted);
            prop_assert_eq!(report.accepted + report.rejected, report.requests);
            if budget == f64::INFINITY {
                prop_assert_eq!(report.solver_timeouts, 0);
                prop_assert_eq!(report.degraded_activations, 0);
            }
        }
    }
}

/// A zero budget starves every MILP rung, so the whole run degrades to
/// exactly the pure heuristic without prediction — same admissions, same
/// energy, bit for bit (modulo the fault accounting, which must show the
/// expiries).
#[test]
fn zero_budget_run_equals_the_pure_heuristic() {
    for seed in [1, 7, 23] {
        let (platform, catalog, traces) = world(seed, 20);
        let sim = Simulator::new(&platform, &catalog, SimConfig::default());
        for trace in &traces {
            let report = run_anytime(&sim, &catalog, trace, 0.0);
            assert!(report.solver_timeouts > 0, "zero budget must expire rungs");
            assert_eq!(report.degraded_activations, report.accepted);
            let mut normalized = report;
            normalized.solver_timeouts = 0;
            normalized.degraded_activations = 0;
            let baseline = sim.run(trace, &mut HeuristicRm::new(), None);
            assert_eq!(normalized, baseline, "seed {seed}");
        }
    }
}

/// An unbounded budget must not perturb the solve at all: the run is
/// bit-identical to the default manager's (which never constructs a
/// deadline), pinning that today's results are reproduced exactly.
#[test]
fn unbounded_budget_is_bit_identical_to_no_budget() {
    for seed in [2, 11] {
        let (platform, catalog, traces) = world(seed, 10);
        let sim = Simulator::new(&platform, &catalog, SimConfig::default());
        for trace in &traces {
            let budgeted = run_anytime(&sim, &catalog, trace, f64::INFINITY);
            let mut manager = MilpRm::new();
            let mut oracle = OraclePredictor::perfect(trace, catalog.len());
            let plain = sim.run(trace, &mut manager, Some(&mut oracle));
            assert_eq!(budgeted, plain, "seed {seed}");
        }
    }
}
