//! Fault-injection suite for the execution layer: an injected solver stall
//! degrades every activation through the fallback ladder to the heuristic
//! floor — counted in the report — and the run still completes; an injected
//! per-trace panic quarantines exactly that trace while every surviving
//! report stays bit-identical to a clean run.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;

use rand::SeedableRng;
use rtrm_core::{HeuristicRm, MilpRm};
use rtrm_platform::{Platform, TaskCatalog, Trace};
use rtrm_predict::OraclePredictor;
use rtrm_sim::{run_batch, run_batch_with, BatchOptions, SimConfig, Simulator, TraceFault};
use rtrm_trace::{generate_catalog, generate_traces, CatalogConfig, TraceConfig};

/// Fail points are process-global; the tests arming `batch::trace` take this
/// lock so an armed point cannot leak into a concurrently running test.
static BATCH: Mutex<()> = Mutex::new(());

fn fixture(traces: usize, length: usize, seed: u64) -> (Platform, TaskCatalog, Vec<Trace>) {
    let platform = Platform::paper_default();
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let catalog = generate_catalog(&platform, &CatalogConfig::paper(), &mut rng);
    let cfg = TraceConfig {
        length,
        ..TraceConfig::calibrated_vt()
    };
    let traces = generate_traces(&catalog, &cfg, traces, seed);
    (platform, catalog, traces)
}

/// Acceptance case (a): with the solver stalled at the root of every branch
/// & bound tree, each MILP rung times out without an incumbent, the ladder
/// exhausts, and the heuristic floor plans every activation — the run
/// completes, the expiries are counted, and (modulo that accounting) the
/// result IS the pure heuristic's.
#[test]
fn injected_solver_stall_degrades_to_the_heuristic_floor() {
    let (platform, catalog, traces) = fixture(2, 30, 17);
    let sim = Simulator::new(&platform, &catalog, SimConfig::default());

    let baseline: Vec<_> = traces
        .iter()
        .map(|t| sim.run(t, &mut HeuristicRm::new(), None))
        .collect();

    let _stall =
        rtrm_testkit::arm_with("milp::stall", rtrm_testkit::Action::Trigger, Some(0), None);
    for (trace, expected) in traces.iter().zip(&baseline) {
        let mut manager = MilpRm::new();
        let mut oracle = OraclePredictor::perfect(trace, catalog.len());
        let report = sim.run(trace, &mut manager, Some(&mut oracle));

        assert_eq!(
            report.deadline_misses, 0,
            "degraded plans must stay feasible"
        );
        assert!(report.accepted > 0, "the floor must keep admitting work");
        assert!(
            report.solver_timeouts > 0,
            "every rung's wall-clock expiry must be counted"
        );
        assert_eq!(
            report.degraded_activations, report.accepted,
            "with the solver fully stalled, every admission comes from the floor"
        );
        let mut normalized = report.clone();
        normalized.solver_timeouts = 0;
        normalized.degraded_activations = 0;
        assert_eq!(
            &normalized, expected,
            "the fully degraded run must equal the pure heuristic run"
        );
    }
}

/// Acceptance case (b): a batch with one injected per-trace panic quarantines
/// exactly that trace; every other report is bit-identical to the clean run.
#[test]
fn injected_panic_quarantines_exactly_that_trace() {
    let _serial = BATCH.lock().unwrap_or_else(|e| e.into_inner());
    let (platform, catalog, traces) = fixture(8, 40, 5);
    let config = SimConfig::default();
    let run = || {
        run_batch_with(
            &platform,
            &catalog,
            &config,
            &traces,
            |_| Box::new(HeuristicRm::new()),
            |_| None,
            &BatchOptions::default(),
        )
    };

    let (clean, clean_stats) = run();
    assert!(clean_stats.quarantined.is_empty());
    assert_eq!(clean.len(), traces.len());

    let guard = rtrm_testkit::arm_with(
        "batch::trace",
        rtrm_testkit::Action::Panic("injected trace fault".to_string()),
        Some(3),
        None,
    );
    let (survivors, stats) = run();
    drop(guard);

    assert_eq!(
        stats.quarantined,
        vec![TraceFault {
            trace: 3,
            panic: "injected trace fault".to_string(),
        }]
    );
    assert_eq!(
        stats.trace_nanos.len(),
        traces.len(),
        "every trace is timed"
    );
    let expected: Vec<_> = clean
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != 3)
        .map(|(_, r)| r.clone())
        .collect();
    assert_eq!(
        survivors, expected,
        "surviving traces must be bit-identical to the clean run"
    );
}

/// A panicking [`BatchOptions::on_trace`] hook must be quarantined exactly
/// like a panicking simulation: the hook runs on the worker thread *after*
/// the per-trace `catch_unwind`, so an unguarded hook would tear down the
/// worker and strand every trace still queued behind it. This pins the fix
/// that moved the hook inside its own guard: the hooked trace's report is
/// withheld (report XOR fault), the fault is recorded with the hook's
/// message, and every other trace still completes bit-identically.
#[test]
fn injected_hook_panic_quarantines_only_the_hooked_trace() {
    let _serial = BATCH.lock().unwrap_or_else(|e| e.into_inner());
    let (platform, catalog, traces) = fixture(6, 30, 13);
    let config = SimConfig::default();
    let hook = |t: &rtrm_sim::TraceStats| {
        rtrm_testkit::maybe_panic("batch::hook", t.trace as u64);
    };
    let run = || {
        run_batch_with(
            &platform,
            &catalog,
            &config,
            &traces,
            |_| Box::new(HeuristicRm::new()),
            |_| None,
            &BatchOptions {
                on_trace: Some(&hook),
                ..BatchOptions::default()
            },
        )
    };

    let (clean, clean_stats) = run();
    assert!(clean_stats.quarantined.is_empty());

    let guard = rtrm_testkit::arm_with(
        "batch::hook",
        rtrm_testkit::Action::Panic("hook exploded".to_string()),
        Some(2),
        None,
    );
    let (survivors, stats) = run();
    drop(guard);

    assert_eq!(
        stats.quarantined,
        vec![TraceFault {
            trace: 2,
            panic: "hook exploded".to_string(),
        }],
        "the hooked trace is quarantined, not the batch"
    );
    let expected: Vec<_> = clean
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != 2)
        .map(|(_, r)| r.clone())
        .collect();
    assert_eq!(
        survivors, expected,
        "traces after the hooked one must still be simulated"
    );
}

/// The quarantine does not weaken [`run_batch`]'s contract: it still panics
/// on a faulted trace — but only after the whole batch has drained.
#[test]
fn run_batch_still_panics_on_a_quarantined_trace() {
    let _serial = BATCH.lock().unwrap_or_else(|e| e.into_inner());
    let (platform, catalog, traces) = fixture(4, 20, 9);
    let _guard = rtrm_testkit::arm_with(
        "batch::trace",
        rtrm_testkit::Action::Panic("boom".to_string()),
        Some(1),
        None,
    );
    let err = catch_unwind(AssertUnwindSafe(|| {
        run_batch(
            &platform,
            &catalog,
            &SimConfig::default(),
            &traces,
            |_| Box::new(HeuristicRm::new()),
            |_| None,
        )
    }))
    .expect_err("run_batch keeps its panicking contract");
    let message = err.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(
        message.contains("trace 1 panicked: boom"),
        "message: {message}"
    );
}
