//! Deterministic micro-scenarios pinning down the simulator's energy and
//! time accounting: execution energy, migration lumps, GPU abort waste, and
//! reservation gates.

use rtrm_core::{ExactRm, HeuristicRm};
use rtrm_platform::{
    Energy, Platform, Request, RequestId, TaskCatalog, TaskType, TaskTypeId, Time, Trace,
};
use rtrm_predict::OraclePredictor;
use rtrm_sim::{PhantomDeadline, SimConfig, Simulator};

/// One CPU + one GPU; a single type that is cheap on the GPU.
fn small_world() -> (Platform, TaskCatalog) {
    let platform = Platform::builder().cpus(1).gpu("g").build();
    let ids: Vec<_> = platform.ids().collect();
    let ty = TaskType::builder(0, &platform)
        .profile(ids[0], Time::new(10.0), Energy::new(10.0))
        .profile(ids[1], Time::new(4.0), Energy::new(2.0))
        .uniform_migration(Time::new(1.0), Energy::new(0.5))
        .build();
    (platform, TaskCatalog::new(vec![ty]))
}

fn req(i: usize, arrival: f64, deadline: f64) -> Request {
    Request {
        id: RequestId::new(i),
        arrival: Time::new(arrival),
        task_type: TaskTypeId::new(0),
        deadline: Time::new(deadline),
    }
}

#[test]
fn single_task_charges_exactly_its_profile() {
    let (platform, catalog) = small_world();
    let trace = Trace::new(vec![req(0, 0.0, 50.0)]);
    let sim = Simulator::new(&platform, &catalog, SimConfig::default());
    let r = sim.run(&trace, &mut HeuristicRm::new(), None);
    assert_eq!(r.accepted, 1);
    // The GPU is cheapest: full profile energy, nothing else.
    assert!((r.energy.value() - 2.0).abs() < 1e-9, "energy={}", r.energy);
    assert_eq!(r.makespan, Time::new(4.0));
}

#[test]
fn two_tasks_queue_on_the_gpu() {
    let (platform, catalog) = small_world();
    let trace = Trace::new(vec![req(0, 0.0, 50.0), req(1, 1.0, 50.0)]);
    let sim = Simulator::new(&platform, &catalog, SimConfig::default());
    let r = sim.run(&trace, &mut HeuristicRm::new(), None);
    assert_eq!(r.accepted, 2);
    assert!((r.energy.value() - 4.0).abs() < 1e-9);
    // Second task waits for the first: 4 + 4.
    assert_eq!(r.makespan, Time::new(8.0));
}

#[test]
fn gpu_abort_wastes_consumed_energy() {
    // Task A hogs the GPU with a loose deadline; task B arrives with a
    // deadline only the GPU can meet, forcing the exact manager to abort A.
    let (platform, catalog) = small_world();
    let trace = Trace::new(vec![req(0, 0.0, 100.0), req(1, 2.0, 4.5)]);
    let sim = Simulator::new(&platform, &catalog, SimConfig::default());
    let r = sim.run(&trace, &mut ExactRm::new(), None);
    assert_eq!(r.accepted, 2, "abort-restart must rescue task B");
    // A consumed 2/4 of its GPU energy (1.0) before the abort, then either
    // restarts on the GPU after B (2.0) or on the CPU (10.0); GPU requeue is
    // cheaper: total = waste 1.0 + A 2.0 + B 2.0 = 5.0.
    assert!((r.energy.value() - 5.0).abs() < 1e-9, "energy={}", r.energy);
    assert_eq!(r.deadline_misses, 0);
}

#[test]
fn migration_charges_lump_and_time_overhead() {
    // Both tasks are CPU-only here: build a 2-CPU platform where migrating
    // a started task is forced by an urgent arrival.
    let platform = Platform::builder().cpus(2).build();
    let ids: Vec<_> = platform.ids().collect();
    let slow = TaskType::builder(0, &platform)
        .profile(ids[0], Time::new(10.0), Energy::new(6.0))
        .profile(ids[1], Time::new(10.0), Energy::new(8.0))
        .uniform_migration(Time::new(1.0), Energy::new(0.5))
        .build();
    let urgent = TaskType::builder(1, &platform)
        .profile(ids[0], Time::new(4.0), Energy::new(3.0))
        // Only executable on cpu0: forces the displacement.
        .build();
    let catalog = TaskCatalog::new(vec![slow, urgent]);
    let trace = Trace::new(vec![
        req(0, 0.0, 11.0),
        Request {
            id: RequestId::new(1),
            arrival: Time::new(2.0),
            task_type: TaskTypeId::new(1),
            deadline: Time::new(4.5),
        },
    ]);
    let sim = Simulator::new(&platform, &catalog, SimConfig::default());
    let r = sim.run(&trace, &mut ExactRm::new(), None);
    assert_eq!(r.accepted, 2);
    assert_eq!(r.deadline_misses, 0);
    // Slow task: 2 units on cpu0 (energy 1.2), migrates (em 0.5), remaining
    // 80% on cpu1 (0.8 × 8.0 = 6.4); urgent: 3.0. Total 11.1.
    assert!(
        (r.energy.value() - 11.1).abs() < 1e-6,
        "energy={}",
        r.energy
    );
    // Slow task's remaining busy time on cpu1: 8 + 1 (cm) = 9, starting at
    // t=2 → finishes at 11; urgent finishes at 6; makespan 11.
    assert_eq!(r.makespan, Time::new(11.0));
}

#[test]
fn reservation_gate_holds_the_gpu_for_the_predicted_task() {
    // τ_light at t=0 (loose), τ_urgent at t=1 (GPU-only). With a perfect
    // oracle and plan-following dispatch the light task is kept off the GPU
    // (or held), and the urgent one is admitted.
    let (platform, catalog) = small_world();
    let trace = Trace::new(vec![req(0, 0.0, 30.0), req(1, 1.0, 5.0)]);

    let gated = Simulator::new(
        &platform,
        &catalog,
        SimConfig {
            phantom_deadline: PhantomDeadline::Fixed(Time::new(5.0)),
            ..SimConfig::default()
        },
    );
    let mut oracle = OraclePredictor::perfect(&trace, catalog.len());
    let r = gated.run(&trace, &mut HeuristicRm::new(), Some(&mut oracle));
    assert_eq!(r.accepted, 2, "reservation must rescue the urgent task");
    assert_eq!(r.deadline_misses, 0);
    // Light task went straight to the CPU (10.0), urgent to the GPU (2.0).
    assert!(
        (r.energy.value() - 12.0).abs() < 1e-9,
        "energy={}",
        r.energy
    );

    // Without prediction the light task grabs the idle GPU, and rescuing
    // the urgent task requires aborting it: one unit of GPU work (0.5 J) is
    // wasted and the light task restarts on the CPU.
    let plain = Simulator::new(&platform, &catalog, SimConfig::default());
    let r_off = plain.run(&trace, &mut HeuristicRm::new(), None);
    assert_eq!(r_off.accepted, 2);
    assert!(
        (r_off.energy.value() - 12.5).abs() < 1e-9,
        "energy={}",
        r_off.energy
    );
    assert!(r_off.energy > r.energy, "prediction avoids the wasted work");
}

#[test]
fn drain_completes_everything_queued() {
    let (platform, catalog) = small_world();
    // Burst of five tasks with generous deadlines; the trace ends at t=4.
    let trace = Trace::new((0..5).map(|i| req(i, i as f64, 200.0)).collect());
    let sim = Simulator::new(&platform, &catalog, SimConfig::default());
    let r = sim.run(&trace, &mut HeuristicRm::new(), None);
    assert_eq!(r.accepted, 5);
    assert_eq!(r.completed, 5);
    assert_eq!(r.deadline_misses, 0);
}

#[test]
fn dvfs_energy_accounting_is_exact() {
    // One DVFS CPU {0.5, 1.0}; a single task with lots of slack runs at
    // half speed: 8 time units, a quarter of the energy.
    let platform = {
        let mut b = Platform::builder();
        b.cpu_with_dvfs("big0", &[0.5, 1.0]);
        b.build()
    };
    let ids: Vec<_> = platform.ids().collect();
    let ty = TaskType::builder(0, &platform)
        .profile(ids[0], Time::new(4.0), Energy::new(8.0))
        .build();
    let catalog = TaskCatalog::new(vec![ty]);
    let trace = Trace::new(vec![req(0, 0.0, 50.0)]);
    let sim = Simulator::new(&platform, &catalog, SimConfig::default());
    let r = sim.run(&trace, &mut ExactRm::new(), None);
    assert_eq!(r.accepted, 1);
    assert!((r.energy.value() - 2.0).abs() < 1e-9, "energy={}", r.energy);
    assert_eq!(r.makespan, Time::new(8.0));

    // With a tight deadline the task must race: full energy, 4 units.
    let tight = Trace::new(vec![req(0, 0.0, 5.0)]);
    let r = sim.run(&tight, &mut ExactRm::new(), None);
    assert_eq!(r.accepted, 1);
    assert!((r.energy.value() - 8.0).abs() < 1e-9, "energy={}", r.energy);
    assert_eq!(r.makespan, Time::new(4.0));
}

#[test]
fn dvfs_speed_survives_preemption_and_migration() {
    // Two DVFS CPUs; a slow-running task is displaced by an urgent one and
    // migrates, re-choosing its speed on the destination.
    let platform = {
        let mut b = Platform::builder();
        b.cpu_with_dvfs("big0", &[0.5, 1.0]);
        b.cpu_with_dvfs("big1", &[0.5, 1.0]);
        b.build()
    };
    let ids: Vec<_> = platform.ids().collect();
    let slow = TaskType::builder(0, &platform)
        .profile(ids[0], Time::new(4.0), Energy::new(8.0))
        .profile(ids[1], Time::new(4.0), Energy::new(8.0))
        .uniform_migration(Time::new(0.5), Energy::new(0.25))
        .build();
    let catalog = TaskCatalog::new(vec![slow]);
    let trace = Trace::new(vec![
        req(0, 0.0, 30.0),
        req(1, 1.0, 30.0),
        req(2, 2.0, 30.0),
    ]);
    let sim = Simulator::new(&platform, &catalog, SimConfig::default());
    let r = sim.run(&trace, &mut ExactRm::new(), None);
    assert_eq!(r.accepted, 3);
    assert_eq!(r.deadline_misses, 0);
    assert!(r.energy.value() > 0.0);
}

#[test]
fn task_log_records_outcomes_and_placements() {
    let (platform, catalog) = small_world();
    // Task A hogs the GPU; urgent B forces an abort (same scenario as
    // `gpu_abort_wastes_consumed_energy`), with the log switched on.
    let trace = Trace::new(vec![req(0, 0.0, 100.0), req(1, 2.0, 4.5)]);
    let sim = Simulator::new(
        &platform,
        &catalog,
        SimConfig {
            record_task_log: true,
            ..SimConfig::default()
        },
    );
    let r = sim.run(&trace, &mut ExactRm::new(), None);
    assert_eq!(r.task_log.len(), 2);
    let a = &r.task_log[0];
    let b = &r.task_log[1];
    assert_eq!(a.outcome, rtrm_sim::TaskOutcome::Completed);
    assert_eq!(b.outcome, rtrm_sim::TaskOutcome::Completed);
    assert_eq!(a.restarts, 1, "A was aborted once");
    assert_eq!(b.restarts, 0);
    assert!(
        a.finished.unwrap() > b.finished.unwrap(),
        "A requeued after B"
    );
    assert!(!a.placements.is_empty());
}

#[test]
fn task_log_marks_rejections() {
    let (platform, catalog) = small_world();
    // Impossible deadline: rejected.
    let trace = Trace::new(vec![req(0, 0.0, 1.0)]);
    let sim = Simulator::new(
        &platform,
        &catalog,
        SimConfig {
            record_task_log: true,
            ..SimConfig::default()
        },
    );
    let r = sim.run(&trace, &mut HeuristicRm::new(), None);
    assert_eq!(r.rejected, 1);
    assert_eq!(r.task_log[0].outcome, rtrm_sim::TaskOutcome::Rejected);
    assert!(r.task_log[0].placements.is_empty());
    assert_eq!(r.task_log[0].finished, None);
}

#[test]
fn energy_breakdown_sums_to_total_components() {
    let (platform, catalog) = small_world();
    // Abort scenario: waste 1.0 (half of A's GPU energy) with no migration.
    let trace = Trace::new(vec![req(0, 0.0, 100.0), req(1, 2.0, 4.5)]);
    let sim = Simulator::new(&platform, &catalog, SimConfig::default());
    let r = sim.run(&trace, &mut ExactRm::new(), None);
    assert!(
        (r.wasted_energy.value() - 1.0).abs() < 1e-9,
        "waste={}",
        r.wasted_energy
    );
    assert_eq!(r.migration_energy, Energy::ZERO);
    // Total = useful work (2 + 2) + waste (1).
    assert!((r.energy.value() - 5.0).abs() < 1e-9);
}

#[test]
fn migration_energy_is_attributed() {
    let platform = Platform::builder().cpus(2).build();
    let ids: Vec<_> = platform.ids().collect();
    let slow = TaskType::builder(0, &platform)
        .profile(ids[0], Time::new(10.0), Energy::new(6.0))
        .profile(ids[1], Time::new(10.0), Energy::new(8.0))
        .uniform_migration(Time::new(1.0), Energy::new(0.5))
        .build();
    let urgent = TaskType::builder(1, &platform)
        .profile(ids[0], Time::new(4.0), Energy::new(3.0))
        .build();
    let catalog = TaskCatalog::new(vec![slow, urgent]);
    let trace = Trace::new(vec![
        req(0, 0.0, 11.0),
        Request {
            id: RequestId::new(1),
            arrival: Time::new(2.0),
            task_type: TaskTypeId::new(1),
            deadline: Time::new(4.5),
        },
    ]);
    let sim = Simulator::new(&platform, &catalog, SimConfig::default());
    let r = sim.run(&trace, &mut ExactRm::new(), None);
    assert!((r.migration_energy.value() - 0.5).abs() < 1e-9);
    assert_eq!(r.wasted_energy, Energy::ZERO);
}

#[test]
fn utilization_reflects_busy_time() {
    let (platform, catalog) = small_world();
    // Two sequential GPU tasks: GPU busy 8 of makespan 8, CPU idle.
    let trace = Trace::new(vec![req(0, 0.0, 50.0), req(1, 1.0, 50.0)]);
    let sim = Simulator::new(&platform, &catalog, SimConfig::default());
    let r = sim.run(&trace, &mut HeuristicRm::new(), None);
    let cpu = platform.ids().next().expect("cpu");
    let gpu = platform.ids().nth(1).expect("gpu");
    assert!(
        (r.utilization(gpu) - 1.0).abs() < 1e-9,
        "gpu={}",
        r.utilization(gpu)
    );
    assert_eq!(r.utilization(cpu), 0.0);
    assert_eq!(r.busy_time[gpu.index()], Time::new(8.0));
}
