//! End-to-end simulator invariants over generated workloads.

use rand::SeedableRng;
use rtrm_core::{ExactRm, HeuristicRm, ResourceManager};
use rtrm_platform::Platform;
use rtrm_predict::{ErrorModel, OraclePredictor, OverheadModel, Predictor};
use rtrm_sim::{PhantomDeadline, SimConfig, Simulator};
use rtrm_trace::{generate_catalog, generate_traces, CatalogConfig, TraceConfig};

fn setup(
    trace_len: usize,
    traces: usize,
    seed: u64,
) -> (
    Platform,
    rtrm_platform::TaskCatalog,
    Vec<rtrm_platform::Trace>,
) {
    let platform = Platform::paper_default();
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let catalog = generate_catalog(&platform, &CatalogConfig::paper(), &mut rng);
    let cfg = TraceConfig {
        length: trace_len,
        ..TraceConfig::calibrated_vt()
    };
    let batch = generate_traces(&catalog, &cfg, traces, seed);
    (platform, catalog, batch)
}

#[test]
fn no_admitted_task_ever_misses_a_deadline() {
    let (platform, catalog, traces) = setup(120, 4, 42);
    let sim = Simulator::new(&platform, &catalog, SimConfig::default());
    for trace in &traces {
        for rm in [
            &mut HeuristicRm::new() as &mut dyn ResourceManager,
            &mut ExactRm::new() as &mut dyn ResourceManager,
        ] {
            let report = sim.run(trace, rm, None);
            assert_eq!(report.deadline_misses, 0);
            assert_eq!(report.completed, report.accepted);
            assert_eq!(report.accepted + report.rejected, report.requests);
            assert!(report.energy.value() > 0.0);
        }
    }
}

#[test]
fn prediction_invariants_hold_with_oracle() {
    let (platform, catalog, traces) = setup(120, 3, 7);
    let sim = Simulator::new(&platform, &catalog, SimConfig::default());
    for trace in &traces {
        let mut oracle = OraclePredictor::perfect(trace, catalog.len());
        let report = sim.run(trace, &mut HeuristicRm::new(), Some(&mut oracle));
        assert_eq!(report.deadline_misses, 0);
        assert_eq!(report.completed, report.accepted);
        assert!(report.used_prediction > 0, "prediction should shape plans");
    }
}

#[test]
fn perfect_prediction_does_not_hurt_acceptance_much() {
    // The paper's headline: with accurate prediction the rejection rate
    // drops (VT group, Fig 2b). Averaged over several traces, prediction-on
    // must not be worse than prediction-off.
    let (platform, catalog, traces) = setup(150, 6, 99);
    // VT-appropriate phantom deadline model (the low end of the VT
    // coefficient range on the fastest resource).
    let sim = Simulator::new(
        &platform,
        &catalog,
        SimConfig {
            phantom_deadline: PhantomDeadline::MinWcetTimes(1.5),
            ..SimConfig::default()
        },
    );
    let mut rej_off = 0.0;
    let mut rej_on = 0.0;
    for trace in &traces {
        rej_off += sim
            .run(trace, &mut HeuristicRm::new(), None)
            .rejection_percent();
        let mut oracle = OraclePredictor::perfect(trace, catalog.len());
        rej_on += sim
            .run(trace, &mut HeuristicRm::new(), Some(&mut oracle))
            .rejection_percent();
    }
    // Allow 1 percentage point of per-trace noise on the mean.
    assert!(
        rej_on / 6.0 <= rej_off / 6.0 + 1.0,
        "accurate prediction must not hurt: on={} off={}",
        rej_on / 6.0,
        rej_off / 6.0
    );
}

#[test]
fn exact_rejects_no_more_than_heuristic_on_average() {
    let (platform, catalog, traces) = setup(100, 6, 5);
    let sim = Simulator::new(&platform, &catalog, SimConfig::default());
    let (mut rej_exact, mut rej_heur) = (0.0, 0.0);
    for trace in &traces {
        rej_exact += sim
            .run(trace, &mut ExactRm::new(), None)
            .rejection_percent();
        rej_heur += sim
            .run(trace, &mut HeuristicRm::new(), None)
            .rejection_percent();
    }
    // Locally-optimal decisions are not globally optimal (paper Sec 5.2:
    // 88 %, not 100 %), but averaged over traces the exact manager wins.
    assert!(
        rej_exact <= rej_heur + 1.0,
        "exact={rej_exact} heuristic={rej_heur}"
    );
}

#[test]
fn large_overhead_degrades_even_perfect_prediction() {
    // Sec 5.5: with overhead well above the useful range, prediction-on
    // rejects more than prediction-off. The crossover coefficient depends
    // on the operating point (see EXPERIMENTS.md); 3× the mean interarrival
    // is far past it for the calibrated VT workload.
    let (platform, catalog, traces) = setup(150, 4, 21);
    let plain = Simulator::new(&platform, &catalog, SimConfig::default());
    let with_cost = Simulator::new(
        &platform,
        &catalog,
        SimConfig {
            overhead: OverheadModel::fraction_of_interarrival(3.0),
            phantom_deadline: PhantomDeadline::MeanWcetTimes(1.75),
            ..SimConfig::default()
        },
    );
    let (mut rej_off, mut rej_heavy) = (0.0, 0.0);
    for trace in &traces {
        rej_off += plain
            .run(trace, &mut HeuristicRm::new(), None)
            .rejection_percent();
        let mut oracle = OraclePredictor::perfect(trace, catalog.len());
        rej_heavy += with_cost
            .run(trace, &mut HeuristicRm::new(), Some(&mut oracle))
            .rejection_percent();
    }
    assert!(
        rej_heavy > rej_off,
        "3x interarrival overhead must hurt: heavy={rej_heavy} off={rej_off}"
    );
}

#[test]
fn degraded_oracle_sits_between_perfect_and_off() {
    let (platform, catalog, traces) = setup(150, 5, 31);
    let sim = Simulator::new(&platform, &catalog, SimConfig::default());
    let mut sums = [0.0f64; 3]; // perfect, degraded, off
    for (i, trace) in traces.iter().enumerate() {
        let mut perfect = OraclePredictor::perfect(trace, catalog.len());
        sums[0] += sim
            .run(trace, &mut HeuristicRm::new(), Some(&mut perfect))
            .rejection_percent();
        let mut degraded = OraclePredictor::new(
            trace,
            catalog.len(),
            ErrorModel {
                type_accuracy: 0.5,
                arrival_accuracy: 0.75,
            },
            i as u64,
        );
        sums[1] += sim
            .run(trace, &mut HeuristicRm::new(), Some(&mut degraded))
            .rejection_percent();
        sums[2] += sim
            .run(trace, &mut HeuristicRm::new(), None)
            .rejection_percent();
    }
    // Weak ordering with generous slack — noise on 5 traces is real, but
    // degraded prediction must not beat perfect prediction outright.
    assert!(
        sums[1] >= sums[0] - 10.0,
        "degraded ({}) should not beat perfect ({})",
        sums[1],
        sums[0]
    );
}

#[test]
fn history_predictor_runs_end_to_end() {
    let (platform, catalog, traces) = setup(100, 2, 3);
    let sim = Simulator::new(&platform, &catalog, SimConfig::default());
    for trace in &traces {
        let mut predictor = rtrm_predict::HistoryPredictor::new(catalog.len(), 0.3);
        let report = sim.run(trace, &mut HeuristicRm::new(), Some(&mut predictor));
        assert_eq!(report.deadline_misses, 0);
    }
}

#[test]
fn oracle_reset_allows_reuse_across_runs() {
    let (platform, catalog, traces) = setup(80, 1, 17);
    let sim = Simulator::new(&platform, &catalog, SimConfig::default());
    let trace = &traces[0];
    let mut oracle = OraclePredictor::new(trace, catalog.len(), ErrorModel::perfect(), 1);
    let a = sim.run(trace, &mut HeuristicRm::new(), Some(&mut oracle));
    oracle.reset();
    let b = sim.run(trace, &mut HeuristicRm::new(), Some(&mut oracle));
    assert_eq!(a, b, "reset oracle must reproduce the run exactly");
}

#[test]
fn multi_step_lookahead_keeps_all_invariants() {
    let (platform, catalog, traces) = setup(120, 3, 61);
    for k in [2usize, 4] {
        let sim = Simulator::new(
            &platform,
            &catalog,
            SimConfig {
                phantom_deadline: PhantomDeadline::MinWcetTimes(1.5),
                lookahead: k,
                ..SimConfig::default()
            },
        );
        for trace in &traces {
            let mut oracle = OraclePredictor::perfect(trace, catalog.len());
            let report = sim.run(trace, &mut HeuristicRm::new(), Some(&mut oracle));
            assert_eq!(report.deadline_misses, 0, "lookahead {k}");
            assert_eq!(report.completed, report.accepted);
        }
    }
}

#[test]
fn lookahead_zero_equals_prediction_off() {
    let (platform, catalog, traces) = setup(100, 2, 73);
    let off = Simulator::new(&platform, &catalog, SimConfig::default());
    let zero = Simulator::new(
        &platform,
        &catalog,
        SimConfig {
            lookahead: 0,
            ..SimConfig::default()
        },
    );
    for trace in &traces {
        let a = off.run(trace, &mut HeuristicRm::new(), None);
        let mut oracle = OraclePredictor::perfect(trace, catalog.len());
        let b = zero.run(trace, &mut HeuristicRm::new(), Some(&mut oracle));
        assert_eq!(a, b, "a predictor asked for zero steps must change nothing");
    }
}
