//! Differential tests for the unified global event queue: the single-heap
//! advance path must reproduce the per-resource timeline replay **bit for
//! bit** (both paths feed one shared outcome-application loop, so the whole
//! [`rtrm_sim::SimReport`] — energies included — must compare equal), and
//! multi-speed (DVFS) candidate disambiguation must survive end-to-end runs.

use proptest::prelude::*;
use rand::SeedableRng;
use rtrm_core::{Activation, Decision, ExactRm, HeuristicRm, ResourceManager};
use rtrm_platform::{
    Energy, Platform, Request, RequestId, TaskCatalog, TaskType, TaskTypeId, Time, Trace,
};
use rtrm_predict::OraclePredictor;
use rtrm_sim::{SimConfig, Simulator};
use rtrm_trace::{generate_catalog, generate_traces, CatalogConfig, TraceConfig};

fn world(seed: u64, dvfs: bool) -> (Platform, TaskCatalog, Vec<Trace>) {
    let platform = if dvfs {
        let mut b = Platform::builder();
        b.cpu_with_dvfs("big0", &[0.5, 1.0]);
        b.cpu_with_dvfs("big1", &[0.5, 1.0]);
        b.gpu("gpu");
        b.build()
    } else {
        Platform::paper_default()
    };
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let catalog = generate_catalog(&platform, &CatalogConfig::paper(), &mut rng);
    let cfg = TraceConfig {
        length: 50,
        ..TraceConfig::calibrated_vt()
    };
    let traces = generate_traces(&catalog, &cfg, 2, seed);
    (platform, catalog, traces)
}

fn config(unified: bool) -> SimConfig {
    SimConfig {
        record_task_log: true,
        unified_event_queue: unified,
        ..SimConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The tentpole's correctness bar: for random workloads — with and
    /// without prediction (future-released phantoms exercise preemption and
    /// reservation gates), on plain and DVFS platforms, under both managers
    /// — the unified path's report equals the reference path's exactly.
    #[test]
    fn unified_queue_matches_per_resource_replay(
        seed in any::<u64>(),
        dvfs in any::<bool>(),
        use_predictor in any::<bool>(),
        exact in any::<bool>(),
    ) {
        let (platform, catalog, traces) = world(seed, dvfs);
        let unified = Simulator::new(&platform, &catalog, config(true));
        let reference = Simulator::new(&platform, &catalog, config(false));
        for trace in &traces {
            let run = |sim: &Simulator| {
                let mut heur = HeuristicRm::new();
                let mut ex = ExactRm::new();
                let rm: &mut dyn ResourceManager =
                    if exact { &mut ex } else { &mut heur };
                if use_predictor {
                    let mut oracle = OraclePredictor::perfect(trace, catalog.len());
                    sim.run(trace, rm, Some(&mut oracle))
                } else {
                    sim.run(trace, rm, None)
                }
            };
            prop_assert_eq!(run(&unified), run(&reference));
        }
    }
}

/// Wraps a manager and records every distinct DVFS speed it admits, so a
/// test can prove multiple speed levels were actually exercised.
struct SpeedRecorder<R> {
    inner: R,
    speeds: Vec<f64>,
}

impl<R: ResourceManager> ResourceManager for SpeedRecorder<R> {
    fn name(&self) -> &str {
        "speed-recorder"
    }

    fn decide(&mut self, activation: &Activation<'_>) -> Decision {
        let d = self.inner.decide(activation);
        if d.admitted {
            for a in &d.assignments {
                if !self.speeds.iter().any(|s| (s - a.speed).abs() < 1e-12) {
                    self.speeds.push(a.speed);
                }
            }
        }
        d
    }
}

/// Regression for multi-speed candidate disambiguation: the simulator's
/// assignment-to-candidate match must key on `(resource, restart, speed)`.
/// A DVFS CPU offers two candidates that differ *only* in speed; if the
/// match ignored speed, the half-speed admission below would bind to the
/// full-speed candidate and the energy accounting (2 J vs 8 J) would break.
#[test]
fn dvfs_two_speed_levels_end_to_end() {
    let platform = {
        let mut b = Platform::builder();
        b.cpu_with_dvfs("big0", &[0.5, 1.0]);
        b.build()
    };
    let ids: Vec<_> = platform.ids().collect();
    let ty = TaskType::builder(0, &platform)
        .profile(ids[0], Time::new(4.0), Energy::new(8.0))
        .build();
    let catalog = TaskCatalog::new(vec![ty]);
    let req = |i: usize, arrival: f64, deadline: f64| Request {
        id: RequestId::new(i),
        arrival: Time::new(arrival),
        task_type: TaskTypeId::new(0),
        deadline: Time::new(deadline),
    };
    // Loose relative deadline: half speed (8 time units, 2 J). Tight
    // relative deadline (4.5, only the full-speed WCET of 4 fits): 8 J.
    let trace = Trace::new(vec![req(0, 0.0, 50.0), req(1, 20.0, 4.5)]);

    for unified in [true, false] {
        let sim = Simulator::new(&platform, &catalog, config(unified));
        let mut rm = SpeedRecorder {
            inner: ExactRm::new(),
            speeds: Vec::new(),
        };
        let r = sim.run(&trace, &mut rm, None);
        assert_eq!(r.accepted, 2);
        assert_eq!(r.completed, 2);
        assert_eq!(r.deadline_misses, 0);
        rm.speeds.sort_by(f64::total_cmp);
        assert_eq!(rm.speeds, vec![0.5, 1.0], "both DVFS levels exercised");
        assert!(
            (r.energy.value() - 10.0).abs() < 1e-9,
            "half-speed run must charge the half-speed profile: energy={}",
            r.energy
        );
    }
}

/// The two advance paths also agree on deterministic corner scenarios that
/// hit pinned GPU jobs, aborts, and reservation gates (the accounting-test
/// worlds), not just generated traces.
#[test]
fn unified_queue_matches_on_abort_and_gate_scenarios() {
    let platform = Platform::builder().cpus(1).gpu("g").build();
    let ids: Vec<_> = platform.ids().collect();
    let ty = TaskType::builder(0, &platform)
        .profile(ids[0], Time::new(10.0), Energy::new(10.0))
        .profile(ids[1], Time::new(4.0), Energy::new(2.0))
        .uniform_migration(Time::new(1.0), Energy::new(0.5))
        .build();
    let catalog = TaskCatalog::new(vec![ty]);
    let req = |i: usize, arrival: f64, deadline: f64| Request {
        id: RequestId::new(i),
        arrival: Time::new(arrival),
        task_type: TaskTypeId::new(0),
        deadline: Time::new(deadline),
    };
    // GPU abort-restart scenario plus a trailing queue-up.
    let trace = Trace::new(vec![
        req(0, 0.0, 100.0),
        req(1, 2.0, 4.5),
        req(2, 5.0, 60.0),
        req(3, 5.5, 70.0),
    ]);
    let a =
        Simulator::new(&platform, &catalog, config(true)).run(&trace, &mut ExactRm::new(), None);
    let b =
        Simulator::new(&platform, &catalog, config(false)).run(&trace, &mut ExactRm::new(), None);
    assert_eq!(a, b);

    // Reservation-gate scenario under a perfect oracle.
    let gated = Trace::new(vec![req(0, 0.0, 30.0), req(1, 1.0, 5.0)]);
    let run = |unified: bool| {
        let sim = Simulator::new(&platform, &catalog, config(unified));
        let mut oracle = OraclePredictor::perfect(&gated, catalog.len());
        sim.run(&gated, &mut HeuristicRm::new(), Some(&mut oracle))
    };
    assert_eq!(run(true), run(false));
}
