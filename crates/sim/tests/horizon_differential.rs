//! Differential pins for confidence-gated horizon admission
//! ([`rtrm_core::HorizonPolicy`]): the gate's two endpoints must coincide
//! **bit-identically** with the legacy paths they generalize.
//!
//! * θ = 1.0 — confidence can never *strictly* clear 1.0, so every phantom
//!   is gated and the run must equal a prediction-off run.
//! * θ = 0.0, depth = 1 — every positive-confidence step clears, and depth 1
//!   keeps only the nearest one: the run must equal the legacy
//!   single-phantom path (`lookahead: 1`, no gate) under the same predictor.

use proptest::prelude::*;
use rand::SeedableRng;
use rtrm_core::{ExactRm, HeuristicRm, HorizonPolicy, ResourceManager};
use rtrm_platform::{Platform, TaskCatalog, Trace};
use rtrm_predict::MarkovHorizonPredictor;
use rtrm_sim::{SimConfig, Simulator};
use rtrm_trace::{generate_catalog, generate_traces, CatalogConfig, TraceConfig};

fn world(seed: u64, cpu_only: bool) -> (Platform, TaskCatalog, Vec<Trace>) {
    let platform = if cpu_only {
        let mut b = Platform::builder();
        b.cpus(3);
        b.build()
    } else {
        Platform::paper_default()
    };
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let catalog = generate_catalog(&platform, &CatalogConfig::paper(), &mut rng);
    let cfg = TraceConfig {
        length: 50,
        ..TraceConfig::calibrated_vt()
    };
    let traces = generate_traces(&catalog, &cfg, 2, seed);
    (platform, catalog, traces)
}

fn manager(exact: bool) -> Box<dyn ResourceManager> {
    if exact {
        Box::new(ExactRm::new())
    } else {
        Box::new(HeuristicRm::new())
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// θ = 1.0 gates every phantom: bit-identical to running without a
    /// predictor at all, at any depth.
    #[test]
    fn theta_one_is_prediction_off(
        seed in any::<u64>(),
        exact in any::<bool>(),
        cpu_only in any::<bool>(),
        depth in 1usize..6,
    ) {
        let (platform, catalog, traces) = world(seed, cpu_only);
        let gated = Simulator::new(
            &platform,
            &catalog,
            SimConfig {
                horizon: Some(HorizonPolicy::new(depth, 1.0)),
                ..SimConfig::default()
            },
        );
        let off = Simulator::new(&platform, &catalog, SimConfig::default());
        for trace in &traces {
            let mut p = MarkovHorizonPredictor::new(catalog.len(), 0.5);
            let a = gated.run(trace, manager(exact).as_mut(), Some(&mut p));
            let b = off.run(trace, manager(exact).as_mut(), None);
            prop_assert_eq!(a, b);
        }
    }

    /// θ = 0.0 at depth 1 admits exactly the nearest positive-confidence
    /// step: bit-identical to the legacy ungated single-phantom path under
    /// the same predictor.
    #[test]
    fn theta_zero_depth_one_is_single_phantom(
        seed in any::<u64>(),
        exact in any::<bool>(),
        cpu_only in any::<bool>(),
    ) {
        let (platform, catalog, traces) = world(seed, cpu_only);
        let gated = Simulator::new(
            &platform,
            &catalog,
            SimConfig {
                horizon: Some(HorizonPolicy::new(1, 0.0)),
                ..SimConfig::default()
            },
        );
        let legacy = Simulator::new(
            &platform,
            &catalog,
            SimConfig {
                lookahead: 1,
                horizon: None,
                ..SimConfig::default()
            },
        );
        for trace in &traces {
            let mut pa = MarkovHorizonPredictor::new(catalog.len(), 0.5);
            let mut pb = MarkovHorizonPredictor::new(catalog.len(), 0.5);
            let a = gated.run(trace, manager(exact).as_mut(), Some(&mut pa));
            let b = legacy.run(trace, manager(exact).as_mut(), Some(&mut pb));
            prop_assert_eq!(a, b);
        }
    }
}
