//! Declarative sweep engine for cluster-scale experiment batches.
//!
//! The paper's evaluation (Sec 5) averages rejection and energy over
//! hundreds of traces per configuration across a (workload × policy ×
//! predictor) grid. Instead of every experiment binary re-implementing that
//! grid loop, a [`SweepSpec`] *declares* the grid and [`run_sweep`] executes
//! it on the warm worker pool ([`rtrm_sim::run_batch_with`]): one
//! [`rtrm_sim::SimScratch`] per worker, chunked dispatch, deterministic
//! per-cell seed derivation ([`cell_seed`]), and checkpoint/resume so a
//! killed sweep restarts from completed cells.
//!
//! Outputs under `results/` (created on demand):
//!
//! * `<name>.sweep.json` — the checkpoint/result document, rewritten
//!   atomically after every completed cell (schema validated by
//!   `crates/bench/tests/bench_json_schema.rs`);
//! * `<name>_sweep.csv` — one row per cell, written when the sweep
//!   completes.
//!
//! The per-trace reports of a freshly computed cell are bit-identical to
//! sequential [`rtrm_sim::Simulator::run`] calls with the same derived
//! seeds — asserted by `crates/bench/tests/sweep_differential.rs`.
//!
//! ## Fault tolerance
//!
//! * **Crash-safe checkpoints** — the checkpoint is rewritten atomically
//!   (temp file + rename) after every cell, and publishing retries transient
//!   filesystem errors with bounded backoff. A checkpoint that still ends up
//!   corrupt (torn write, disk fault) is backed up to
//!   `<name>.sweep.json.corrupt` and salvaged line by line: only the cells
//!   lost to the damaged region are recomputed.
//! * **Leases** — a (single-process) sweep holds `results/<name>.sweep.lock`
//!   (owner id + heartbeat) for its whole run, so two processes sweeping the
//!   same name cannot interleave checkpoint writes. A heartbeat older than
//!   [`SweepOptions::lease_stale_secs`] (default [`LEASE_STALE_SECS`]) marks
//!   a crashed owner and the lease is taken over;
//!   [`SweepOptions::lease_wait`] chooses between waiting for a live owner
//!   and failing fast with [`SweepError::LeaseHeld`].
//! * **Cooperative mode** — [`SweepOptions::coop`] switches the run to the
//!   per-cell claim protocol of [`crate::coop`]: N processes share one grid,
//!   each claiming pending cells and publishing per-owner partial checkpoint
//!   shards that a final merge folds into the canonical checkpoint. Crashed
//!   workers are detected by stale claim heartbeats and their cells taken
//!   over; duplicated completions must agree bit-for-bit
//!   ([`CellMetrics::deterministic_eq`]) or the merge fails hard.

use std::collections::BTreeMap;
use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use rand::rngs::StdRng;
use rand::SeedableRng;

use rtrm_core::HorizonPolicy;
use rtrm_platform::{Platform, TaskCatalog, Trace};
use rtrm_predict::{ErrorModel, MarkovHorizonPredictor, OraclePredictor, OverheadModel, Predictor};
use rtrm_sim::{
    mean_energy, mean_rejection_percent, run_batch_with, BatchOptions, PhantomDeadline, SimConfig,
    SimReport,
};
use rtrm_trace::{
    generate_catalog, generate_pattern_traces, generate_traces, CatalogConfig, WorkloadPattern,
};

use crate::{try_write_csv, Group, Oracle, Policy, Scale};

/// Checkpoint document version; bumped on schema changes so stale files are
/// discarded instead of misread.
pub const CHECKPOINT_VERSION: u64 = 2;

/// Seconds without a heartbeat after which a sweep lease counts as abandoned
/// (crashed owner) and is taken over by the next acquirer.
pub const LEASE_STALE_SECS: u64 = 30;

/// Publish attempts for the checkpoint beyond the first, with doubling
/// backoff, before the transient-looking filesystem error is surfaced.
const PUBLISH_RETRIES: u32 = 3;

/// Everything that can go wrong executing a sweep or reading its results.
#[derive(Debug)]
pub enum SweepError {
    /// A filesystem operation failed (for checkpoint publishing: after
    /// bounded retries).
    Io {
        /// The file or directory the operation was about.
        path: PathBuf,
        /// The underlying error.
        source: io::Error,
    },
    /// A renderer asked for a cell that is not on the sweep's grid — a
    /// spec/render mismatch.
    MissingCell {
        /// Requested workload label.
        workload: String,
        /// Requested policy label.
        policy: String,
        /// Requested predictor label.
        predictor: String,
    },
    /// Another live process holds the sweep's lease and
    /// [`SweepOptions::lease_wait`] was off.
    LeaseHeld {
        /// The lease file.
        path: PathBuf,
        /// Owner id recorded in the lease.
        owner: String,
    },
    /// The requested sweep name is not one of [`crate::figs::NAMES`].
    UnknownSweep {
        /// The unrecognized name.
        name: String,
    },
    /// Two completions of the same cell disagree on the deterministic
    /// metrics ([`CellMetrics::deterministic_eq`]). With the sweep's
    /// deterministic per-cell seeds this can only mean a corrupted shard or
    /// workers running different code/configurations — never silently pick
    /// one.
    ShardConflict {
        /// The conflicted cell key.
        key: String,
        /// Owner of the first record.
        a: String,
        /// Owner of the disagreeing record.
        b: String,
    },
}

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SweepError::Io { path, source } => {
                write!(f, "sweep I/O failed on {}: {source}", path.display())
            }
            SweepError::MissingCell {
                workload,
                policy,
                predictor,
            } => write!(f, "cell {workload}/{policy}/{predictor} not in sweep"),
            SweepError::LeaseHeld { path, owner } => write!(
                f,
                "sweep lease {} is held by {owner} (rerun with --wait-lease to queue behind it)",
                path.display()
            ),
            SweepError::UnknownSweep { name } => {
                write!(
                    f,
                    "unknown sweep '{name}' (known: tab1, fig2, fig3, fig4, fig5, horizon)"
                )
            }
            SweepError::ShardConflict { key, a, b } => write!(
                f,
                "cell {key} was completed with different results by '{a}' and '{b}' \
                 (deterministic cells must be bit-identical; corrupted shard or \
                 mismatched worker builds?)"
            ),
        }
    }
}

impl std::error::Error for SweepError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SweepError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// One predictor configuration on the grid's predictor axis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PredictorSpec {
    /// Stable label identifying the cell in checkpoints, CSV, and lookups
    /// (e.g. `"off"`, `"perfect"`, `"type@0.75"`). Must be unique within a
    /// spec.
    pub label: &'static str,
    /// Oracle configuration (off, or on with an error model).
    pub oracle: Oracle,
    /// Prediction runtime overhead as a fraction of the mean interarrival
    /// time (Sec 5.5); `0.0` charges nothing.
    pub overhead_coeff: f64,
    /// Confidence-gated horizon admission ([`SimConfig::horizon`]): ask the
    /// predictor for `depth` confidence-scored steps and plan only around
    /// phantoms strictly above θ. `None` keeps the legacy single-phantom
    /// path.
    pub horizon: Option<HorizonPolicy>,
}

impl PredictorSpec {
    /// Prediction disabled.
    #[must_use]
    pub fn off() -> Self {
        PredictorSpec {
            label: "off",
            oracle: Oracle::Off,
            overhead_coeff: 0.0,
            horizon: None,
        }
    }

    /// Perfectly accurate oracle, no overhead.
    #[must_use]
    pub fn perfect() -> Self {
        PredictorSpec {
            label: "perfect",
            oracle: Oracle::On(ErrorModel::perfect()),
            overhead_coeff: 0.0,
            horizon: None,
        }
    }

    /// Online Markov-chain horizon predictor under a confidence gate:
    /// `depth` steps, admission threshold `theta`, no overhead charged.
    #[must_use]
    pub fn markov_horizon(label: &'static str, alpha: f64, depth: usize, theta: f64) -> Self {
        PredictorSpec {
            label,
            oracle: Oracle::Markov { alpha },
            overhead_coeff: 0.0,
            horizon: Some(HorizonPolicy::new(depth, theta)),
        }
    }

    fn overhead(&self) -> OverheadModel {
        if self.overhead_coeff > 0.0 {
            OverheadModel::fraction_of_interarrival(self.overhead_coeff)
        } else {
            OverheadModel::none()
        }
    }
}

/// The workload axis of a sweep grid.
pub enum GridWorkload {
    /// The paper's generated workload: one batch of [`Scale::traces`]
    /// traces per deadline-tightness group, derived from the master seed
    /// exactly like [`crate::workload`].
    Paper {
        /// Deadline-tightness groups to sweep.
        groups: Vec<Group>,
    },
    /// Non-stationary patterned workloads ([`WorkloadPattern`]): one batch
    /// of [`Scale::traces`] traces per named pattern, generated against the
    /// paper catalog under the same child-seed scheme as `Paper`
    /// ([`generate_pattern_traces`]).
    Patterns {
        /// `(label, pattern)` pairs forming the workload axis.
        patterns: Vec<(&'static str, WorkloadPattern)>,
        /// Deadline model for predicted phantom tasks.
        phantom_deadline: PhantomDeadline,
    },
    /// A fixed, caller-supplied workload (e.g. the Table 1 motivational
    /// example), swept over the policy × predictor axes only.
    Custom {
        /// Label identifying the workload in cell keys.
        label: &'static str,
        /// The platform.
        platform: Platform,
        /// The task catalog.
        catalog: TaskCatalog,
        /// The traces of the batch.
        traces: Vec<Trace>,
        /// Deadline model for predicted phantom tasks.
        phantom_deadline: PhantomDeadline,
    },
}

impl std::fmt::Debug for GridWorkload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GridWorkload::Paper { groups } => {
                f.debug_struct("Paper").field("groups", groups).finish()
            }
            GridWorkload::Patterns { patterns, .. } => f
                .debug_struct("Patterns")
                .field(
                    "patterns",
                    &patterns.iter().map(|(l, _)| *l).collect::<Vec<_>>(),
                )
                .finish_non_exhaustive(),
            GridWorkload::Custom { label, traces, .. } => f
                .debug_struct("Custom")
                .field("label", label)
                .field("traces", &traces.len())
                .finish_non_exhaustive(),
        }
    }
}

/// A declarative experiment grid: workloads × policies × predictors, plus
/// the scale shared by every cell.
#[derive(Debug)]
pub struct SweepSpec {
    /// Output-file stem and checkpoint identity.
    pub name: &'static str,
    /// Traces per cell / requests per trace / master seed.
    pub scale: Scale,
    /// The workload axis.
    pub workload: GridWorkload,
    /// The policy axis.
    pub policies: Vec<Policy>,
    /// The predictor axis.
    pub predictors: Vec<PredictorSpec>,
}

/// Aggregated metrics of one completed grid cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellMetrics {
    /// Traces simulated.
    pub traces: usize,
    /// Total requests over the cell's traces.
    pub requests: usize,
    /// Total accepted requests.
    pub accepted: usize,
    /// Total rejected requests.
    pub rejected: usize,
    /// Mean per-trace rejection percentage (the paper's headline metric).
    pub mean_rejection_percent: f64,
    /// Mean per-trace total energy.
    pub mean_energy: f64,
    /// Total degraded activations (anytime incumbent or heuristic floor
    /// after a solver timeout) over the cell's traces.
    pub degraded_activations: usize,
    /// Wall-clock milliseconds the cell took on the pool.
    pub elapsed_ms: f64,
}

impl CellMetrics {
    /// Equality over the deterministic fields — everything except the
    /// wall-clock `elapsed_ms`, which re-executing the same cell cannot
    /// reproduce. This is the reconciliation rule for duplicated
    /// completions in cooperative mode: the per-cell seeds
    /// ([`cell_seed`]) make execution idempotent, so two honest
    /// completions of one cell *must* agree on every field here.
    #[must_use]
    pub fn deterministic_eq(&self, other: &CellMetrics) -> bool {
        self.traces == other.traces
            && self.requests == other.requests
            && self.accepted == other.accepted
            && self.rejected == other.rejected
            && self.mean_rejection_percent.to_bits() == other.mean_rejection_percent.to_bits()
            && self.mean_energy.to_bits() == other.mean_energy.to_bits()
            && self.degraded_activations == other.degraded_activations
    }
}

/// One grid cell with its identity and result.
#[derive(Debug, Clone)]
pub struct CellResult {
    /// Workload label (group name, or the custom workload's label).
    pub workload: String,
    /// Policy label ([`Policy::name`]).
    pub policy: String,
    /// Predictor label ([`PredictorSpec::label`]).
    pub predictor: String,
    /// Aggregated metrics.
    pub metrics: CellMetrics,
    /// Per-trace reports — `None` when the cell was resumed from a
    /// checkpoint (only aggregates are persisted).
    pub reports: Option<Vec<SimReport>>,
}

impl CellResult {
    /// The cell's stable identity inside checkpoints.
    #[must_use]
    pub fn key(&self) -> String {
        format!("{}/{}/{}", self.workload, self.policy, self.predictor)
    }
}

/// Everything a completed sweep produced.
#[derive(Debug)]
pub struct SweepOutcome {
    /// The spec's name.
    pub name: &'static str,
    /// Every grid cell, in expansion order (workload × policy × predictor).
    pub cells: Vec<CellResult>,
    /// Cells that were loaded from the checkpoint (or, cooperatively, from
    /// peers' shards) instead of computed by this process.
    pub resumed: usize,
    /// Path of the checkpoint/result JSON.
    pub checkpoint_path: PathBuf,
    /// Path of the per-cell CSV.
    pub csv_path: PathBuf,
    /// When checkpoint salvage fired: where the damaged bytes were
    /// preserved (`<name>.sweep.json.corrupt`) — surfaced so callers (the
    /// `sweep` CLI) can point the user at the evidence.
    pub corrupt_backup: Option<PathBuf>,
}

impl SweepOutcome {
    /// Metrics of the `(workload, policy, predictor)` cell.
    ///
    /// # Errors
    ///
    /// [`SweepError::MissingCell`] when the cell is not on the grid — a
    /// spec/render mismatch.
    pub fn metrics(
        &self,
        workload: &str,
        policy: Policy,
        predictor: &str,
    ) -> Result<&CellMetrics, SweepError> {
        self.cells
            .iter()
            .find(|c| {
                c.workload == workload && c.policy == policy.name() && c.predictor == predictor
            })
            .map(|c| &c.metrics)
            .ok_or_else(|| SweepError::MissingCell {
                workload: workload.to_string(),
                policy: policy.name().to_string(),
                predictor: predictor.to_string(),
            })
    }
}

/// Execution options for [`run_sweep`].
#[derive(Debug, Clone)]
pub struct SweepOptions {
    /// Ignore (and overwrite) an existing checkpoint instead of resuming.
    /// In cooperative mode this also wipes existing shards and claims —
    /// do it from the coordinating process *before* peers start.
    pub fresh: bool,
    /// Suppress per-cell progress lines.
    pub quiet: bool,
    /// When another live process holds the sweep's lease, poll until it is
    /// released instead of failing with [`SweepError::LeaseHeld`].
    pub lease_wait: bool,
    /// Seconds without a heartbeat after which a lease or cooperative cell
    /// claim counts as abandoned (crashed owner) and is taken over.
    /// Defaults to [`LEASE_STALE_SECS`]; tests and chaos suites shrink it
    /// so takeover happens in about a second instead of thirty.
    pub lease_stale_secs: u64,
    /// `Some` switches [`run_sweep`] to the cooperative per-cell claim
    /// protocol ([`crate::coop`]); `None` (the default) keeps the exclusive
    /// whole-run lease and the bit-identical single-process path.
    pub coop: Option<crate::coop::CoopConfig>,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions {
            fresh: false,
            quiet: false,
            lease_wait: false,
            lease_stale_secs: LEASE_STALE_SECS,
            coop: None,
        }
    }
}

/// Deterministic per-cell seed: FNV-1a of the cell key folded with the
/// master seed. Stable across grid reordering and resume, so cell results
/// never depend on which other cells ran (or in which order). Trace `i` of
/// a cell derives its predictor seed as `cell_seed ^ i`.
#[must_use]
pub fn cell_seed(master: u64, key: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in key.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^ master
}

/// One expanded job of the grid.
pub(crate) struct Job {
    pub(crate) workload: String,
    pub(crate) policy: Policy,
    pub(crate) predictor: PredictorSpec,
    group: Option<Group>,
    /// Index into [`GridWorkload::Patterns`]' pattern list.
    pattern: Option<usize>,
}

impl Job {
    /// The cell key this job computes (matches [`CellResult::key`]).
    pub(crate) fn key(&self) -> String {
        format!(
            "{}/{}/{}",
            self.workload,
            self.policy.name(),
            self.predictor.label
        )
    }
}

/// Expands the grid into jobs, in the canonical workload × policy ×
/// predictor order shared by the single-process and cooperative paths.
pub(crate) fn expand_jobs(spec: &SweepSpec) -> Vec<Job> {
    let mut jobs: Vec<Job> = Vec::new();
    match &spec.workload {
        GridWorkload::Paper { groups } => {
            for &g in groups {
                for &policy in &spec.policies {
                    for &predictor in &spec.predictors {
                        jobs.push(Job {
                            workload: g.name().to_string(),
                            policy,
                            predictor,
                            group: Some(g),
                            pattern: None,
                        });
                    }
                }
            }
        }
        GridWorkload::Patterns { patterns, .. } => {
            for (i, (label, _)) in patterns.iter().enumerate() {
                for &policy in &spec.policies {
                    for &predictor in &spec.predictors {
                        jobs.push(Job {
                            workload: (*label).to_string(),
                            policy,
                            predictor,
                            group: None,
                            pattern: Some(i),
                        });
                    }
                }
            }
        }
        GridWorkload::Custom { label, .. } => {
            for &policy in &spec.policies {
                for &predictor in &spec.predictors {
                    jobs.push(Job {
                        workload: (*label).to_string(),
                        policy,
                        predictor,
                        group: None,
                        pattern: None,
                    });
                }
            }
        }
    }
    jobs
}

/// The grid's requests-per-trace header field (`0` for fixed custom
/// workloads, whose traces come with the spec).
pub(crate) fn spec_trace_len(spec: &SweepSpec) -> usize {
    match &spec.workload {
        GridWorkload::Paper { .. } | GridWorkload::Patterns { .. } => spec.scale.trace_len,
        GridWorkload::Custom { .. } => 0,
    }
}

/// Executes grid cells on the warm worker pool, caching the generated
/// workload (catalog + per-group traces) across cells. One instance per
/// sweeping process; both the single-process loop and the cooperative
/// workers compute cells through this same type, which is what makes their
/// results bit-identical by construction.
pub(crate) struct CellExecutor<'a> {
    spec: &'a SweepSpec,
    paper_platform: Platform,
    paper_catalog: Option<TaskCatalog>,
    group_traces: BTreeMap<&'static str, Vec<Trace>>,
}

impl<'a> CellExecutor<'a> {
    pub(crate) fn new(spec: &'a SweepSpec) -> Self {
        // Generated workloads are shared across the cells of a group;
        // custom workloads come with the spec.
        let paper_platform = Platform::paper_default();
        let paper_catalog = match &spec.workload {
            GridWorkload::Paper { .. } | GridWorkload::Patterns { .. } => {
                let mut rng = StdRng::seed_from_u64(spec.scale.seed);
                Some(generate_catalog(
                    &paper_platform,
                    &CatalogConfig::paper(),
                    &mut rng,
                ))
            }
            GridWorkload::Custom { .. } => None,
        };
        CellExecutor {
            spec,
            paper_platform,
            paper_catalog,
            group_traces: BTreeMap::new(),
        }
    }

    /// Runs one job's batch and aggregates its [`CellMetrics`].
    pub(crate) fn execute(&mut self, job: &Job) -> CellResult {
        let spec = self.spec;
        let key = job.key();
        let (platform, catalog, traces, config) = match (&spec.workload, job.group) {
            (GridWorkload::Paper { .. }, Some(g)) => {
                let catalog = self
                    .paper_catalog
                    .as_ref()
                    .expect("paper catalog generated");
                let traces = self.group_traces.entry(g.name()).or_insert_with(|| {
                    let cfg = g.trace_config(spec.scale.trace_len);
                    generate_traces(
                        catalog,
                        &cfg,
                        spec.scale.traces,
                        spec.scale.seed ^ (g as u64 + 1) << 32,
                    )
                });
                let config = SimConfig {
                    overhead: job.predictor.overhead(),
                    phantom_deadline: PhantomDeadline::MinWcetTimes(g.phantom_coefficient()),
                    horizon: job.predictor.horizon,
                    ..SimConfig::default()
                };
                (&self.paper_platform, catalog, traces.as_slice(), config)
            }
            (
                GridWorkload::Patterns {
                    patterns,
                    phantom_deadline,
                },
                _,
            ) => {
                let i = job.pattern.expect("pattern jobs carry their index");
                let (label, pattern) = &patterns[i];
                let catalog = self
                    .paper_catalog
                    .as_ref()
                    .expect("paper catalog generated");
                let traces = self.group_traces.entry(*label).or_insert_with(|| {
                    generate_pattern_traces(
                        catalog,
                        pattern,
                        spec.scale.traces,
                        spec.scale.seed ^ ((i as u64 + 1) << 16),
                    )
                });
                let config = SimConfig {
                    overhead: job.predictor.overhead(),
                    phantom_deadline: *phantom_deadline,
                    horizon: job.predictor.horizon,
                    ..SimConfig::default()
                };
                (&self.paper_platform, catalog, traces.as_slice(), config)
            }
            (
                GridWorkload::Custom {
                    platform,
                    catalog,
                    traces,
                    phantom_deadline,
                    ..
                },
                _,
            ) => {
                let config = SimConfig {
                    overhead: job.predictor.overhead(),
                    phantom_deadline: *phantom_deadline,
                    horizon: job.predictor.horizon,
                    ..SimConfig::default()
                };
                (platform, catalog, traces.as_slice(), config)
            }
            (GridWorkload::Paper { .. }, None) => unreachable!("paper jobs carry their group"),
        };

        let seed = cell_seed(spec.scale.seed, &key);
        let catalog_len = catalog.len();
        let began = Instant::now();
        let (reports, _stats) = run_batch_with(
            platform,
            catalog,
            &config,
            traces,
            |_| job.policy.build(),
            |i| match job.predictor.oracle {
                Oracle::Off => None,
                Oracle::On(error) => {
                    let p: Box<dyn Predictor + Send> = Box::new(OraclePredictor::new(
                        &traces[i],
                        catalog_len,
                        error,
                        seed ^ i as u64,
                    ));
                    Some(p)
                }
                Oracle::Markov { alpha } => {
                    let p: Box<dyn Predictor + Send> =
                        Box::new(MarkovHorizonPredictor::new(catalog_len, alpha));
                    Some(p)
                }
            },
            &BatchOptions::default(),
        );
        let elapsed_ms = began.elapsed().as_secs_f64() * 1e3;

        let metrics = CellMetrics {
            traces: reports.len(),
            requests: reports.iter().map(|r| r.requests).sum(),
            accepted: reports.iter().map(|r| r.accepted).sum(),
            rejected: reports.iter().map(|r| r.rejected).sum(),
            mean_rejection_percent: mean_rejection_percent(&reports),
            mean_energy: mean_energy(&reports),
            degraded_activations: reports.iter().map(|r| r.degraded_activations).sum(),
            elapsed_ms,
        };
        CellResult {
            workload: job.workload.clone(),
            policy: job.policy.name().to_string(),
            predictor: job.predictor.label.to_string(),
            metrics,
            reports: Some(reports),
        }
    }
}

/// Runs the sweep: expands the grid, skips cells already in the checkpoint
/// (unless [`SweepOptions::fresh`]), executes the rest on the warm worker
/// pool, and persists checkpoint + CSV under `results/`.
///
/// The whole run holds the sweep's lease (`results/<name>.sweep.lock`), so
/// concurrent processes sweeping the same name serialize instead of racing
/// on the checkpoint (see the module docs).
///
/// # Errors
///
/// [`SweepError::Io`] when `results/` cannot be created or the checkpoint /
/// CSV cannot be published (after bounded retries), and
/// [`SweepError::LeaseHeld`] when another live process owns the lease and
/// [`SweepOptions::lease_wait`] is off.
pub fn run_sweep(spec: &SweepSpec, options: &SweepOptions) -> Result<SweepOutcome, SweepError> {
    if options.coop.is_some() {
        return crate::coop::run_cooperative(spec, options);
    }
    let dir = crate::results_dir_for_charts();
    fs::create_dir_all(&dir).map_err(|source| SweepError::Io {
        path: dir.clone(),
        source,
    })?;
    let lease = SweepLease::acquire(
        dir.join(format!("{}.sweep.lock", spec.name)),
        options.lease_wait,
        options.lease_stale_secs,
    )?;
    let checkpoint_path = dir.join(format!("{}.sweep.json", spec.name));

    let trace_len = spec_trace_len(spec);
    let mut done: BTreeMap<String, CellMetrics> = BTreeMap::new();
    let mut corrupt_backup = None;
    if !options.fresh {
        if let Ok(text) = fs::read_to_string(&checkpoint_path) {
            match load_checkpoint(&text, spec, trace_len) {
                Loaded::Cells(cells) => done = cells,
                // A stale file from another configuration: recompute
                // silently, exactly as before.
                Loaded::HeaderMismatch => {}
                Loaded::Corrupt => {
                    let salvage = salvage_checkpoint(&checkpoint_path, &text, spec, trace_len);
                    done = salvage.cells;
                    corrupt_backup = salvage.backup;
                }
            }
        }
    }

    let jobs = expand_jobs(spec);
    let mut executor = CellExecutor::new(spec);
    let mut cells: Vec<CellResult> = Vec::with_capacity(jobs.len());
    let mut resumed = 0;
    for job in &jobs {
        lease.refresh();
        let key = job.key();
        if let Some(metrics) = done.get(&key) {
            resumed += 1;
            if !options.quiet {
                println!("sweep {}: cell {key} resumed from checkpoint", spec.name);
            }
            cells.push(CellResult {
                workload: job.workload.clone(),
                policy: job.policy.name().to_string(),
                predictor: job.predictor.label.to_string(),
                metrics: metrics.clone(),
                reports: None,
            });
            continue;
        }

        let cell = executor.execute(job);
        if !options.quiet {
            println!(
                "sweep {}: cell {key}: rejection {:.2}%, energy {:.1}, {:.0} ms",
                spec.name,
                cell.metrics.mean_rejection_percent,
                cell.metrics.mean_energy,
                cell.metrics.elapsed_ms
            );
        }
        cells.push(cell);
        save_checkpoint(&checkpoint_path, spec, trace_len, &cells)?;
    }

    // A fully resumed sweep still rewrites the checkpoint (refreshing a
    // partially written file) and the CSV.
    save_checkpoint(&checkpoint_path, spec, trace_len, &cells)?;
    let csv_path = write_sweep_csv(spec, &cells, &dir)?;
    drop(lease);

    Ok(SweepOutcome {
        name: spec.name,
        cells,
        resumed,
        checkpoint_path,
        csv_path,
        corrupt_backup,
    })
}

/// Writes the per-cell CSV (`results/<name>_sweep.csv`) of a completed
/// sweep, shared by the single-process and cooperative paths.
pub(crate) fn write_sweep_csv(
    spec: &SweepSpec,
    cells: &[CellResult],
    dir: &Path,
) -> Result<PathBuf, SweepError> {
    let rows: Vec<String> = cells
        .iter()
        .map(|c| {
            let m = &c.metrics;
            format!(
                "{},{},{},{},{},{},{},{:.6},{:.6},{},{:.3}",
                c.workload,
                c.policy,
                c.predictor,
                m.traces,
                m.requests,
                m.accepted,
                m.rejected,
                m.mean_rejection_percent,
                m.mean_energy,
                m.degraded_activations,
                m.elapsed_ms
            )
        })
        .collect();
    let csv_name = format!("{}_sweep", spec.name);
    try_write_csv(
        &csv_name,
        "workload,policy,predictor,traces,requests,accepted,rejected,\
         mean_rejection_percent,mean_energy,degraded_activations,elapsed_ms",
        &rows,
    )
    .map_err(|source| SweepError::Io {
        path: dir.join(format!("{csv_name}.csv")),
        source,
    })
}

/// Serializes the checkpoint document and writes it atomically (temp file +
/// rename), so a sweep killed mid-write never leaves a torn checkpoint.
/// Transient publish failures (the `sweep::publish` fail point injects one)
/// are retried [`PUBLISH_RETRIES`] times with doubling backoff before the
/// error is surfaced.
fn save_checkpoint(
    path: &Path,
    spec: &SweepSpec,
    trace_len: usize,
    cells: &[CellResult],
) -> Result<(), SweepError> {
    let doc = checkpoint_doc(spec, trace_len, cells, None);
    write_doc_atomic(path, &doc, spec.name, "sweep::publish")
}

/// Serializes a checkpoint (or, with `owner`, a per-owner partial shard —
/// the same document plus an `"owner"` header field, which the parser
/// ignores) in the canonical line-oriented layout that [`salvage_checkpoint`]
/// relies on.
pub(crate) fn checkpoint_doc(
    spec: &SweepSpec,
    trace_len: usize,
    cells: &[CellResult],
    owner: Option<&str>,
) -> String {
    let mut rows = Vec::with_capacity(cells.len());
    for c in cells {
        let m = &c.metrics;
        // `{}` on f64 is the shortest round-trip representation, so a
        // resumed cell's metrics compare bit-equal to the originals.
        rows.push(format!(
            "    {{\"key\": \"{}\", \"workload\": \"{}\", \"policy\": \"{}\", \
             \"predictor\": \"{}\", \"traces\": {}, \"requests\": {}, \"accepted\": {}, \
             \"rejected\": {}, \"mean_rejection_percent\": {}, \"mean_energy\": {}, \
             \"degraded_activations\": {}, \"elapsed_ms\": {}}}",
            c.key(),
            c.workload,
            c.policy,
            c.predictor,
            m.traces,
            m.requests,
            m.accepted,
            m.rejected,
            m.mean_rejection_percent,
            m.mean_energy,
            m.degraded_activations,
            m.elapsed_ms
        ));
    }
    let owner_field = match owner {
        Some(o) => format!("\n  \"owner\": \"{o}\","),
        None => String::new(),
    };
    format!(
        "{{\n  \"sweep\": \"{}\",{}\n  \"version\": {},\n  \"seed\": {},\n  \
         \"traces_per_cell\": {},\n  \"trace_len\": {},\n  \"cells\": [\n{}\n  ]\n}}\n",
        spec.name,
        owner_field,
        CHECKPOINT_VERSION,
        spec.scale.seed,
        spec.scale.traces,
        trace_len,
        rows.join(",\n")
    )
}

/// Writes `doc` to `path` atomically (temp file + rename), so a process
/// killed mid-write never leaves a torn file. Transient publish failures
/// (the `failpoint` injects one) are retried [`PUBLISH_RETRIES`] times with
/// doubling backoff before the error is surfaced.
pub(crate) fn write_doc_atomic(
    path: &Path,
    doc: &str,
    sweep_name: &str,
    failpoint: &'static str,
) -> Result<(), SweepError> {
    let tmp = path.with_extension("json.tmp");
    let mut delay = Duration::from_millis(10);
    let mut attempt = 0;
    loop {
        match publish(&tmp, path, doc, failpoint) {
            Ok(()) => return Ok(()),
            Err(source) if attempt < PUBLISH_RETRIES => {
                attempt += 1;
                eprintln!(
                    "sweep {sweep_name}: publishing {} failed ({source}); \
                     retry {attempt}/{PUBLISH_RETRIES} in {delay:?}",
                    path.display()
                );
                std::thread::sleep(delay);
                delay *= 2;
            }
            Err(source) => {
                return Err(SweepError::Io {
                    path: path.to_path_buf(),
                    source,
                })
            }
        }
    }
}

/// One publish attempt: write the temp file, then rename it over the live
/// file (atomic on POSIX). The fail point (`sweep::publish` for the
/// canonical checkpoint, `sweep::part_publish` for cooperative shards)
/// injects a transient error before the write, and — armed with an abort
/// action — kills the process between temp write and rename, the window
/// where a torn publish must leave the live file untouched.
fn publish(tmp: &Path, path: &Path, doc: &str, failpoint: &'static str) -> io::Result<()> {
    if rtrm_testkit::should_fail_io(failpoint) {
        return Err(io::Error::other("injected transient failure"));
    }
    fs::write(tmp, doc)?;
    rtrm_testkit::maybe_die(failpoint, 1);
    fs::rename(tmp, path)
}

/// What reading an existing checkpoint file yielded.
pub(crate) enum Loaded {
    /// Parsed, and the header matches this spec: these cells are done.
    Cells(BTreeMap<String, CellMetrics>),
    /// Parsed, but written by a different configuration (name, version,
    /// seed, or scale) — discarded, not misread.
    HeaderMismatch,
    /// Unparseable — a torn write or disk corruption; candidate for
    /// [`salvage_checkpoint`].
    Corrupt,
}

/// Parses a checkpoint and classifies it (see [`Loaded`]).
pub(crate) fn load_checkpoint(text: &str, spec: &SweepSpec, trace_len: usize) -> Loaded {
    let Some(doc) = json::parse(text) else {
        return Loaded::Corrupt;
    };
    let header_matches = (|| {
        Some(
            doc.get_str("sweep")? == spec.name
                && doc.get_f64("version")? == CHECKPOINT_VERSION as f64
                && doc.get_f64("seed")? == spec.scale.seed as f64
                && doc.get_f64("traces_per_cell")? == spec.scale.traces as f64
                && doc.get_f64("trace_len")? == trace_len as f64,
        )
    })();
    match header_matches {
        None => return Loaded::Corrupt,
        Some(false) => return Loaded::HeaderMismatch,
        Some(true) => {}
    }
    let Some(cells) = doc.get_array("cells") else {
        return Loaded::Corrupt;
    };
    let mut done = BTreeMap::new();
    for cell in cells {
        let Some((key, metrics)) = parse_cell(cell) else {
            return Loaded::Corrupt;
        };
        done.insert(key, metrics);
    }
    Loaded::Cells(done)
}

/// Parses one cell object of the checkpoint's `cells` array.
fn parse_cell(cell: &json::Value) -> Option<(String, CellMetrics)> {
    Some((
        cell.get_str("key")?.to_string(),
        CellMetrics {
            traces: cell.get_f64("traces")? as usize,
            requests: cell.get_f64("requests")? as usize,
            accepted: cell.get_f64("accepted")? as usize,
            rejected: cell.get_f64("rejected")? as usize,
            mean_rejection_percent: cell.get_f64("mean_rejection_percent")?,
            mean_energy: cell.get_f64("mean_energy")?,
            degraded_activations: cell.get_f64("degraded_activations")? as usize,
            elapsed_ms: cell.get_f64("elapsed_ms")?,
        },
    ))
}

/// Handles a corrupt checkpoint: preserves the damaged file as
/// `<name>.sweep.json.corrupt`, then recovers every intact cell so the sweep
/// recomputes only what the damaged region actually lost.
///
/// Line-oriented salvage is sound because [`save_checkpoint`] emits exactly
/// one cell per `    {"key": ...}` line; a cell line caught mid-write fails
/// to parse and is skipped. No cell is trusted unless the header fields
/// (name, version, seed, scale) are all present verbatim — a corrupt file
/// from another configuration salvages nothing.
fn salvage_checkpoint(path: &Path, text: &str, spec: &SweepSpec, trace_len: usize) -> Salvage {
    let backup = path.with_extension("json.corrupt");
    let backup = match fs::rename(path, &backup) {
        Ok(()) => {
            eprintln!(
                "sweep {}: checkpoint {} is corrupt; backed up to {}",
                spec.name,
                path.display(),
                backup.display()
            );
            Some(backup)
        }
        Err(err) => {
            eprintln!(
                "sweep {}: checkpoint {} is corrupt and could not be backed up ({err})",
                spec.name,
                path.display()
            );
            None
        }
    };
    let header_ok = text.contains(&format!("\"sweep\": \"{}\"", spec.name))
        && text.contains(&format!("\"version\": {CHECKPOINT_VERSION}"))
        && text.contains(&format!("\"seed\": {}", spec.scale.seed))
        && text.contains(&format!("\"traces_per_cell\": {}", spec.scale.traces))
        && text.contains(&format!("\"trace_len\": {trace_len}"));
    if !header_ok {
        return Salvage {
            cells: BTreeMap::new(),
            backup,
        };
    }
    let mut done = BTreeMap::new();
    for line in text.lines() {
        if !line.starts_with("    {\"key\": ") {
            continue;
        }
        let candidate = line.trim().trim_end_matches(',');
        if let Some((key, metrics)) = json::parse(candidate).as_ref().and_then(parse_cell) {
            done.insert(key, metrics);
        }
    }
    eprintln!(
        "sweep {}: salvaged {} intact cell(s); the rest will be recomputed",
        spec.name,
        done.len()
    );
    Salvage {
        cells: done,
        backup,
    }
}

/// What [`salvage_checkpoint`] recovered from a corrupt checkpoint.
struct Salvage {
    /// Every intact cell line, trusted only if the header matched verbatim.
    cells: BTreeMap<String, CellMetrics>,
    /// Where the damaged file was preserved, if the rename succeeded.
    backup: Option<PathBuf>,
}

/// Monotonic-enough wall-clock seconds for lease heartbeats.
pub(crate) fn epoch_secs() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map_or(0, |d| d.as_secs())
}

pub(crate) fn lease_owner(content: &str) -> Option<&str> {
    content.lines().find_map(|l| l.strip_prefix("owner "))
}

pub(crate) fn lease_heartbeat(content: &str) -> Option<u64> {
    content
        .lines()
        .find_map(|l| l.strip_prefix("heartbeat "))
        .and_then(|v| v.trim().parse().ok())
}

/// Whether a lease (or cooperative claim) file's owner should be presumed
/// dead, judged against `stale_secs`. A missing heartbeat line means the
/// owner was caught between create and first write, so the file's mtime
/// stands in for the heartbeat.
pub(crate) fn lease_is_stale(path: &Path, content: &str, stale_secs: u64) -> bool {
    if let Some(beat) = lease_heartbeat(content) {
        return heartbeat_is_stale(epoch_secs(), beat, stale_secs);
    }
    match fs::metadata(path).and_then(|m| m.modified()) {
        Ok(modified) => mtime_is_stale(SystemTime::now(), modified, stale_secs),
        // The file vanished under us (owner released it): retry the create.
        Err(_) => true,
    }
}

/// Staleness rule for a heartbeat, judged at `now_secs` (both in seconds
/// since the Unix epoch). A heartbeat in the *future* — an NTP step on this
/// machine or clock skew against the owner's — must read as **fresh**:
/// presuming a live owner dead and stealing its lease corrupts the sweep,
/// while waiting out a genuinely dead one merely delays takeover. The
/// `saturating_sub` pins the future case to age 0.
pub(crate) fn heartbeat_is_stale(now_secs: u64, beat: u64, stale_secs: u64) -> bool {
    now_secs.saturating_sub(beat) > stale_secs
}

/// Staleness rule for the mtime fallback, judged at `now`. Same skew
/// discipline as [`heartbeat_is_stale`]: a modification time in the future
/// makes `duration_since` fail, which reads as fresh.
pub(crate) fn mtime_is_stale(now: SystemTime, modified: SystemTime, stale_secs: u64) -> bool {
    now.duration_since(modified)
        .is_ok_and(|age| age.as_secs() > stale_secs)
}

/// Process-unique suffix so two sweeps in one process get distinct owner ids.
static LEASE_COUNTER: AtomicU64 = AtomicU64::new(0);

/// An exclusive whole-run lease on one sweep name, held as
/// `results/<name>.sweep.lock`. See the module docs for the protocol.
#[derive(Debug)]
pub(crate) struct SweepLease {
    path: PathBuf,
    owner: String,
}

impl SweepLease {
    /// Takes the lease: atomically creates the lock file, taking over a
    /// stale one (heartbeat older than `stale_secs`) and either
    /// polling a live one (`wait`) or failing with
    /// [`SweepError::LeaseHeld`].
    pub(crate) fn acquire(
        path: PathBuf,
        wait: bool,
        stale_secs: u64,
    ) -> Result<SweepLease, SweepError> {
        let owner = format!(
            "{}-{}",
            std::process::id(),
            LEASE_COUNTER.fetch_add(1, Ordering::Relaxed)
        );
        loop {
            match fs::OpenOptions::new()
                .write(true)
                .create_new(true)
                .open(&path)
            {
                Ok(mut file) => {
                    // Heartbeat write is best effort: if it fails, the mtime
                    // fallback in `lease_is_stale` still covers us.
                    let _ = write!(file, "owner {owner}\nheartbeat {}\n", epoch_secs());
                    return Ok(SweepLease { path, owner });
                }
                Err(err) if err.kind() == io::ErrorKind::AlreadyExists => {
                    let holder = fs::read_to_string(&path).unwrap_or_default();
                    if lease_is_stale(&path, &holder, stale_secs) {
                        // Crashed owner: remove the lock and race for the
                        // recreate (exactly one contender wins `create_new`).
                        let _ = fs::remove_file(&path);
                        continue;
                    }
                    if !wait {
                        return Err(SweepError::LeaseHeld {
                            path,
                            owner: lease_owner(&holder).unwrap_or("unknown").to_string(),
                        });
                    }
                    std::thread::sleep(Duration::from_millis(50));
                }
                Err(source) => return Err(SweepError::Io { path, source }),
            }
        }
    }

    /// Refreshes the heartbeat (best effort — a transient failure only
    /// risks a takeover, never wrong results).
    fn refresh(&self) {
        let _ = fs::write(
            &self.path,
            format!("owner {}\nheartbeat {}\n", self.owner, epoch_secs()),
        );
    }
}

impl Drop for SweepLease {
    fn drop(&mut self) {
        let _ = fs::remove_file(&self.path);
    }
}

/// A minimal JSON reader for the checkpoint format this module itself
/// writes (the workspace deliberately carries no JSON dependency). Strings
/// contain no escapes; numbers are plain decimals. Malformed input yields
/// `None`, which [`run_sweep`] treats as "no checkpoint".
mod json {
    use std::collections::BTreeMap;

    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        Number(f64),
        String(String),
        Array(Vec<Value>),
        Object(BTreeMap<String, Value>),
    }

    impl Value {
        pub fn get_str(&self, key: &str) -> Option<&str> {
            match self.get(key)? {
                Value::String(s) => Some(s),
                _ => None,
            }
        }

        pub fn get_f64(&self, key: &str) -> Option<f64> {
            match self.get(key)? {
                Value::Number(n) => Some(*n),
                _ => None,
            }
        }

        pub fn get_array(&self, key: &str) -> Option<&[Value]> {
            match self.get(key)? {
                Value::Array(a) => Some(a),
                _ => None,
            }
        }

        fn get(&self, key: &str) -> Option<&Value> {
            match self {
                Value::Object(m) => m.get(key),
                _ => None,
            }
        }
    }

    pub fn parse(text: &str) -> Option<Value> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        let v = p.value()?;
        p.skip_ws();
        (p.pos == p.bytes.len()).then_some(v)
    }

    struct Parser<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl Parser<'_> {
        fn skip_ws(&mut self) {
            while self
                .bytes
                .get(self.pos)
                .is_some_and(|b| b.is_ascii_whitespace())
            {
                self.pos += 1;
            }
        }

        fn peek(&mut self) -> Option<u8> {
            self.skip_ws();
            self.bytes.get(self.pos).copied()
        }

        fn eat(&mut self, b: u8) -> Option<()> {
            (self.peek()? == b).then(|| self.pos += 1)
        }

        fn value(&mut self) -> Option<Value> {
            match self.peek()? {
                b'{' => self.object(),
                b'[' => self.array(),
                b'"' => Some(Value::String(self.string()?)),
                _ => self.number(),
            }
        }

        fn string(&mut self) -> Option<String> {
            self.eat(b'"')?;
            let start = self.pos;
            while *self.bytes.get(self.pos)? != b'"' {
                self.pos += 1;
            }
            let s = std::str::from_utf8(&self.bytes[start..self.pos]).ok()?;
            self.pos += 1;
            Some(s.to_string())
        }

        fn number(&mut self) -> Option<Value> {
            let start = self.pos;
            while self.bytes.get(self.pos).is_some_and(|b| {
                b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E')
            }) {
                self.pos += 1;
            }
            std::str::from_utf8(&self.bytes[start..self.pos])
                .ok()?
                .parse()
                .ok()
                .map(Value::Number)
        }

        fn array(&mut self) -> Option<Value> {
            self.eat(b'[')?;
            let mut items = Vec::new();
            if self.peek() == Some(b']') {
                self.pos += 1;
                return Some(Value::Array(items));
            }
            loop {
                items.push(self.value()?);
                match self.peek()? {
                    b',' => self.pos += 1,
                    b']' => {
                        self.pos += 1;
                        return Some(Value::Array(items));
                    }
                    _ => return None,
                }
            }
        }

        fn object(&mut self) -> Option<Value> {
            self.eat(b'{')?;
            let mut map = BTreeMap::new();
            if self.peek() == Some(b'}') {
                self.pos += 1;
                return Some(Value::Object(map));
            }
            loop {
                let key = self.string()?;
                self.eat(b':')?;
                map.insert(key, self.value()?);
                match self.peek()? {
                    b',' => self.pos += 1,
                    b'}' => {
                        self.pos += 1;
                        return Some(Value::Object(map));
                    }
                    _ => return None,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec(name: &'static str) -> SweepSpec {
        SweepSpec {
            name,
            scale: Scale {
                traces: 2,
                trace_len: 20,
                seed: 7,
            },
            workload: GridWorkload::Paper {
                groups: vec![Group::Vt],
            },
            policies: vec![Policy::Heuristic],
            predictors: vec![PredictorSpec::off(), PredictorSpec::perfect()],
        }
    }

    #[test]
    fn cell_seed_is_stable_and_key_sensitive() {
        assert_eq!(
            cell_seed(1, "VT/heuristic/off"),
            cell_seed(1, "VT/heuristic/off")
        );
        assert_ne!(
            cell_seed(1, "VT/heuristic/off"),
            cell_seed(1, "VT/heuristic/perfect")
        );
        assert_ne!(
            cell_seed(1, "VT/heuristic/off"),
            cell_seed(2, "VT/heuristic/off")
        );
    }

    #[test]
    fn sweep_runs_checkpoints_and_resumes() {
        let spec = tiny_spec("unit_sweep_smoke");
        let options = SweepOptions {
            fresh: true,
            quiet: true,
            ..SweepOptions::default()
        };
        let first = run_sweep(&spec, &options).expect("sweep runs");
        assert_eq!(first.cells.len(), 2);
        assert_eq!(first.resumed, 0);
        assert!(first.cells.iter().all(|c| c.reports.is_some()));
        assert!(first.checkpoint_path.exists());

        // Resume: every cell comes from the checkpoint, metrics identical.
        let second = run_sweep(
            &spec,
            &SweepOptions {
                quiet: true,
                ..SweepOptions::default()
            },
        )
        .expect("sweep resumes");
        assert_eq!(second.resumed, 2);
        for (a, b) in first.cells.iter().zip(&second.cells) {
            assert_eq!(a.key(), b.key());
            assert_eq!(a.metrics, b.metrics);
            assert!(b.reports.is_none(), "resumed cells carry no reports");
        }

        // A different scale invalidates the checkpoint header.
        let rescaled = SweepSpec {
            scale: Scale {
                traces: 3,
                ..spec.scale
            },
            ..tiny_spec("unit_sweep_smoke")
        };
        let third = run_sweep(
            &rescaled,
            &SweepOptions {
                quiet: true,
                ..SweepOptions::default()
            },
        )
        .expect("rescaled sweep runs");
        assert_eq!(third.resumed, 0, "stale checkpoint must be discarded");

        let _ = fs::remove_file(&first.checkpoint_path);
        let _ = fs::remove_file(&first.csv_path);
    }

    #[test]
    fn future_heartbeat_reads_fresh() {
        let now = 1_000_000u64;
        // A heartbeat ahead of the local clock (NTP step, cross-machine
        // skew) must never mark the lease stale — stealing a live owner's
        // lease corrupts the sweep.
        assert!(!heartbeat_is_stale(now, now + 1, LEASE_STALE_SECS));
        assert!(!heartbeat_is_stale(
            now,
            now + 10 * LEASE_STALE_SECS,
            LEASE_STALE_SECS
        ));
        assert!(!heartbeat_is_stale(now, u64::MAX, LEASE_STALE_SECS));
        // The boundary: exactly LEASE_STALE_SECS old is still fresh, one
        // second older is stale.
        assert!(!heartbeat_is_stale(now, now, LEASE_STALE_SECS));
        assert!(!heartbeat_is_stale(
            now,
            now - LEASE_STALE_SECS,
            LEASE_STALE_SECS
        ));
        assert!(heartbeat_is_stale(
            now,
            now - LEASE_STALE_SECS - 1,
            LEASE_STALE_SECS
        ));
        // The threshold is configurable: a 2 s-old beat is stale under a
        // 1 s threshold but fresh under the default.
        assert!(heartbeat_is_stale(now, now - 2, 1));
        assert!(!heartbeat_is_stale(now, now - 2, LEASE_STALE_SECS));
    }

    #[test]
    fn future_mtime_reads_fresh() {
        let now = UNIX_EPOCH + Duration::from_secs(1_000_000);
        assert!(!mtime_is_stale(
            now,
            now + Duration::from_secs(1),
            LEASE_STALE_SECS
        ));
        assert!(!mtime_is_stale(
            now,
            now + Duration::from_secs(10 * LEASE_STALE_SECS),
            LEASE_STALE_SECS
        ));
        assert!(!mtime_is_stale(now, now, LEASE_STALE_SECS));
        assert!(!mtime_is_stale(
            now,
            now - Duration::from_secs(LEASE_STALE_SECS),
            LEASE_STALE_SECS
        ));
        assert!(mtime_is_stale(
            now,
            now - Duration::from_secs(LEASE_STALE_SECS + 1),
            LEASE_STALE_SECS
        ));
        assert!(mtime_is_stale(now, now - Duration::from_secs(2), 1));
    }
}
