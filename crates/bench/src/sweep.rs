//! Declarative sweep engine for cluster-scale experiment batches.
//!
//! The paper's evaluation (Sec 5) averages rejection and energy over
//! hundreds of traces per configuration across a (workload × policy ×
//! predictor) grid. Instead of every experiment binary re-implementing that
//! grid loop, a [`SweepSpec`] *declares* the grid and [`run_sweep`] executes
//! it on the warm worker pool ([`rtrm_sim::run_batch_with`]): one
//! [`rtrm_sim::SimScratch`] per worker, chunked dispatch, deterministic
//! per-cell seed derivation ([`cell_seed`]), and checkpoint/resume so a
//! killed sweep restarts from completed cells.
//!
//! Outputs under `results/` (created on demand):
//!
//! * `<name>.sweep.json` — the checkpoint/result document, rewritten
//!   atomically after every completed cell (schema validated by
//!   `crates/bench/tests/bench_json_schema.rs`);
//! * `<name>_sweep.csv` — one row per cell, written when the sweep
//!   completes.
//!
//! The per-trace reports of a freshly computed cell are bit-identical to
//! sequential [`rtrm_sim::Simulator::run`] calls with the same derived
//! seeds — asserted by `crates/bench/tests/sweep_differential.rs`.

use std::collections::BTreeMap;
use std::fs;
use std::path::PathBuf;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use rtrm_platform::{Platform, TaskCatalog, Trace};
use rtrm_predict::{ErrorModel, OraclePredictor, OverheadModel, Predictor};
use rtrm_sim::{
    mean_energy, mean_rejection_percent, run_batch_with, BatchOptions, PhantomDeadline, SimConfig,
    SimReport,
};
use rtrm_trace::{generate_catalog, generate_traces, CatalogConfig};

use crate::{write_csv, Group, Oracle, Policy, Scale};

/// Checkpoint document version; bumped on schema changes so stale files are
/// discarded instead of misread.
pub const CHECKPOINT_VERSION: u64 = 1;

/// One predictor configuration on the grid's predictor axis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PredictorSpec {
    /// Stable label identifying the cell in checkpoints, CSV, and lookups
    /// (e.g. `"off"`, `"perfect"`, `"type@0.75"`). Must be unique within a
    /// spec.
    pub label: &'static str,
    /// Oracle configuration (off, or on with an error model).
    pub oracle: Oracle,
    /// Prediction runtime overhead as a fraction of the mean interarrival
    /// time (Sec 5.5); `0.0` charges nothing.
    pub overhead_coeff: f64,
}

impl PredictorSpec {
    /// Prediction disabled.
    #[must_use]
    pub fn off() -> Self {
        PredictorSpec {
            label: "off",
            oracle: Oracle::Off,
            overhead_coeff: 0.0,
        }
    }

    /// Perfectly accurate oracle, no overhead.
    #[must_use]
    pub fn perfect() -> Self {
        PredictorSpec {
            label: "perfect",
            oracle: Oracle::On(ErrorModel::perfect()),
            overhead_coeff: 0.0,
        }
    }

    fn overhead(&self) -> OverheadModel {
        if self.overhead_coeff > 0.0 {
            OverheadModel::fraction_of_interarrival(self.overhead_coeff)
        } else {
            OverheadModel::none()
        }
    }
}

/// The workload axis of a sweep grid.
pub enum GridWorkload {
    /// The paper's generated workload: one batch of [`Scale::traces`]
    /// traces per deadline-tightness group, derived from the master seed
    /// exactly like [`crate::workload`].
    Paper {
        /// Deadline-tightness groups to sweep.
        groups: Vec<Group>,
    },
    /// A fixed, caller-supplied workload (e.g. the Table 1 motivational
    /// example), swept over the policy × predictor axes only.
    Custom {
        /// Label identifying the workload in cell keys.
        label: &'static str,
        /// The platform.
        platform: Platform,
        /// The task catalog.
        catalog: TaskCatalog,
        /// The traces of the batch.
        traces: Vec<Trace>,
        /// Deadline model for predicted phantom tasks.
        phantom_deadline: PhantomDeadline,
    },
}

impl std::fmt::Debug for GridWorkload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GridWorkload::Paper { groups } => {
                f.debug_struct("Paper").field("groups", groups).finish()
            }
            GridWorkload::Custom { label, traces, .. } => f
                .debug_struct("Custom")
                .field("label", label)
                .field("traces", &traces.len())
                .finish_non_exhaustive(),
        }
    }
}

/// A declarative experiment grid: workloads × policies × predictors, plus
/// the scale shared by every cell.
#[derive(Debug)]
pub struct SweepSpec {
    /// Output-file stem and checkpoint identity.
    pub name: &'static str,
    /// Traces per cell / requests per trace / master seed.
    pub scale: Scale,
    /// The workload axis.
    pub workload: GridWorkload,
    /// The policy axis.
    pub policies: Vec<Policy>,
    /// The predictor axis.
    pub predictors: Vec<PredictorSpec>,
}

/// Aggregated metrics of one completed grid cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellMetrics {
    /// Traces simulated.
    pub traces: usize,
    /// Total requests over the cell's traces.
    pub requests: usize,
    /// Total accepted requests.
    pub accepted: usize,
    /// Total rejected requests.
    pub rejected: usize,
    /// Mean per-trace rejection percentage (the paper's headline metric).
    pub mean_rejection_percent: f64,
    /// Mean per-trace total energy.
    pub mean_energy: f64,
    /// Wall-clock milliseconds the cell took on the pool.
    pub elapsed_ms: f64,
}

/// One grid cell with its identity and result.
#[derive(Debug, Clone)]
pub struct CellResult {
    /// Workload label (group name, or the custom workload's label).
    pub workload: String,
    /// Policy label ([`Policy::name`]).
    pub policy: String,
    /// Predictor label ([`PredictorSpec::label`]).
    pub predictor: String,
    /// Aggregated metrics.
    pub metrics: CellMetrics,
    /// Per-trace reports — `None` when the cell was resumed from a
    /// checkpoint (only aggregates are persisted).
    pub reports: Option<Vec<SimReport>>,
}

impl CellResult {
    /// The cell's stable identity inside checkpoints.
    #[must_use]
    pub fn key(&self) -> String {
        format!("{}/{}/{}", self.workload, self.policy, self.predictor)
    }
}

/// Everything a completed sweep produced.
#[derive(Debug)]
pub struct SweepOutcome {
    /// The spec's name.
    pub name: &'static str,
    /// Every grid cell, in expansion order (workload × policy × predictor).
    pub cells: Vec<CellResult>,
    /// Cells that were loaded from the checkpoint instead of recomputed.
    pub resumed: usize,
    /// Path of the checkpoint/result JSON.
    pub checkpoint_path: PathBuf,
    /// Path of the per-cell CSV.
    pub csv_path: PathBuf,
}

impl SweepOutcome {
    /// Metrics of the `(workload, policy, predictor)` cell.
    ///
    /// # Panics
    ///
    /// Panics when the cell is not on the grid — a spec/render mismatch is
    /// a programming error.
    #[must_use]
    pub fn metrics(&self, workload: &str, policy: Policy, predictor: &str) -> &CellMetrics {
        &self
            .cells
            .iter()
            .find(|c| {
                c.workload == workload && c.policy == policy.name() && c.predictor == predictor
            })
            .unwrap_or_else(|| panic!("cell {workload}/{}/{predictor} not in sweep", policy.name()))
            .metrics
    }
}

/// Execution options for [`run_sweep`].
#[derive(Debug, Clone, Copy, Default)]
pub struct SweepOptions {
    /// Ignore (and overwrite) an existing checkpoint instead of resuming.
    pub fresh: bool,
    /// Suppress per-cell progress lines.
    pub quiet: bool,
}

/// Deterministic per-cell seed: FNV-1a of the cell key folded with the
/// master seed. Stable across grid reordering and resume, so cell results
/// never depend on which other cells ran (or in which order). Trace `i` of
/// a cell derives its predictor seed as `cell_seed ^ i`.
#[must_use]
pub fn cell_seed(master: u64, key: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in key.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^ master
}

/// One expanded job of the grid.
struct Job {
    workload: String,
    policy: Policy,
    predictor: PredictorSpec,
    group: Option<Group>,
}

/// Runs the sweep: expands the grid, skips cells already in the checkpoint
/// (unless [`SweepOptions::fresh`]), executes the rest on the warm worker
/// pool, and persists checkpoint + CSV under `results/`.
///
/// # Panics
///
/// Panics when `results/` cannot be written — the harness has nothing
/// sensible to do without its outputs.
#[must_use]
pub fn run_sweep(spec: &SweepSpec, options: &SweepOptions) -> SweepOutcome {
    let dir = crate::results_dir_for_charts();
    fs::create_dir_all(&dir).expect("create results dir");
    let checkpoint_path = dir.join(format!("{}.sweep.json", spec.name));

    let trace_len = match &spec.workload {
        GridWorkload::Paper { .. } => spec.scale.trace_len,
        GridWorkload::Custom { .. } => 0,
    };
    let mut done: BTreeMap<String, CellMetrics> = BTreeMap::new();
    if !options.fresh {
        if let Ok(text) = fs::read_to_string(&checkpoint_path) {
            done = load_checkpoint(&text, spec, trace_len).unwrap_or_default();
        }
    }

    // Generated workloads are shared across the cells of a group; custom
    // workloads come with the spec.
    let paper_platform = Platform::paper_default();
    let paper_catalog = match &spec.workload {
        GridWorkload::Paper { .. } => {
            let mut rng = StdRng::seed_from_u64(spec.scale.seed);
            Some(generate_catalog(
                &paper_platform,
                &CatalogConfig::paper(),
                &mut rng,
            ))
        }
        GridWorkload::Custom { .. } => None,
    };
    let mut group_traces: BTreeMap<&'static str, Vec<Trace>> = BTreeMap::new();

    let mut jobs: Vec<Job> = Vec::new();
    match &spec.workload {
        GridWorkload::Paper { groups } => {
            for &g in groups {
                for &policy in &spec.policies {
                    for &predictor in &spec.predictors {
                        jobs.push(Job {
                            workload: g.name().to_string(),
                            policy,
                            predictor,
                            group: Some(g),
                        });
                    }
                }
            }
        }
        GridWorkload::Custom { label, .. } => {
            for &policy in &spec.policies {
                for &predictor in &spec.predictors {
                    jobs.push(Job {
                        workload: (*label).to_string(),
                        policy,
                        predictor,
                        group: None,
                    });
                }
            }
        }
    }

    let mut cells: Vec<CellResult> = Vec::with_capacity(jobs.len());
    let mut resumed = 0;
    for job in &jobs {
        let key = format!(
            "{}/{}/{}",
            job.workload,
            job.policy.name(),
            job.predictor.label
        );
        if let Some(metrics) = done.get(&key) {
            resumed += 1;
            if !options.quiet {
                println!("sweep {}: cell {key} resumed from checkpoint", spec.name);
            }
            cells.push(CellResult {
                workload: job.workload.clone(),
                policy: job.policy.name().to_string(),
                predictor: job.predictor.label.to_string(),
                metrics: metrics.clone(),
                reports: None,
            });
            continue;
        }

        let (platform, catalog, traces, config) = match (&spec.workload, job.group) {
            (GridWorkload::Paper { .. }, Some(g)) => {
                let catalog = paper_catalog.as_ref().expect("paper catalog generated");
                let traces = group_traces.entry(g.name()).or_insert_with(|| {
                    let cfg = g.trace_config(spec.scale.trace_len);
                    generate_traces(
                        catalog,
                        &cfg,
                        spec.scale.traces,
                        spec.scale.seed ^ (g as u64 + 1) << 32,
                    )
                });
                let config = SimConfig {
                    overhead: job.predictor.overhead(),
                    phantom_deadline: PhantomDeadline::MinWcetTimes(g.phantom_coefficient()),
                    ..SimConfig::default()
                };
                (&paper_platform, catalog, traces.as_slice(), config)
            }
            (
                GridWorkload::Custom {
                    platform,
                    catalog,
                    traces,
                    phantom_deadline,
                    ..
                },
                _,
            ) => {
                let config = SimConfig {
                    overhead: job.predictor.overhead(),
                    phantom_deadline: *phantom_deadline,
                    ..SimConfig::default()
                };
                (platform, catalog, traces.as_slice(), config)
            }
            (GridWorkload::Paper { .. }, None) => unreachable!("paper jobs carry their group"),
        };

        let seed = cell_seed(spec.scale.seed, &key);
        let catalog_len = catalog.len();
        let began = Instant::now();
        let (reports, _stats) = run_batch_with(
            platform,
            catalog,
            &config,
            traces,
            |_| job.policy.build(),
            |i| match job.predictor.oracle {
                Oracle::Off => None,
                Oracle::On(error) => {
                    let p: Box<dyn Predictor + Send> = Box::new(OraclePredictor::new(
                        &traces[i],
                        catalog_len,
                        error,
                        seed ^ i as u64,
                    ));
                    Some(p)
                }
            },
            &BatchOptions::default(),
        );
        let elapsed_ms = began.elapsed().as_secs_f64() * 1e3;

        let metrics = CellMetrics {
            traces: reports.len(),
            requests: reports.iter().map(|r| r.requests).sum(),
            accepted: reports.iter().map(|r| r.accepted).sum(),
            rejected: reports.iter().map(|r| r.rejected).sum(),
            mean_rejection_percent: mean_rejection_percent(&reports),
            mean_energy: mean_energy(&reports),
            elapsed_ms,
        };
        if !options.quiet {
            println!(
                "sweep {}: cell {key}: rejection {:.2}%, energy {:.1}, {:.0} ms",
                spec.name, metrics.mean_rejection_percent, metrics.mean_energy, elapsed_ms
            );
        }
        cells.push(CellResult {
            workload: job.workload.clone(),
            policy: job.policy.name().to_string(),
            predictor: job.predictor.label.to_string(),
            metrics,
            reports: Some(reports),
        });
        save_checkpoint(&checkpoint_path, spec, trace_len, &cells);
    }

    // A fully resumed sweep still rewrites the checkpoint (refreshing a
    // partially written file) and the CSV.
    save_checkpoint(&checkpoint_path, spec, trace_len, &cells);
    let rows: Vec<String> = cells
        .iter()
        .map(|c| {
            let m = &c.metrics;
            format!(
                "{},{},{},{},{},{},{},{:.6},{:.6},{:.3}",
                c.workload,
                c.policy,
                c.predictor,
                m.traces,
                m.requests,
                m.accepted,
                m.rejected,
                m.mean_rejection_percent,
                m.mean_energy,
                m.elapsed_ms
            )
        })
        .collect();
    let csv_path = write_csv(
        &format!("{}_sweep", spec.name),
        "workload,policy,predictor,traces,requests,accepted,rejected,\
         mean_rejection_percent,mean_energy,elapsed_ms",
        &rows,
    );

    SweepOutcome {
        name: spec.name,
        cells,
        resumed,
        checkpoint_path,
        csv_path,
    }
}

/// Serializes the checkpoint document and writes it atomically (temp file +
/// rename), so a sweep killed mid-write never leaves a torn checkpoint.
fn save_checkpoint(path: &PathBuf, spec: &SweepSpec, trace_len: usize, cells: &[CellResult]) {
    let mut rows = Vec::with_capacity(cells.len());
    for c in cells {
        let m = &c.metrics;
        // `{}` on f64 is the shortest round-trip representation, so a
        // resumed cell's metrics compare bit-equal to the originals.
        rows.push(format!(
            "    {{\"key\": \"{}\", \"workload\": \"{}\", \"policy\": \"{}\", \
             \"predictor\": \"{}\", \"traces\": {}, \"requests\": {}, \"accepted\": {}, \
             \"rejected\": {}, \"mean_rejection_percent\": {}, \"mean_energy\": {}, \
             \"elapsed_ms\": {}}}",
            c.key(),
            c.workload,
            c.policy,
            c.predictor,
            m.traces,
            m.requests,
            m.accepted,
            m.rejected,
            m.mean_rejection_percent,
            m.mean_energy,
            m.elapsed_ms
        ));
    }
    let doc = format!(
        "{{\n  \"sweep\": \"{}\",\n  \"version\": {},\n  \"seed\": {},\n  \
         \"traces_per_cell\": {},\n  \"trace_len\": {},\n  \"cells\": [\n{}\n  ]\n}}\n",
        spec.name,
        CHECKPOINT_VERSION,
        spec.scale.seed,
        spec.scale.traces,
        trace_len,
        rows.join(",\n")
    );
    let tmp = path.with_extension("json.tmp");
    fs::write(&tmp, doc).expect("write sweep checkpoint");
    fs::rename(&tmp, path).expect("publish sweep checkpoint");
}

/// Parses a checkpoint and returns its completed cells, or `None` when the
/// header does not match this spec (different name, version, seed, or
/// scale — a stale file from another configuration is discarded, not
/// misread).
fn load_checkpoint(
    text: &str,
    spec: &SweepSpec,
    trace_len: usize,
) -> Option<BTreeMap<String, CellMetrics>> {
    let doc = json::parse(text)?;
    if doc.get_str("sweep")? != spec.name
        || doc.get_f64("version")? != CHECKPOINT_VERSION as f64
        || doc.get_f64("seed")? != spec.scale.seed as f64
        || doc.get_f64("traces_per_cell")? != spec.scale.traces as f64
        || doc.get_f64("trace_len")? != trace_len as f64
    {
        return None;
    }
    let mut done = BTreeMap::new();
    for cell in doc.get_array("cells")? {
        done.insert(
            cell.get_str("key")?.to_string(),
            CellMetrics {
                traces: cell.get_f64("traces")? as usize,
                requests: cell.get_f64("requests")? as usize,
                accepted: cell.get_f64("accepted")? as usize,
                rejected: cell.get_f64("rejected")? as usize,
                mean_rejection_percent: cell.get_f64("mean_rejection_percent")?,
                mean_energy: cell.get_f64("mean_energy")?,
                elapsed_ms: cell.get_f64("elapsed_ms")?,
            },
        );
    }
    Some(done)
}

/// A minimal JSON reader for the checkpoint format this module itself
/// writes (the workspace deliberately carries no JSON dependency). Strings
/// contain no escapes; numbers are plain decimals. Malformed input yields
/// `None`, which [`run_sweep`] treats as "no checkpoint".
mod json {
    use std::collections::BTreeMap;

    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        Number(f64),
        String(String),
        Array(Vec<Value>),
        Object(BTreeMap<String, Value>),
    }

    impl Value {
        pub fn get_str(&self, key: &str) -> Option<&str> {
            match self.get(key)? {
                Value::String(s) => Some(s),
                _ => None,
            }
        }

        pub fn get_f64(&self, key: &str) -> Option<f64> {
            match self.get(key)? {
                Value::Number(n) => Some(*n),
                _ => None,
            }
        }

        pub fn get_array(&self, key: &str) -> Option<&[Value]> {
            match self.get(key)? {
                Value::Array(a) => Some(a),
                _ => None,
            }
        }

        fn get(&self, key: &str) -> Option<&Value> {
            match self {
                Value::Object(m) => m.get(key),
                _ => None,
            }
        }
    }

    pub fn parse(text: &str) -> Option<Value> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        let v = p.value()?;
        p.skip_ws();
        (p.pos == p.bytes.len()).then_some(v)
    }

    struct Parser<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl Parser<'_> {
        fn skip_ws(&mut self) {
            while self
                .bytes
                .get(self.pos)
                .is_some_and(|b| b.is_ascii_whitespace())
            {
                self.pos += 1;
            }
        }

        fn peek(&mut self) -> Option<u8> {
            self.skip_ws();
            self.bytes.get(self.pos).copied()
        }

        fn eat(&mut self, b: u8) -> Option<()> {
            (self.peek()? == b).then(|| self.pos += 1)
        }

        fn value(&mut self) -> Option<Value> {
            match self.peek()? {
                b'{' => self.object(),
                b'[' => self.array(),
                b'"' => Some(Value::String(self.string()?)),
                _ => self.number(),
            }
        }

        fn string(&mut self) -> Option<String> {
            self.eat(b'"')?;
            let start = self.pos;
            while *self.bytes.get(self.pos)? != b'"' {
                self.pos += 1;
            }
            let s = std::str::from_utf8(&self.bytes[start..self.pos]).ok()?;
            self.pos += 1;
            Some(s.to_string())
        }

        fn number(&mut self) -> Option<Value> {
            let start = self.pos;
            while self.bytes.get(self.pos).is_some_and(|b| {
                b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E')
            }) {
                self.pos += 1;
            }
            std::str::from_utf8(&self.bytes[start..self.pos])
                .ok()?
                .parse()
                .ok()
                .map(Value::Number)
        }

        fn array(&mut self) -> Option<Value> {
            self.eat(b'[')?;
            let mut items = Vec::new();
            if self.peek() == Some(b']') {
                self.pos += 1;
                return Some(Value::Array(items));
            }
            loop {
                items.push(self.value()?);
                match self.peek()? {
                    b',' => self.pos += 1,
                    b']' => {
                        self.pos += 1;
                        return Some(Value::Array(items));
                    }
                    _ => return None,
                }
            }
        }

        fn object(&mut self) -> Option<Value> {
            self.eat(b'{')?;
            let mut map = BTreeMap::new();
            if self.peek() == Some(b'}') {
                self.pos += 1;
                return Some(Value::Object(map));
            }
            loop {
                let key = self.string()?;
                self.eat(b':')?;
                map.insert(key, self.value()?);
                match self.peek()? {
                    b',' => self.pos += 1,
                    b'}' => {
                        self.pos += 1;
                        return Some(Value::Object(map));
                    }
                    _ => return None,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec(name: &'static str) -> SweepSpec {
        SweepSpec {
            name,
            scale: Scale {
                traces: 2,
                trace_len: 20,
                seed: 7,
            },
            workload: GridWorkload::Paper {
                groups: vec![Group::Vt],
            },
            policies: vec![Policy::Heuristic],
            predictors: vec![PredictorSpec::off(), PredictorSpec::perfect()],
        }
    }

    #[test]
    fn cell_seed_is_stable_and_key_sensitive() {
        assert_eq!(
            cell_seed(1, "VT/heuristic/off"),
            cell_seed(1, "VT/heuristic/off")
        );
        assert_ne!(
            cell_seed(1, "VT/heuristic/off"),
            cell_seed(1, "VT/heuristic/perfect")
        );
        assert_ne!(
            cell_seed(1, "VT/heuristic/off"),
            cell_seed(2, "VT/heuristic/off")
        );
    }

    #[test]
    fn sweep_runs_checkpoints_and_resumes() {
        let spec = tiny_spec("unit_sweep_smoke");
        let options = SweepOptions {
            fresh: true,
            quiet: true,
        };
        let first = run_sweep(&spec, &options);
        assert_eq!(first.cells.len(), 2);
        assert_eq!(first.resumed, 0);
        assert!(first.cells.iter().all(|c| c.reports.is_some()));
        assert!(first.checkpoint_path.exists());

        // Resume: every cell comes from the checkpoint, metrics identical.
        let second = run_sweep(
            &spec,
            &SweepOptions {
                fresh: false,
                quiet: true,
            },
        );
        assert_eq!(second.resumed, 2);
        for (a, b) in first.cells.iter().zip(&second.cells) {
            assert_eq!(a.key(), b.key());
            assert_eq!(a.metrics, b.metrics);
            assert!(b.reports.is_none(), "resumed cells carry no reports");
        }

        // A different scale invalidates the checkpoint header.
        let rescaled = SweepSpec {
            scale: Scale {
                traces: 3,
                ..spec.scale
            },
            ..tiny_spec("unit_sweep_smoke")
        };
        let third = run_sweep(
            &rescaled,
            &SweepOptions {
                fresh: false,
                quiet: true,
            },
        );
        assert_eq!(third.resumed, 0, "stale checkpoint must be discarded");

        let _ = fs::remove_file(&first.checkpoint_path);
        let _ = fs::remove_file(&first.csv_path);
    }
}
