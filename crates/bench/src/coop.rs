//! Cooperative sweep execution: N processes share one grid.
//!
//! The single-process engine in [`crate::sweep`] holds one exclusive lease
//! for the whole run, so a second process can only queue behind it or steal
//! after a crash — it can never *help*. This module replaces that whole-run
//! lease with a **per-cell claim protocol** over the shared `results/`
//! directory, so any number of workers (same machine or shared filesystem)
//! cooperatively finish one grid:
//!
//! 1. **Claim** — a worker claims a batch of pending cells by atomically
//!    creating one claim file per cell under
//!    `results/<name>.sweep.claims/` (`create_new`, so exactly one worker
//!    wins each cell). Claim files carry `owner`/`heartbeat` lines in the
//!    same format as the exclusive lease and are refreshed between cells.
//! 2. **Execute + publish** — completed cells are appended to the worker's
//!    private **partial checkpoint shard**
//!    `results/<name>.sweep.<owner>.part.json` (the canonical checkpoint
//!    document plus an `"owner"` header field), published atomically via
//!    temp-file + rename after every cell, exactly like the single-process
//!    checkpoint.
//! 3. **Merge** — when the grid is covered (canonical checkpoint ∪ shards),
//!    whichever workers get there fold every shard into the canonical
//!    `results/<name>.sweep.json` and write the CSV. Merging is idempotent
//!    and concurrent-safe: inputs are read-only, the publish is an atomic
//!    rename, and every merger derives the same document.
//!
//! ## Robustness contract
//!
//! * **Crashed workers** — a claim whose heartbeat is older than
//!   [`crate::sweep::SweepOptions::lease_stale_secs`] (mtime stands in when
//!   the owner died between create and first write) marks a dead owner. A
//!   contender confirms staleness with a bounded-backoff re-read, then
//!   removes the claim and races the recreate; exactly one contender wins.
//!   The dead worker's *published* cells survive in its shard; only the cell
//!   it was holding is re-executed.
//! * **Stalled workers** — heartbeats are refreshed between cells, never
//!   mid-cell, so a worker stuck inside a cell longer than the staleness
//!   threshold loses its claim and the remaining workers finish the grid
//!   instead of deadlocking. Both workers may then complete the same cell —
//!   which is safe, because…
//! * **Duplicates must agree** — per-cell seeds ([`crate::sweep::cell_seed`])
//!   are derived from the master seed and cell key alone, so re-execution is
//!   deterministic and at-least-once semantics are sound. The merge asserts
//!   duplicate completions are bit-identical on the deterministic fields
//!   ([`CellMetrics::deterministic_eq`]); a mismatch means a corrupted shard
//!   or workers running different builds, and fails hard with
//!   [`SweepError::ShardConflict`] rather than silently picking one.
//!
//! Cooperative and exclusive modes must not be mixed on one sweep name: a
//! cooperative worker refuses to start while a live exclusive lease exists
//! (and vice versa the exclusive path knows nothing of claim files). Fail
//! points `sweep::claim`, `sweep::part_publish`, and `sweep::merge`
//! (see [`rtrm_testkit`]) let the chaos suite kill real worker processes at
//! every protocol step.

use std::collections::BTreeMap;
use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use crate::sweep::{
    cell_seed, checkpoint_doc, epoch_secs, expand_jobs, lease_is_stale, load_checkpoint,
    spec_trace_len, write_doc_atomic, write_sweep_csv, CellExecutor, CellMetrics, CellResult,
    Loaded, SweepError, SweepOptions, SweepOutcome, SweepSpec,
};

/// How long a contender waits before re-reading a stale-looking claim to
/// confirm the owner is really gone (bounded backoff before takeover).
const TAKEOVER_CONFIRM: Duration = Duration::from_millis(25);

/// Poll interval while waiting for cells claimed by live peers.
const CLAIM_POLL: Duration = Duration::from_millis(50);

/// Cells claimed per acquisition round by default. Batching amortizes the
/// directory scan; claims are still one file per cell and heartbeats are
/// refreshed between cells, so a crash mid-batch forfeits at most the batch.
pub const DEFAULT_CLAIM_BATCH: usize = 4;

/// Process-unique suffix so two cooperative workers in one process get
/// distinct auto-generated owner ids.
static OWNER_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Configuration of one cooperative worker (opt-in via
/// [`SweepOptions::coop`]).
#[derive(Debug, Clone)]
pub struct CoopConfig {
    /// This worker's owner id, used in claim files and the shard file name
    /// (`<name>.sweep.<owner>.part.json`). Must be unique among concurrent
    /// workers and filesystem-safe (`[A-Za-z0-9._-]`); empty means derive
    /// one from the process id.
    pub owner: String,
    /// Cells claimed per acquisition round (min 1).
    pub batch: usize,
}

impl Default for CoopConfig {
    fn default() -> Self {
        CoopConfig {
            owner: String::new(),
            batch: DEFAULT_CLAIM_BATCH,
        }
    }
}

impl CoopConfig {
    /// A config with an explicit owner id and the default batch size.
    pub fn with_owner(owner: impl Into<String>) -> Self {
        CoopConfig {
            owner: owner.into(),
            ..CoopConfig::default()
        }
    }

    /// Whether `owner` is safe to embed in claim and shard file names.
    pub fn owner_is_valid(owner: &str) -> bool {
        !owner.is_empty()
            && owner
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-'))
    }
}

/// One sweep cell's record as read back from a shard or the canonical
/// checkpoint during merge.
struct MergedCell {
    /// Owner that produced the record (`""` for the canonical checkpoint).
    owner: String,
    metrics: CellMetrics,
}

/// Runs one cooperative worker to completion: claims and executes pending
/// cells, publishes its shard after every cell, waits out (or takes over
/// from) peers, and merges once the grid is covered. Called by
/// [`crate::sweep::run_sweep`] when [`SweepOptions::coop`] is set.
pub(crate) fn run_cooperative(
    spec: &SweepSpec,
    options: &SweepOptions,
) -> Result<SweepOutcome, SweepError> {
    let cfg = options.coop.as_ref().expect("coop config present");
    let owner = if cfg.owner.is_empty() {
        format!(
            "w{}-{}",
            std::process::id(),
            OWNER_COUNTER.fetch_add(1, Ordering::Relaxed)
        )
    } else {
        cfg.owner.clone()
    };
    assert!(
        CoopConfig::owner_is_valid(&owner),
        "owner id '{owner}' is not filesystem-safe"
    );
    let batch = cfg.batch.max(1);
    let stale_secs = options.lease_stale_secs;

    let dir = crate::results_dir_for_charts();
    fs::create_dir_all(&dir).map_err(|source| SweepError::Io {
        path: dir.clone(),
        source,
    })?;

    // Refuse to interleave with an exclusive single-process run: its lease
    // means it believes it owns the canonical checkpoint outright.
    let lock_path = dir.join(format!("{}.sweep.lock", spec.name));
    if let Ok(holder) = fs::read_to_string(&lock_path) {
        if !lease_is_stale(&lock_path, &holder, stale_secs) {
            return Err(SweepError::LeaseHeld {
                path: lock_path,
                owner: crate::sweep::lease_owner(&holder)
                    .unwrap_or("unknown")
                    .to_string(),
            });
        }
    }

    let canonical = dir.join(format!("{}.sweep.json", spec.name));
    let shard_path = dir.join(format!("{}.sweep.{owner}.part.json", spec.name));
    let claims_dir = dir.join(format!("{}.sweep.claims", spec.name));
    fs::create_dir_all(&claims_dir).map_err(|source| SweepError::Io {
        path: claims_dir.clone(),
        source,
    })?;

    // `--fresh` in cooperative mode is a coordinator-only action: it wipes
    // the canonical checkpoint, every shard, and every claim, so it must run
    // before any worker starts (the `--local-workers` parent does this
    // before spawning).
    if options.fresh {
        fresh_cleanup(spec.name);
    }

    let trace_len = spec_trace_len(spec);
    let jobs = expand_jobs(spec);
    let mut executor: Option<CellExecutor<'_>> = None;

    // Cells this worker executed (keeps the per-trace reports) and the shard
    // content in execution order.
    let mut local: BTreeMap<String, CellResult> = BTreeMap::new();
    let mut shard_cells: Vec<CellResult> = Vec::new();

    loop {
        let done = read_completed(&dir, &canonical, spec, trace_len)?;
        let mut held: Vec<Claim> = Vec::new();
        let mut claimed_jobs = Vec::new();
        let mut blocked = false;
        for job in &jobs {
            if claimed_jobs.len() >= batch {
                break;
            }
            let key = job.key();
            if local.contains_key(&key) || done.contains_key(&key) {
                continue;
            }
            match Claim::try_acquire(&claims_dir, &key, &owner, stale_secs) {
                Ok(Some(claim)) => {
                    held.push(claim);
                    claimed_jobs.push(job);
                }
                Ok(None) => blocked = true,
                // Transient claim I/O (e.g. the directory is being cleaned
                // up by a finished merger): treat as contention, retry.
                Err(_) => blocked = true,
            }
        }

        if claimed_jobs.is_empty() {
            let covered = jobs
                .iter()
                .all(|j| local.contains_key(&j.key()) || done.contains_key(&j.key()));
            if covered {
                break;
            }
            if !blocked {
                // Between reading `done` and scanning claims the world
                // changed (a peer merged and cleaned up); rescan.
                continue;
            }
            // Pending cells are held by live peers: wait for them to finish
            // or for their heartbeats to go stale, then rescan.
            std::thread::sleep(CLAIM_POLL);
            continue;
        }

        let exec = executor.get_or_insert_with(|| CellExecutor::new(spec));
        for job in claimed_jobs {
            for claim in &held {
                claim.refresh();
            }
            let key = job.key();
            let cell = exec.execute(job);
            if !options.quiet {
                println!(
                    "sweep {} [{owner}]: cell {key}: rejection {:.2}%, energy {:.1}, {:.0} ms",
                    spec.name,
                    cell.metrics.mean_rejection_percent,
                    cell.metrics.mean_energy,
                    cell.metrics.elapsed_ms
                );
            }
            shard_cells.push(cell.clone());
            local.insert(key, cell);
            let doc = checkpoint_doc(spec, trace_len, &shard_cells, Some(&owner));
            write_doc_atomic(&shard_path, &doc, spec.name, "sweep::part_publish")?;
        }
        for claim in held {
            claim.release();
        }
    }

    merge(spec, options, &dir, &canonical, &claims_dir, &local)
}

/// Folds the canonical checkpoint and every shard into the canonical
/// `results/<name>.sweep.json`, asserting duplicate completions agree
/// ([`CellMetrics::deterministic_eq`]), then writes the CSV and cleans up
/// shards and claims. Concurrent mergers are safe: they derive the same
/// document from the same inputs and the publish is an atomic rename.
fn merge(
    spec: &SweepSpec,
    options: &SweepOptions,
    dir: &Path,
    canonical: &Path,
    claims_dir: &Path,
    local: &BTreeMap<String, CellResult>,
) -> Result<SweepOutcome, SweepError> {
    let trace_len = spec_trace_len(spec);
    let jobs = expand_jobs(spec);

    let mut merged: BTreeMap<String, MergedCell> = BTreeMap::new();
    let mut fold = |owner: &str, cells: BTreeMap<String, CellMetrics>| -> Result<(), SweepError> {
        for (key, metrics) in cells {
            match merged.get(&key) {
                None => {
                    merged.insert(
                        key,
                        MergedCell {
                            owner: owner.to_string(),
                            metrics,
                        },
                    );
                }
                Some(existing) => {
                    if !existing.metrics.deterministic_eq(&metrics) {
                        return Err(SweepError::ShardConflict {
                            key,
                            a: display_owner(&existing.owner),
                            b: display_owner(owner),
                        });
                    }
                    // Equal duplicates keep the first record; owners are
                    // folded in sorted order (canonical first), so every
                    // merger picks the same one.
                }
            }
        }
        Ok(())
    };

    if let Ok(text) = fs::read_to_string(canonical) {
        match load_checkpoint(&text, spec, trace_len) {
            Loaded::Cells(cells) => fold("", cells)?,
            // Stale configuration or torn canonical file: the shards are the
            // source of truth; the canonical will be republished below.
            Loaded::HeaderMismatch | Loaded::Corrupt => {}
        }
    }
    let mut shards = list_shards(dir, spec.name);
    shards.sort();
    for shard in &shards {
        let Ok(text) = fs::read_to_string(shard) else {
            continue;
        };
        match load_checkpoint(&text, spec, trace_len) {
            Loaded::Cells(cells) => fold(&shard_owner(shard, spec.name), cells)?,
            Loaded::HeaderMismatch => {}
            Loaded::Corrupt => eprintln!(
                "sweep {}: ignoring unreadable shard {} (its cells will have \
                 been recomputed)",
                spec.name,
                shard.display()
            ),
        }
    }

    // Cells are emitted in grid expansion order — the same order the
    // single-process engine writes — so the merged checkpoint is comparable
    // byte-for-byte (modulo `elapsed_ms`) with a sequential run.
    let mut cells = Vec::with_capacity(jobs.len());
    let mut resumed = 0;
    for job in &jobs {
        let key = job.key();
        let record = merged.get(&key).unwrap_or_else(|| {
            panic!("merge reached with cell {key} missing — completion check is wrong")
        });
        match local.get(&key) {
            // Locally executed and chosen record agrees (asserted above):
            // keep the local copy, which still carries per-trace reports.
            Some(cell) if cell.metrics.deterministic_eq(&record.metrics) => {
                cells.push(cell.clone());
            }
            _ => {
                resumed += 1;
                cells.push(CellResult {
                    workload: job.workload.clone(),
                    policy: job.policy.name().to_string(),
                    predictor: job.predictor.label.to_string(),
                    metrics: record.metrics.clone(),
                    reports: None,
                });
            }
        }
    }

    if !options.quiet {
        println!(
            "sweep {}: merging {} shard(s) into {}",
            spec.name,
            shards.len(),
            canonical.display()
        );
    }
    rtrm_testkit::maybe_die("sweep::merge", 0);
    let doc = checkpoint_doc(spec, trace_len, &cells, None);
    write_doc_atomic(canonical, &doc, spec.name, "sweep::publish")?;
    rtrm_testkit::maybe_die("sweep::merge", 1);

    // Cleanup is best effort and safe to race: the canonical checkpoint now
    // holds every cell, so a straggler republishing its shard only creates
    // a duplicate the next merge reconciles by equality.
    remove_shard_files(dir, spec.name);
    if let Ok(entries) = fs::read_dir(claims_dir) {
        for entry in entries.flatten() {
            let _ = fs::remove_file(entry.path());
        }
    }
    let _ = fs::remove_dir(claims_dir);

    let csv_path = write_sweep_csv(spec, &cells, dir)?;
    Ok(SweepOutcome {
        name: spec.name,
        cells,
        resumed,
        checkpoint_path: canonical.to_path_buf(),
        csv_path,
        corrupt_backup: None,
    })
}

/// Removes every artifact of the named sweep a fresh cooperative run must
/// not see: the canonical checkpoint, all shards, and all claims. This is a
/// *coordinator-only* action — run it before any worker starts (a worker
/// wiping mid-run would destroy its peers' progress); the `--local-workers`
/// parent calls it before spawning.
pub fn fresh_cleanup(name: &str) {
    let dir = crate::results_dir_for_charts();
    let _ = fs::remove_file(dir.join(format!("{name}.sweep.json")));
    let _ = fs::remove_file(dir.join(format!("{name}.sweep.json.tmp")));
    remove_shard_files(&dir, name);
    let claims_dir = dir.join(format!("{name}.sweep.claims"));
    if let Ok(entries) = fs::read_dir(&claims_dir) {
        for entry in entries.flatten() {
            let _ = fs::remove_file(entry.path());
        }
    }
    let _ = fs::remove_dir(&claims_dir);
}

/// Removes every shard of `name` plus the `.part.json.tmp` temp files a
/// worker killed mid-publish leaves behind.
fn remove_shard_files(dir: &Path, name: &str) {
    let prefix = format!("{name}.sweep.");
    if let Ok(entries) = fs::read_dir(dir) {
        for entry in entries.flatten() {
            let file_name = entry.file_name();
            let Some(file_name) = file_name.to_str() else {
                continue;
            };
            if file_name.starts_with(&prefix)
                && (file_name.ends_with(".part.json") || file_name.ends_with(".part.json.tmp"))
            {
                let _ = fs::remove_file(entry.path());
            }
        }
    }
}

/// Every completed cell visible right now: canonical checkpoint ∪ shards.
/// Unreadable or mismatched files contribute nothing (their cells are simply
/// recomputed) — this view only gates *skipping* work, never correctness.
fn read_completed(
    dir: &Path,
    canonical: &Path,
    spec: &SweepSpec,
    trace_len: usize,
) -> Result<BTreeMap<String, CellMetrics>, SweepError> {
    let mut done = BTreeMap::new();
    if let Ok(text) = fs::read_to_string(canonical) {
        if let Loaded::Cells(cells) = load_checkpoint(&text, spec, trace_len) {
            done.extend(cells);
        }
    }
    for shard in list_shards(dir, spec.name) {
        if let Ok(text) = fs::read_to_string(&shard) {
            if let Loaded::Cells(cells) = load_checkpoint(&text, spec, trace_len) {
                done.extend(cells);
            }
        }
    }
    Ok(done)
}

/// All shard files of `name` under `dir` (`<name>.sweep.<owner>.part.json`).
fn list_shards(dir: &Path, name: &str) -> Vec<PathBuf> {
    let prefix = format!("{name}.sweep.");
    let mut shards = Vec::new();
    if let Ok(entries) = fs::read_dir(dir) {
        for entry in entries.flatten() {
            let file_name = entry.file_name();
            let Some(file_name) = file_name.to_str() else {
                continue;
            };
            if file_name.starts_with(&prefix) && file_name.ends_with(".part.json") {
                shards.push(entry.path());
            }
        }
    }
    shards
}

/// Extracts the owner id from a shard file name
/// (`<name>.sweep.<owner>.part.json`).
fn shard_owner(shard: &Path, name: &str) -> String {
    shard
        .file_name()
        .and_then(|f| f.to_str())
        .and_then(|f| f.strip_prefix(&format!("{name}.sweep.")))
        .and_then(|f| f.strip_suffix(".part.json"))
        .unwrap_or("unknown")
        .to_string()
}

fn display_owner(owner: &str) -> String {
    if owner.is_empty() {
        "canonical".to_string()
    } else {
        owner.to_string()
    }
}

/// A held per-cell claim file. Removed on [`Claim::release`] and
/// best-effort on drop, so a worker that *panics* (rather than dies) frees
/// its cells immediately instead of waiting out the staleness threshold.
#[derive(Debug)]
struct Claim {
    path: PathBuf,
    owner: String,
    key: String,
    released: bool,
}

impl Claim {
    /// Tries to claim `key`. `Ok(None)` means a live peer holds it (or we
    /// lost the takeover race) — skip the cell and move on.
    ///
    /// Takeover of a stale claim is deliberately two-phase: read, pause
    /// [`TAKEOVER_CONFIRM`], re-read, and only steal if the content is
    /// unchanged *and* still stale — so a claim refreshed between our reads
    /// (the owner was merely slow) is left alone.
    fn try_acquire(
        claims_dir: &Path,
        key: &str,
        owner: &str,
        stale_secs: u64,
    ) -> io::Result<Option<Claim>> {
        let path = claims_dir.join(claim_file_name(key));
        let mut takeovers = 0;
        loop {
            match fs::OpenOptions::new()
                .write(true)
                .create_new(true)
                .open(&path)
            {
                Ok(mut file) => {
                    // Death here (mid-claim) leaves an empty claim file whose
                    // mtime stands in for the heartbeat.
                    rtrm_testkit::maybe_die("sweep::claim", 0);
                    let _ = write!(
                        file,
                        "owner {owner}\nheartbeat {}\nkey {key}\n",
                        epoch_secs()
                    );
                    rtrm_testkit::maybe_die("sweep::claim", 1);
                    return Ok(Some(Claim {
                        path,
                        owner: owner.to_string(),
                        key: key.to_string(),
                        released: false,
                    }));
                }
                Err(err) if err.kind() == io::ErrorKind::AlreadyExists => {
                    let holder = fs::read_to_string(&path).unwrap_or_default();
                    if !lease_is_stale(&path, &holder, stale_secs) || takeovers >= 1 {
                        return Ok(None);
                    }
                    std::thread::sleep(TAKEOVER_CONFIRM);
                    let confirm = fs::read_to_string(&path).unwrap_or_default();
                    if confirm != holder || !lease_is_stale(&path, &confirm, stale_secs) {
                        return Ok(None);
                    }
                    // Confirmed dead: remove and race the recreate (exactly
                    // one contender wins `create_new`; losers see
                    // AlreadyExists with fresh content next round).
                    let _ = fs::remove_file(&path);
                    takeovers += 1;
                }
                Err(source) => return Err(source),
            }
        }
    }

    /// Refreshes the heartbeat (best effort — a failure only risks a
    /// takeover and a duplicated cell, never wrong results).
    fn refresh(&self) {
        let _ = fs::write(
            &self.path,
            format!(
                "owner {}\nheartbeat {}\nkey {}\n",
                self.owner,
                epoch_secs(),
                self.key
            ),
        );
    }

    /// Releases the claim once the cell is safely in the published shard.
    fn release(mut self) {
        self.released = true;
        let _ = fs::remove_file(&self.path);
    }
}

impl Drop for Claim {
    fn drop(&mut self) {
        if !self.released {
            let _ = fs::remove_file(&self.path);
        }
    }
}

/// Filesystem-safe claim file name for a cell key. Keys contain `/`
/// (`workload/policy/predictor`); unsafe characters are flattened and a
/// key hash is appended so distinct keys can never collide.
fn claim_file_name(key: &str) -> String {
    let flat: String = key
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-' | '@') {
                c
            } else {
                '_'
            }
        })
        .collect();
    format!("{flat}-{:016x}.claim", cell_seed(0, key))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn claim_file_names_are_distinct_and_safe() {
        let a = claim_file_name("VT/heuristic/off");
        let b = claim_file_name("VT/heuristic/perfect");
        let c = claim_file_name("VT_heuristic/off");
        assert_ne!(a, b);
        // Flattening alone would collide; the key hash keeps them apart.
        assert_ne!(a, c);
        for name in [&a, &b, &c] {
            assert!(name
                .chars()
                .all(|ch| ch.is_ascii_alphanumeric() || matches!(ch, '.' | '_' | '-' | '@')));
        }
    }

    #[test]
    fn owner_validation() {
        assert!(CoopConfig::owner_is_valid("w1"));
        assert!(CoopConfig::owner_is_valid("host-3.worker_2"));
        assert!(!CoopConfig::owner_is_valid(""));
        assert!(!CoopConfig::owner_is_valid("a/b"));
        assert!(!CoopConfig::owner_is_valid("a b"));
    }

    #[test]
    fn dead_claim_is_taken_over_after_confirm() {
        let dir = std::env::temp_dir().join(format!("rtrm-coop-claim-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();

        // A live claim (fresh heartbeat) is respected.
        let key = "VT/heuristic/off";
        let path = dir.join(claim_file_name(key));
        fs::write(
            &path,
            format!("owner peer\nheartbeat {}\nkey {key}\n", epoch_secs()),
        )
        .unwrap();
        assert!(Claim::try_acquire(&dir, key, "me", 30).unwrap().is_none());

        // A stale heartbeat (2 s old under a 1 s threshold) is confirmed and
        // stolen — in milliseconds, no 30 s wall-clock sleep.
        fs::write(
            &path,
            format!("owner peer\nheartbeat {}\nkey {key}\n", epoch_secs() - 2),
        )
        .unwrap();
        let claim = Claim::try_acquire(&dir, key, "me", 1)
            .unwrap()
            .expect("stale claim taken over");
        let content = fs::read_to_string(&path).unwrap();
        assert!(content.contains("owner me"));
        claim.release();
        assert!(!path.exists());

        // A claim refreshed during the confirm pause is left alone.
        fs::write(
            &path,
            format!("owner peer\nheartbeat {}\nkey {key}\n", epoch_secs() - 2),
        )
        .unwrap();
        let racer = {
            let path = path.clone();
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(5));
                let _ = fs::write(
                    &path,
                    format!("owner peer\nheartbeat {}\nkey {key}\n", epoch_secs()),
                );
            })
        };
        let result = Claim::try_acquire(&dir, key, "me", 1).unwrap();
        racer.join().unwrap();
        assert!(result.is_none(), "refreshed claim must not be stolen");

        let _ = fs::remove_dir_all(&dir);
    }
}
