//! Minimal SVG chart rendering for the experiment harness.
//!
//! The offline dependency set has no plotting library, so the harness draws
//! its own: grouped bar charts (Figs 2/3) and line charts (Figs 4/5) as
//! self-contained SVG files under `results/`. The output aims for "readable
//! in a browser or paper draft", not for a charting framework.

use std::fmt::Write as _;

/// One named series of y-values.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// One value per category / x-position.
    pub values: Vec<f64>,
}

impl Series {
    /// Creates a series.
    #[must_use]
    pub fn new(label: impl Into<String>, values: Vec<f64>) -> Self {
        Series {
            label: label.into(),
            values,
        }
    }
}

const WIDTH: f64 = 640.0;
const HEIGHT: f64 = 400.0;
const MARGIN_L: f64 = 64.0;
const MARGIN_R: f64 = 24.0;
const MARGIN_T: f64 = 40.0;
const MARGIN_B: f64 = 64.0;
const PALETTE: [&str; 6] = [
    "#4878d0", "#ee854a", "#6acc64", "#d65f5f", "#956cb4", "#8c613c",
];

fn plot_area() -> (f64, f64) {
    (WIDTH - MARGIN_L - MARGIN_R, HEIGHT - MARGIN_T - MARGIN_B)
}

fn nice_max(values: impl Iterator<Item = f64>) -> f64 {
    let max = values.fold(0.0f64, f64::max).max(1e-9);
    // Round up to 1/2/5 × 10^k.
    let mag = 10f64.powf(max.log10().floor());
    let norm = max / mag;
    let nice = if norm <= 1.0 {
        1.0
    } else if norm <= 2.0 {
        2.0
    } else if norm <= 5.0 {
        5.0
    } else {
        10.0
    };
    nice * mag
}

fn header(title: &str) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" height="{HEIGHT}" viewBox="0 0 {WIDTH} {HEIGHT}" font-family="sans-serif">"#
    );
    let _ = writeln!(
        s,
        r#"<rect width="{WIDTH}" height="{HEIGHT}" fill="white"/>
<text x="{}" y="24" text-anchor="middle" font-size="16">{}</text>"#,
        WIDTH / 2.0,
        escape(title)
    );
    s
}

fn axes_and_grid(s: &mut String, y_max: f64, y_label: &str) {
    let (pw, ph) = plot_area();
    let _ = writeln!(
        s,
        r##"<g stroke="#444" stroke-width="1">
<line x1="{MARGIN_L}" y1="{MARGIN_T}" x2="{MARGIN_L}" y2="{}"/>
<line x1="{MARGIN_L}" y1="{}" x2="{}" y2="{}"/>
</g>"##,
        MARGIN_T + ph,
        MARGIN_T + ph,
        MARGIN_L + pw,
        MARGIN_T + ph,
    );
    for tick in 0..=5 {
        let frac = f64::from(tick) / 5.0;
        let y = MARGIN_T + ph * (1.0 - frac);
        let value = y_max * frac;
        let _ = writeln!(
            s,
            r##"<line x1="{MARGIN_L}" y1="{y}" x2="{}" y2="{y}" stroke="#ddd"/>
<text x="{}" y="{}" text-anchor="end" font-size="11">{}</text>"##,
            MARGIN_L + pw,
            MARGIN_L - 6.0,
            y + 4.0,
            trim_float(value)
        );
    }
    let _ = writeln!(
        s,
        r#"<text x="16" y="{}" font-size="12" transform="rotate(-90 16 {})" text-anchor="middle">{}</text>"#,
        MARGIN_T + ph / 2.0,
        MARGIN_T + ph / 2.0,
        escape(y_label)
    );
}

fn legend(s: &mut String, series: &[Series]) {
    for (i, sr) in series.iter().enumerate() {
        let x = MARGIN_L + 8.0 + 140.0 * (i % 4) as f64;
        let y = 34.0 + 14.0 * (i / 4) as f64;
        let _ = writeln!(
            s,
            r#"<rect x="{x}" y="{}" width="10" height="10" fill="{}"/>
<text x="{}" y="{}" font-size="11">{}</text>"#,
            y - 9.0,
            PALETTE[i % PALETTE.len()],
            x + 14.0,
            y,
            escape(&sr.label)
        );
    }
}

/// Renders a grouped bar chart: one bar group per category, one bar per
/// series.
///
/// # Panics
///
/// Panics if any series length differs from the number of categories.
#[must_use]
pub fn bar_chart(title: &str, y_label: &str, categories: &[&str], series: &[Series]) -> String {
    for sr in series {
        assert_eq!(
            sr.values.len(),
            categories.len(),
            "series {} length mismatch",
            sr.label
        );
    }
    let (pw, ph) = plot_area();
    let y_max = nice_max(series.iter().flat_map(|s| s.values.iter().copied()));
    let mut s = header(title);
    axes_and_grid(&mut s, y_max, y_label);
    legend(&mut s, series);

    let group_w = pw / categories.len() as f64;
    let bar_w = (group_w * 0.8) / series.len().max(1) as f64;
    for (ci, cat) in categories.iter().enumerate() {
        let gx = MARGIN_L + group_w * ci as f64 + group_w * 0.1;
        for (si, sr) in series.iter().enumerate() {
            let v = sr.values[ci];
            let h = ph * (v / y_max);
            let _ = writeln!(
                s,
                r#"<rect x="{}" y="{}" width="{}" height="{}" fill="{}"><title>{}: {}</title></rect>"#,
                gx + bar_w * si as f64,
                MARGIN_T + ph - h,
                bar_w * 0.92,
                h,
                PALETTE[si % PALETTE.len()],
                escape(&sr.label),
                trim_float(v)
            );
        }
        let _ = writeln!(
            s,
            r#"<text x="{}" y="{}" text-anchor="middle" font-size="11">{}</text>"#,
            gx + group_w * 0.4,
            MARGIN_T + ph + 18.0,
            escape(cat)
        );
    }
    s.push_str("</svg>\n");
    s
}

/// Renders a line chart over shared numeric x-positions.
///
/// # Panics
///
/// Panics if any series length differs from `xs`.
#[must_use]
pub fn line_chart(
    title: &str,
    y_label: &str,
    x_label: &str,
    xs: &[f64],
    series: &[Series],
) -> String {
    for sr in series {
        assert_eq!(
            sr.values.len(),
            xs.len(),
            "series {} length mismatch",
            sr.label
        );
    }
    let (pw, ph) = plot_area();
    let y_max = nice_max(series.iter().flat_map(|s| s.values.iter().copied()));
    let x_min = xs.iter().copied().fold(f64::INFINITY, f64::min);
    let x_max = xs
        .iter()
        .copied()
        .fold(f64::NEG_INFINITY, f64::max)
        .max(x_min + 1e-9);
    let sx = |x: f64| MARGIN_L + pw * (x - x_min) / (x_max - x_min);
    let sy = |y: f64| MARGIN_T + ph * (1.0 - y / y_max);

    let mut s = header(title);
    axes_and_grid(&mut s, y_max, y_label);
    legend(&mut s, series);
    for (si, sr) in series.iter().enumerate() {
        let points: Vec<String> = xs
            .iter()
            .zip(&sr.values)
            .map(|(x, y)| format!("{:.2},{:.2}", sx(*x), sy(*y)))
            .collect();
        let _ = writeln!(
            s,
            r#"<polyline points="{}" fill="none" stroke="{}" stroke-width="2"/>"#,
            points.join(" "),
            PALETTE[si % PALETTE.len()]
        );
        for (x, y) in xs.iter().zip(&sr.values) {
            let _ = writeln!(
                s,
                r#"<circle cx="{:.2}" cy="{:.2}" r="3" fill="{}"><title>{}: {}</title></circle>"#,
                sx(*x),
                sy(*y),
                PALETTE[si % PALETTE.len()],
                escape(&sr.label),
                trim_float(*y)
            );
        }
    }
    for x in xs {
        let _ = writeln!(
            s,
            r#"<text x="{:.2}" y="{}" text-anchor="middle" font-size="11">{}</text>"#,
            sx(*x),
            MARGIN_T + ph + 18.0,
            trim_float(*x)
        );
    }
    let _ = writeln!(
        s,
        r#"<text x="{}" y="{}" text-anchor="middle" font-size="12">{}</text>"#,
        MARGIN_L + pw / 2.0,
        HEIGHT - 16.0,
        escape(x_label)
    );
    s.push_str("</svg>\n");
    s
}

/// Writes an SVG string next to the CSVs under `results/`.
pub fn write_svg(name: &str, svg: &str) -> std::path::PathBuf {
    let dir = crate::results_dir_for_charts();
    std::fs::create_dir_all(&dir).expect("create results dir");
    let path = dir.join(format!("{name}.svg"));
    std::fs::write(&path, svg).expect("write svg");
    path
}

fn escape(text: &str) -> String {
    text.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

fn trim_float(v: f64) -> String {
    if (v - v.round()).abs() < 1e-9 {
        format!("{}", v.round() as i64)
    } else {
        format!("{v:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bar_chart_is_valid_svg_with_all_bars() {
        let svg = bar_chart(
            "Fig 2b",
            "rejection %",
            &["off", "on"],
            &[
                Series::new("MILP", vec![19.0, 18.2]),
                Series::new("heuristic", vec![26.2, 24.5]),
            ],
        );
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert_eq!(
            svg.matches("<rect").count(),
            1 + 2 + 4,
            "bg + legend + bars"
        );
        assert!(svg.contains("Fig 2b"));
    }

    #[test]
    fn line_chart_has_one_polyline_per_series() {
        let svg = line_chart(
            "Fig 5",
            "rejection %",
            "coefficient x 100",
            &[0.0, 2.0, 4.0],
            &[
                Series::new("MILP", vec![18.0, 18.5, 19.0]),
                Series::new("heuristic", vec![24.0, 25.0, 26.0]),
            ],
        );
        assert_eq!(svg.matches("<polyline").count(), 2);
        assert_eq!(svg.matches("<circle").count(), 6);
    }

    #[test]
    fn nice_max_rounds_up() {
        assert_eq!(nice_max([7.3].into_iter()), 10.0);
        assert_eq!(nice_max([0.13].into_iter()), 0.2);
        assert_eq!(nice_max([42.0].into_iter()), 50.0);
        assert_eq!(nice_max([1.6].into_iter()), 2.0);
    }

    #[test]
    fn escaping() {
        let svg = bar_chart("a < b & c", "y", &["<x>"], &[Series::new("s", vec![1.0])]);
        assert!(svg.contains("a &lt; b &amp; c"));
        assert!(!svg.contains("<x>"));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_series_rejected() {
        let _ = bar_chart("t", "y", &["a", "b"], &[Series::new("s", vec![1.0])]);
    }
}
