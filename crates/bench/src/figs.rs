//! Named sweeps for the paper's figures and tables.
//!
//! Each figure/table is a [`SweepSpec`] (the grid) plus a renderer that
//! turns the sweep's cell metrics into the binary's console rows, CSV, and
//! SVG charts. The experiment binaries (`fig2` … `tab1`) and the `sweep`
//! CLI are thin wrappers over [`run`].

use rtrm_platform::{
    Energy, Platform, Request, RequestId, TaskCatalog, TaskType, TaskTypeId, Time, Trace,
};
use rtrm_predict::ErrorModel;
use rtrm_sim::PhantomDeadline;
use rtrm_trace::{BurstyConfig, DiurnalConfig, WeeklyConfig, WorkloadPattern};

use crate::chart::{bar_chart, line_chart, write_svg, Series};
use crate::sweep::{
    run_sweep, GridWorkload, PredictorSpec, SweepError, SweepOptions, SweepOutcome, SweepSpec,
};
use crate::{write_csv, Group, Oracle, Policy, Scale};

/// The named sweeps, in suggested execution order.
pub const NAMES: [&str; 6] = ["tab1", "fig2", "fig3", "fig4", "fig5", "horizon"];

/// Fig 4's accuracy levels, shared between the spec and the renderer.
const LEVELS: [f64; 4] = [1.0, 0.75, 0.5, 0.25];
const TYPE_LABELS: [&str; 4] = ["type@1.00", "type@0.75", "type@0.50", "type@0.25"];
const ARRIVAL_LABELS: [&str; 4] = ["arr@1.00", "arr@0.75", "arr@0.50", "arr@0.25"];

/// Fig 5's overhead coefficients (`label`, `coefficient`); the paper's
/// horizontal axis is `coefficient × 100`.
const COEFFS: [(&str, f64); 8] = [
    ("ovh@0", 0.0),
    ("ovh@2", 0.02),
    ("ovh@4", 0.04),
    ("ovh@8", 0.08),
    ("ovh@16", 0.16),
    ("ovh@32", 0.32),
    ("ovh@64", 0.64),
    ("ovh@128", 1.28),
];

const BOTH_POLICIES: [Policy; 2] = [Policy::Milp, Policy::Heuristic];

/// The horizon sweep's `(label, depth k, threshold θ)` grid: every phantom
/// budget crossed with every confidence gate. θ = 0 admits all
/// positive-confidence phantoms; θ = 0.9 plans only around near-certain
/// ones.
const HORIZON_GRID: [(&str, usize, f64); 9] = [
    ("k1@t0.00", 1, 0.0),
    ("k2@t0.00", 2, 0.0),
    ("k4@t0.00", 4, 0.0),
    ("k1@t0.50", 1, 0.5),
    ("k2@t0.50", 2, 0.5),
    ("k4@t0.50", 4, 0.5),
    ("k1@t0.90", 1, 0.9),
    ("k2@t0.90", 2, 0.9),
    ("k4@t0.90", 4, 0.9),
];

/// The horizon sweep's swept depths and thresholds (render order).
const HORIZON_DEPTHS: [usize; 3] = [1, 2, 4];
const HORIZON_THETAS: [f64; 3] = [0.0, 0.5, 0.9];

/// EWMA smoothing of the horizon predictor's interarrival submodel.
const HORIZON_ALPHA: f64 = 0.5;

/// The horizon sweep's workload patterns (labels shared with the renderer).
const HORIZON_PATTERNS: [&str; 3] = ["diurnal", "weekly", "bursty"];

/// The grid of the named sweep, or `None` for an unknown name. Scale comes
/// from the environment (`RTRM_TRACES` etc.), except `tab1` whose workload
/// is the paper's fixed two-request example.
#[must_use]
pub fn spec(name: &str) -> Option<SweepSpec> {
    let scale = Scale::from_env();
    match name {
        "fig2" => Some(SweepSpec {
            name: "fig2",
            scale,
            workload: GridWorkload::Paper {
                groups: vec![Group::Lt, Group::Vt],
            },
            policies: BOTH_POLICIES.to_vec(),
            predictors: vec![PredictorSpec::off(), PredictorSpec::perfect()],
        }),
        "fig3" => Some(SweepSpec {
            name: "fig3",
            scale,
            workload: GridWorkload::Paper {
                groups: vec![Group::Lt, Group::Vt],
            },
            policies: BOTH_POLICIES.to_vec(),
            predictors: vec![PredictorSpec::off(), PredictorSpec::perfect()],
        }),
        "fig4" => {
            let mut predictors = vec![PredictorSpec::off()];
            for (i, &accuracy) in LEVELS.iter().enumerate() {
                predictors.push(PredictorSpec {
                    label: TYPE_LABELS[i],
                    oracle: Oracle::On(ErrorModel::with_type_accuracy(accuracy)),
                    overhead_coeff: 0.0,
                    horizon: None,
                });
            }
            for (i, &accuracy) in LEVELS.iter().enumerate() {
                predictors.push(PredictorSpec {
                    label: ARRIVAL_LABELS[i],
                    oracle: Oracle::On(ErrorModel::with_arrival_accuracy(accuracy)),
                    overhead_coeff: 0.0,
                    horizon: None,
                });
            }
            Some(SweepSpec {
                name: "fig4",
                scale,
                workload: GridWorkload::Paper {
                    groups: vec![Group::Vt],
                },
                policies: BOTH_POLICIES.to_vec(),
                predictors,
            })
        }
        "fig5" => {
            let mut predictors = vec![PredictorSpec::off()];
            for (label, coeff) in COEFFS {
                predictors.push(PredictorSpec {
                    label,
                    oracle: Oracle::On(ErrorModel::perfect()),
                    overhead_coeff: coeff,
                    horizon: None,
                });
            }
            Some(SweepSpec {
                name: "fig5",
                scale,
                workload: GridWorkload::Paper {
                    groups: vec![Group::Vt],
                },
                policies: BOTH_POLICIES.to_vec(),
                predictors,
            })
        }
        "horizon" => {
            let mut predictors = vec![PredictorSpec::off()];
            for (label, depth, theta) in HORIZON_GRID {
                predictors.push(PredictorSpec::markov_horizon(
                    label,
                    HORIZON_ALPHA,
                    depth,
                    theta,
                ));
            }
            Some(SweepSpec {
                name: "horizon",
                scale,
                workload: GridWorkload::Patterns {
                    patterns: vec![
                        (
                            "diurnal",
                            WorkloadPattern::Diurnal(DiurnalConfig {
                                length: scale.trace_len,
                                ..DiurnalConfig::default()
                            }),
                        ),
                        (
                            "weekly",
                            WorkloadPattern::Weekly(WeeklyConfig {
                                length: scale.trace_len,
                                ..WeeklyConfig::default()
                            }),
                        ),
                        (
                            "bursty",
                            WorkloadPattern::Bursty(BurstyConfig {
                                length: scale.trace_len,
                                ..BurstyConfig::default()
                            }),
                        ),
                    ],
                    // The patterns run VT-group tightness; same phantom
                    // deadline model as the VT cells of fig2..fig5.
                    phantom_deadline: PhantomDeadline::MinWcetTimes(1.5),
                },
                // Heuristic only: the horizon question is about the phantom
                // fast path and the confidence gate, not the solver.
                policies: vec![Policy::Heuristic],
                predictors,
            })
        }
        "tab1" => {
            let (platform, catalog, trace) = motivational_workload();
            Some(SweepSpec {
                name: "tab1",
                // The motivational example is fixed; env scale does not apply.
                scale: Scale {
                    traces: 1,
                    trace_len: 2,
                    seed: 1,
                },
                workload: GridWorkload::Custom {
                    label: "motivational",
                    platform,
                    catalog,
                    traces: vec![trace],
                    // The phantom deadline model must reproduce τ2's relative
                    // deadline of 5.
                    phantom_deadline: PhantomDeadline::Fixed(Time::new(5.0)),
                },
                policies: BOTH_POLICIES.to_vec(),
                predictors: vec![PredictorSpec::off(), PredictorSpec::perfect()],
            })
        }
        _ => None,
    }
}

/// Runs the named sweep (checkpointed under `results/`) and renders its
/// figure/table output.
///
/// # Errors
///
/// [`SweepError::UnknownSweep`] for a name outside [`NAMES`]; otherwise
/// whatever [`run_sweep`] or the renderer's cell lookups surface.
pub fn run(name: &str, options: &SweepOptions) -> Result<SweepOutcome, SweepError> {
    let Some(spec) = spec(name) else {
        return Err(SweepError::UnknownSweep {
            name: name.to_string(),
        });
    };
    let outcome = run_sweep(&spec, options)?;
    match name {
        "fig2" => render_fig2(&spec, &outcome)?,
        "fig3" => render_fig3(&spec, &outcome)?,
        "fig4" => render_fig4(&spec, &outcome)?,
        "fig5" => render_fig5(&spec, &outcome)?,
        "horizon" => render_horizon(&spec, &outcome)?,
        "tab1" => render_tab1(&outcome)?,
        _ => unreachable!("spec() vetted the name"),
    }
    println!("sweep checkpoint: {}", outcome.checkpoint_path.display());
    Ok(outcome)
}

/// Platform, catalog, and trace of the Table 1 / Fig 1 motivational example.
#[must_use]
pub fn motivational_workload() -> (Platform, TaskCatalog, Trace) {
    let platform = Platform::builder()
        .cpu("cpu1")
        .cpu("cpu2")
        .gpu("gpu")
        .build();
    let ids: Vec<_> = platform.ids().collect();
    let tau1 = TaskType::builder(0, &platform)
        .profile(ids[0], Time::new(8.0), Energy::new(7.3))
        .profile(ids[1], Time::new(12.0), Energy::new(8.4))
        .profile(ids[2], Time::new(5.0), Energy::new(2.0))
        .build();
    let tau2 = TaskType::builder(1, &platform)
        .profile(ids[0], Time::new(7.0), Energy::new(6.2))
        .profile(ids[1], Time::new(8.5), Energy::new(7.5))
        .profile(ids[2], Time::new(3.0), Energy::new(1.5))
        .build();
    let catalog = TaskCatalog::new(vec![tau1, tau2]);
    let trace = Trace::new(vec![
        Request {
            id: RequestId::new(0),
            arrival: Time::new(0.0),
            task_type: TaskTypeId::new(0),
            deadline: Time::new(8.0),
        },
        Request {
            id: RequestId::new(1),
            arrival: Time::new(1.0),
            task_type: TaskTypeId::new(1),
            deadline: Time::new(5.0),
        },
    ]);
    (platform, catalog, trace)
}

fn render_fig2(spec: &SweepSpec, outcome: &SweepOutcome) -> Result<(), SweepError> {
    println!(
        "Fig 2: {} traces x {} requests per configuration",
        spec.scale.traces, spec.scale.trace_len
    );
    println!(
        "{:>6} {:>10} {:>10} {:>12} {:>12}",
        "group", "policy", "pred off%", "pred on%", "reduction"
    );

    let mut rows = Vec::new();
    let mut bars: Vec<(String, [f64; 2])> = Vec::new();
    for group in [Group::Lt, Group::Vt] {
        for policy in BOTH_POLICIES {
            let off = outcome
                .metrics(group.name(), policy, "off")?
                .mean_rejection_percent;
            let on = outcome
                .metrics(group.name(), policy, "perfect")?
                .mean_rejection_percent;
            println!(
                "{:>6} {:>10} {:>10.2} {:>10.2} {:>12.2}",
                group.name(),
                policy.name(),
                off,
                on,
                off - on
            );
            rows.push(format!(
                "{},{},{off:.4},{on:.4}",
                group.name(),
                policy.name()
            ));
            bars.push((format!("{} {}", group.name(), policy.name()), [off, on]));
        }
    }

    let svg = bar_chart(
        "Fig 2: rejection %, prediction off vs on",
        "rejection %",
        &["prediction off", "prediction on"],
        &bars
            .iter()
            .map(|(label, v)| Series::new(label.clone(), v.to_vec()))
            .collect::<Vec<_>>(),
    );
    let svg_path = write_svg("fig2", &svg);
    println!("wrote {}", svg_path.display());

    let path = write_csv(
        "fig2",
        "group,policy,rejection_percent_pred_off,rejection_percent_pred_on",
        &rows,
    );
    println!(
        "\npaper reductions: LT 1.0 (MILP) / 2.6 (heuristic); VT 9.17 (MILP) / 10.2 (heuristic)"
    );
    println!("wrote {}", path.display());
    Ok(())
}

fn render_fig3(spec: &SweepSpec, outcome: &SweepOutcome) -> Result<(), SweepError> {
    println!(
        "Fig 3: {} traces x {} requests per configuration",
        spec.scale.traces, spec.scale.trace_len
    );

    let mut rows = Vec::new();
    for group in [Group::Lt, Group::Vt] {
        let mut bars = Vec::new();
        for policy in BOTH_POLICIES {
            for (label, predictor) in [("off", "off"), ("on", "perfect")] {
                let m = outcome.metrics(group.name(), policy, predictor)?;
                bars.push((policy, label, m.mean_energy, m.mean_rejection_percent));
            }
        }
        let max_energy = bars
            .iter()
            .map(|(_, _, e, _)| *e)
            .fold(f64::MIN_POSITIVE, f64::max);

        println!(
            "\n  {} group (energy normalized to the largest bar):",
            group.name()
        );
        println!(
            "  {:>10} {:>6} {:>12} {:>12} {:>12}",
            "policy", "pred", "norm energy", "raw energy", "rejection%"
        );
        for (policy, label, energy, rejection) in &bars {
            println!(
                "  {:>10} {:>6} {:>12.4} {:>12.1} {:>12.2}",
                policy.name(),
                label,
                energy / max_energy,
                energy,
                rejection
            );
            rows.push(format!(
                "{},{},{},{:.6},{:.2},{:.4}",
                group.name(),
                policy.name(),
                label,
                energy / max_energy,
                energy,
                rejection
            ));
        }
    }

    let path = write_csv(
        "fig3",
        "group,policy,prediction,normalized_energy,raw_energy,rejection_percent",
        &rows,
    );
    println!("\npaper shape: smaller rejection => higher energy, within each group");
    println!("wrote {}", path.display());
    Ok(())
}

fn render_fig4(spec: &SweepSpec, outcome: &SweepOutcome) -> Result<(), SweepError> {
    println!(
        "Fig 4: VT group, {} traces x {} requests per point",
        spec.scale.traces, spec.scale.trace_len
    );

    let mut rows = Vec::new();
    let mut panel_series: Vec<(String, Vec<f64>, Vec<f64>)> = Vec::new();
    for (panel, labels) in [("a:type", TYPE_LABELS), ("b:arrival", ARRIVAL_LABELS)] {
        println!("\n  panel {panel}:");
        println!(
            "  {:>9} {:>12} {:>12}",
            "accuracy", "MILP rej%", "heur rej%"
        );
        let mut milp_series = Vec::new();
        let mut heur_series = Vec::new();
        for (i, label) in labels.iter().enumerate() {
            let accuracy = LEVELS[i];
            let milp = outcome
                .metrics("VT", Policy::Milp, label)?
                .mean_rejection_percent;
            let heur = outcome
                .metrics("VT", Policy::Heuristic, label)?
                .mean_rejection_percent;
            println!("  {accuracy:>9.2} {milp:>12.2} {heur:>12.2}");
            rows.push(format!("{panel},{accuracy},{milp:.4},{heur:.4}"));
            milp_series.push(milp);
            heur_series.push(heur);
        }
        panel_series.push((panel.to_string(), milp_series, heur_series));
        // Baseline: predictor off.
        let milp_off = outcome
            .metrics("VT", Policy::Milp, "off")?
            .mean_rejection_percent;
        let heur_off = outcome
            .metrics("VT", Policy::Heuristic, "off")?
            .mean_rejection_percent;
        println!("  {:>9} {milp_off:>12.2} {heur_off:>12.2}", "off");
        rows.push(format!("{panel},off,{milp_off:.4},{heur_off:.4}"));
    }

    for (panel, milp_series, heur_series) in &panel_series {
        let name = format!("fig4{}", &panel[..1]);
        let svg = line_chart(
            &format!("Fig 4 ({panel}): rejection % vs prediction accuracy (VT)"),
            "rejection %",
            "accuracy",
            &LEVELS,
            &[
                Series::new("MILP", milp_series.clone()),
                Series::new("heuristic", heur_series.clone()),
            ],
        );
        let svg_path = write_svg(&name, &svg);
        println!("wrote {}", svg_path.display());
    }
    let path = write_csv(
        "fig4",
        "panel,accuracy,milp_rejection_percent,heuristic_rejection_percent",
        &rows,
    );
    println!("\npaper shape: rejection rises toward the off level as accuracy falls");
    println!("wrote {}", path.display());
    Ok(())
}

fn render_fig5(spec: &SweepSpec, outcome: &SweepOutcome) -> Result<(), SweepError> {
    println!(
        "Fig 5: VT group, {} traces x {} requests per point, perfect prediction",
        spec.scale.traces, spec.scale.trace_len
    );

    let milp_off = outcome
        .metrics("VT", Policy::Milp, "off")?
        .mean_rejection_percent;
    let heur_off = outcome
        .metrics("VT", Policy::Heuristic, "off")?
        .mean_rejection_percent;
    println!("  predictor off: MILP {milp_off:.2}%  heuristic {heur_off:.2}%\n");
    println!(
        "  {:>10} {:>12} {:>12}",
        "coeff*100", "MILP rej%", "heur rej%"
    );

    let mut rows = vec![format!("off,{milp_off:.4},{heur_off:.4}")];
    let mut crossover: Option<f64> = None;
    let mut series_milp = Vec::new();
    let mut series_heur = Vec::new();
    for (label, coeff) in COEFFS {
        let milp = outcome
            .metrics("VT", Policy::Milp, label)?
            .mean_rejection_percent;
        let heur = outcome
            .metrics("VT", Policy::Heuristic, label)?
            .mean_rejection_percent;
        println!("  {:>10.0} {milp:>12.2} {heur:>12.2}", coeff * 100.0);
        rows.push(format!("{},{milp:.4},{heur:.4}", coeff * 100.0));
        series_milp.push(milp);
        series_heur.push(heur);
        if crossover.is_none() && heur > heur_off {
            crossover = Some(coeff * 100.0);
        }
    }

    let xs: Vec<f64> = COEFFS.iter().map(|(_, c)| c * 100.0).collect();
    let svg = line_chart(
        "Fig 5: rejection % vs prediction overhead (VT, perfect prediction)",
        "rejection %",
        "overhead coefficient x 100",
        &xs,
        &[
            Series::new("MILP", series_milp),
            Series::new("heuristic", series_heur),
            Series::new("MILP off", vec![milp_off; xs.len()]),
            Series::new("heuristic off", vec![heur_off; xs.len()]),
        ],
    );
    let svg_path = write_svg("fig5", &svg);
    println!("wrote {}", svg_path.display());

    match crossover {
        Some(c) => println!(
            "\nheuristic crossover (prediction worse than off) at coefficient*100 ~ {c:.0}"
        ),
        None => println!("\nno crossover within the swept range"),
    }
    let path = write_csv(
        "fig5",
        "coefficient_times_100,milp_rejection_percent,heuristic_rejection_percent",
        &rows,
    );
    println!("wrote {}", path.display());
    Ok(())
}

fn render_horizon(spec: &SweepSpec, outcome: &SweepOutcome) -> Result<(), SweepError> {
    println!(
        "Horizon sweep: k x theta x pattern, {} traces x {} requests per cell, \
         heuristic manager, online Markov horizon predictor",
        spec.scale.traces, spec.scale.trace_len
    );

    let mut rows = Vec::new();
    for pattern in HORIZON_PATTERNS {
        let off = outcome.metrics(pattern, Policy::Heuristic, "off")?;
        println!(
            "\n  {pattern} (prediction off: rejection {:.2}%, energy {:.1}):",
            off.mean_rejection_percent, off.mean_energy
        );
        println!(
            "  {:>9} {:>6} {:>12} {:>12} {:>10}",
            "theta", "k", "rejection%", "energy", "vs off"
        );
        rows.push(format!(
            "{pattern},off,0,,{:.6},{:.6}",
            off.mean_rejection_percent, off.mean_energy
        ));

        let mut theta_series: Vec<Series> = Vec::new();
        for &theta in &HORIZON_THETAS {
            let mut series = Vec::new();
            for &depth in &HORIZON_DEPTHS {
                let label = HORIZON_GRID
                    .iter()
                    .find(|(_, k, t)| *k == depth && *t == theta)
                    .map(|(l, _, _)| *l)
                    .expect("grid covers depths x thetas");
                let m = outcome.metrics(pattern, Policy::Heuristic, label)?;
                println!(
                    "  {theta:>9.2} {depth:>6} {:>12.2} {:>12.1} {:>+10.2}",
                    m.mean_rejection_percent,
                    m.mean_energy,
                    off.mean_rejection_percent - m.mean_rejection_percent,
                );
                rows.push(format!(
                    "{pattern},{label},{depth},{theta},{:.6},{:.6}",
                    m.mean_rejection_percent, m.mean_energy
                ));
                series.push(m.mean_rejection_percent);
            }
            theta_series.push(Series::new(format!("theta={theta}"), series));
        }
        theta_series.push(Series::new(
            "off".to_string(),
            vec![off.mean_rejection_percent; HORIZON_DEPTHS.len()],
        ));
        let xs: Vec<f64> = HORIZON_DEPTHS.iter().map(|&k| k as f64).collect();
        let svg = line_chart(
            &format!("Horizon sweep ({pattern}): rejection % vs depth k per theta"),
            "rejection %",
            "horizon depth k",
            &xs,
            &theta_series,
        );
        let svg_path = write_svg(&format!("horizon_{pattern}"), &svg);
        println!("  wrote {}", svg_path.display());
    }

    let path = write_csv(
        "horizon",
        "pattern,predictor,depth,theta,mean_rejection_percent,mean_energy",
        &rows,
    );
    println!("\nexpected shape: gated horizons (theta > 0) hold the line where");
    println!("low-confidence chains would otherwise reserve capacity for phantoms");
    println!("that never materialize; k > 1 helps most on the periodic patterns");
    println!("wrote {}", path.display());
    Ok(())
}

fn render_tab1(outcome: &SweepOutcome) -> Result<(), SweepError> {
    println!("Table 1 / Fig 1 motivational example\n");
    println!(
        "{:<24} {:>10} {:>10} {:>12}",
        "scenario", "accepted", "rejected", "energy (J)"
    );
    for (suffix, predictor) in [("no prediction", "off"), ("prediction", "perfect")] {
        for policy in BOTH_POLICIES {
            let m = outcome.metrics("motivational", policy, predictor)?;
            println!(
                "{:<24} {:>10} {:>10} {:>12.2}",
                format!("{}, {suffix}", policy.name()),
                m.accepted,
                m.rejected,
                m.mean_energy
            );
        }
    }
    println!("\npaper: without prediction 1/2 accepted (scenario a);");
    println!("       with accurate prediction 2/2 accepted at 8.8 J (scenario b)");
    Ok(())
}
