//! General-purpose simulation driver.
//!
//! ```text
//! simulate [--generate vt|lt] [--trace FILE.csv] [--length N] [--seed S]
//!          [--manager heuristic|milp|milp-encoded|static|static-spill]
//!          [--predictor off|oracle|history|two-phase]
//!          [--accuracy-type F] [--accuracy-arrival F]
//!          [--overhead F] [--lookahead K] [--export FILE.csv]
//! ```
//!
//! Examples:
//!
//! ```sh
//! cargo run --release -p rtrm-bench --bin simulate -- --generate vt --manager milp
//! cargo run --release -p rtrm-bench --bin simulate -- \
//!     --trace my.csv --predictor oracle --accuracy-type 0.75
//! ```

use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::process::ExitCode;

use rand::SeedableRng;

use rtrm_core::{ExactRm, HeuristicRm, MilpRm, ResourceManager, StaticRm};
use rtrm_platform::{Platform, Trace};
use rtrm_predict::{
    ErrorModel, HistoryPredictor, OraclePredictor, OverheadModel, Predictor, TwoPhasePredictor,
};
use rtrm_sim::{PhantomDeadline, SimConfig, Simulator};
use rtrm_trace::{
    generate_catalog, generate_trace, read_trace_csv, write_trace_csv, CatalogConfig, TraceConfig,
};

#[derive(Debug)]
struct Options {
    generate: String,
    trace_file: Option<String>,
    length: usize,
    seed: u64,
    manager: String,
    predictor: String,
    accuracy_type: f64,
    accuracy_arrival: f64,
    overhead: f64,
    lookahead: usize,
    export: Option<String>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            generate: "vt".into(),
            trace_file: None,
            length: 200,
            seed: 1,
            manager: "heuristic".into(),
            predictor: "off".into(),
            accuracy_type: 1.0,
            accuracy_arrival: 1.0,
            overhead: 0.0,
            lookahead: 1,
            export: None,
        }
    }
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options::default();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("flag {name} expects a value"))
        };
        match flag.as_str() {
            "--generate" => opts.generate = value("--generate")?,
            "--trace" => opts.trace_file = Some(value("--trace")?),
            "--length" => {
                opts.length = value("--length")?
                    .parse()
                    .map_err(|e| format!("--length: {e}"))?;
            }
            "--seed" => {
                opts.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--manager" => opts.manager = value("--manager")?,
            "--predictor" => opts.predictor = value("--predictor")?,
            "--accuracy-type" => {
                opts.accuracy_type = value("--accuracy-type")?
                    .parse()
                    .map_err(|e| format!("--accuracy-type: {e}"))?;
            }
            "--accuracy-arrival" => {
                opts.accuracy_arrival = value("--accuracy-arrival")?
                    .parse()
                    .map_err(|e| format!("--accuracy-arrival: {e}"))?;
            }
            "--overhead" => {
                opts.overhead = value("--overhead")?
                    .parse()
                    .map_err(|e| format!("--overhead: {e}"))?;
            }
            "--lookahead" => {
                opts.lookahead = value("--lookahead")?
                    .parse()
                    .map_err(|e| format!("--lookahead: {e}"))?;
            }
            "--export" => opts.export = Some(value("--export")?),
            "--help" | "-h" => {
                return Err(
                    "usage: see the module docs (simulate --generate vt --manager milp ...)".into(),
                )
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("simulate: {message}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), String> {
    let opts = parse_args()?;

    let platform = Platform::paper_default();
    let mut rng = rand::rngs::StdRng::seed_from_u64(opts.seed);
    let catalog = generate_catalog(&platform, &CatalogConfig::paper(), &mut rng);

    let trace: Trace = match &opts.trace_file {
        Some(path) => {
            let file = File::open(path).map_err(|e| format!("open {path}: {e}"))?;
            read_trace_csv(BufReader::new(file)).map_err(|e| e.to_string())?
        }
        None => {
            let base = match opts.generate.as_str() {
                "vt" => TraceConfig::calibrated_vt(),
                "lt" => TraceConfig::calibrated_lt(),
                other => return Err(format!("--generate must be vt or lt, got {other:?}")),
            };
            generate_trace(
                &catalog,
                &TraceConfig {
                    length: opts.length,
                    ..base
                },
                &mut rng,
            )
        }
    };

    if let Some(path) = &opts.export {
        let file = File::create(path).map_err(|e| format!("create {path}: {e}"))?;
        write_trace_csv(&trace, BufWriter::new(file)).map_err(|e| e.to_string())?;
        println!("exported trace to {path}");
    }

    let mut manager: Box<dyn ResourceManager> = match opts.manager.as_str() {
        "heuristic" => Box::new(HeuristicRm::new()),
        "milp" => Box::new(ExactRm::with_node_budget(25_000)),
        "milp-encoded" => Box::new(MilpRm::new()),
        "static" => Box::new(StaticRm::new(&catalog)),
        "static-spill" => Box::new(StaticRm::with_spill(&catalog)),
        other => return Err(format!("unknown manager {other:?}")),
    };

    let error = ErrorModel {
        type_accuracy: opts.accuracy_type,
        arrival_accuracy: opts.accuracy_arrival,
    };
    let mut predictor: Option<Box<dyn Predictor>> = match opts.predictor.as_str() {
        "off" => None,
        "oracle" => Some(Box::new(OraclePredictor::new(
            &trace,
            catalog.len(),
            error,
            opts.seed,
        ))),
        "history" => Some(Box::new(HistoryPredictor::new(catalog.len(), 0.3))),
        "two-phase" => Some(Box::new(TwoPhasePredictor::new(catalog.len(), 4, 2.0))),
        other => return Err(format!("unknown predictor {other:?}")),
    };

    let config = SimConfig {
        overhead: OverheadModel::fraction_of_interarrival(opts.overhead),
        phantom_deadline: PhantomDeadline::MinWcetTimes(1.5),
        lookahead: opts.lookahead,
        ..SimConfig::default()
    };
    let sim = Simulator::new(&platform, &catalog, config);
    let report = sim.run(
        &trace,
        manager.as_mut(),
        predictor.as_deref_mut().map(|p| p as &mut dyn Predictor),
    );

    println!("manager:            {}", manager.name());
    println!("predictor:          {}", opts.predictor);
    println!("requests:           {}", report.requests);
    println!("accepted:           {}", report.accepted);
    println!(
        "rejected:           {} ({:.2}%)",
        report.rejected,
        report.rejection_percent()
    );
    println!("energy:             {:.2}", report.energy.value());
    println!("deadline misses:    {}", report.deadline_misses);
    println!("plans w/ phantoms:  {}", report.used_prediction);
    println!("makespan:           {:.2}", report.makespan.value());
    Ok(())
}
