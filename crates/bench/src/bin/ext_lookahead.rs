//! Extension experiment: multi-step lookahead.
//!
//! The paper's manager plans around exactly one predicted request. This
//! extension asks its open question: does knowing the next *K* requests
//! help more? The oracle forecasts the next K arrivals (with the usual
//! error model hooks), the managers plan around K phantoms, and the
//! fallback ladder drops the furthest-future phantom first when plans do
//! not fit.
//!
//! `cargo run --release -p rtrm-bench --bin ext_lookahead`

use rtrm_bench::{workload, write_csv, Group, Scale};
use rtrm_core::{ExactRm, HeuristicRm, ResourceManager};
use rtrm_predict::{OraclePredictor, Predictor};
use rtrm_sim::{mean_rejection_percent, run_batch, PhantomDeadline, SimConfig};

const HORIZONS: [usize; 5] = [0, 1, 2, 4, 8];

fn main() {
    let scale = Scale::from_env();
    let w = workload(&[Group::Vt, Group::Lt], scale);
    println!(
        "multi-step lookahead: perfect oracle, {} traces x {} requests",
        scale.traces, scale.trace_len
    );
    println!(
        "{:>6} {:>10} {:>4} {:>12} {:>14}",
        "group", "policy", "K", "rejection%", "phantom plans"
    );

    let mut rows = Vec::new();
    for (group, traces) in &w.traces {
        for policy in ["heuristic", "milp"] {
            for k in HORIZONS {
                let config = SimConfig {
                    phantom_deadline: PhantomDeadline::MinWcetTimes(group.phantom_coefficient()),
                    lookahead: k,
                    ..SimConfig::default()
                };
                let catalog_len = w.catalog.len();
                let reports = run_batch(
                    &w.platform,
                    &w.catalog,
                    &config,
                    traces,
                    |_| -> Box<dyn ResourceManager + Send> {
                        if policy == "heuristic" {
                            Box::new(HeuristicRm::new())
                        } else {
                            Box::new(ExactRm::with_node_budget(25_000))
                        }
                    },
                    |i| {
                        if k == 0 {
                            None
                        } else {
                            let p: Box<dyn Predictor + Send> =
                                Box::new(OraclePredictor::perfect(&traces[i], catalog_len));
                            Some(p)
                        }
                    },
                );
                let rej = mean_rejection_percent(&reports);
                let honoured: usize = reports.iter().map(|r| r.used_prediction).sum();
                println!(
                    "{:>6} {:>10} {:>4} {:>12.2} {:>14}",
                    group.name(),
                    policy,
                    k,
                    rej,
                    honoured
                );
                rows.push(format!("{},{policy},{k},{rej:.4},{honoured}", group.name()));
            }
        }
    }
    let path = write_csv(
        "ext_lookahead",
        "group,policy,horizon,rejection_percent,plans_honouring_phantoms",
        &rows,
    );
    println!("\nwrote {}", path.display());
}
