//! Table 1 / Fig 1 — the motivational example, replayed end-to-end through
//! the simulator (see also `examples/motivational.rs` for the API-level
//! walk-through).
//!
//! Thin wrapper over the `tab1` sweep (`rtrm_bench::figs`); resumes from
//! `results/tab1.sweep.json` when present.
//!
//! `cargo run --release -p rtrm-bench --bin tab1`

use rtrm_bench::figs;
use rtrm_bench::sweep::SweepOptions;

fn main() {
    if let Err(err) = figs::run("tab1", &SweepOptions::default()) {
        eprintln!("tab1 failed: {err}");
        std::process::exit(1);
    }
}
