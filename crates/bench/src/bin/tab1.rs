//! Table 1 / Fig 1 — the motivational example, replayed end-to-end through
//! the simulator (see also `examples/motivational.rs` for the API-level
//! walk-through).
//!
//! `cargo run --release -p rtrm-bench --bin tab1`

use rtrm_core::{ExactRm, HeuristicRm, ResourceManager};
use rtrm_platform::{
    Energy, Platform, Request, RequestId, TaskCatalog, TaskType, TaskTypeId, Time, Trace,
};
use rtrm_predict::OraclePredictor;
use rtrm_sim::{PhantomDeadline, SimConfig, Simulator};

fn setup() -> (Platform, TaskCatalog, Trace) {
    let platform = Platform::builder()
        .cpu("cpu1")
        .cpu("cpu2")
        .gpu("gpu")
        .build();
    let ids: Vec<_> = platform.ids().collect();
    let tau1 = TaskType::builder(0, &platform)
        .profile(ids[0], Time::new(8.0), Energy::new(7.3))
        .profile(ids[1], Time::new(12.0), Energy::new(8.4))
        .profile(ids[2], Time::new(5.0), Energy::new(2.0))
        .build();
    let tau2 = TaskType::builder(1, &platform)
        .profile(ids[0], Time::new(7.0), Energy::new(6.2))
        .profile(ids[1], Time::new(8.5), Energy::new(7.5))
        .profile(ids[2], Time::new(3.0), Energy::new(1.5))
        .build();
    let catalog = TaskCatalog::new(vec![tau1, tau2]);
    let trace = Trace::new(vec![
        Request {
            id: RequestId::new(0),
            arrival: Time::new(0.0),
            task_type: TaskTypeId::new(0),
            deadline: Time::new(8.0),
        },
        Request {
            id: RequestId::new(1),
            arrival: Time::new(1.0),
            task_type: TaskTypeId::new(1),
            deadline: Time::new(5.0),
        },
    ]);
    (platform, catalog, trace)
}

fn main() {
    let (platform, catalog, trace) = setup();
    // The phantom deadline model must reproduce τ2's relative deadline 5:
    // mean WCET of τ2 = (7 + 8.5 + 3)/3 ≈ 6.17, so ×0.8108 ≈ 5.0.
    let config = SimConfig {
        phantom_deadline: PhantomDeadline::Fixed(Time::new(5.0)),
        ..SimConfig::default()
    };
    let sim = Simulator::new(&platform, &catalog, config);

    println!("Table 1 / Fig 1 motivational example\n");
    println!(
        "{:<24} {:>10} {:>10} {:>12}",
        "scenario", "accepted", "rejected", "energy (J)"
    );
    for (label, rm) in [
        ("MILP", &mut ExactRm::new() as &mut dyn ResourceManager),
        ("heuristic", &mut HeuristicRm::new()),
    ] {
        let off = sim.run(&trace, rm, None);
        println!(
            "{:<24} {:>10} {:>10} {:>12.2}",
            format!("{label}, no prediction"),
            off.accepted,
            off.rejected,
            off.energy.value()
        );
    }
    for (label, rm) in [
        ("MILP", &mut ExactRm::new() as &mut dyn ResourceManager),
        ("heuristic", &mut HeuristicRm::new()),
    ] {
        let mut oracle = OraclePredictor::perfect(&trace, catalog.len());
        let on = sim.run(&trace, rm, Some(&mut oracle));
        println!(
            "{:<24} {:>10} {:>10} {:>12.2}",
            format!("{label}, prediction"),
            on.accepted,
            on.rejected,
            on.energy.value()
        );
    }
    println!("\npaper: without prediction 1/2 accepted (scenario a);");
    println!("       with accurate prediction 2/2 accepted at 8.8 J (scenario b)");
}
