//! Ablation: plan-following dispatch (start gates) on/off.
//!
//! The paper's manager decides "the moment in time at which to schedule the
//! start" of each task (Sec 2). On a non-preemptable resource that plan can
//! include waiting for the predicted task's slot; a work-conserving
//! dispatcher would hand the slot to whatever is queued and destroy the
//! reservation. This ablation quantifies the difference with a perfect
//! oracle on both deadline groups.
//!
//! `cargo run --release -p rtrm-bench --bin ablation_gates`

use rtrm_bench::{workload, write_csv, Group, Scale};
use rtrm_core::HeuristicRm;
use rtrm_predict::{OraclePredictor, Predictor};
use rtrm_sim::{mean_rejection_percent, run_batch, PhantomDeadline, SimConfig};

fn main() {
    let scale = Scale::from_env();
    let w = workload(&[Group::Vt, Group::Lt], scale);
    println!(
        "start-gate ablation: heuristic, perfect oracle, {} traces x {} requests",
        scale.traces, scale.trace_len
    );
    println!("{:>6} {:>18} {:>12}", "group", "dispatch", "rejection%");

    let mut rows = Vec::new();
    for (group, traces) in &w.traces {
        for (label, honour) in [("plan-following", true), ("work-conserving", false)] {
            let config = SimConfig {
                phantom_deadline: PhantomDeadline::MinWcetTimes(group.phantom_coefficient()),
                honour_start_gates: honour,
                ..SimConfig::default()
            };
            let catalog_len = w.catalog.len();
            let reports = run_batch(
                &w.platform,
                &w.catalog,
                &config,
                traces,
                |_| Box::new(HeuristicRm::new()),
                |i| {
                    let p: Box<dyn Predictor + Send> =
                        Box::new(OraclePredictor::perfect(&traces[i], catalog_len));
                    Some(p)
                },
            );
            let rej = mean_rejection_percent(&reports);
            println!("{:>6} {:>18} {:>12.2}", group.name(), label, rej);
            rows.push(format!("{},{label},{rej:.4}", group.name()));
        }
    }
    let path = write_csv("ablation_gates", "group,dispatch,rejection_percent", &rows);
    println!("\nwrote {}", path.display());
}
