//! Extension experiment: DVFS-capable CPUs.
//!
//! The paper's introduction names voltage/frequency scaling among the
//! manager's levers but does not evaluate it. This extension replays the
//! paper's workload on a platform whose CPUs expose speed levels
//! {0.6, 0.8, 1.0} (time `∝ 1/s`, dynamic energy `∝ s²`) and measures how
//! much energy the managers recover by slowing down when slack allows —
//! and what that costs in acceptance.
//!
//! `cargo run --release -p rtrm-bench --bin ext_dvfs`

use rand::SeedableRng;

use rtrm_bench::{write_csv, Group, Scale};
use rtrm_core::{ExactRm, HeuristicRm, ResourceManager};
use rtrm_platform::Platform;
use rtrm_sim::{mean_energy, mean_rejection_percent, run_batch, SimConfig};
use rtrm_trace::{generate_catalog, generate_traces, CatalogConfig};

fn build_platform(dvfs: bool) -> Platform {
    let mut b = Platform::builder();
    for i in 0..5 {
        if dvfs {
            b.cpu_with_dvfs(format!("cpu{i}"), &[0.6, 0.8, 1.0]);
        } else {
            b.cpu(format!("cpu{i}"));
        }
    }
    b.gpu("gpu0");
    b.build()
}

fn main() {
    let scale = Scale::from_env();
    println!(
        "DVFS extension: {} traces x {} requests, CPUs at {{0.6, 0.8, 1.0}}",
        scale.traces, scale.trace_len
    );
    println!(
        "{:>6} {:>10} {:>8} {:>12} {:>12}",
        "group", "policy", "dvfs", "rejection%", "energy"
    );

    let mut rows = Vec::new();
    for group in [Group::Vt, Group::Lt] {
        for dvfs in [false, true] {
            let platform = build_platform(dvfs);
            let mut rng = rand::rngs::StdRng::seed_from_u64(scale.seed);
            let catalog = generate_catalog(&platform, &CatalogConfig::paper(), &mut rng);
            let cfg = group.trace_config(scale.trace_len);
            let traces = generate_traces(&catalog, &cfg, scale.traces, scale.seed);
            for policy in ["heuristic", "milp"] {
                let reports = run_batch(
                    &platform,
                    &catalog,
                    &SimConfig::default(),
                    &traces,
                    |_| -> Box<dyn ResourceManager + Send> {
                        if policy == "heuristic" {
                            Box::new(HeuristicRm::new())
                        } else {
                            Box::new(ExactRm::with_node_budget(25_000))
                        }
                    },
                    |_| None,
                );
                let rej = mean_rejection_percent(&reports);
                let energy = mean_energy(&reports);
                println!(
                    "{:>6} {:>10} {:>8} {:>12.2} {:>12.1}",
                    group.name(),
                    policy,
                    if dvfs { "on" } else { "off" },
                    rej,
                    energy
                );
                rows.push(format!(
                    "{},{policy},{},{rej:.4},{energy:.4}",
                    group.name(),
                    if dvfs { "on" } else { "off" }
                ));
            }
        }
    }
    let path = write_csv(
        "ext_dvfs",
        "group,policy,dvfs,rejection_percent,mean_energy",
        &rows,
    );
    println!("\nwrote {}", path.display());
}
