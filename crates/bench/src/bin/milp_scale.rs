//! Exact-backend scaling bench: `decide()` latency of the warm-started,
//! presolved managers against the cold/unpresolved baseline on a contended
//! fixture, sweeping the platform up to 512 resources. Records
//! `BENCH_milp.json` at the workspace root (see README, "Performance"); run
//! in release:
//!
//! ```text
//! cargo run --release -p rtrm-bench --bin milp_scale
//! ```
//!
//! The fixture is adversarial for a cold depth-first search and friendly to
//! the paper's regret heuristic — the regime warm starts are for. Resources
//! come in pairs of tasks (A, B) contending for one shared slot `r`:
//!
//! * task A: energy 1.0 on `r`, 1.2 on a private alternate, expensive on a
//!   third resource;
//! * task B: energy 1.01 on `r`, expensive (~E) on two private resources.
//!
//! The branching order (most-constrained, then largest spread) interleaves
//! A before its B, so the cold search greedily parks every A on its `r`,
//! forcing every B to an expensive fallback — a first incumbent ~E/2.2
//! times costlier than the optimum (A on the alternate, B on `r`), which it
//! then walks down pair by pair, re-exploring suffixes as it goes. The
//! regret heuristic resolves each pair correctly up front (B's regret ~E
//! dwarfs A's 0.2), so the warm-started search begins at the optimum and
//! the injected-incumbent bound collapses that whole walk. Decisions are
//! identical either way (`warmstart_differential.rs`); only the time
//! differs.

use rtrm_core::{Activation, ExactRm, JobView, MilpRm, ResourceManager, TimelinePool};
use rtrm_platform::{Energy, Platform, TaskCatalog, TaskType, TaskTypeId, Time};
use rtrm_sched::JobKey;

/// The resource-count sweep: the scaling axis of `BENCH_platform.json`.
const RESOURCES: [usize; 3] = [32, 128, 512];

/// Each contended pair owns five resources (shared slot, A's alternate,
/// A's expensive third, B's two expensive fallbacks); two more host the
/// arriving job and the phantom.
fn pairs(m: usize) -> usize {
    (m - 2) / 5
}

/// Execution time of every placement; deadlines equal it, so each resource
/// holds exactly one task and the pairs genuinely contend.
const EXEC: f64 = 4.0;

fn world(m: usize) -> (Platform, TaskCatalog) {
    let k = pairs(m);
    let mut builder = Platform::builder();
    for i in 0..m {
        builder.cpu(format!("c{i}"));
    }
    let platform = builder.build();
    let ids: Vec<_> = platform.ids().collect();

    let mut types = Vec::new();
    for p in 0..k {
        // Strictly decreasing expensive tiers keep every spread distinct,
        // pinning the deterministic branch order A_0, B_0, A_1, B_1, …
        let e = 60.0 - p as f64 * 0.02;
        let base = 5 * p;
        let mut a = TaskType::builder(2 * p, &platform);
        a.profile(ids[base], Time::new(EXEC), Energy::new(1.0));
        a.profile(ids[base + 1], Time::new(EXEC), Energy::new(1.2));
        a.profile(ids[base + 2], Time::new(EXEC), Energy::new(e));
        types.push(a.build());
        let mut b = TaskType::builder(2 * p + 1, &platform);
        b.profile(ids[base], Time::new(EXEC), Energy::new(1.01));
        b.profile(ids[base + 3], Time::new(EXEC), Energy::new(e - 0.012));
        b.profile(ids[base + 4], Time::new(EXEC), Energy::new(e - 0.008));
        types.push(b.build());
    }
    // The arriving task and the phantom each get a private uncontended
    // resource, so every fixture admits and the ladder's phantom rung is
    // the one measured.
    let mut arr = TaskType::builder(2 * k, &platform);
    arr.profile(ids[5 * k], Time::new(EXEC), Energy::new(1.0));
    types.push(arr.build());
    let mut ph = TaskType::builder(2 * k + 1, &platform);
    ph.profile(ids[5 * k + 1], Time::new(EXEC), Energy::new(1.0));
    types.push(ph.build());
    (platform, TaskCatalog::new(types))
}

/// One ready job per pair member, all released now with deadlines one
/// execution away, plus the arriving job and one phantom.
fn fixture(m: usize) -> (Vec<JobView>, JobView, Vec<JobView>) {
    let k = pairs(m);
    let now = Time::ZERO;
    let deadline = now + Time::new(EXEC);
    let active: Vec<JobView> = (0..2 * k)
        .map(|i| JobView::fresh(JobKey(i as u64), TaskTypeId::new(i), now, deadline))
        .collect();
    let arriving = JobView::fresh(JobKey(10_000), TaskTypeId::new(2 * k), now, deadline);
    let release = now + Time::new(0.5);
    let predicted = vec![JobView::fresh(
        JobKey(10_001),
        TaskTypeId::new(2 * k + 1),
        release,
        release + Time::new(EXEC),
    )];
    (active, arriving, predicted)
}

/// Mean ns per call over a self-calibrated iteration count.
fn measure<R>(mut f: impl FnMut() -> R) -> f64 {
    let warmup = std::time::Instant::now();
    let mut calibration = 0u64;
    while warmup.elapsed() < std::time::Duration::from_millis(5) {
        std::hint::black_box(f());
        calibration += 1;
    }
    let iters = calibration.max(1) * 6;
    let start = std::time::Instant::now();
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

fn main() {
    let mut rows = Vec::new();
    let mut push_row = |series: &str, resources: usize, baseline_ns: f64, warm_ns: f64| {
        let speedup = baseline_ns / warm_ns;
        println!(
            "milp scale: series={series} resources={resources:>4} \
             cold={baseline_ns:.0}ns warm={warm_ns:.0}ns speedup={speedup:.2}x"
        );
        rows.push(format!(
            "    {{\"series\": \"{series}\", \"depth\": {resources}, \"baseline_ns\": \
             {baseline_ns:.1}, \"warm_ns\": {warm_ns:.1}, \"speedup\": {speedup:.2}}}"
        ));
    };

    // The MILP-series ladder (ExactRm, the exact backend the simulator
    // runs): defaults (warm start + presolve) vs both disabled.
    for m in RESOURCES {
        let (platform, catalog) = world(m);
        let (active, arriving, predicted) = fixture(m);
        let activation = Activation {
            now: Time::ZERO,
            platform: &platform,
            catalog: &catalog,
            active: &active,
            arriving,
            predicted: &predicted,
        };
        let mut pool = TimelinePool::new();
        pool.ensure_index(&platform, &catalog);
        let mut warm = ExactRm::new();
        let warm_ns = measure(|| warm.decide_with_pool(&activation, &mut pool));
        let mut cold_pool = TimelinePool::new();
        cold_pool.ensure_index(&platform, &catalog);
        let mut cold = ExactRm {
            warm_start: false,
            presolve: false,
            ..ExactRm::default()
        };
        let baseline_ns = measure(|| cold.decide_with_pool(&activation, &mut cold_pool));
        push_row("milp_ladder_decide", m, baseline_ns, warm_ns);
    }

    // The literal Sec 4.2 encoding (MilpRm) at the sizes its dense simplex
    // tolerates: the same warm seed arrives through SolveOptions and the
    // branch & bound's injected incumbent.
    for m in [7usize, 32] {
        let (platform, catalog) = world(m);
        let (active, arriving, predicted) = fixture(m);
        let activation = Activation {
            now: Time::ZERO,
            platform: &platform,
            catalog: &catalog,
            active: &active,
            arriving,
            predicted: &predicted,
        };
        let mut warm = MilpRm::new();
        let warm_ns = measure(|| warm.decide(&activation));
        let mut cold = MilpRm {
            warm_start: false,
            ..MilpRm::default()
        };
        cold.options.presolve = false;
        let baseline_ns = measure(|| cold.decide(&activation));
        push_row("milp_encoded_decide", m, baseline_ns, warm_ns);
    }

    let json = format!(
        "{{\n  \"bench\": \"milp_scale\",\n  \"units\": \"ns_per_call\",\n  \
         \"results\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_milp.json");
    std::fs::write(path, json).expect("write BENCH_milp.json");
    println!("wrote {path}");
}
