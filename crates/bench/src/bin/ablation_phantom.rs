//! Ablation: phantom-deadline model versus prediction benefit.
//!
//! The predictor forecasts type and arrival only; the phantom task's
//! deadline is a design knob of the manager. This sweep measures the
//! rejection percentage of the heuristic with perfect prediction under
//! several phantom models, against the predictor-off baseline.
//!
//! `cargo run --release -p rtrm-bench --bin ablation_phantom`

use rtrm_bench::{workload, write_csv, Group, Scale};
use rtrm_core::HeuristicRm;
use rtrm_predict::{OraclePredictor, Predictor};
use rtrm_sim::{mean_rejection_percent, run_batch, PhantomDeadline, SimConfig};

fn main() {
    let scale = Scale::from_env();
    let w = workload(&[Group::Vt, Group::Lt], scale);
    println!(
        "phantom ablation: heuristic, perfect oracle, {} traces x {} requests",
        scale.traces, scale.trace_len
    );

    let mut rows = Vec::new();
    for (group, traces) in &w.traces {
        let models: Vec<(String, Option<PhantomDeadline>)> = vec![
            ("off".into(), None),
            ("min*1.5".into(), Some(PhantomDeadline::MinWcetTimes(1.5))),
            ("min*2.0".into(), Some(PhantomDeadline::MinWcetTimes(2.0))),
            ("min*3.0".into(), Some(PhantomDeadline::MinWcetTimes(3.0))),
            ("min*4.0".into(), Some(PhantomDeadline::MinWcetTimes(4.0))),
            (
                "mean*1.75".into(),
                Some(PhantomDeadline::MeanWcetTimes(1.75)),
            ),
            ("mean*4.0".into(), Some(PhantomDeadline::MeanWcetTimes(4.0))),
        ];
        println!("\n  {} group:", group.name());
        for (label, model) in models {
            let config = SimConfig {
                phantom_deadline: model.unwrap_or(PhantomDeadline::MeanWcetTimes(1.75)),
                ..SimConfig::default()
            };
            let with_pred = model.is_some();
            let catalog_len = w.catalog.len();
            let reports = run_batch(
                &w.platform,
                &w.catalog,
                &config,
                traces,
                |_| Box::new(HeuristicRm::new()),
                |i| {
                    if with_pred {
                        let p: Box<dyn Predictor + Send> =
                            Box::new(OraclePredictor::perfect(&traces[i], catalog_len));
                        Some(p)
                    } else {
                        None
                    }
                },
            );
            let rej = mean_rejection_percent(&reports);
            let honoured: usize = reports.iter().map(|r| r.used_prediction).sum();
            let accepted: usize = reports.iter().map(|r| r.accepted).sum();
            println!("  {label:>10}: rej={rej:6.2}%  honoured={honoured}/{accepted}");
            rows.push(format!(
                "{},{label},{rej:.4},{honoured},{accepted}",
                group.name()
            ));
        }
    }
    let path = write_csv(
        "ablation_phantom",
        "group,model,rejection_percent,plans_honouring_phantom,accepted",
        &rows,
    );
    println!("\nwrote {}", path.display());
}
