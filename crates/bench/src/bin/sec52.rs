//! Sec 5.2 — MILP versus heuristic without prediction.
//!
//! Paper: over 1000 traces (VT+LT), rejection without prediction is 24.5 %
//! (MILP) and 31 % (heuristic); the MILP's acceptance beats the heuristic's
//! on 88 % of traces (not 100 %: locally optimal decisions are not globally
//! optimal under future arrivals).
//!
//! `cargo run --release -p rtrm-bench --bin sec52`

use rtrm_bench::{run_config, workload, write_csv, Group, Oracle, Policy, Scale};
use rtrm_predict::OverheadModel;
use rtrm_sim::mean_rejection_percent;

fn main() {
    let scale = Scale::from_env();
    let w = workload(&[Group::Vt, Group::Lt], scale);
    println!(
        "Sec 5.2: {} traces x {} requests per group, prediction off",
        scale.traces, scale.trace_len
    );

    let mut rows = Vec::new();
    let mut milp_all = Vec::new();
    let mut heur_all = Vec::new();
    for (group, traces) in &w.traces {
        let milp = run_config(
            &w,
            *group,
            traces,
            Policy::Milp,
            Oracle::Off,
            OverheadModel::none(),
            scale.seed,
        );
        let heur = run_config(
            &w,
            *group,
            traces,
            Policy::Heuristic,
            Oracle::Off,
            OverheadModel::none(),
            scale.seed,
        );
        println!(
            "  {}: MILP {:.2}%  heuristic {:.2}%",
            group.name(),
            mean_rejection_percent(&milp),
            mean_rejection_percent(&heur)
        );
        for (i, (m, h)) in milp.iter().zip(&heur).enumerate() {
            rows.push(format!(
                "{},{},{:.4},{:.4}",
                group.name(),
                i,
                m.rejection_percent(),
                h.rejection_percent()
            ));
        }
        milp_all.extend(milp);
        heur_all.extend(heur);
    }

    let milp_rej = mean_rejection_percent(&milp_all);
    let heur_rej = mean_rejection_percent(&heur_all);
    let milp_better = milp_all
        .iter()
        .zip(&heur_all)
        .filter(|(m, h)| m.accepted >= h.accepted)
        .count();
    let share = 100.0 * milp_better as f64 / milp_all.len() as f64;

    println!("\n                       paper   measured");
    println!("MILP rejection %       24.5    {milp_rej:.2}");
    println!("heuristic rejection %  31.0    {heur_rej:.2}");
    println!("MILP >= heuristic %    88      {share:.1}");

    let path = write_csv(
        "sec52",
        "group,trace,milp_rejection_percent,heuristic_rejection_percent",
        &rows,
    );
    println!("\nwrote {}", path.display());
}
