//! Regenerates the SVG charts from the CSVs under `results/` without
//! re-running the experiments.
//!
//! `cargo run --release -p rtrm-bench --bin charts_from_csv`

use std::fs;

use rtrm_bench::chart::{bar_chart, write_svg, Series};

fn main() {
    match fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../results/fig2.csv"
    )) {
        Ok(text) => {
            let mut bars: Vec<(String, Vec<f64>)> = Vec::new();
            for line in text.lines().skip(1) {
                let f: Vec<&str> = line.split(',').collect();
                if f.len() != 4 {
                    continue;
                }
                let (off, on) = (f[2].parse::<f64>(), f[3].parse::<f64>());
                if let (Ok(off), Ok(on)) = (off, on) {
                    bars.push((format!("{} {}", f[0], f[1]), vec![off, on]));
                }
            }
            if bars.is_empty() {
                eprintln!("fig2.csv had no data rows");
                return;
            }
            let series: Vec<Series> = bars
                .into_iter()
                .map(|(label, v)| Series::new(label, v))
                .collect();
            let svg = bar_chart(
                "Fig 2: rejection %, prediction off vs on",
                "rejection %",
                &["prediction off", "prediction on"],
                &series,
            );
            let path = write_svg("fig2", &svg);
            println!("wrote {}", path.display());
        }
        Err(e) => eprintln!("run the fig2 experiment first: {e}"),
    }
}
