//! Fig 5 — average rejection percentage versus prediction runtime overhead
//! on the VT group, with perfectly accurate prediction.
//!
//! The overhead is `coefficient × average interarrival time`; the paper's
//! horizontal axis is `coefficient × 100`. Paper: past an overhead of a few
//! percent of the mean interarrival time, prediction becomes worse than no
//! prediction. The crossover coefficient depends on the operating point
//! (the paper's literal units are ~5.6× overloaded; see DESIGN.md §3), so
//! this harness sweeps a wider range and reports where the curve crosses
//! the predictor-off baseline.
//!
//! Thin wrapper over the `fig5` sweep (`rtrm_bench::figs`); resumes from
//! `results/fig5.sweep.json` when present.
//!
//! `cargo run --release -p rtrm-bench --bin fig5`

use rtrm_bench::figs;
use rtrm_bench::sweep::SweepOptions;

fn main() {
    if let Err(err) = figs::run("fig5", &SweepOptions::default()) {
        eprintln!("fig5 failed: {err}");
        std::process::exit(1);
    }
}
