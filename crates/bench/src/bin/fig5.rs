//! Fig 5 — average rejection percentage versus prediction runtime overhead
//! on the VT group, with perfectly accurate prediction.
//!
//! The overhead is `coefficient × average interarrival time`; the paper's
//! horizontal axis is `coefficient × 100`. Paper: past an overhead of a few
//! percent of the mean interarrival time, prediction becomes worse than no
//! prediction. The crossover coefficient depends on the operating point
//! (the paper's literal units are ~5.6× overloaded; see DESIGN.md §3), so
//! this harness sweeps a wider range and reports where the curve crosses
//! the predictor-off baseline.
//!
//! `cargo run --release -p rtrm-bench --bin fig5`

use rtrm_bench::chart::{line_chart, write_svg, Series};
use rtrm_bench::{run_config, workload, write_csv, Group, Oracle, Policy, Scale};
use rtrm_predict::{ErrorModel, OverheadModel};
use rtrm_sim::mean_rejection_percent;

const COEFFS: [f64; 8] = [0.0, 0.02, 0.04, 0.08, 0.16, 0.32, 0.64, 1.28];

fn main() {
    let scale = Scale::from_env();
    let w = workload(&[Group::Vt], scale);
    let (group, traces) = (&w.traces[0].0, &w.traces[0].1);
    println!(
        "Fig 5: VT group, {} traces x {} requests per point, perfect prediction",
        scale.traces, scale.trace_len
    );

    let milp_off = mean_rejection_percent(&run_config(
        &w,
        *group,
        traces,
        Policy::Milp,
        Oracle::Off,
        OverheadModel::none(),
        scale.seed,
    ));
    let heur_off = mean_rejection_percent(&run_config(
        &w,
        *group,
        traces,
        Policy::Heuristic,
        Oracle::Off,
        OverheadModel::none(),
        scale.seed,
    ));
    println!("  predictor off: MILP {milp_off:.2}%  heuristic {heur_off:.2}%\n");
    println!(
        "  {:>10} {:>12} {:>12}",
        "coeff*100", "MILP rej%", "heur rej%"
    );

    let mut rows = vec![format!("off,{milp_off:.4},{heur_off:.4}")];
    let mut crossover: Option<f64> = None;
    let mut series_milp = Vec::new();
    let mut series_heur = Vec::new();
    for coeff in COEFFS {
        let overhead = OverheadModel::fraction_of_interarrival(coeff);
        let milp = mean_rejection_percent(&run_config(
            &w,
            *group,
            traces,
            Policy::Milp,
            Oracle::On(ErrorModel::perfect()),
            overhead,
            scale.seed,
        ));
        let heur = mean_rejection_percent(&run_config(
            &w,
            *group,
            traces,
            Policy::Heuristic,
            Oracle::On(ErrorModel::perfect()),
            overhead,
            scale.seed,
        ));
        println!("  {:>10.0} {milp:>12.2} {heur:>12.2}", coeff * 100.0);
        rows.push(format!("{},{milp:.4},{heur:.4}", coeff * 100.0));
        series_milp.push(milp);
        series_heur.push(heur);
        if crossover.is_none() && heur > heur_off {
            crossover = Some(coeff * 100.0);
        }
    }

    let xs: Vec<f64> = COEFFS.iter().map(|c| c * 100.0).collect();
    let svg = line_chart(
        "Fig 5: rejection % vs prediction overhead (VT, perfect prediction)",
        "rejection %",
        "overhead coefficient x 100",
        &xs,
        &[
            Series::new("MILP", series_milp),
            Series::new("heuristic", series_heur),
            Series::new("MILP off", vec![milp_off; xs.len()]),
            Series::new("heuristic off", vec![heur_off; xs.len()]),
        ],
    );
    let svg_path = write_svg("fig5", &svg);
    println!("wrote {}", svg_path.display());

    match crossover {
        Some(c) => println!(
            "\nheuristic crossover (prediction worse than off) at coefficient*100 ~ {c:.0}"
        ),
        None => println!("\nno crossover within the swept range"),
    }
    let path = write_csv(
        "fig5",
        "coefficient_times_100,milp_rejection_percent,heuristic_rejection_percent",
        &rows,
    );
    println!("wrote {}", path.display());
}
