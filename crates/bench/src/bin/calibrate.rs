//! Calibration sweep: finds the interarrival mean whose no-prediction
//! rejection percentages land in the paper's reported band (Sec 5.2:
//! MILP 24.5 %, heuristic 31 %, averaged over VT+LT). See DESIGN.md §3 for
//! why the paper's literal units cannot be used directly.
//!
//! Usage: `cargo run --release -p rtrm-bench --bin calibrate`
//! (scale via `RTRM_TRACES` / `RTRM_TRACE_LEN`).

use std::time::Instant;

use rtrm_bench::{run_config, workload, Group, Oracle, Policy, Scale};
use rtrm_predict::OverheadModel;
use rtrm_sim::mean_rejection_percent;
use rtrm_trace::TraceConfig;

fn main() {
    let scale = Scale::from_env();
    println!(
        "calibration sweep: {} traces x {} requests per point",
        scale.traces, scale.trace_len
    );
    println!(
        "{:>8} {:>6} {:>12} {:>12} {:>9}",
        "mean", "group", "MILP rej%", "heur rej%", "secs"
    );

    for mean in [2.0, 2.4, 2.8, 3.2, 3.6] {
        for group in [Group::Vt, Group::Lt] {
            // Rebuild the workload with the overridden interarrival mean,
            // keeping the coefficient of variation of the paper (0.4/1.2).
            let mut w = workload(&[group], scale);
            let cfg = TraceConfig {
                interarrival_mean: mean,
                interarrival_std: mean / 3.0,
                length: scale.trace_len,
                ..group.trace_config(scale.trace_len)
            };
            w.traces = vec![(
                group,
                rtrm_trace::generate_traces(&w.catalog, &cfg, scale.traces, scale.seed),
            )];
            let (g, traces) = (&w.traces[0].0, w.traces[0].1.clone());

            let t0 = Instant::now();
            let milp = run_config(
                &w,
                *g,
                &traces,
                Policy::Milp,
                Oracle::Off,
                OverheadModel::none(),
                7,
            );
            let heur = run_config(
                &w,
                *g,
                &traces,
                Policy::Heuristic,
                Oracle::Off,
                OverheadModel::none(),
                7,
            );
            println!(
                "{:>8.2} {:>6} {:>12.2} {:>12.2} {:>9.1}",
                mean,
                g.name(),
                mean_rejection_percent(&milp),
                mean_rejection_percent(&heur),
                t0.elapsed().as_secs_f64()
            );
        }
    }
}
