//! Fig 2 — average rejection percentage, predictor on (perfectly accurate)
//! versus off, for MILP and heuristic on the LT (a) and VT (b) groups.
//!
//! Paper deltas: prediction reduces rejection by 1 % (LT) / 9.17 % (VT) for
//! the MILP and by 2.6 % (LT) / 10.2 % (VT) for the heuristic; the
//! heuristic trails the MILP by ≈4 % (VT, on) and ≈5.5 % (VT, off).
//!
//! `cargo run --release -p rtrm-bench --bin fig2`

use rtrm_bench::chart::{bar_chart, write_svg, Series};
use rtrm_bench::{run_config, workload, write_csv, Group, Oracle, Policy, Scale};
use rtrm_predict::{ErrorModel, OverheadModel};
use rtrm_sim::mean_rejection_percent;

fn main() {
    let scale = Scale::from_env();
    let w = workload(&[Group::Lt, Group::Vt], scale);
    println!(
        "Fig 2: {} traces x {} requests per configuration",
        scale.traces, scale.trace_len
    );
    println!(
        "{:>6} {:>10} {:>10} {:>12} {:>12}",
        "group", "policy", "pred off%", "pred on%", "reduction"
    );

    let mut rows = Vec::new();
    let mut bars: Vec<(String, [f64; 2])> = Vec::new();
    for (group, traces) in &w.traces {
        for policy in [Policy::Milp, Policy::Heuristic] {
            let off = mean_rejection_percent(&run_config(
                &w,
                *group,
                traces,
                policy,
                Oracle::Off,
                OverheadModel::none(),
                scale.seed,
            ));
            let on = mean_rejection_percent(&run_config(
                &w,
                *group,
                traces,
                policy,
                Oracle::On(ErrorModel::perfect()),
                OverheadModel::none(),
                scale.seed,
            ));
            println!(
                "{:>6} {:>10} {:>10.2} {:>10.2} {:>12.2}",
                group.name(),
                policy.name(),
                off,
                on,
                off - on
            );
            rows.push(format!(
                "{},{},{off:.4},{on:.4}",
                group.name(),
                policy.name()
            ));
            bars.push((format!("{} {}", group.name(), policy.name()), [off, on]));
        }
    }

    let svg = bar_chart(
        "Fig 2: rejection %, prediction off vs on",
        "rejection %",
        &["prediction off", "prediction on"],
        &bars
            .iter()
            .map(|(label, v)| Series::new(label.clone(), v.to_vec()))
            .collect::<Vec<_>>(),
    );
    let svg_path = write_svg("fig2", &svg);
    println!("wrote {}", svg_path.display());

    let path = write_csv(
        "fig2",
        "group,policy,rejection_percent_pred_off,rejection_percent_pred_on",
        &rows,
    );
    println!(
        "\npaper reductions: LT 1.0 (MILP) / 2.6 (heuristic); VT 9.17 (MILP) / 10.2 (heuristic)"
    );
    println!("wrote {}", path.display());
}
