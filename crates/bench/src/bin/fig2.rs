//! Fig 2 — average rejection percentage, predictor on (perfectly accurate)
//! versus off, for MILP and heuristic on the LT (a) and VT (b) groups.
//!
//! Paper deltas: prediction reduces rejection by 1 % (LT) / 9.17 % (VT) for
//! the MILP and by 2.6 % (LT) / 10.2 % (VT) for the heuristic; the
//! heuristic trails the MILP by ≈4 % (VT, on) and ≈5.5 % (VT, off).
//!
//! Thin wrapper over the `fig2` sweep (`rtrm_bench::figs`); resumes from
//! `results/fig2.sweep.json` when present.
//!
//! `cargo run --release -p rtrm-bench --bin fig2`

use rtrm_bench::figs;
use rtrm_bench::sweep::SweepOptions;

fn main() {
    if let Err(err) = figs::run("fig2", &SweepOptions::default()) {
        eprintln!("fig2 failed: {err}");
        std::process::exit(1);
    }
}
