//! Declarative sweep CLI: runs named experiment grids on the warm worker
//! pool with checkpoint/resume under `results/`.
//!
//! ```text
//! cargo run --release -p rtrm-bench --bin sweep -- [--fresh] <name>... | all
//! ```
//!
//! Names: `tab1`, `fig2`, `fig3`, `fig4`, `fig5`, `horizon` (see
//! EXPERIMENTS.md for the figure-to-command map). `--fresh` ignores existing checkpoints. A
//! killed sweep restarts from its completed cells on the next invocation.
//! Each sweep holds `results/<name>.sweep.lock` while it runs; when another
//! live process owns it, the default is to fail fast — pass `--wait-lease`
//! to queue behind the owner instead.

use rtrm_bench::figs;
use rtrm_bench::sweep::SweepOptions;

fn main() {
    let mut options = SweepOptions::default();
    let mut names: Vec<String> = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--fresh" => options.fresh = true,
            "--quiet" => options.quiet = true,
            "--wait-lease" => options.lease_wait = true,
            "all" => names.extend(figs::NAMES.iter().map(|n| (*n).to_string())),
            name if figs::NAMES.contains(&name) => names.push(name.to_string()),
            other => {
                eprintln!("unknown argument: {other}");
                usage();
                std::process::exit(2);
            }
        }
    }
    if names.is_empty() {
        usage();
        std::process::exit(2);
    }
    for (i, name) in names.iter().enumerate() {
        if i > 0 {
            println!();
        }
        if let Err(err) = figs::run(name, &options) {
            eprintln!("sweep {name} failed: {err}");
            std::process::exit(1);
        }
    }
}

fn usage() {
    eprintln!("usage: sweep [--fresh] [--quiet] [--wait-lease] <name>... | all");
    eprintln!("names: {}", figs::NAMES.join(", "));
}
