//! Declarative sweep CLI: runs named experiment grids on the warm worker
//! pool with checkpoint/resume under `results/`.
//!
//! ```text
//! cargo run --release -p rtrm-bench --bin sweep -- [--fresh] <name>... | all
//! ```
//!
//! Names: `tab1`, `fig2`, `fig3`, `fig4`, `fig5`, `horizon` (see
//! EXPERIMENTS.md for the figure-to-command map). `--fresh` ignores existing checkpoints. A
//! killed sweep restarts from its completed cells on the next invocation.
//! Each sweep holds `results/<name>.sweep.lock` while it runs; when another
//! live process owns it, the default is to fail fast — pass `--wait-lease`
//! to queue behind the owner instead.
//!
//! ## Cooperative mode
//!
//! `--cooperative` joins (or starts) a shared run of the grid using the
//! per-cell claim protocol of `rtrm_bench::coop`: any number of processes
//! on one `results/` directory split the cells between them and a merge
//! folds their partial shards into the canonical checkpoint. `--owner <id>`
//! names this worker (default: derived from the pid); `--local-workers N`
//! is the one-machine convenience that spawns N−1 cooperative children of
//! this same binary and acts as the Nth worker itself, rendering figures
//! once the grid is merged.
//!
//! ## Exit codes
//!
//! Scripts can tell failure classes apart: `2` usage error, `3` lease held
//! by a live owner, `4` filesystem I/O failure, `5` unknown sweep name,
//! `6` shard conflict (cooperative merge found disagreeing duplicate
//! cells), `1` anything else.

use std::process::{Child, Command};

use rtrm_bench::coop::CoopConfig;
use rtrm_bench::sweep::{run_sweep, SweepError, SweepOptions};
use rtrm_bench::{coop, figs};

fn main() {
    let mut options = SweepOptions::default();
    let mut names: Vec<String> = Vec::new();
    let mut cooperative = false;
    let mut owner: Option<String> = None;
    let mut local_workers: Option<usize> = None;
    let mut render = true;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--fresh" => options.fresh = true,
            "--quiet" => options.quiet = true,
            "--wait-lease" => options.lease_wait = true,
            "--cooperative" => cooperative = true,
            "--no-render" => render = false,
            "--owner" => match args.next() {
                Some(id) if CoopConfig::owner_is_valid(&id) => owner = Some(id),
                Some(id) => {
                    eprintln!("--owner '{id}' must be non-empty [A-Za-z0-9._-]");
                    std::process::exit(2);
                }
                None => {
                    eprintln!("--owner needs a value");
                    std::process::exit(2);
                }
            },
            "--local-workers" => match args.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n >= 1 => local_workers = Some(n),
                _ => {
                    eprintln!("--local-workers needs a count >= 1");
                    std::process::exit(2);
                }
            },
            "--lease-stale-secs" => match args.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(secs) => options.lease_stale_secs = secs,
                None => {
                    eprintln!("--lease-stale-secs needs a number of seconds");
                    std::process::exit(2);
                }
            },
            "all" => names.extend(figs::NAMES.iter().map(|n| (*n).to_string())),
            flag if flag.starts_with('-') => {
                eprintln!("unknown flag: {flag}");
                usage();
                std::process::exit(2);
            }
            // Unknown sweep names are not usage errors: they reach the run
            // and exit with the distinct UnknownSweep code (5).
            name => names.push(name.to_string()),
        }
    }
    if names.is_empty() {
        usage();
        std::process::exit(2);
    }
    if local_workers.is_some() && (cooperative || owner.is_some()) {
        eprintln!("--local-workers spawns its own cooperative workers; drop --cooperative/--owner");
        std::process::exit(2);
    }
    if owner.is_some() && !cooperative {
        eprintln!("--owner only makes sense with --cooperative");
        std::process::exit(2);
    }
    if cooperative {
        options.coop = Some(match owner {
            Some(id) => CoopConfig::with_owner(id),
            None => CoopConfig::default(),
        });
    }

    for (i, name) in names.iter().enumerate() {
        if i > 0 {
            println!();
        }
        let result = match local_workers {
            Some(n) => run_local_workers(name, &options, n),
            None => run_one(name, &options, render),
        };
        if let Err(err) = result {
            eprintln!("sweep {name} failed: {err}");
            std::process::exit(exit_code(&err));
        }
    }
}

/// Runs one sweep, with (`figs::run`) or without (`--no-render`) the figure
/// rendering pass, and reports a salvaged-checkpoint backup if one fired.
fn run_one(name: &str, options: &SweepOptions, render: bool) -> Result<(), SweepError> {
    let outcome = if render {
        figs::run(name, options)?
    } else {
        let spec = figs::spec(name).ok_or_else(|| SweepError::UnknownSweep {
            name: name.to_string(),
        })?;
        run_sweep(&spec, options)?
    };
    if let Some(backup) = &outcome.corrupt_backup {
        eprintln!(
            "sweep {name}: note: a corrupt checkpoint was salvaged; the damaged \
             file is preserved at {}",
            backup.display()
        );
    }
    Ok(())
}

/// One-machine fan-out: wipe stale state (under `--fresh`), spawn `n - 1`
/// cooperative child workers of this same binary, act as the n-th worker,
/// then render once the merge completes. A dead child is survivable — the
/// remaining workers (at minimum this parent) finish the grid — so child
/// exit codes are reported but only the parent's own result is fatal.
fn run_local_workers(name: &str, options: &SweepOptions, n: usize) -> Result<(), SweepError> {
    // Coordinator-only cleanup must precede every worker, including us.
    if options.fresh {
        coop::fresh_cleanup(name);
    }
    let parent = std::process::id();
    let exe = std::env::current_exe().map_err(|source| SweepError::Io {
        path: "<current_exe>".into(),
        source,
    })?;
    let mut children: Vec<(String, std::io::Result<Child>)> = Vec::new();
    for i in 1..n {
        let owner = format!("l{parent}-{i}");
        let mut cmd = Command::new(&exe);
        cmd.arg("--cooperative")
            .arg("--owner")
            .arg(&owner)
            .arg("--no-render")
            .arg("--lease-stale-secs")
            .arg(options.lease_stale_secs.to_string());
        if options.quiet {
            cmd.arg("--quiet");
        }
        cmd.arg(name);
        children.push((owner, cmd.spawn()));
    }

    let mut parent_options = options.clone();
    parent_options.fresh = false;
    parent_options.coop = Some(CoopConfig::with_owner(format!("l{parent}-0")));
    let result = run_one(name, &parent_options, true);

    for (owner, child) in children {
        match child {
            Ok(mut child) => match child.wait() {
                Ok(status) if status.success() => {}
                Ok(status) => {
                    eprintln!(
                        "sweep {name}: worker {owner} exited with {status} \
                         (its unfinished cells were re-executed)"
                    );
                }
                Err(err) => eprintln!("sweep {name}: waiting on worker {owner} failed: {err}"),
            },
            Err(err) => eprintln!("sweep {name}: spawning worker {owner} failed: {err}"),
        }
    }
    result
}

/// Distinct exit codes per failure class (see the module docs).
fn exit_code(err: &SweepError) -> i32 {
    match err {
        SweepError::LeaseHeld { .. } => 3,
        SweepError::Io { .. } => 4,
        SweepError::UnknownSweep { .. } => 5,
        SweepError::ShardConflict { .. } => 6,
        _ => 1,
    }
}

fn usage() {
    eprintln!(
        "usage: sweep [--fresh] [--quiet] [--wait-lease] [--lease-stale-secs N]\n\
         \x20            [--cooperative [--owner ID] | --local-workers N] [--no-render]\n\
         \x20            <name>... | all"
    );
    eprintln!("names: {}", figs::NAMES.join(", "));
}
