//! Developer probe: times ExactRm vs HeuristicRm on one trace at several
//! node budgets, to pick the experiment default (see EXPERIMENTS.md).

use std::time::Instant;

use rand::SeedableRng;
use rtrm_core::{ExactRm, HeuristicRm};
use rtrm_platform::Platform;
use rtrm_sim::{SimConfig, Simulator};
use rtrm_trace::{generate_catalog, generate_trace, CatalogConfig, Tightness, TraceConfig};

fn main() {
    let platform = Platform::paper_default();
    let mut rng = rand::rngs::StdRng::seed_from_u64(11);
    let catalog = generate_catalog(&platform, &CatalogConfig::paper(), &mut rng);
    let len: usize = std::env::var("RTRM_TRACE_LEN")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(150);
    let mean: f64 = std::env::var("RTRM_MEAN")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3.0);
    let lt = std::env::var("RTRM_LT").is_ok();
    let cfg = TraceConfig {
        length: len,
        interarrival_mean: mean,
        interarrival_std: mean / 3.0,
        tightness: if lt {
            Tightness::LessTight
        } else {
            Tightness::VeryTight
        },
        ..TraceConfig::calibrated_vt()
    };
    let trace = generate_trace(&catalog, &cfg, &mut rng);
    let sim = Simulator::new(&platform, &catalog, SimConfig::default());

    let t0 = Instant::now();
    let h = sim.run(&trace, &mut HeuristicRm::new(), None);
    println!(
        "heuristic: rej={:.1}% nodes={} in {:.2}s",
        h.rejection_percent(),
        h.rm_nodes,
        t0.elapsed().as_secs_f64()
    );

    for budget in [2_000u64, 10_000, 50_000, 250_000] {
        let t0 = Instant::now();
        let r = sim.run(&trace, &mut ExactRm::with_node_budget(budget), None);
        println!(
            "exact b={:>7}: rej={:.1}% nodes={} in {:.2}s",
            budget,
            r.rejection_percent(),
            r.rm_nodes,
            t0.elapsed().as_secs_f64()
        );
    }
}
