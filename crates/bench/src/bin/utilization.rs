//! Diagnostic: per-resource utilization at the calibrated operating point.
//!
//! This backs the saturation analysis in EXPERIMENTS.md (F2): under the
//! paper's generator the GPU is both the cheapest and the fastest resource
//! for every task type, so the energy-greedy managers saturate it — which
//! bounds how often a tight phantom can be honoured.
//!
//! `cargo run --release -p rtrm-bench --bin utilization`

use rtrm_bench::{workload, write_csv, Group, Scale};
use rtrm_core::HeuristicRm;
use rtrm_platform::ResourceKind;
use rtrm_sim::{run_batch, SimConfig};

fn main() {
    let scale = Scale::from_env();
    let w = workload(&[Group::Vt, Group::Lt], scale);
    println!(
        "resource utilization (heuristic, no prediction), {} traces x {} requests",
        scale.traces, scale.trace_len
    );
    println!("{:>6} {:>10} {:>12}", "group", "resource", "utilization");

    let mut rows = Vec::new();
    for (group, traces) in &w.traces {
        let reports = run_batch(
            &w.platform,
            &w.catalog,
            &SimConfig::default(),
            traces,
            |_| Box::new(HeuristicRm::new()),
            |_| None,
        );
        for r in w.platform.ids() {
            let mean: f64 =
                reports.iter().map(|rep| rep.utilization(r)).sum::<f64>() / reports.len() as f64;
            let kind = w.platform.resource(r).kind();
            let name = w.platform.resource(r).name();
            println!("{:>6} {:>10} {:>12.3}", group.name(), name, mean);
            rows.push(format!(
                "{},{name},{},{mean:.4}",
                group.name(),
                if kind == ResourceKind::Gpu {
                    "gpu"
                } else {
                    "cpu"
                }
            ));
        }
    }
    let path = write_csv("utilization", "group,resource,kind,utilization", &rows);
    println!("\nwrote {}", path.display());
}
