//! Horizon-depth scaling bench for `decide()`: latency of a with-phantom
//! decision as the admitted horizon grows from one phantom to eight, for
//! both managers, with the no-phantom decision as the baseline. Asserts the
//! ISSUE's fast-path invariant along the way: at every depth, every probe
//! on a preemptable resource is answered by the incremental timelines —
//! zero engine-fallback verdicts. Records `BENCH_horizon.json` at the
//! workspace root (see README, "Performance"); run in release:
//!
//! ```text
//! cargo run --release -p rtrm-bench --bin horizon
//! ```
//!
//! The fixture is the decide() hot path at a fixed standing queue depth on
//! a paper-scale platform — the sweep isolates the *horizon-depth* axis,
//! complementing `BENCH_platform.json`'s resource-count axis.

use rtrm_core::{
    Activation, ExactRm, HeuristicRm, JobView, Placement, ResourceManager, TimelinePool,
};
use rtrm_platform::{Energy, Platform, TaskCatalog, TaskType, TaskTypeId, Time};
use rtrm_sched::JobKey;

/// The horizon-depth sweep: the legacy single phantom, then deeper rungs.
const DEPTHS: [usize; 4] = [1, 2, 4, 8];

/// Standing queue depth held constant across the sweep.
const ACTIVE: usize = 16;

/// A paper-scale platform — five CPUs mixing DVFS ladders plus one GPU, so
/// the preemptable/run-to-completion split is real — and one universally
/// executable type with a deterministic, non-trivial energy landscape.
fn world() -> (Platform, TaskCatalog) {
    let mut builder = Platform::builder();
    for i in 0..5 {
        match i % 3 {
            0 => builder.cpu(format!("c{i}")),
            1 => builder.cpu_with_dvfs(format!("c{i}"), &[0.5, 1.0]),
            _ => builder.cpu_with_dvfs(format!("c{i}"), &[0.25, 0.5, 1.0, 2.0]),
        };
    }
    builder.gpu("g");
    let platform = builder.build();
    let mut b = TaskType::builder(0, &platform);
    for (i, r) in platform.ids().enumerate() {
        let energy = 3.0 + ((i * 7) % 13) as f64 * 0.5;
        b.profile(r, Time::new(4.0), Energy::new(energy));
    }
    let ty = b
        .uniform_migration(Time::new(0.5), Energy::new(0.25))
        .build();
    (platform, TaskCatalog::new(vec![ty]))
}

/// A synthetic activation at depth [`ACTIVE`]: loosely placed active jobs
/// spread over the platform, one fresh arrival, and `k` genuinely future
/// phantoms with staggered releases (so every rung of the fallback ladder
/// has future work to defer).
fn fixture(platform: &Platform, k: usize) -> (Vec<JobView>, JobView, Vec<JobView>) {
    let now = Time::ZERO;
    let active: Vec<JobView> = (0..ACTIVE)
        .map(|i| {
            let slack = 1_000.0 + i as f64;
            let mut job = JobView::fresh(
                JobKey(i as u64),
                TaskTypeId::new(0),
                now,
                now + Time::new(4.0 * slack),
            );
            job.placement = Some(Placement {
                resource: rtrm_platform::ResourceId::new(i % platform.len()),
                remaining_fraction: 0.5 + 0.4 * ((i % 5) as f64 / 5.0),
                started: true,
                speed: 1.0,
            });
            job
        })
        .collect();
    let arriving = JobView::fresh(
        JobKey(10_000),
        TaskTypeId::new(0),
        now,
        now + Time::new(5_000.0),
    );
    let predicted = (0..k)
        .map(|i| {
            JobView::fresh(
                JobKey(10_001 + i as u64),
                TaskTypeId::new(0),
                now + Time::new(2.0 * (i + 1) as f64),
                now + Time::new(6_000.0 + 10.0 * i as f64),
            )
        })
        .collect();
    (active, arriving, predicted)
}

/// Mean ns per call over a self-calibrated iteration count (~30 ms).
fn measure<R>(mut f: impl FnMut() -> R) -> f64 {
    let warmup = std::time::Instant::now();
    let mut calibration = 0u64;
    while warmup.elapsed() < std::time::Duration::from_millis(5) {
        std::hint::black_box(f());
        calibration += 1;
    }
    let iters = calibration.max(1) * 6;
    let start = std::time::Instant::now();
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

/// Engine-fallback verdicts accumulated on *preemptable* timelines — the
/// fast-path invariant says this stays zero no matter how deep the horizon.
fn preemptable_engine_verdicts(pool: &TimelinePool) -> u64 {
    pool.timelines()
        .iter()
        .filter(|tl| tl.kind().is_preemptable())
        .map(rtrm_sched::EdfTimeline::engine_verdicts)
        .sum()
}

fn main() {
    let (platform, catalog) = world();
    let mut rows = Vec::new();
    let mut push_row = |series: &str, depth: usize, baseline_ns: f64, decide_ns: f64| {
        let ratio = decide_ns / baseline_ns;
        println!(
            "horizon: series={series} k={depth} baseline={baseline_ns:.0}ns \
             decide={decide_ns:.0}ns ratio={ratio:.2}x engine_verdicts=0"
        );
        rows.push(format!(
            "    {{\"series\": \"{series}\", \"depth\": {depth}, \"baseline_ns\": \
             {baseline_ns:.1}, \"decide_ns\": {decide_ns:.1}, \"ratio\": {ratio:.2}, \
             \"engine_verdicts\": 0}}"
        ));
    };

    // Heuristic at every depth; branch & bound at the depths its ladder
    // tolerates under a node budget. The k = 0 decision on the same fixture
    // is each series' baseline.
    type MakeRm = fn() -> Box<dyn ResourceManager>;
    let configurations: [(&str, &[usize], MakeRm); 2] = [
        ("heuristic_decide", &DEPTHS[..], || {
            Box::new(HeuristicRm::new())
        }),
        ("exact_decide", &DEPTHS[..3], || {
            Box::new(ExactRm::with_node_budget(2_000))
        }),
    ];
    for (series, depths, make) in configurations {
        let (active, arriving, _) = fixture(&platform, 0);
        let base_activation = Activation {
            now: Time::ZERO,
            platform: &platform,
            catalog: &catalog,
            active: &active,
            arriving,
            predicted: &[],
        };
        let mut pool = TimelinePool::new();
        pool.ensure_index(&platform, &catalog);
        let mut manager = make();
        let baseline_ns = measure(|| manager.decide_with_pool(&base_activation, &mut pool));

        for &k in depths {
            let (active, arriving, predicted) = fixture(&platform, k);
            let activation = Activation {
                now: Time::ZERO,
                platform: &platform,
                catalog: &catalog,
                active: &active,
                arriving,
                predicted: &predicted,
            };
            let mut pool = TimelinePool::new();
            pool.ensure_index(&platform, &catalog);
            let mut manager = make();
            let decide_ns = measure(|| manager.decide_with_pool(&activation, &mut pool));
            let verdicts = preemptable_engine_verdicts(&pool);
            assert_eq!(
                verdicts, 0,
                "{series} k={k}: a preemptable probe left the incremental fast path"
            );
            push_row(series, k, baseline_ns, decide_ns);
        }
    }

    let json = format!(
        "{{\n  \"bench\": \"horizon\",\n  \"units\": \"ns_per_call\",\n  \
         \"results\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_horizon.json");
    std::fs::write(path, json).expect("write BENCH_horizon.json");
    println!("wrote {path}");
}
