//! Resource-count scaling bench for the pruned candidate path: `decide()`
//! latency of the default [`CandidateTable`]-backed managers against the
//! legacy rebuild-per-rung path (`unpruned_candidates`), sweeping the
//! platform from the paper's handful of resources up to 512. Records
//! `BENCH_platform.json` at the workspace root (see README, "Performance");
//! run in release:
//!
//! ```text
//! cargo run --release -p rtrm-bench --bin platform_scale
//! ```
//!
//! The fixture is the decide() hot path at a fixed standing queue depth —
//! the sweep isolates the *resource-count* axis, complementing
//! `BENCH_activation.json`'s queue-depth axis.
//!
//! [`CandidateTable`]: rtrm_core::CandidateTable

use rtrm_core::{
    Activation, ExactRm, HeuristicRm, JobView, Placement, ResourceManager, TimelinePool,
};
use rtrm_platform::{Energy, Platform, TaskCatalog, TaskType, TaskTypeId, Time};
use rtrm_sched::JobKey;

/// The resource-count sweep: the paper's scale (6), then the scaling axis.
const RESOURCES: [usize; 4] = [6, 32, 128, 512];

/// Standing queue depth held constant across the sweep.
const ACTIVE: usize = 16;

/// A platform of `m` CPUs cycling through plain and two DVFS ladders (so
/// candidate rows mix speed levels, like the differential suite), plus one
/// universally executable type whose energies differ per resource.
fn world(m: usize) -> (Platform, TaskCatalog) {
    let mut builder = Platform::builder();
    for i in 0..m {
        match i % 3 {
            0 => builder.cpu(format!("c{i}")),
            1 => builder.cpu_with_dvfs(format!("c{i}"), &[0.5, 1.0]),
            _ => builder.cpu_with_dvfs(format!("c{i}"), &[0.25, 0.5, 1.0, 2.0]),
        };
    }
    let platform = builder.build();
    let mut b = TaskType::builder(0, &platform);
    for (i, r) in platform.ids().enumerate() {
        // A pseudo-random but deterministic energy landscape: ranking work
        // is real (no resource trivially wins everywhere).
        let energy = 3.0 + ((i * 7) % 13) as f64 * 0.5;
        b.profile(r, Time::new(4.0), Energy::new(energy));
    }
    let ty = b
        .uniform_migration(Time::new(0.5), Energy::new(0.25))
        .build();
    (platform, TaskCatalog::new(vec![ty]))
}

/// A synthetic activation at depth [`ACTIVE`]: loosely placed active jobs
/// spread over the platform, one fresh arrival, optionally one phantom.
fn fixture(platform: &Platform, phantom: bool) -> (Vec<JobView>, JobView, Vec<JobView>) {
    let now = Time::ZERO;
    let active: Vec<JobView> = (0..ACTIVE)
        .map(|i| {
            let slack = 1_000.0 + i as f64;
            let mut job = JobView::fresh(
                JobKey(i as u64),
                TaskTypeId::new(0),
                now,
                now + Time::new(4.0 * slack),
            );
            job.placement = Some(Placement {
                resource: rtrm_platform::ResourceId::new(i % platform.len()),
                remaining_fraction: 0.5 + 0.4 * ((i % 5) as f64 / 5.0),
                started: true,
                speed: 1.0,
            });
            job
        })
        .collect();
    let arriving = JobView::fresh(
        JobKey(10_000),
        TaskTypeId::new(0),
        now,
        now + Time::new(5_000.0),
    );
    let predicted = if phantom {
        vec![JobView::fresh(
            JobKey(10_001),
            TaskTypeId::new(0),
            now + Time::new(2.0),
            now + Time::new(6_000.0),
        )]
    } else {
        Vec::new()
    };
    (active, arriving, predicted)
}

/// Mean ns per call over a self-calibrated iteration count (~30 ms).
fn measure<R>(mut f: impl FnMut() -> R) -> f64 {
    let warmup = std::time::Instant::now();
    let mut calibration = 0u64;
    while warmup.elapsed() < std::time::Duration::from_millis(5) {
        std::hint::black_box(f());
        calibration += 1;
    }
    let iters = calibration.max(1) * 6;
    let start = std::time::Instant::now();
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

fn main() {
    let mut rows = Vec::new();
    let mut push_row = |series: &str, resources: usize, baseline_ns: f64, pruned_ns: f64| {
        let speedup = baseline_ns / pruned_ns;
        println!(
            "platform scale: series={series} resources={resources:>4} \
             baseline={baseline_ns:.0}ns pruned={pruned_ns:.0}ns speedup={speedup:.2}x"
        );
        rows.push(format!(
            "    {{\"series\": \"{series}\", \"depth\": {resources}, \"baseline_ns\": \
             {baseline_ns:.1}, \"pruned_ns\": {pruned_ns:.1}, \"speedup\": {speedup:.2}}}"
        ));
    };

    for m in RESOURCES {
        let (platform, catalog) = world(m);
        for (series, phantom) in [
            ("heuristic_decide", false),
            ("heuristic_decide_phantom", true),
        ] {
            let (active, arriving, predicted) = fixture(&platform, phantom);
            let activation = Activation {
                now: Time::ZERO,
                platform: &platform,
                catalog: &catalog,
                active: &active,
                arriving,
                predicted: &predicted,
            };
            // The pruned manager runs exactly as the simulator drives it: a
            // warm pool whose PlatformIndex is installed once per world.
            let mut pool = TimelinePool::new();
            pool.ensure_index(&platform, &catalog);
            let mut pruned = HeuristicRm::new();
            let pruned_ns = measure(|| pruned.decide_with_pool(&activation, &mut pool));
            let mut baseline_pool = TimelinePool::new();
            let mut baseline = HeuristicRm {
                unpruned_candidates: true,
                ..HeuristicRm::default()
            };
            let baseline_ns =
                measure(|| baseline.decide_with_pool(&activation, &mut baseline_pool));
            push_row(series, m, baseline_ns, pruned_ns);
        }
    }

    // The exact manager shares the table plumbing; record it at the sizes
    // its branch & bound tolerates, on the two-rung (phantom) ladder where
    // rows being built once per decide instead of once per rung pays.
    for m in [6usize, 32] {
        let (platform, catalog) = world(m);
        let (active, arriving, predicted) = fixture(&platform, true);
        let activation = Activation {
            now: Time::ZERO,
            platform: &platform,
            catalog: &catalog,
            active: &active,
            arriving,
            predicted: &predicted,
        };
        let mut pool = TimelinePool::new();
        pool.ensure_index(&platform, &catalog);
        let mut pruned = ExactRm::with_node_budget(2_000);
        let pruned_ns = measure(|| pruned.decide_with_pool(&activation, &mut pool));
        let mut baseline_pool = TimelinePool::new();
        let mut baseline = ExactRm {
            unpruned_candidates: true,
            ..ExactRm::with_node_budget(2_000)
        };
        let baseline_ns = measure(|| baseline.decide_with_pool(&activation, &mut baseline_pool));
        push_row("exact_decide_phantom", m, baseline_ns, pruned_ns);
    }

    let json = format!(
        "{{\n  \"bench\": \"platform_scale\",\n  \"units\": \"ns_per_call\",\n  \
         \"results\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_platform.json");
    std::fs::write(path, json).expect("write BENCH_platform.json");
    println!("wrote {path}");
}
