//! Service-mode latency record: drives the streaming admission service
//! (`rtrm-service`) under two open-loop regimes and writes
//! `BENCH_service.json` at the workspace root (schema-pinned by
//! `tests/bench_json_schema.rs`).
//!
//! * `poisson` — a paced Poisson load on the heuristic manager with no
//!   budget control: the steady-state regime, measuring decide-latency
//!   tails (p50/p99/p999) and throughput.
//! * `overload` — a bursty firehose (no pacing) into the MILP manager with
//!   a near-zero anytime budget: the overload regime, where the budget
//!   ladder must convert backlog into *degraded* verdicts (anytime
//!   incumbents / heuristic floor) instead of unbounded queueing.
//!
//! Run with `cargo run --release -p rtrm-bench --bin service`.

use rand::SeedableRng;
use rtrm_core::{HeuristicRm, MilpRm};
use rtrm_platform::Platform;
use rtrm_service::{
    generate_load, run_service, Arrivals, LoadConfig, OverloadPolicy, ServiceConfig, ServiceReport,
};
use rtrm_trace::{generate_catalog, BurstyConfig, CatalogConfig};

fn row(name: &str, report: &ServiceReport) -> String {
    format!(
        "    {{\"scenario\": \"{name}\", \"shards\": {}, \"requests\": {}, \
         \"admitted\": {}, \"rejected\": {}, \"degraded\": {}, \
         \"solver_timeouts\": {}, \"p50_ns\": {}, \"p99_ns\": {}, \
         \"p999_ns\": {}, \"max_ns\": {}, \"throughput_per_sec\": {:.1}, \
         \"max_backlog\": {}, \"backpressure_waits\": {}}}",
        report.shards,
        report.requests,
        report.admitted,
        report.rejected,
        report.degraded,
        report.solver_timeouts,
        report.decide.quantile(0.5),
        report.decide.quantile(0.99),
        report.decide.quantile(0.999),
        report.decide.max(),
        report.throughput_per_sec,
        report.max_backlog,
        report.backpressure_waits,
    )
}

fn main() {
    let platform = Platform::paper_default();
    let catalog = generate_catalog(
        &platform,
        &CatalogConfig::paper(),
        &mut rand::rngs::StdRng::seed_from_u64(7),
    );

    // Steady state: paced Poisson arrivals, heuristic manager, no budget.
    let poisson_load = generate_load(
        &catalog,
        &LoadConfig {
            traces: 8,
            trace_len: 250,
            seed: 7,
            arrivals: Arrivals::Poisson { mean_gap: 2.8 },
        },
    );
    let poisson = run_service(
        &platform,
        &catalog,
        &ServiceConfig {
            shards: 4,
            ingress_capacity: 64,
            // ~1 ms of wall clock per simulated unit: ≈0.7 s of paced load.
            time_scale: 1e-3,
            ..ServiceConfig::default()
        },
        &poisson_load,
        |_| Box::new(HeuristicRm::new()),
    );
    println!(
        "poisson : {} reqs, p50={}ns p99={}ns p999={}ns, {:.0} verdicts/s",
        poisson.requests,
        poisson.decide.quantile(0.5),
        poisson.decide.quantile(0.99),
        poisson.decide.quantile(0.999),
        poisson.throughput_per_sec,
    );

    // Overload: bursty firehose into the MILP manager with a near-zero
    // anytime budget — the ladder converts pressure into degraded verdicts.
    let overload_load = generate_load(
        &catalog,
        &LoadConfig {
            traces: 4,
            trace_len: 100,
            seed: 13,
            arrivals: Arrivals::Bursty(BurstyConfig::default()),
        },
    );
    let overload = run_service(
        &platform,
        &catalog,
        &ServiceConfig {
            shards: 2,
            ingress_capacity: 8,
            budget: Some(1e-6),
            overload: OverloadPolicy {
                backlog_lo: 0,
                backlog_hi: 4,
            },
            time_scale: 0.0,
            ..ServiceConfig::default()
        },
        &overload_load,
        |_| Box::new(MilpRm::new()),
    );
    println!(
        "overload: {} reqs, degraded={} timeouts={} max_backlog={} p99={}ns",
        overload.requests,
        overload.degraded,
        overload.solver_timeouts,
        overload.max_backlog,
        overload.decide.quantile(0.99),
    );

    let json = format!(
        "{{\n  \"bench\": \"service_latency\",\n  \"units\": \"ns\",\n  \
         \"scenarios\": [\n{},\n{}\n  ]\n}}\n",
        row("poisson", &poisson),
        row("overload", &overload),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_service.json");
    std::fs::write(path, json).expect("write BENCH_service.json");
    println!("wrote {path}");
}
