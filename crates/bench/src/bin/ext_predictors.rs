//! Extension experiment: online predictors on a bursty workload.
//!
//! The paper evaluates its manager under a synthetic oracle; its cited
//! prior work builds *online* predictors for phase-structured real streams.
//! This experiment generates Markov-modulated (burst/lull) traces and
//! compares: no prediction, the plain history predictor (Markov types +
//! EWMA gaps), the two-phase predictor (phase-change detection), and the
//! perfect oracle as the upper bound.
//!
//! `cargo run --release -p rtrm-bench --bin ext_predictors`

use rand::rngs::StdRng;
use rand::SeedableRng;

use rtrm_bench::{write_csv, Scale};
use rtrm_core::HeuristicRm;
use rtrm_platform::{Platform, Trace};
use rtrm_predict::{HistoryPredictor, OraclePredictor, Predictor, TwoPhasePredictor};
use rtrm_sim::{run_batch, PhantomDeadline, SimConfig, Summary};
use rtrm_trace::{generate_bursty_trace, generate_catalog, BurstyConfig, CatalogConfig};

fn main() {
    let scale = Scale::from_env();
    let platform = Platform::paper_default();
    let mut rng = StdRng::seed_from_u64(scale.seed);
    let catalog = generate_catalog(&platform, &CatalogConfig::paper(), &mut rng);
    let cfg = BurstyConfig {
        length: scale.trace_len,
        ..BurstyConfig::default()
    };
    let traces: Vec<Trace> = (0..scale.traces)
        .map(|i| {
            let mut rng = StdRng::seed_from_u64(scale.seed ^ ((i as u64 + 1) * 0x9E37));
            generate_bursty_trace(&catalog, &cfg, &mut rng)
        })
        .collect();

    println!(
        "online predictors on bursty traces: heuristic manager, {} traces x {} requests",
        scale.traces, scale.trace_len
    );
    println!("{:>12} {:>22} {:>22}", "predictor", "rejection%", "energy");

    let config = SimConfig {
        phantom_deadline: PhantomDeadline::MinWcetTimes(1.5),
        ..SimConfig::default()
    };
    let mut rows = Vec::new();
    for kind in ["off", "history", "two-phase", "oracle"] {
        let catalog_len = catalog.len();
        let reports = run_batch(
            &platform,
            &catalog,
            &config,
            &traces,
            |_| Box::new(HeuristicRm::new()),
            |i| -> Option<Box<dyn Predictor + Send>> {
                match kind {
                    "off" => None,
                    "history" => Some(Box::new(HistoryPredictor::new(catalog_len, 0.25))),
                    "two-phase" => Some(Box::new(TwoPhasePredictor::new(catalog_len, 4, 2.0))),
                    "oracle" => Some(Box::new(OraclePredictor::perfect(&traces[i], catalog_len))),
                    _ => unreachable!(),
                }
            },
        );
        let rej = Summary::rejection(&reports);
        let energy = Summary::energy(&reports);
        println!(
            "{kind:>12} {:>22} {:>22}",
            format!("{rej}"),
            format!("{energy}")
        );
        rows.push(format!(
            "{kind},{:.4},{:.4},{:.4},{:.4}",
            rej.mean, rej.ci95, energy.mean, energy.ci95
        ));
    }
    let path = write_csv(
        "ext_predictors",
        "predictor,rejection_mean,rejection_ci95,energy_mean,energy_ci95",
        &rows,
    );
    println!("\nwrote {}", path.display());
}
