//! Fig 4 — average rejection percentage versus prediction accuracy on the
//! VT group: (a) task-type accuracy sweep with exact arrival times,
//! (b) arrival-time accuracy sweep (1 − NRMSE) with exact types.
//!
//! Paper: rejection climbs toward the predictor-off level as accuracy
//! drops; at 0.25 accuracy prediction offers no sensible benefit.
//!
//! Thin wrapper over the `fig4` sweep (`rtrm_bench::figs`); resumes from
//! `results/fig4.sweep.json` when present.
//!
//! `cargo run --release -p rtrm-bench --bin fig4`

use rtrm_bench::figs;
use rtrm_bench::sweep::SweepOptions;

fn main() {
    if let Err(err) = figs::run("fig4", &SweepOptions::default()) {
        eprintln!("fig4 failed: {err}");
        std::process::exit(1);
    }
}
