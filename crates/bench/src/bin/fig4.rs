//! Fig 4 — average rejection percentage versus prediction accuracy on the
//! VT group: (a) task-type accuracy sweep with exact arrival times,
//! (b) arrival-time accuracy sweep (1 − NRMSE) with exact types.
//!
//! Paper: rejection climbs toward the predictor-off level as accuracy
//! drops; at 0.25 accuracy prediction offers no sensible benefit.
//!
//! `cargo run --release -p rtrm-bench --bin fig4`

use rtrm_bench::chart::{line_chart, write_svg, Series};
use rtrm_bench::{run_config, workload, write_csv, Group, Oracle, Policy, Scale};
use rtrm_predict::{ErrorModel, OverheadModel};
use rtrm_sim::mean_rejection_percent;

const LEVELS: [f64; 4] = [1.0, 0.75, 0.5, 0.25];

fn main() {
    let scale = Scale::from_env();
    let w = workload(&[Group::Vt], scale);
    let (group, traces) = (&w.traces[0].0, &w.traces[0].1);
    println!(
        "Fig 4: VT group, {} traces x {} requests per point",
        scale.traces, scale.trace_len
    );

    let mut rows = Vec::new();
    let mut panel_series: Vec<(String, Vec<f64>, Vec<f64>)> = Vec::new();
    for (panel, make_error) in [
        (
            "a:type",
            ErrorModel::with_type_accuracy as fn(f64) -> ErrorModel,
        ),
        ("b:arrival", ErrorModel::with_arrival_accuracy),
    ] {
        println!("\n  panel {panel}:");
        println!(
            "  {:>9} {:>12} {:>12}",
            "accuracy", "MILP rej%", "heur rej%"
        );
        let mut milp_series = Vec::new();
        let mut heur_series = Vec::new();
        for accuracy in LEVELS {
            let error = make_error(accuracy);
            let milp = mean_rejection_percent(&run_config(
                &w,
                *group,
                traces,
                Policy::Milp,
                Oracle::On(error),
                OverheadModel::none(),
                scale.seed,
            ));
            let heur = mean_rejection_percent(&run_config(
                &w,
                *group,
                traces,
                Policy::Heuristic,
                Oracle::On(error),
                OverheadModel::none(),
                scale.seed,
            ));
            println!("  {accuracy:>9.2} {milp:>12.2} {heur:>12.2}");
            rows.push(format!("{panel},{accuracy},{milp:.4},{heur:.4}"));
            milp_series.push(milp);
            heur_series.push(heur);
        }
        panel_series.push((panel.to_string(), milp_series, heur_series));
        // Baseline: predictor off.
        let milp_off = mean_rejection_percent(&run_config(
            &w,
            *group,
            traces,
            Policy::Milp,
            Oracle::Off,
            OverheadModel::none(),
            scale.seed,
        ));
        let heur_off = mean_rejection_percent(&run_config(
            &w,
            *group,
            traces,
            Policy::Heuristic,
            Oracle::Off,
            OverheadModel::none(),
            scale.seed,
        ));
        println!("  {:>9} {milp_off:>12.2} {heur_off:>12.2}", "off");
        rows.push(format!("{panel},off,{milp_off:.4},{heur_off:.4}"));
    }

    for (panel, milp_series, heur_series) in &panel_series {
        let name = format!("fig4{}", &panel[..1]);
        let svg = line_chart(
            &format!("Fig 4 ({panel}): rejection % vs prediction accuracy (VT)"),
            "rejection %",
            "accuracy",
            &LEVELS,
            &[
                Series::new("MILP", milp_series.clone()),
                Series::new("heuristic", heur_series.clone()),
            ],
        );
        let svg_path = write_svg(&name, &svg);
        println!("wrote {}", svg_path.display());
    }
    let path = write_csv(
        "fig4",
        "panel,accuracy,milp_rejection_percent,heuristic_rejection_percent",
        &rows,
    );
    println!("\npaper shape: rejection rises toward the off level as accuracy falls");
    println!("wrote {}", path.display());
}
