//! Extension experiment: the paper's adaptive managers against quasi-static
//! design-time baselines (related-work class: Singh'16, Massari'14,
//! Goens'17 — fixed per-type mappings, no runtime remapping).
//!
//! `cargo run --release -p rtrm-bench --bin ext_baselines`

use rtrm_bench::{workload, write_csv, Group, Scale};
use rtrm_core::{ExactRm, HeuristicRm, ResourceManager, StaticRm};
use rtrm_sim::{mean_energy, mean_rejection_percent, run_batch, SimConfig};

type ManagerFactory = Box<dyn Fn() -> Box<dyn ResourceManager + Send> + Sync>;

fn main() {
    let scale = Scale::from_env();
    let w = workload(&[Group::Vt, Group::Lt], scale);
    println!(
        "baseline comparison (no prediction): {} traces x {} requests",
        scale.traces, scale.trace_len
    );
    println!(
        "{:>6} {:>14} {:>12} {:>12}",
        "group", "manager", "rejection%", "energy"
    );

    let mut rows = Vec::new();
    for (group, traces) in &w.traces {
        let managers: Vec<(&str, ManagerFactory)> = vec![
            ("static", {
                let catalog = w.catalog.clone();
                Box::new(move || Box::new(StaticRm::new(&catalog)))
            }),
            ("static-spill", {
                let catalog = w.catalog.clone();
                Box::new(move || Box::new(StaticRm::with_spill(&catalog)))
            }),
            ("heuristic", Box::new(|| Box::new(HeuristicRm::new()))),
            (
                "milp",
                Box::new(|| Box::new(ExactRm::with_node_budget(25_000))),
            ),
        ];
        for (name, make) in &managers {
            let reports = run_batch(
                &w.platform,
                &w.catalog,
                &SimConfig::default(),
                traces,
                |_| make(),
                |_| None,
            );
            let rej = mean_rejection_percent(&reports);
            let energy = mean_energy(&reports);
            println!(
                "{:>6} {:>14} {:>12.2} {:>12.1}",
                group.name(),
                name,
                rej,
                energy
            );
            rows.push(format!("{},{name},{rej:.4},{energy:.4}", group.name()));
        }
    }
    let path = write_csv(
        "ext_baselines",
        "group,manager,rejection_percent,mean_energy",
        &rows,
    );
    println!("\nwrote {}", path.display());
}
