//! Fig 3 — average normalized energy consumption for MILP and heuristic,
//! predictor on/off, LT (a) and VT (b).
//!
//! Paper: energy follows acceptance (more admitted work burns more energy),
//! with the MILP trading energy for acceptance more favourably than the
//! heuristic on VT. Bars are normalized to the largest value within each
//! group (the paper does not state its normalization; see DESIGN.md §5).
//!
//! Thin wrapper over the `fig3` sweep (`rtrm_bench::figs`); resumes from
//! `results/fig3.sweep.json` when present.
//!
//! `cargo run --release -p rtrm-bench --bin fig3`

use rtrm_bench::figs;
use rtrm_bench::sweep::SweepOptions;

fn main() {
    if let Err(err) = figs::run("fig3", &SweepOptions::default()) {
        eprintln!("fig3 failed: {err}");
        std::process::exit(1);
    }
}
