//! Fig 3 — average normalized energy consumption for MILP and heuristic,
//! predictor on/off, LT (a) and VT (b).
//!
//! Paper: energy follows acceptance (more admitted work burns more energy),
//! with the MILP trading energy for acceptance more favourably than the
//! heuristic on VT. Bars are normalized to the largest value within each
//! group (the paper does not state its normalization; see DESIGN.md §5).
//!
//! `cargo run --release -p rtrm-bench --bin fig3`

use rtrm_bench::{run_config, workload, write_csv, Group, Oracle, Policy, Scale};
use rtrm_predict::{ErrorModel, OverheadModel};
use rtrm_sim::{mean_energy, mean_rejection_percent};

fn main() {
    let scale = Scale::from_env();
    let w = workload(&[Group::Lt, Group::Vt], scale);
    println!(
        "Fig 3: {} traces x {} requests per configuration",
        scale.traces, scale.trace_len
    );

    let mut rows = Vec::new();
    for (group, traces) in &w.traces {
        // Collect raw energies for the four bars of this group.
        let mut bars = Vec::new();
        for policy in [Policy::Milp, Policy::Heuristic] {
            for (label, oracle) in [
                ("off", Oracle::Off),
                ("on", Oracle::On(ErrorModel::perfect())),
            ] {
                let reports = run_config(
                    &w,
                    *group,
                    traces,
                    policy,
                    oracle,
                    OverheadModel::none(),
                    scale.seed,
                );
                bars.push((
                    policy,
                    label,
                    mean_energy(&reports),
                    mean_rejection_percent(&reports),
                ));
            }
        }
        let max_energy = bars
            .iter()
            .map(|(_, _, e, _)| *e)
            .fold(f64::MIN_POSITIVE, f64::max);

        println!(
            "\n  {} group (energy normalized to the largest bar):",
            group.name()
        );
        println!(
            "  {:>10} {:>6} {:>12} {:>12} {:>12}",
            "policy", "pred", "norm energy", "raw energy", "rejection%"
        );
        for (policy, label, energy, rejection) in &bars {
            println!(
                "  {:>10} {:>6} {:>12.4} {:>12.1} {:>12.2}",
                policy.name(),
                label,
                energy / max_energy,
                energy,
                rejection
            );
            rows.push(format!(
                "{},{},{},{:.6},{:.2},{:.4}",
                group.name(),
                policy.name(),
                label,
                energy / max_energy,
                energy,
                rejection
            ));
        }
    }

    let path = write_csv(
        "fig3",
        "group,policy,prediction,normalized_energy,raw_energy,rejection_percent",
        &rows,
    );
    println!("\npaper shape: smaller rejection => higher energy, within each group");
    println!("wrote {}", path.display());
}
