//! # rtrm-bench
//!
//! Experiment harness reproducing every table and figure of *Niknafs et
//! al., DAC 2019* (see `DESIGN.md` §4 for the index), plus shared utilities
//! for the criterion performance benches.
//!
//! Each experiment is a binary (`cargo run --release -p rtrm-bench --bin
//! fig2` etc.) that prints the paper's rows/series and writes a CSV under
//! `results/`. Scale is controlled with environment variables:
//!
//! * `RTRM_TRACES` — traces per configuration (paper: 500; default: 40)
//! * `RTRM_TRACE_LEN` — requests per trace (paper: 500; default: 200)
//! * `RTRM_SEED` — master seed (default: 1)

#![warn(missing_docs)]

pub mod chart;
pub mod coop;
pub mod figs;
pub mod sweep;

use std::fs;
use std::io::Write as _;
use std::path::PathBuf;

use rand::rngs::StdRng;
use rand::SeedableRng;

use rtrm_core::{ExactRm, HeuristicRm, ResourceManager};
use rtrm_platform::{Platform, TaskCatalog, Trace};
use rtrm_predict::{ErrorModel, MarkovHorizonPredictor, OraclePredictor, OverheadModel, Predictor};
use rtrm_sim::{run_batch, PhantomDeadline, SimConfig, SimReport};
use rtrm_trace::{generate_catalog, generate_traces, CatalogConfig, TraceConfig};

/// Experiment scale, read from the environment with paper-aware defaults.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Traces per configuration.
    pub traces: usize,
    /// Requests per trace.
    pub trace_len: usize,
    /// Master seed.
    pub seed: u64,
}

impl Scale {
    /// Reads `RTRM_TRACES` / `RTRM_TRACE_LEN` / `RTRM_SEED`.
    #[must_use]
    pub fn from_env() -> Self {
        let get = |key: &str, default: usize| {
            std::env::var(key)
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(default)
        };
        Scale {
            traces: get("RTRM_TRACES", 40),
            trace_len: get("RTRM_TRACE_LEN", 200),
            seed: get("RTRM_SEED", 1) as u64,
        }
    }

    /// A tiny scale for smoke tests and the `cargo bench` figure pass.
    #[must_use]
    pub fn smoke() -> Self {
        Scale {
            traces: 6,
            trace_len: 100,
            seed: 1,
        }
    }
}

/// The evaluated deadline-tightness groups.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Group {
    /// Very tight deadlines (coefficient 1.5–2).
    Vt,
    /// Less tight deadlines (coefficient 2–6).
    Lt,
}

impl Group {
    /// The paper's name for the group.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Group::Vt => "VT",
            Group::Lt => "LT",
        }
    }

    /// The trace configuration at the calibrated operating point. The
    /// interarrival mean can be overridden with `RTRM_MEAN` (the std keeps
    /// the paper's mean/std ratio of 3).
    #[must_use]
    pub fn trace_config(self, trace_len: usize) -> TraceConfig {
        let base = match self {
            Group::Vt => TraceConfig::calibrated_vt(),
            Group::Lt => TraceConfig::calibrated_lt(),
        };
        let mut cfg = TraceConfig {
            length: trace_len,
            ..base
        };
        if let Some(mean) = std::env::var("RTRM_MEAN")
            .ok()
            .and_then(|v| v.parse::<f64>().ok())
        {
            cfg.interarrival_mean = mean;
            cfg.interarrival_std = mean / 3.0;
        }
        cfg
    }

    /// Phantom-deadline coefficient, paired with the predicted type's
    /// fastest-resource WCET (`PhantomDeadline::MinWcetTimes`): the low end
    /// of the group's deadline-coefficient range, i.e. the tightest deadline
    /// the predicted request could plausibly bring. Validated against the
    /// alternatives with the `ablation_phantom` experiment (EXPERIMENTS.md).
    #[must_use]
    pub fn phantom_coefficient(self) -> f64 {
        match self {
            Group::Vt => 1.5,
            Group::Lt => 2.0,
        }
    }
}

/// A generated workload: the paper's platform and catalog plus one batch of
/// traces per requested group.
#[derive(Debug)]
pub struct Workload {
    /// The 5-CPU + 1-GPU platform.
    pub platform: Platform,
    /// 100 task types.
    pub catalog: TaskCatalog,
    /// Traces, one `Vec` per group requested.
    pub traces: Vec<(Group, Vec<Trace>)>,
}

/// Generates the paper's workload at the given scale.
#[must_use]
pub fn workload(groups: &[Group], scale: Scale) -> Workload {
    let platform = Platform::paper_default();
    let mut rng = StdRng::seed_from_u64(scale.seed);
    let catalog = generate_catalog(&platform, &CatalogConfig::paper(), &mut rng);
    let traces = groups
        .iter()
        .map(|&g| {
            let cfg = g.trace_config(scale.trace_len);
            let seed = scale.seed ^ (g as u64 + 1) << 32;
            (g, generate_traces(&catalog, &cfg, scale.traces, seed))
        })
        .collect();
    Workload {
        platform,
        catalog,
        traces,
    }
}

/// Which manager to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// `ExactRm` — the paper's "MILP" series.
    Milp,
    /// `HeuristicRm` — Algorithm 1.
    Heuristic,
}

impl Policy {
    /// The paper's label.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Policy::Milp => "MILP",
            Policy::Heuristic => "heuristic",
        }
    }

    fn build(self) -> Box<dyn ResourceManager + Send> {
        match self {
            // Anytime cut-off keeps pathological activations bounded while
            // staying exact on essentially all of them (see EXPERIMENTS.md).
            Policy::Milp => Box::new(ExactRm::with_node_budget(25_000)),
            Policy::Heuristic => Box::new(HeuristicRm::new()),
        }
    }
}

/// Predictor configuration for one run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Oracle {
    /// Prediction off.
    Off,
    /// Oracle with the given error model.
    On(ErrorModel),
    /// Online Markov-chain horizon predictor
    /// ([`rtrm_predict::MarkovHorizonPredictor`]) — learns from the stream
    /// it serves, no oracle access to the trace.
    Markov {
        /// EWMA smoothing factor of the interarrival submodel.
        alpha: f64,
    },
}

/// Runs one (policy, oracle, overhead) configuration over a trace batch and
/// returns the per-trace reports.
#[must_use]
pub fn run_config(
    w: &Workload,
    group: Group,
    traces: &[Trace],
    policy: Policy,
    oracle: Oracle,
    overhead: OverheadModel,
    seed: u64,
) -> Vec<SimReport> {
    let config = SimConfig {
        overhead,
        phantom_deadline: PhantomDeadline::MinWcetTimes(group.phantom_coefficient()),
        ..SimConfig::default()
    };
    let catalog_len = w.catalog.len();
    run_batch(
        &w.platform,
        &w.catalog,
        &config,
        traces,
        |_| policy.build(),
        |i| match oracle {
            Oracle::Off => None,
            Oracle::On(error) => {
                let p: Box<dyn Predictor + Send> = Box::new(OraclePredictor::new(
                    &traces[i],
                    catalog_len,
                    error,
                    seed ^ i as u64,
                ));
                Some(p)
            }
            Oracle::Markov { alpha } => {
                let p: Box<dyn Predictor + Send> =
                    Box::new(MarkovHorizonPredictor::new(catalog_len, alpha));
                Some(p)
            }
        },
    )
}

/// Writes a CSV into `results/<name>.csv` (created on demand), returning the
/// path.
///
/// # Errors
///
/// Any I/O error creating the directory or writing the file, unmodified.
pub fn try_write_csv(name: &str, header: &str, rows: &[String]) -> std::io::Result<PathBuf> {
    let dir = results_dir();
    fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{name}.csv"));
    let mut f = fs::File::create(&path)?;
    writeln!(f, "{header}")?;
    for row in rows {
        writeln!(f, "{row}")?;
    }
    Ok(path)
}

/// [`try_write_csv`], with errors surfaced as panics — for renderers and
/// binaries that have nothing sensible to do without their output.
pub fn write_csv(name: &str, header: &str, rows: &[String]) -> PathBuf {
    try_write_csv(name, header, rows).expect("write csv under results/")
}

/// Results directory, shared with the chart renderer.
pub(crate) fn results_dir_for_charts() -> PathBuf {
    results_dir()
}

fn results_dir() -> PathBuf {
    // Workspace root: two levels up from this crate's manifest.
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(std::path::Path::parent)
        .map(|root| root.join("results"))
        .expect("bench crate lives two levels under the workspace root")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_generation_smoke() {
        let w = workload(&[Group::Vt, Group::Lt], Scale::smoke());
        assert_eq!(w.catalog.len(), 100);
        assert_eq!(w.traces.len(), 2);
        assert_eq!(w.traces[0].1.len(), 6);
    }

    #[test]
    fn run_config_smoke() {
        let scale = Scale {
            traces: 2,
            trace_len: 40,
            seed: 3,
        };
        let w = workload(&[Group::Vt], scale);
        let (g, traces) = &w.traces[0];
        let reports = run_config(
            &w,
            *g,
            traces,
            Policy::Heuristic,
            Oracle::On(ErrorModel::perfect()),
            OverheadModel::none(),
            9,
        );
        assert_eq!(reports.len(), 2);
        assert!(reports.iter().all(|r| r.deadline_misses == 0));
    }
}
