//! Activation-latency benches for the incremental EDF admission path: the
//! managers' decide() with the persistent [`rtrm_sched::EdfTimeline`]
//! against the pre-incremental memoized-engine baseline
//! (`oracle_feasibility`), plus an end-to-end trace comparison of the
//! unified simulator event queue against the per-resource replay. The sweep
//! records `BENCH_activation.json` at the workspace root (see README,
//! "Performance").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use rtrm_core::{Activation, ExactRm, HeuristicRm, JobView, Placement, ResourceManager};
use rtrm_platform::{
    Energy, Platform, Request, RequestId, TaskCatalog, TaskType, TaskTypeId, Time, Trace,
};
use rtrm_sched::JobKey;
use rtrm_sim::{SimConfig, Simulator};

const DEPTHS: [usize; 4] = [8, 32, 128, 512];

/// A platform and a catalog with one universally executable type whose
/// energies differ per resource (so the managers have real choices to rank).
fn world() -> (Platform, TaskCatalog) {
    let platform = Platform::builder().cpus(3).gpu("gpu").build();
    let ids: Vec<_> = platform.ids().collect();
    let mut b = TaskType::builder(0, &platform);
    for (i, &r) in ids.iter().enumerate() {
        b.profile(r, Time::new(4.0), Energy::new(3.0 + i as f64));
    }
    let ty = b
        .uniform_migration(Time::new(0.5), Energy::new(0.25))
        .build();
    (platform, TaskCatalog::new(vec![ty]))
}

/// A synthetic activation with `n` active, loosely placed tasks — the
/// decide() hot path at standing queue depth `n`.
fn activation_fixture(platform: &Platform, n: usize) -> (Vec<JobView>, JobView) {
    let now = Time::ZERO;
    let active: Vec<JobView> = (0..n)
        .map(|i| {
            let slack = 1_000.0 + i as f64;
            let mut job = JobView::fresh(
                JobKey(i as u64),
                TaskTypeId::new(0),
                now,
                now + Time::new(4.0 * slack),
            );
            job.placement = Some(Placement {
                resource: rtrm_platform::ResourceId::new(i % platform.len()),
                remaining_fraction: 0.5 + 0.4 * ((i % 5) as f64 / 5.0),
                started: i % platform.len() != platform.len() - 1 || i < platform.len(),
                speed: 1.0,
            });
            job
        })
        .collect();
    let arriving = JobView::fresh(
        JobKey(10_000),
        TaskTypeId::new(0),
        now,
        now + Time::new(4_000.0),
    );
    (active, arriving)
}

/// A trace that builds a standing queue of `depth` warmup tasks (huge
/// slack) and then drives 100 steady requests through it, arriving faster
/// than the platform drains.
fn deep_trace(depth: usize) -> Trace {
    let mut requests: Vec<Request> = (0..depth)
        .map(|i| Request {
            id: RequestId::new(i),
            arrival: Time::new(i as f64 * 1e-3),
            task_type: TaskTypeId::new(0),
            deadline: Time::new(1e6 + i as f64),
        })
        .collect();
    for i in 0..100 {
        requests.push(Request {
            id: RequestId::new(depth + i),
            arrival: Time::new(1.0 + i as f64 * 0.05),
            task_type: TaskTypeId::new(0),
            deadline: Time::new(1e6 + (depth + i) as f64),
        });
    }
    Trace::new(requests)
}

/// Mean ns per call over a self-calibrated iteration count (~30 ms).
fn measure<R>(mut f: impl FnMut() -> R) -> f64 {
    let warmup = std::time::Instant::now();
    let mut calibration = 0u64;
    while warmup.elapsed() < std::time::Duration::from_millis(5) {
        std::hint::black_box(f());
        calibration += 1;
    }
    let iters = calibration.max(1) * 6;
    let start = std::time::Instant::now();
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

fn bench_activation_latency(c: &mut Criterion) {
    let (platform, catalog) = world();

    let mut group = c.benchmark_group("activation_latency");
    for n in [8usize, 128] {
        let (active, arriving) = activation_fixture(&platform, n);
        let activation = Activation {
            now: Time::ZERO,
            platform: &platform,
            catalog: &catalog,
            active: &active,
            arriving,
            predicted: &[],
        };
        group.bench_with_input(BenchmarkId::new("heuristic_incremental", n), &n, |b, _| {
            let mut rm = HeuristicRm::new();
            b.iter(|| rm.decide(&activation));
        });
        group.bench_with_input(BenchmarkId::new("heuristic_baseline", n), &n, |b, _| {
            let mut rm = HeuristicRm {
                oracle_feasibility: true,
                ..HeuristicRm::default()
            };
            b.iter(|| rm.decide(&activation));
        });
    }
    group.finish();

    // The recorded sweep: decide() latency (heuristic and the exact/MILP
    // fallback ladder) and the end-to-end trace run, incremental + unified
    // queue vs the pre-change baselines, at standing depths 8..512.
    let mut rows = Vec::new();
    let mut push_row = |series: &str, depth: usize, baseline_ns: f64, incremental_ns: f64| {
        let speedup = baseline_ns / incremental_ns;
        println!(
            "activation sweep: series={series} depth={depth:>4} baseline={baseline_ns:.0}ns \
             incremental={incremental_ns:.0}ns speedup={speedup:.1}x"
        );
        rows.push(format!(
            "    {{\"series\": \"{series}\", \"depth\": {depth}, \
             \"baseline_ns\": {baseline_ns:.1}, \"incremental_ns\": {incremental_ns:.1}, \
             \"speedup\": {speedup:.2}}}"
        ));
    };

    for depth in DEPTHS {
        let (active, arriving) = activation_fixture(&platform, depth);
        let activation = Activation {
            now: Time::ZERO,
            platform: &platform,
            catalog: &catalog,
            active: &active,
            arriving,
            predicted: &[],
        };
        let incremental_ns = measure(|| HeuristicRm::new().decide(&activation));
        let baseline_ns = measure(|| {
            HeuristicRm {
                oracle_feasibility: true,
                ..HeuristicRm::default()
            }
            .decide(&activation)
        });
        push_row("heuristic_decide", depth, baseline_ns, incremental_ns);

        // The exact optimizer is the solver-free "MILP" series; bound the
        // branch & bound so deep queues measure per-node feasibility cost.
        let incremental_ns = measure(|| ExactRm::with_node_budget(2_000).decide(&activation));
        let baseline_ns = measure(|| {
            ExactRm {
                oracle_feasibility: true,
                ..ExactRm::with_node_budget(2_000)
            }
            .decide(&activation)
        });
        push_row("milp_fallback_decide", depth, baseline_ns, incremental_ns);

        // With-phantom rows: the same decide() planning around one
        // future-released predicted task, so every rung of the fallback
        // ladder probes queues containing a future job. The incremental
        // mode answers those with the segmented demand-criterion sweep on
        // the CPUs; the baseline routes them through the memoized engine.
        let phantom = [JobView::fresh(
            JobKey(10_001),
            TaskTypeId::new(0),
            Time::new(2.0),
            Time::new(4_002.0),
        )];
        let activation_ph = Activation {
            predicted: &phantom,
            ..activation
        };
        let incremental_ns = measure(|| HeuristicRm::new().decide(&activation_ph));
        let baseline_ns = measure(|| {
            HeuristicRm {
                oracle_feasibility: true,
                ..HeuristicRm::default()
            }
            .decide(&activation_ph)
        });
        push_row(
            "heuristic_decide_phantom",
            depth,
            baseline_ns,
            incremental_ns,
        );

        let incremental_ns = measure(|| ExactRm::with_node_budget(2_000).decide(&activation_ph));
        let baseline_ns = measure(|| {
            ExactRm {
                oracle_feasibility: true,
                ..ExactRm::with_node_budget(2_000)
            }
            .decide(&activation_ph)
        });
        push_row(
            "milp_fallback_decide_phantom",
            depth,
            baseline_ns,
            incremental_ns,
        );
    }

    for depth in DEPTHS {
        let trace = deep_trace(depth);
        let incremental = Simulator::new(&platform, &catalog, SimConfig::default());
        let baseline_cfg = SimConfig {
            unified_event_queue: false,
            ..SimConfig::default()
        };
        let baseline = Simulator::new(&platform, &catalog, baseline_cfg);
        let incremental_ns = measure(|| incremental.run(&trace, &mut HeuristicRm::new(), None));
        let baseline_ns = measure(|| {
            let mut rm = HeuristicRm {
                oracle_feasibility: true,
                ..HeuristicRm::default()
            };
            baseline.run(&trace, &mut rm, None)
        });
        push_row(
            "simulate_100_requests_heuristic",
            depth,
            baseline_ns,
            incremental_ns,
        );
    }

    let json = format!(
        "{{\n  \"bench\": \"activation_latency\",\n  \"units\": \"ns_per_call\",\n  \
         \"results\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_activation.json");
    std::fs::write(path, json).expect("write BENCH_activation.json");
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_activation_latency
}
criterion_main!(benches);
