//! Warm-pool throughput bench for the batch runner: a full trace batch
//! through [`rtrm_sim::run_batch_with`] on a single worker with one
//! persistent [`rtrm_sim::SimScratch`] (warm, zero steady-state allocation)
//! against per-trace cold state (fresh `Simulator` + scratch each trace, the
//! pre-pool behaviour). Records `BENCH_sweep.json` at the workspace root at
//! batch sizes 64 and 512 (see README, "Performance").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use rtrm_bench::{workload, Group, Scale};
use rtrm_core::HeuristicRm;
use rtrm_platform::Trace;
use rtrm_sim::{run_batch_with, BatchOptions, SimConfig, Simulator};

const BATCHES: [usize; 2] = [64, 512];

fn setup(
    batch: usize,
) -> (
    rtrm_platform::Platform,
    rtrm_platform::TaskCatalog,
    Vec<Trace>,
) {
    // Short traces: the regime where per-run state setup matters. Long
    // traces amortize their own allocations; a sweep over many short traces
    // is exactly where the warm scratch pays.
    let w = workload(
        &[Group::Vt],
        Scale {
            traces: batch,
            trace_len: 10,
            seed: 1,
        },
    );
    let traces = w.traces.into_iter().next().expect("one group").1;
    (w.platform, w.catalog, traces)
}

/// Mean ns per call over a self-calibrated iteration count.
fn measure<R>(mut f: impl FnMut() -> R) -> f64 {
    let warmup = std::time::Instant::now();
    let mut calibration = 0u64;
    while warmup.elapsed() < std::time::Duration::from_millis(50) {
        std::hint::black_box(f());
        calibration += 1;
    }
    let iters = calibration.max(1) * 3;
    let start = std::time::Instant::now();
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

fn bench_sweep_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("sweep_throughput");
    for batch in BATCHES {
        let (platform, catalog, traces) = setup(batch);
        let config = SimConfig::default();
        // Single worker isolates scratch reuse from parallel speedup.
        let options = BatchOptions {
            workers: Some(1),
            ..BatchOptions::default()
        };
        group.bench_with_input(BenchmarkId::new("warm_pool", batch), &batch, |b, _| {
            b.iter(|| {
                run_batch_with(
                    &platform,
                    &catalog,
                    &config,
                    &traces,
                    |_| Box::new(HeuristicRm::new()),
                    |_| None,
                    &options,
                )
            });
        });
        group.bench_with_input(BenchmarkId::new("cold_state", batch), &batch, |b, _| {
            b.iter(|| {
                traces
                    .iter()
                    .map(|t| {
                        let sim = Simulator::new(&platform, &catalog, config.clone());
                        sim.run(t, &mut HeuristicRm::new(), None)
                    })
                    .collect::<Vec<_>>()
            });
        });
    }
    group.finish();

    // The recorded comparison: per-trace cost, warm single-worker pool vs
    // per-trace cold state.
    let mut rows = Vec::new();
    for batch in BATCHES {
        let (platform, catalog, traces) = setup(batch);
        let config = SimConfig::default();
        let options = BatchOptions {
            workers: Some(1),
            ..BatchOptions::default()
        };
        let measure_warm = || {
            measure(|| {
                run_batch_with(
                    &platform,
                    &catalog,
                    &config,
                    &traces,
                    |_| Box::new(HeuristicRm::new()),
                    |_| None,
                    &options,
                )
            }) / batch as f64
        };
        let measure_cold = || {
            measure(|| {
                traces
                    .iter()
                    .map(|t| {
                        let sim = Simulator::new(&platform, &catalog, config.clone());
                        sim.run(t, &mut HeuristicRm::new(), None)
                    })
                    .collect::<Vec<_>>()
            }) / batch as f64
        };
        // Alternate the two paths and keep each one's best pass, so a noise
        // spike hitting one side does not masquerade as a throughput delta.
        let (w1, c1) = (measure_warm(), measure_cold());
        let (w2, c2) = (measure_warm(), measure_cold());
        let warm_ns = w1.min(w2);
        let cold_ns = c1.min(c2);
        let speedup = cold_ns / warm_ns;
        println!(
            "sweep bench: batch={batch:>4} cold={cold_ns:.0}ns/trace \
             warm={warm_ns:.0}ns/trace speedup={speedup:.2}x"
        );
        rows.push(format!(
            "    {{\"series\": \"warm_pool_vs_cold\", \"depth\": {batch}, \
             \"baseline_ns\": {cold_ns:.1}, \"incremental_ns\": {warm_ns:.1}, \
             \"speedup\": {speedup:.2}}}"
        ));
    }

    let json = format!(
        "{{\n  \"bench\": \"sweep_throughput\",\n  \"units\": \"ns_per_trace\",\n  \
         \"results\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sweep.json");
    std::fs::write(path, json).expect("write BENCH_sweep.json");
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_sweep_throughput
}
criterion_main!(benches);
