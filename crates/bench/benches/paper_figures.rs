//! `cargo bench` figure pass: regenerates every table and figure of the
//! paper at smoke scale, so a single `cargo bench --workspace` run exercises
//! and prints the full experiment suite. For publication-scale numbers use
//! the dedicated binaries (`cargo run --release -p rtrm-bench --bin fig2`
//! etc.) with `RTRM_TRACES`/`RTRM_TRACE_LEN` — see EXPERIMENTS.md.

use rtrm_bench::{run_config, workload, Group, Oracle, Policy, Scale};
use rtrm_core::{ExactRm, HeuristicRm, ResourceManager};
use rtrm_platform::{
    Energy, Platform, Request, RequestId, TaskCatalog, TaskType, TaskTypeId, Time, Trace,
};
use rtrm_predict::{ErrorModel, OraclePredictor, OverheadModel};
use rtrm_sim::{mean_energy, mean_rejection_percent, PhantomDeadline, SimConfig, Simulator};

fn scale() -> Scale {
    // Respect env overrides, default to smoke scale for the bench pass.
    if std::env::var("RTRM_TRACES").is_ok() || std::env::var("RTRM_TRACE_LEN").is_ok() {
        Scale::from_env()
    } else {
        Scale::smoke()
    }
}

fn tab1() {
    println!("== Table 1 / Fig 1: motivational example ==");
    let platform = Platform::builder()
        .cpu("cpu1")
        .cpu("cpu2")
        .gpu("gpu")
        .build();
    let ids: Vec<_> = platform.ids().collect();
    let tau1 = TaskType::builder(0, &platform)
        .profile(ids[0], Time::new(8.0), Energy::new(7.3))
        .profile(ids[1], Time::new(12.0), Energy::new(8.4))
        .profile(ids[2], Time::new(5.0), Energy::new(2.0))
        .build();
    let tau2 = TaskType::builder(1, &platform)
        .profile(ids[0], Time::new(7.0), Energy::new(6.2))
        .profile(ids[1], Time::new(8.5), Energy::new(7.5))
        .profile(ids[2], Time::new(3.0), Energy::new(1.5))
        .build();
    let catalog = TaskCatalog::new(vec![tau1, tau2]);
    let trace = Trace::new(vec![
        Request {
            id: RequestId::new(0),
            arrival: Time::new(0.0),
            task_type: TaskTypeId::new(0),
            deadline: Time::new(8.0),
        },
        Request {
            id: RequestId::new(1),
            arrival: Time::new(1.0),
            task_type: TaskTypeId::new(1),
            deadline: Time::new(5.0),
        },
    ]);
    let sim = Simulator::new(
        &platform,
        &catalog,
        SimConfig {
            phantom_deadline: PhantomDeadline::Fixed(Time::new(5.0)),
            ..SimConfig::default()
        },
    );
    for (label, rm) in [
        ("MILP", &mut ExactRm::new() as &mut dyn ResourceManager),
        ("heuristic", &mut HeuristicRm::new()),
    ] {
        let off = sim.run(&trace, rm, None);
        println!(
            "  {label:<10} no prediction: accepted {}/2, energy {:.2} J (paper: 1/2, 2.0 J)",
            off.accepted,
            off.energy.value()
        );
    }
    for (label, rm) in [
        ("MILP", &mut ExactRm::new() as &mut dyn ResourceManager),
        ("heuristic", &mut HeuristicRm::new()),
    ] {
        let mut oracle = OraclePredictor::perfect(&trace, catalog.len());
        let on = sim.run(&trace, rm, Some(&mut oracle));
        println!(
            "  {label:<10} prediction:    accepted {}/2, energy {:.2} J (paper: 2/2, 8.8 J)",
            on.accepted,
            on.energy.value()
        );
    }
}

fn sec52_fig2_fig3(scale: Scale) {
    println!("\n== Sec 5.2 + Fig 2 + Fig 3: rejection and energy, prediction on/off ==");
    let w = workload(&[Group::Lt, Group::Vt], scale);
    let mut all_off: Vec<(f64, f64)> = Vec::new(); // (milp, heuristic)
    for (group, traces) in &w.traces {
        for policy in [Policy::Milp, Policy::Heuristic] {
            let off = run_config(
                &w,
                *group,
                traces,
                policy,
                Oracle::Off,
                OverheadModel::none(),
                scale.seed,
            );
            let on = run_config(
                &w,
                *group,
                traces,
                policy,
                Oracle::On(ErrorModel::perfect()),
                OverheadModel::none(),
                scale.seed,
            );
            println!(
                "  {:>2} {:<9}: rejection off {:5.2}% -> on {:5.2}%   energy off {:8.1} -> on {:8.1}",
                group.name(),
                policy.name(),
                mean_rejection_percent(&off),
                mean_rejection_percent(&on),
                mean_energy(&off),
                mean_energy(&on),
            );
            if policy == Policy::Milp {
                all_off.push((mean_rejection_percent(&off), 0.0));
            } else if let Some(last) = all_off.last_mut() {
                last.1 = mean_rejection_percent(&off);
            }
        }
    }
    let milp: f64 = all_off.iter().map(|(m, _)| m).sum::<f64>() / all_off.len() as f64;
    let heur: f64 = all_off.iter().map(|(_, h)| h).sum::<f64>() / all_off.len() as f64;
    println!("  Sec 5.2 aggregate (no prediction): MILP {milp:.2}% vs heuristic {heur:.2}% (paper: 24.5 vs 31)");
}

fn fig4(scale: Scale) {
    println!("\n== Fig 4: rejection vs prediction accuracy (VT, heuristic) ==");
    let w = workload(&[Group::Vt], scale);
    let (group, traces) = (&w.traces[0].0, &w.traces[0].1);
    let off = mean_rejection_percent(&run_config(
        &w,
        *group,
        traces,
        Policy::Heuristic,
        Oracle::Off,
        OverheadModel::none(),
        scale.seed,
    ));
    for (panel, make) in [
        (
            "type",
            ErrorModel::with_type_accuracy as fn(f64) -> ErrorModel,
        ),
        ("arrival", ErrorModel::with_arrival_accuracy),
    ] {
        let series: Vec<String> = [1.0, 0.75, 0.5, 0.25]
            .into_iter()
            .map(|acc| {
                let rej = mean_rejection_percent(&run_config(
                    &w,
                    *group,
                    traces,
                    Policy::Heuristic,
                    Oracle::On(make(acc)),
                    OverheadModel::none(),
                    scale.seed,
                ));
                format!("{acc:.2}:{rej:.2}%")
            })
            .collect();
        println!(
            "  {panel:<8} accuracy sweep: {}  off:{off:.2}%",
            series.join("  ")
        );
    }
}

fn fig5(scale: Scale) {
    println!("\n== Fig 5: rejection vs prediction overhead (VT, perfect prediction) ==");
    let w = workload(&[Group::Vt], scale);
    let (group, traces) = (&w.traces[0].0, &w.traces[0].1);
    let off = mean_rejection_percent(&run_config(
        &w,
        *group,
        traces,
        Policy::Heuristic,
        Oracle::Off,
        OverheadModel::none(),
        scale.seed,
    ));
    let series: Vec<String> = [0.0, 0.04, 0.16, 0.64]
        .into_iter()
        .map(|coeff| {
            let rej = mean_rejection_percent(&run_config(
                &w,
                *group,
                traces,
                Policy::Heuristic,
                Oracle::On(ErrorModel::perfect()),
                OverheadModel::fraction_of_interarrival(coeff),
                scale.seed,
            ));
            format!("{:.0}:{rej:.2}%", coeff * 100.0)
        })
        .collect();
    println!("  coeff*100 sweep: {}  off:{off:.2}%", series.join("  "));
}

fn main() {
    let scale = scale();
    println!(
        "paper-figure smoke pass ({} traces x {} requests per configuration)\n",
        scale.traces, scale.trace_len
    );
    tab1();
    sec52_fig2_fig3(scale);
    fig4(scale);
    fig5(scale);
    println!("\nfull-scale runs: see EXPERIMENTS.md");
}
