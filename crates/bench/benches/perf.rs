//! Criterion performance benches: manager activation latency (the paper's
//! motivation for the fast heuristic), the EDF feasibility kernel, the MILP
//! solver, trace generation, and an end-to-end simulation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;

use rtrm_core::{ExactRm, HeuristicRm, JobView, MilpRm, ResourceManager};
use rtrm_platform::{Platform, TaskTypeId, Time};
use rtrm_sched::{is_schedulable, JobKey, PlannedJob};
use rtrm_sim::{SimConfig, Simulator};
use rtrm_trace::{generate_catalog, generate_trace, CatalogConfig, TraceConfig};

/// A synthetic activation with `n` active, loosely placed tasks.
fn activation_fixture(
    n: usize,
) -> (
    Platform,
    rtrm_platform::TaskCatalog,
    Vec<JobView>,
    JobView,
    Vec<JobView>,
) {
    let platform = Platform::paper_default();
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let catalog = generate_catalog(&platform, &CatalogConfig::paper(), &mut rng);
    let now = Time::new(0.0);
    let active: Vec<JobView> = (0..n)
        .map(|i| {
            let ty = TaskTypeId::new(i % catalog.len());
            let slack = 2.0 + (i % 7) as f64;
            let mut job = JobView::fresh(
                JobKey(i as u64),
                ty,
                now,
                now + catalog.task_type(ty).mean_wcet() * slack,
            );
            job.placement = Some(rtrm_core::Placement {
                resource: rtrm_platform::ResourceId::new(i % (platform.len() - 1)),
                remaining_fraction: 0.5 + 0.4 * ((i % 5) as f64 / 5.0),
                started: true,
                speed: 1.0,
            });
            job
        })
        .collect();
    let arr_ty = TaskTypeId::new(7);
    let arriving = JobView::fresh(
        JobKey(999),
        arr_ty,
        now,
        now + catalog.task_type(arr_ty).mean_wcet() * 1.8,
    );
    let pred_ty = TaskTypeId::new(11);
    let predicted = vec![JobView::fresh(
        JobKey(1000),
        pred_ty,
        Time::new(2.0),
        Time::new(2.0) + catalog.task_type(pred_ty).min_wcet() * 1.5,
    )];
    (platform, catalog, active, arriving, predicted)
}

fn bench_rm_activation(c: &mut Criterion) {
    let mut group = c.benchmark_group("rm_activation");
    for n in [4usize, 8, 16] {
        let (platform, catalog, active, arriving, predicted) = activation_fixture(n);
        let activation = rtrm_core::Activation {
            now: Time::new(0.0),
            platform: &platform,
            catalog: &catalog,
            active: &active,
            arriving,
            predicted: &predicted,
        };
        group.bench_with_input(BenchmarkId::new("heuristic", n), &n, |b, _| {
            let mut rm = HeuristicRm::new();
            b.iter(|| rm.decide(&activation));
        });
        group.bench_with_input(BenchmarkId::new("exact", n), &n, |b, _| {
            let mut rm = ExactRm::with_node_budget(25_000);
            b.iter(|| rm.decide(&activation));
        });
        if n <= 8 {
            group.bench_with_input(BenchmarkId::new("milp_encoded", n), &n, |b, _| {
                let mut rm = MilpRm::new();
                b.iter(|| rm.decide(&activation));
            });
        }
    }
    group.finish();
}

fn bench_rm_ablations(c: &mut Criterion) {
    let mut group = c.benchmark_group("rm_ablations");
    let n = 8;
    let (platform, catalog, active, arriving, predicted) = activation_fixture(n);
    let activation = rtrm_core::Activation {
        now: Time::new(0.0),
        platform: &platform,
        catalog: &catalog,
        active: &active,
        arriving,
        predicted: &predicted,
    };
    group.bench_function("heuristic_regret_ordering", |b| {
        let mut rm = HeuristicRm::new();
        b.iter(|| rm.decide(&activation));
    });
    group.bench_function("heuristic_input_ordering", |b| {
        let mut rm = HeuristicRm::without_regret_ordering();
        b.iter(|| rm.decide(&activation));
    });
    group.bench_function("exact_with_gpu_requeue", |b| {
        let mut rm = ExactRm::new();
        b.iter(|| rm.decide(&activation));
    });
    group.bench_function("exact_without_gpu_requeue", |b| {
        let mut rm = ExactRm {
            gpu_restart_in_place: false,
            ..ExactRm::new()
        };
        b.iter(|| rm.decide(&activation));
    });
    group.finish();
}

fn bench_edf_kernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("edf_is_schedulable");
    for n in [4usize, 16, 64] {
        let jobs: Vec<PlannedJob> = (0..n)
            .map(|i| {
                PlannedJob::new(
                    JobKey(i as u64),
                    Time::new((i % 3) as f64),
                    Time::new(1.0 + (i % 5) as f64),
                    Time::new(40.0 + 4.0 * i as f64),
                )
            })
            .collect();
        group.bench_with_input(BenchmarkId::new("cpu", n), &jobs, |b, jobs| {
            b.iter(|| is_schedulable(rtrm_platform::ResourceKind::Cpu, Time::new(0.0), jobs));
        });
        group.bench_with_input(BenchmarkId::new("gpu", n), &jobs, |b, jobs| {
            b.iter(|| is_schedulable(rtrm_platform::ResourceKind::Gpu, Time::new(0.0), jobs));
        });
    }
    group.finish();
}

fn bench_milp_solver(c: &mut Criterion) {
    use rtrm_milp::{Model, Sense};
    c.bench_function("milp_knapsack_12", |b| {
        b.iter(|| {
            let mut m = Model::new(Sense::Maximize);
            let items: Vec<_> = (0..12)
                .map(|i| (m.binary(3.0 + (i * 7 % 11) as f64), 2.0 + (i * 5 % 9) as f64))
                .collect();
            let terms: Vec<_> = items.iter().map(|(v, w)| (*v, *w)).collect();
            m.add_le(&terms, 30.0);
            m.solve().expect("feasible")
        });
    });
}

fn bench_trace_generation(c: &mut Criterion) {
    let platform = Platform::paper_default();
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let catalog = generate_catalog(&platform, &CatalogConfig::paper(), &mut rng);
    c.bench_function("generate_trace_500", |b| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let cfg = TraceConfig::calibrated_vt();
        b.iter(|| generate_trace(&catalog, &cfg, &mut rng));
    });
}

fn bench_end_to_end(c: &mut Criterion) {
    let platform = Platform::paper_default();
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let catalog = generate_catalog(&platform, &CatalogConfig::paper(), &mut rng);
    let cfg = TraceConfig {
        length: 100,
        ..TraceConfig::calibrated_vt()
    };
    let trace = generate_trace(&catalog, &cfg, &mut rng);
    let sim = Simulator::new(&platform, &catalog, SimConfig::default());
    c.bench_function("simulate_100_requests_heuristic", |b| {
        b.iter(|| sim.run(&trace, &mut HeuristicRm::new(), None));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_rm_activation, bench_rm_ablations, bench_edf_kernel,
              bench_milp_solver, bench_trace_generation, bench_end_to_end
}
criterion_main!(benches);
