//! Criterion performance benches: manager activation latency (the paper's
//! motivation for the fast heuristic), the EDF feasibility kernel, the MILP
//! solver, trace generation, and an end-to-end simulation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;

use rtrm_core::{ExactRm, HeuristicRm, JobView, MilpRm, ResourceManager};
use rtrm_platform::{Platform, TaskTypeId, Time};
use rtrm_sched::{is_schedulable, JobKey, PlannedJob};
use rtrm_sim::{SimConfig, Simulator};
use rtrm_trace::{generate_catalog, generate_trace, CatalogConfig, TraceConfig};

/// A synthetic activation with `n` active, loosely placed tasks.
fn activation_fixture(
    n: usize,
) -> (
    Platform,
    rtrm_platform::TaskCatalog,
    Vec<JobView>,
    JobView,
    Vec<JobView>,
) {
    let platform = Platform::paper_default();
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let catalog = generate_catalog(&platform, &CatalogConfig::paper(), &mut rng);
    let now = Time::new(0.0);
    let active: Vec<JobView> = (0..n)
        .map(|i| {
            let ty = TaskTypeId::new(i % catalog.len());
            let slack = 2.0 + (i % 7) as f64;
            let mut job = JobView::fresh(
                JobKey(i as u64),
                ty,
                now,
                now + catalog.task_type(ty).mean_wcet() * slack,
            );
            job.placement = Some(rtrm_core::Placement {
                resource: rtrm_platform::ResourceId::new(i % (platform.len() - 1)),
                remaining_fraction: 0.5 + 0.4 * ((i % 5) as f64 / 5.0),
                started: true,
                speed: 1.0,
            });
            job
        })
        .collect();
    let arr_ty = TaskTypeId::new(7);
    let arriving = JobView::fresh(
        JobKey(999),
        arr_ty,
        now,
        now + catalog.task_type(arr_ty).mean_wcet() * 1.8,
    );
    let pred_ty = TaskTypeId::new(11);
    let predicted = vec![JobView::fresh(
        JobKey(1000),
        pred_ty,
        Time::new(2.0),
        Time::new(2.0) + catalog.task_type(pred_ty).min_wcet() * 1.5,
    )];
    (platform, catalog, active, arriving, predicted)
}

fn bench_rm_activation(c: &mut Criterion) {
    let mut group = c.benchmark_group("rm_activation");
    for n in [4usize, 8, 16] {
        let (platform, catalog, active, arriving, predicted) = activation_fixture(n);
        let activation = rtrm_core::Activation {
            now: Time::new(0.0),
            platform: &platform,
            catalog: &catalog,
            active: &active,
            arriving,
            predicted: &predicted,
        };
        group.bench_with_input(BenchmarkId::new("heuristic", n), &n, |b, _| {
            let mut rm = HeuristicRm::new();
            b.iter(|| rm.decide(&activation));
        });
        group.bench_with_input(BenchmarkId::new("exact", n), &n, |b, _| {
            let mut rm = ExactRm::with_node_budget(25_000);
            b.iter(|| rm.decide(&activation));
        });
        if n <= 8 {
            group.bench_with_input(BenchmarkId::new("milp_encoded", n), &n, |b, _| {
                let mut rm = MilpRm::new();
                b.iter(|| rm.decide(&activation));
            });
        }
    }
    group.finish();
}

fn bench_rm_ablations(c: &mut Criterion) {
    let mut group = c.benchmark_group("rm_ablations");
    let n = 8;
    let (platform, catalog, active, arriving, predicted) = activation_fixture(n);
    let activation = rtrm_core::Activation {
        now: Time::new(0.0),
        platform: &platform,
        catalog: &catalog,
        active: &active,
        arriving,
        predicted: &predicted,
    };
    group.bench_function("heuristic_regret_ordering", |b| {
        let mut rm = HeuristicRm::new();
        b.iter(|| rm.decide(&activation));
    });
    group.bench_function("heuristic_input_ordering", |b| {
        let mut rm = HeuristicRm::without_regret_ordering();
        b.iter(|| rm.decide(&activation));
    });
    group.bench_function("exact_with_gpu_requeue", |b| {
        let mut rm = ExactRm::new();
        b.iter(|| rm.decide(&activation));
    });
    group.bench_function("exact_without_gpu_requeue", |b| {
        let mut rm = ExactRm {
            gpu_restart_in_place: false,
            ..ExactRm::new()
        };
        b.iter(|| rm.decide(&activation));
    });
    group.finish();
}

fn bench_edf_kernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("edf_is_schedulable");
    for n in [4usize, 16, 64] {
        let jobs: Vec<PlannedJob> = (0..n)
            .map(|i| {
                PlannedJob::new(
                    JobKey(i as u64),
                    Time::new((i % 3) as f64),
                    Time::new(1.0 + (i % 5) as f64),
                    Time::new(40.0 + 4.0 * i as f64),
                )
            })
            .collect();
        group.bench_with_input(BenchmarkId::new("cpu", n), &jobs, |b, jobs| {
            b.iter(|| is_schedulable(rtrm_platform::ResourceKind::Cpu, Time::new(0.0), jobs));
        });
        group.bench_with_input(BenchmarkId::new("gpu", n), &jobs, |b, jobs| {
            b.iter(|| is_schedulable(rtrm_platform::ResourceKind::Gpu, Time::new(0.0), jobs));
        });
    }
    group.finish();
}

/// Sweeps `is_schedulable` over queue depths for the event-driven engine
/// (with a reused [`EdfScratch`], the managers' steady-state fast path)
/// against the scan-based reference oracle, and records the result in
/// `BENCH_edf.json` at the workspace root (see README, "Performance").
fn bench_edf_sweep(c: &mut Criterion) {
    use rtrm_platform::ResourceKind;
    use rtrm_sched::{is_schedulable_with, reference, EdfScratch};

    /// A schedulable queue of depth `n` with staggered releases (heap churn)
    /// and spread deadlines, shaped like the `bench_edf_kernel` fixture.
    fn queue(n: usize) -> Vec<PlannedJob> {
        (0..n)
            .map(|i| {
                PlannedJob::new(
                    JobKey(i as u64),
                    Time::new((i % 3) as f64),
                    Time::new(1.0 + (i % 5) as f64),
                    Time::new(40.0 + 4.0 * i as f64),
                )
            })
            .collect()
    }

    /// Mean ns per call over a self-calibrated iteration count (~30 ms).
    fn measure(mut f: impl FnMut() -> bool) -> f64 {
        let warmup = std::time::Instant::now();
        let mut calibration = 0u64;
        while warmup.elapsed() < std::time::Duration::from_millis(5) {
            std::hint::black_box(f());
            calibration += 1;
        }
        let iters = calibration.max(1) * 6;
        let start = std::time::Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        start.elapsed().as_nanos() as f64 / iters as f64
    }

    const DEPTHS: [usize; 4] = [8, 32, 128, 512];

    let mut group = c.benchmark_group("edf_engine_sweep");
    for n in DEPTHS {
        let jobs = queue(n);
        group.bench_with_input(BenchmarkId::new("event", n), &jobs, |b, jobs| {
            let mut scratch = EdfScratch::new();
            b.iter(|| is_schedulable_with(ResourceKind::Cpu, Time::new(0.0), jobs, &mut scratch));
        });
        group.bench_with_input(BenchmarkId::new("reference", n), &jobs, |b, jobs| {
            b.iter(|| reference::is_schedulable(ResourceKind::Cpu, Time::new(0.0), jobs));
        });
    }
    group.finish();

    /// Mean ns per with-phantom probe (push + verdict + undo) of a depth-`n`
    /// dense timeline, incremental vs oracle mode. The phantom's exec varies
    /// per probe so the oracle's exact-content memo cannot short-circuit the
    /// engine run it is supposed to measure.
    fn measure_phantom_probe(kind: rtrm_platform::ResourceKind, n: usize, oracle: bool) -> f64 {
        use rtrm_sched::EdfTimeline;
        // Start at 2.0 so the fixture's staggered releases (0..3) are all
        // dense; the phantom at 5.0 is the only future job.
        let now = Time::new(2.0);
        let mut tl = EdfTimeline::new(kind, now);
        tl.set_oracle(oracle);
        for job in queue(n) {
            let _ = tl.push(job);
        }
        let mut i = 0u64;
        measure(move || {
            i += 1;
            let phantom = PlannedJob::new(
                JobKey(1_000_000),
                Time::new(5.0),
                Time::new(0.5 + (i % 8192) as f64 * 1e-4),
                Time::new(2_000.0 + 8.0 * i as f64 % 64.0),
            );
            let verdict = tl.push(phantom).is_feasible();
            let _ = tl.undo();
            verdict
        })
    }

    let mut rows = Vec::new();
    for n in DEPTHS {
        let jobs = queue(n);
        for (kind, label) in [(ResourceKind::Cpu, "cpu"), (ResourceKind::Gpu, "gpu")] {
            let mut scratch = EdfScratch::new();
            let event_ns =
                measure(|| is_schedulable_with(kind, Time::new(0.0), &jobs, &mut scratch));
            let reference_ns = measure(|| reference::is_schedulable(kind, Time::new(0.0), &jobs));
            let speedup = reference_ns / event_ns;
            // With-phantom columns: the timeline's incremental verdict over
            // a queue holding one future-released job (the segment sweep on
            // CPUs, the engine fallback on GPUs) vs the memoized-engine
            // oracle baseline over the same probes.
            let timeline_phantom_ns = measure_phantom_probe(kind, n, false);
            let oracle_phantom_ns = measure_phantom_probe(kind, n, true);
            let phantom_speedup = oracle_phantom_ns / timeline_phantom_ns;
            println!(
                "edf sweep: depth={n:>4} kind={label} event={event_ns:.0}ns \
                 reference={reference_ns:.0}ns speedup={speedup:.1}x \
                 phantom={timeline_phantom_ns:.0}ns oracle_phantom={oracle_phantom_ns:.0}ns \
                 phantom_speedup={phantom_speedup:.1}x"
            );
            rows.push(format!(
                "    {{\"depth\": {n}, \"kind\": \"{label}\", \"event_ns\": {event_ns:.1}, \
                 \"reference_ns\": {reference_ns:.1}, \"speedup\": {speedup:.2}, \
                 \"timeline_phantom_ns\": {timeline_phantom_ns:.1}, \
                 \"oracle_phantom_ns\": {oracle_phantom_ns:.1}, \
                 \"phantom_speedup\": {phantom_speedup:.2}}}"
            ));
        }
    }
    let json = format!(
        "{{\n  \"bench\": \"edf_is_schedulable\",\n  \"units\": \"ns_per_call\",\n  \
         \"results\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_edf.json");
    std::fs::write(path, json).expect("write BENCH_edf.json");
}

fn bench_milp_solver(c: &mut Criterion) {
    use rtrm_milp::{Model, Sense};
    c.bench_function("milp_knapsack_12", |b| {
        b.iter(|| {
            let mut m = Model::new(Sense::Maximize);
            let items: Vec<_> = (0..12)
                .map(|i| {
                    (
                        m.binary(3.0 + (i * 7 % 11) as f64),
                        2.0 + (i * 5 % 9) as f64,
                    )
                })
                .collect();
            let terms: Vec<_> = items.iter().map(|(v, w)| (*v, *w)).collect();
            m.add_le(&terms, 30.0);
            m.solve().expect("feasible")
        });
    });
}

fn bench_trace_generation(c: &mut Criterion) {
    let platform = Platform::paper_default();
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let catalog = generate_catalog(&platform, &CatalogConfig::paper(), &mut rng);
    c.bench_function("generate_trace_500", |b| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let cfg = TraceConfig::calibrated_vt();
        b.iter(|| generate_trace(&catalog, &cfg, &mut rng));
    });
}

fn bench_end_to_end(c: &mut Criterion) {
    let platform = Platform::paper_default();
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let catalog = generate_catalog(&platform, &CatalogConfig::paper(), &mut rng);
    let cfg = TraceConfig {
        length: 100,
        ..TraceConfig::calibrated_vt()
    };
    let trace = generate_trace(&catalog, &cfg, &mut rng);
    let sim = Simulator::new(&platform, &catalog, SimConfig::default());
    c.bench_function("simulate_100_requests_heuristic", |b| {
        b.iter(|| sim.run(&trace, &mut HeuristicRm::new(), None));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_rm_activation, bench_rm_ablations, bench_edf_kernel,
              bench_edf_sweep, bench_milp_solver, bench_trace_generation,
              bench_end_to_end
}
criterion_main!(benches);
