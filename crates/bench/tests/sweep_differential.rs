//! Differential acceptance test for the sweep driver: a 4-cell grid over
//! 200 traces executed on the warm worker pool must be bit-identical to a
//! per-trace sequential reproduction with fresh `Simulator::run` calls —
//! same traces, same derived seeds, no pool, no scratch reuse.
//!
//! This pins the whole warm-pool stack at once: chunked dispatch order,
//! per-worker `SimScratch` reuse across traces, cross-activation
//! `TimelinePool` reuse inside the managers, and the sweep's deterministic
//! `cell_seed` derivation.

use rand::rngs::StdRng;
use rand::SeedableRng;

use rtrm_bench::sweep::{
    cell_seed, run_sweep, GridWorkload, PredictorSpec, SweepOptions, SweepSpec,
};
use rtrm_bench::{Group, Oracle, Policy, Scale};
use rtrm_core::HeuristicRm;
use rtrm_predict::OraclePredictor;
use rtrm_sim::{PhantomDeadline, SimConfig, Simulator};
use rtrm_trace::{generate_catalog, generate_traces, CatalogConfig};

#[test]
fn sweep_is_bit_identical_to_sequential_runs() {
    let scale = Scale {
        traces: 50,
        trace_len: 30,
        seed: 11,
    };
    let groups = [Group::Vt, Group::Lt];
    let predictors = [PredictorSpec::off(), PredictorSpec::perfect()];
    let spec = SweepSpec {
        name: "test_differential",
        scale,
        workload: GridWorkload::Paper {
            groups: groups.to_vec(),
        },
        policies: vec![Policy::Heuristic],
        predictors: predictors.to_vec(),
    };
    let outcome = run_sweep(
        &spec,
        &SweepOptions {
            fresh: true,
            quiet: true,
        },
    );
    assert_eq!(outcome.cells.len(), 4, "2 groups x 1 policy x 2 predictors");
    assert_eq!(
        outcome
            .cells
            .iter()
            .map(|c| c.metrics.traces)
            .sum::<usize>(),
        200,
        "the grid must cover 200 traces"
    );

    // Sequential reproduction: regenerate the workload the way the sweep
    // does and run every trace through a fresh simulator, fresh manager,
    // and fresh per-run state.
    let platform = rtrm_platform::Platform::paper_default();
    let mut rng = StdRng::seed_from_u64(scale.seed);
    let catalog = generate_catalog(&platform, &CatalogConfig::paper(), &mut rng);
    let mut checked = 0;
    for g in groups {
        let cfg = g.trace_config(scale.trace_len);
        let traces = generate_traces(
            &catalog,
            &cfg,
            scale.traces,
            scale.seed ^ (g as u64 + 1) << 32,
        );
        for predictor in predictors {
            let key = format!("{}/heuristic/{}", g.name(), predictor.label);
            let seed = cell_seed(scale.seed, &key);
            let config = SimConfig {
                phantom_deadline: PhantomDeadline::MinWcetTimes(g.phantom_coefficient()),
                ..SimConfig::default()
            };
            let cell = outcome
                .cells
                .iter()
                .find(|c| c.key() == key)
                .unwrap_or_else(|| panic!("cell {key} missing"));
            let reports = cell.reports.as_ref().expect("fresh cells carry reports");
            assert_eq!(reports.len(), traces.len());
            for (i, trace) in traces.iter().enumerate() {
                let simulator = Simulator::new(&platform, &catalog, config.clone());
                let mut manager = HeuristicRm::new();
                let expected = match predictor.oracle {
                    Oracle::Off => simulator.run(trace, &mut manager, None),
                    Oracle::On(error) => {
                        let mut oracle =
                            OraclePredictor::new(trace, catalog.len(), error, seed ^ i as u64);
                        simulator.run(trace, &mut manager, Some(&mut oracle))
                    }
                };
                assert_eq!(
                    reports[i], expected,
                    "cell {key}, trace {i}: sweep report diverged from sequential run"
                );
                checked += 1;
            }
        }
    }
    assert_eq!(checked, 200);

    let _ = std::fs::remove_file(&outcome.checkpoint_path);
    let _ = std::fs::remove_file(&outcome.csv_path);
}
