//! Differential acceptance tests for the sweep driver: a 4-cell grid over
//! 200 traces executed on the warm worker pool must be bit-identical to a
//! per-trace sequential reproduction with fresh `Simulator::run` calls —
//! same traces, same derived seeds, no pool, no scratch reuse — and the
//! same holds for the MILP policy with its anytime node budget. Two sweeps
//! contending for one lease must serialize into a single consistent
//! checkpoint with no lost cells.
//!
//! This pins the whole warm-pool stack at once: chunked dispatch order,
//! per-worker `SimScratch` reuse across traces, cross-activation
//! `TimelinePool` reuse inside the managers, and the sweep's deterministic
//! `cell_seed` derivation.

use rand::rngs::StdRng;
use rand::SeedableRng;

use rtrm_bench::coop::CoopConfig;
use rtrm_bench::sweep::{
    cell_seed, run_sweep, CellMetrics, GridWorkload, PredictorSpec, SweepOptions, SweepSpec,
};
use rtrm_bench::{Group, Oracle, Policy, Scale};
use rtrm_core::{ExactRm, HeuristicRm};
use rtrm_predict::{MarkovHorizonPredictor, OraclePredictor};
use rtrm_sim::{PhantomDeadline, SimConfig, Simulator};
use rtrm_trace::{
    generate_catalog, generate_pattern_traces, generate_traces, CatalogConfig, DiurnalConfig,
    WorkloadPattern,
};

#[test]
fn sweep_is_bit_identical_to_sequential_runs() {
    let scale = Scale {
        traces: 50,
        trace_len: 30,
        seed: 11,
    };
    let groups = [Group::Vt, Group::Lt];
    let predictors = [PredictorSpec::off(), PredictorSpec::perfect()];
    let spec = SweepSpec {
        name: "test_differential",
        scale,
        workload: GridWorkload::Paper {
            groups: groups.to_vec(),
        },
        policies: vec![Policy::Heuristic],
        predictors: predictors.to_vec(),
    };
    let outcome = run_sweep(
        &spec,
        &SweepOptions {
            fresh: true,
            quiet: true,
            ..SweepOptions::default()
        },
    )
    .expect("sweep runs");
    assert_eq!(outcome.cells.len(), 4, "2 groups x 1 policy x 2 predictors");
    assert_eq!(
        outcome
            .cells
            .iter()
            .map(|c| c.metrics.traces)
            .sum::<usize>(),
        200,
        "the grid must cover 200 traces"
    );

    // Sequential reproduction: regenerate the workload the way the sweep
    // does and run every trace through a fresh simulator, fresh manager,
    // and fresh per-run state.
    let platform = rtrm_platform::Platform::paper_default();
    let mut rng = StdRng::seed_from_u64(scale.seed);
    let catalog = generate_catalog(&platform, &CatalogConfig::paper(), &mut rng);
    let mut checked = 0;
    for g in groups {
        let cfg = g.trace_config(scale.trace_len);
        let traces = generate_traces(
            &catalog,
            &cfg,
            scale.traces,
            scale.seed ^ (g as u64 + 1) << 32,
        );
        for predictor in predictors {
            let key = format!("{}/heuristic/{}", g.name(), predictor.label);
            let seed = cell_seed(scale.seed, &key);
            let config = SimConfig {
                phantom_deadline: PhantomDeadline::MinWcetTimes(g.phantom_coefficient()),
                ..SimConfig::default()
            };
            let cell = outcome
                .cells
                .iter()
                .find(|c| c.key() == key)
                .unwrap_or_else(|| panic!("cell {key} missing"));
            let reports = cell.reports.as_ref().expect("fresh cells carry reports");
            assert_eq!(reports.len(), traces.len());
            for (i, trace) in traces.iter().enumerate() {
                let simulator = Simulator::new(&platform, &catalog, config.clone());
                let mut manager = HeuristicRm::new();
                let expected = match predictor.oracle {
                    Oracle::Off => simulator.run(trace, &mut manager, None),
                    Oracle::On(error) => {
                        let mut oracle =
                            OraclePredictor::new(trace, catalog.len(), error, seed ^ i as u64);
                        simulator.run(trace, &mut manager, Some(&mut oracle))
                    }
                    Oracle::Markov { alpha } => {
                        let mut markov = MarkovHorizonPredictor::new(catalog.len(), alpha);
                        simulator.run(trace, &mut manager, Some(&mut markov))
                    }
                };
                assert_eq!(
                    reports[i], expected,
                    "cell {key}, trace {i}: sweep report diverged from sequential run"
                );
                checked += 1;
            }
        }
    }
    assert_eq!(checked, 200);

    let _ = std::fs::remove_file(&outcome.checkpoint_path);
    let _ = std::fs::remove_file(&outcome.csv_path);
}

/// The MILP policy resolves to `ExactRm` with the production node budget;
/// its pool-run cells must also be bit-identical to sequential fresh runs,
/// pinning the fig2-style MILP series against the anytime plumbing.
#[test]
fn milp_policy_sweep_matches_sequential_exact_runs() {
    let scale = Scale {
        traces: 4,
        trace_len: 25,
        seed: 13,
    };
    let predictors = [PredictorSpec::off(), PredictorSpec::perfect()];
    let spec = SweepSpec {
        name: "test_differential_milp",
        scale,
        workload: GridWorkload::Paper {
            groups: vec![Group::Vt],
        },
        policies: vec![Policy::Milp],
        predictors: predictors.to_vec(),
    };
    let outcome = run_sweep(
        &spec,
        &SweepOptions {
            fresh: true,
            quiet: true,
            ..SweepOptions::default()
        },
    )
    .expect("sweep runs");
    assert_eq!(outcome.cells.len(), 2);

    let platform = rtrm_platform::Platform::paper_default();
    let mut rng = StdRng::seed_from_u64(scale.seed);
    let catalog = generate_catalog(&platform, &CatalogConfig::paper(), &mut rng);
    let g = Group::Vt;
    let cfg = g.trace_config(scale.trace_len);
    let traces = generate_traces(
        &catalog,
        &cfg,
        scale.traces,
        scale.seed ^ (g as u64 + 1) << 32,
    );
    let config = SimConfig {
        phantom_deadline: PhantomDeadline::MinWcetTimes(g.phantom_coefficient()),
        ..SimConfig::default()
    };
    for predictor in predictors {
        let key = format!("{}/MILP/{}", g.name(), predictor.label);
        let seed = cell_seed(scale.seed, &key);
        let cell = outcome
            .cells
            .iter()
            .find(|c| c.key() == key)
            .unwrap_or_else(|| panic!("cell {key} missing"));
        let reports = cell.reports.as_ref().expect("fresh cells carry reports");
        for (i, trace) in traces.iter().enumerate() {
            let simulator = Simulator::new(&platform, &catalog, config.clone());
            // The production binding of `Policy::Milp` (see `Policy::build`).
            let mut manager = ExactRm::with_node_budget(25_000);
            let expected = match predictor.oracle {
                Oracle::Off => simulator.run(trace, &mut manager, None),
                Oracle::On(error) => {
                    let mut oracle =
                        OraclePredictor::new(trace, catalog.len(), error, seed ^ i as u64);
                    simulator.run(trace, &mut manager, Some(&mut oracle))
                }
                Oracle::Markov { alpha } => {
                    let mut markov = MarkovHorizonPredictor::new(catalog.len(), alpha);
                    simulator.run(trace, &mut manager, Some(&mut markov))
                }
            };
            assert_eq!(
                reports[i], expected,
                "cell {key}, trace {i}: MILP sweep report diverged"
            );
        }
    }

    let _ = std::fs::remove_file(&outcome.checkpoint_path);
    let _ = std::fs::remove_file(&outcome.csv_path);
}

/// The horizon sweep path end to end: a `Patterns` workload cell with the
/// online Markov predictor and a confidence-gated horizon must be
/// bit-identical to a sequential reproduction with fresh per-trace
/// predictors — pinning the pattern-trace child-seed scheme
/// (`seed ^ ((i + 1) << 16)`), the `PredictorSpec::horizon` plumb-through
/// into `SimConfig`, and the warm-pool execution of Markov cells.
#[test]
fn horizon_sweep_matches_sequential_runs() {
    let scale = Scale {
        traces: 4,
        trace_len: 30,
        seed: 17,
    };
    let pattern = WorkloadPattern::Diurnal(DiurnalConfig {
        length: scale.trace_len,
        ..DiurnalConfig::default()
    });
    let predictors = [
        PredictorSpec::off(),
        PredictorSpec::markov_horizon("k2@t0.50", 0.5, 2, 0.5),
    ];
    let spec = SweepSpec {
        name: "test_differential_horizon",
        scale,
        workload: GridWorkload::Patterns {
            patterns: vec![("diurnal", pattern.clone())],
            phantom_deadline: PhantomDeadline::MinWcetTimes(1.5),
        },
        policies: vec![Policy::Heuristic],
        predictors: predictors.to_vec(),
    };
    let outcome = run_sweep(
        &spec,
        &SweepOptions {
            fresh: true,
            quiet: true,
            ..SweepOptions::default()
        },
    )
    .expect("sweep runs");
    assert_eq!(
        outcome.cells.len(),
        2,
        "1 pattern x 1 policy x 2 predictors"
    );

    let platform = rtrm_platform::Platform::paper_default();
    let mut rng = StdRng::seed_from_u64(scale.seed);
    let catalog = generate_catalog(&platform, &CatalogConfig::paper(), &mut rng);
    let traces = generate_pattern_traces(&catalog, &pattern, scale.traces, scale.seed ^ (1 << 16));
    for predictor in predictors {
        let key = format!("diurnal/heuristic/{}", predictor.label);
        let config = SimConfig {
            phantom_deadline: PhantomDeadline::MinWcetTimes(1.5),
            horizon: predictor.horizon,
            ..SimConfig::default()
        };
        let cell = outcome
            .cells
            .iter()
            .find(|c| c.key() == key)
            .unwrap_or_else(|| panic!("cell {key} missing"));
        let reports = cell.reports.as_ref().expect("fresh cells carry reports");
        assert_eq!(reports.len(), traces.len());
        for (i, trace) in traces.iter().enumerate() {
            let simulator = Simulator::new(&platform, &catalog, config.clone());
            let mut manager = HeuristicRm::new();
            let expected = match predictor.oracle {
                Oracle::Off => simulator.run(trace, &mut manager, None),
                Oracle::Markov { alpha } => {
                    let mut markov = MarkovHorizonPredictor::new(catalog.len(), alpha);
                    simulator.run(trace, &mut manager, Some(&mut markov))
                }
                Oracle::On(_) => unreachable!("no oracle cells in the horizon grid"),
            };
            assert_eq!(
                reports[i], expected,
                "cell {key}, trace {i}: horizon sweep report diverged"
            );
        }
    }

    let _ = std::fs::remove_file(&outcome.checkpoint_path);
    let _ = std::fs::remove_file(&outcome.csv_path);
}

/// A generous wall-clock budget on the exact optimizer must not perturb the
/// search at all — the reports are bit-identical to the no-budget manager,
/// pinning that the checked-in sweep results are reproduced exactly when a
/// budget is configured but never hit.
#[test]
fn generous_wall_clock_budget_leaves_exact_results_untouched() {
    let platform = rtrm_platform::Platform::paper_default();
    let mut rng = StdRng::seed_from_u64(19);
    let catalog = generate_catalog(&platform, &CatalogConfig::paper(), &mut rng);
    let cfg = Group::Vt.trace_config(30);
    let traces = generate_traces(&catalog, &cfg, 3, 19);
    let simulator = Simulator::new(&platform, &catalog, SimConfig::default());
    for trace in &traces {
        let mut oracle = OraclePredictor::perfect(trace, catalog.len());
        let budgeted = simulator.run(trace, &mut ExactRm::with_wall_clock(1e9), Some(&mut oracle));
        let mut oracle = OraclePredictor::perfect(trace, catalog.len());
        let plain = simulator.run(trace, &mut ExactRm::new(), Some(&mut oracle));
        assert_eq!(budgeted, plain, "a never-hit budget must be invisible");
    }
}

/// The deterministic fields of a cell's metrics (everything except the
/// wall-clock `elapsed_ms`).
fn stable(m: &CellMetrics) -> (usize, usize, usize, usize, f64, f64) {
    (
        m.traces,
        m.requests,
        m.accepted,
        m.rejected,
        m.mean_rejection_percent,
        m.mean_energy,
    )
}

/// Re-entrancy: two sweeps of the same name contending for one lease
/// serialize — one computes the grid, the other queues behind the lease and
/// resumes every cell from the finished checkpoint. No cell is lost, no
/// checkpoint write interleaves, and the lease is released at the end.
#[test]
fn contending_sweeps_share_one_lease_without_losing_cells() {
    let make_spec = || SweepSpec {
        name: "test_lease_contention",
        scale: Scale {
            traces: 2,
            trace_len: 20,
            seed: 9,
        },
        workload: GridWorkload::Paper {
            groups: vec![Group::Vt],
        },
        policies: vec![Policy::Heuristic],
        predictors: vec![PredictorSpec::off(), PredictorSpec::perfect()],
    };

    // Learn the expected metrics (and the output paths), then wipe the
    // checkpoint so the contenders start from nothing.
    let probe = run_sweep(
        &make_spec(),
        &SweepOptions {
            fresh: true,
            quiet: true,
            ..SweepOptions::default()
        },
    )
    .expect("probe sweep runs");
    let expected: Vec<_> = probe
        .cells
        .iter()
        .map(|c| (c.key(), stable(&c.metrics)))
        .collect();
    std::fs::remove_file(&probe.checkpoint_path).expect("wipe checkpoint");

    let contend = || {
        run_sweep(
            &make_spec(),
            &SweepOptions {
                quiet: true,
                lease_wait: true,
                ..SweepOptions::default()
            },
        )
    };
    let (a, b) = std::thread::scope(|scope| {
        let a = scope.spawn(contend);
        let b = scope.spawn(contend);
        (
            a.join().expect("contender A"),
            b.join().expect("contender B"),
        )
    });
    let a = a.expect("contender A completes");
    let b = b.expect("contender B completes");

    // The lease serialized them: one computed both cells, the other resumed
    // both from the finished checkpoint — nothing lost, nothing doubled.
    assert_eq!(a.resumed + b.resumed, 2, "one computes, one resumes");
    for outcome in [&a, &b] {
        assert_eq!(outcome.cells.len(), 2);
        for (cell, (key, metrics)) in outcome.cells.iter().zip(&expected) {
            assert_eq!(&cell.key(), key);
            assert_eq!(&stable(&cell.metrics), metrics, "cell {key}");
        }
    }
    let lock_path = probe
        .checkpoint_path
        .parent()
        .expect("results dir")
        .join("test_lease_contention.sweep.lock");
    assert!(!lock_path.exists(), "lease released after both runs");

    let _ = std::fs::remove_file(&probe.checkpoint_path);
    let _ = std::fs::remove_file(&probe.csv_path);
}

/// Zeroes the wall-clock `elapsed_ms` field of every cell line so two
/// checkpoint documents of the same deterministic run compare byte-equal.
/// Cell *order* needs no normalization: both the single-process engine and
/// the cooperative merge emit cells in grid expansion order.
fn normalize_checkpoint(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for line in text.lines() {
        match line.find("\"elapsed_ms\": ") {
            Some(pos) => {
                let prefix = &line[..pos + "\"elapsed_ms\": ".len()];
                let suffix = if line.ends_with("},") { "0}," } else { "0}" };
                out.push_str(prefix);
                out.push_str(suffix);
            }
            None => out.push_str(line),
        }
        out.push('\n');
    }
    out
}

/// The tentpole pin: a cooperative run (several workers claiming cells and
/// merging shards) must produce a canonical checkpoint byte-identical —
/// modulo the wall-clock `elapsed_ms` — to the opt-out single-process run
/// of the same spec and seed. This also pins that cooperative mode stays
/// opt-in: `SweepOptions::default()` takes the exclusive-lease path.
#[test]
fn cooperative_workers_merge_to_the_sequential_checkpoint() {
    assert!(
        SweepOptions::default().coop.is_none(),
        "cooperative mode must be opt-in"
    );
    let make_spec = || SweepSpec {
        name: "test_coop_differential",
        scale: Scale {
            traces: 2,
            trace_len: 20,
            seed: 29,
        },
        workload: GridWorkload::Paper {
            groups: vec![Group::Vt, Group::Lt],
        },
        policies: vec![Policy::Heuristic],
        predictors: vec![PredictorSpec::off(), PredictorSpec::perfect()],
    };

    // Sequential single-process reference (exclusive-lease path).
    let sequential = run_sweep(
        &make_spec(),
        &SweepOptions {
            fresh: true,
            quiet: true,
            ..SweepOptions::default()
        },
    )
    .expect("sequential sweep runs");
    let reference =
        std::fs::read_to_string(&sequential.checkpoint_path).expect("read sequential checkpoint");
    rtrm_bench::coop::fresh_cleanup("test_coop_differential");

    // Four cooperative workers race over the same grid (batch 1 so the
    // cells actually spread across owners).
    let worker = |owner: &'static str| {
        move || {
            run_sweep(
                &make_spec(),
                &SweepOptions {
                    quiet: true,
                    coop: Some(CoopConfig {
                        owner: owner.to_string(),
                        batch: 1,
                    }),
                    ..SweepOptions::default()
                },
            )
        }
    };
    let outcomes = std::thread::scope(|scope| {
        let handles: Vec<_> = ["wa", "wb", "wc", "wd"]
            .into_iter()
            .map(|o| scope.spawn(worker(o)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker thread"))
            .collect::<Vec<_>>()
    });

    let mut executed = 0;
    for outcome in outcomes {
        let outcome = outcome.expect("cooperative worker completes");
        assert_eq!(outcome.cells.len(), 4, "every worker sees the full grid");
        executed += outcome.cells.len() - outcome.resumed;
        for (cell, reference_cell) in outcome.cells.iter().zip(&sequential.cells) {
            assert_eq!(cell.key(), reference_cell.key());
            assert!(
                cell.metrics.deterministic_eq(&reference_cell.metrics),
                "cell {} diverged from the sequential run",
                cell.key()
            );
        }
    }
    assert!(
        executed >= 4,
        "all 4 cells were executed by somebody (duplicates from takeovers are fine)"
    );

    let merged =
        std::fs::read_to_string(&sequential.checkpoint_path).expect("read merged checkpoint");
    assert_eq!(
        normalize_checkpoint(&merged),
        normalize_checkpoint(&reference),
        "merged cooperative checkpoint must be byte-identical to the \
         sequential one (modulo elapsed_ms)"
    );

    let results_dir = sequential.checkpoint_path.parent().expect("results dir");
    assert!(
        !results_dir
            .join("test_coop_differential.sweep.claims")
            .exists(),
        "claims directory cleaned up after merge"
    );
    for entry in std::fs::read_dir(results_dir).expect("list results") {
        let name = entry.expect("entry").file_name();
        let name = name.to_string_lossy().into_owned();
        assert!(
            !(name.starts_with("test_coop_differential.sweep.") && name.ends_with(".part.json")),
            "shard {name} left behind after merge"
        );
    }

    let _ = std::fs::remove_file(&sequential.checkpoint_path);
    let _ = std::fs::remove_file(&sequential.csv_path);
}
