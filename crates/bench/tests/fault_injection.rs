//! Fault-injection suite for the sweep persistence layer: corrupt
//! checkpoints are backed up and salvaged (only the cells the damage lost
//! are recomputed), transient publish failures are retried with bounded
//! backoff, and the whole-run lease fails fast on a live owner but takes
//! over a stale one.

use std::fs;
use std::sync::Mutex;
use std::time::{SystemTime, UNIX_EPOCH};

use rtrm_bench::sweep::{
    run_sweep, CellMetrics, GridWorkload, PredictorSpec, SweepError, SweepOptions, SweepSpec,
};
use rtrm_bench::{Group, Policy, Scale};

/// The `sweep::publish` fail point is process-global and every test here
/// runs sweeps through `save_checkpoint`, so the whole suite serializes.
static SERIAL: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

fn tiny_spec(name: &'static str, predictors: Vec<PredictorSpec>) -> SweepSpec {
    SweepSpec {
        name,
        scale: Scale {
            traces: 2,
            trace_len: 20,
            seed: 7,
        },
        workload: GridWorkload::Paper {
            groups: vec![Group::Vt],
        },
        policies: vec![Policy::Heuristic],
        predictors,
    }
}

fn fresh() -> SweepOptions {
    SweepOptions {
        fresh: true,
        quiet: true,
        ..SweepOptions::default()
    }
}

fn resume() -> SweepOptions {
    SweepOptions {
        quiet: true,
        ..SweepOptions::default()
    }
}

/// The deterministic fields of a cell's metrics (everything except the
/// wall-clock `elapsed_ms`, which a recomputed cell cannot reproduce).
fn stable(m: &CellMetrics) -> (usize, usize, usize, usize, f64, f64) {
    (
        m.traces,
        m.requests,
        m.accepted,
        m.rejected,
        m.mean_rejection_percent,
        m.mean_energy,
    )
}

/// Acceptance case: a torn checkpoint (cut mid-cell, closing bracket gone)
/// is backed up to `.corrupt` and salvaged line by line — the sweep resumes
/// losing only the cell the damage destroyed.
#[test]
fn corrupt_checkpoint_is_salvaged_and_only_lost_cells_recompute() {
    let _serial = lock();
    let spec = tiny_spec(
        "test_fault_salvage",
        vec![PredictorSpec::off(), PredictorSpec::perfect()],
    );
    let first = run_sweep(&spec, &fresh()).expect("seed sweep runs");
    assert_eq!(first.cells.len(), 2);

    // Tear the file inside the second cell line: the document no longer
    // parses, but the first cell's line is intact.
    let text = fs::read_to_string(&first.checkpoint_path).expect("checkpoint written");
    let cut = text.rfind("\"mean_energy\"").expect("cell line present");
    let torn = &text[..cut];
    fs::write(&first.checkpoint_path, torn).expect("tear checkpoint");

    let second = run_sweep(&spec, &resume()).expect("salvaging sweep runs");
    assert_eq!(
        second.resumed, 1,
        "exactly the intact cell is salvaged; the torn one recomputes"
    );
    for (a, b) in first.cells.iter().zip(&second.cells) {
        assert_eq!(a.key(), b.key());
        assert_eq!(
            stable(&a.metrics),
            stable(&b.metrics),
            "salvage/recompute must not alter results"
        );
    }
    // The salvaged cell round-trips bit-equal, elapsed time included.
    assert_eq!(first.cells[0].metrics, second.cells[0].metrics);

    let backup = first.checkpoint_path.with_extension("json.corrupt");
    assert_eq!(
        fs::read_to_string(&backup).expect(".corrupt backup exists"),
        torn,
        "the damaged bytes are preserved verbatim"
    );

    let _ = fs::remove_file(&first.checkpoint_path);
    let _ = fs::remove_file(&first.csv_path);
    let _ = fs::remove_file(&backup);
}

/// A corrupt checkpoint whose header does not match the spec salvages
/// nothing: cells from another configuration are never trusted.
#[test]
fn salvage_rejects_cells_from_another_configuration() {
    let _serial = lock();
    let spec = tiny_spec("test_fault_salvage_header", vec![PredictorSpec::off()]);
    let first = run_sweep(&spec, &fresh()).expect("seed sweep runs");

    // Corrupt the file AND change its seed: the cell line is intact but the
    // header no longer matches, so it must not be salvaged.
    let text = fs::read_to_string(&first.checkpoint_path).expect("checkpoint written");
    let torn = text.replace("\"seed\": 7", "\"seed\": 8");
    let torn = &torn[..torn.len() - 4]; // drop the closing "]\n}\n"
    fs::write(&first.checkpoint_path, torn).expect("tear checkpoint");

    let second = run_sweep(&spec, &resume()).expect("sweep recomputes");
    assert_eq!(second.resumed, 0, "foreign cells must not be salvaged");

    let _ = fs::remove_file(&first.checkpoint_path);
    let _ = fs::remove_file(&first.csv_path);
    let _ = fs::remove_file(first.checkpoint_path.with_extension("json.corrupt"));
}

/// Transient publish failures are retried with backoff; two injected
/// failures are absorbed without surfacing an error.
#[test]
fn publish_retries_transient_failures() {
    let _serial = lock();
    let spec = tiny_spec("test_fault_publish_retry", vec![PredictorSpec::off()]);
    let guard = rtrm_testkit::arm_with(
        "sweep::publish",
        rtrm_testkit::Action::IoError,
        None,
        Some(2),
    );
    let outcome = run_sweep(&spec, &fresh()).expect("retries absorb two transient failures");
    assert_eq!(guard.hits(), 2, "both injected failures fired");
    drop(guard);
    assert!(outcome.checkpoint_path.exists());

    let _ = fs::remove_file(&outcome.checkpoint_path);
    let _ = fs::remove_file(&outcome.csv_path);
}

/// A persistent publish failure surfaces as [`SweepError::Io`] naming the
/// checkpoint — after the bounded retries, not before.
#[test]
fn persistent_publish_failure_surfaces_an_io_error() {
    let _serial = lock();
    let spec = tiny_spec("test_fault_publish_fail", vec![PredictorSpec::off()]);
    let guard = rtrm_testkit::arm("sweep::publish", rtrm_testkit::Action::IoError);
    let err = run_sweep(&spec, &fresh()).expect_err("unbounded failures must surface");
    assert!(guard.hits() >= 4, "first attempt plus three retries");
    drop(guard);
    match err {
        SweepError::Io { path, .. } => {
            assert!(
                path.to_string_lossy()
                    .ends_with("test_fault_publish_fail.sweep.json"),
                "error names the checkpoint: {}",
                path.display()
            );
        }
        other => panic!("expected SweepError::Io, got {other}"),
    }
}

/// The whole-run lease: a live owner makes a second sweep fail fast with
/// [`SweepError::LeaseHeld`] (naming the owner); a stale heartbeat marks a
/// crashed owner and the lease is taken over; the lease is released when the
/// run finishes.
#[test]
fn live_lease_fails_fast_and_stale_lease_is_taken_over() {
    let _serial = lock();
    let spec = tiny_spec("test_fault_lease", vec![PredictorSpec::off()]);
    let first = run_sweep(&spec, &fresh()).expect("seed sweep runs");
    let dir = first
        .checkpoint_path
        .parent()
        .expect("checkpoint lives under results/")
        .to_path_buf();
    let lock_path = dir.join("test_fault_lease.sweep.lock");
    assert!(!lock_path.exists(), "lease released after the seed run");

    // A live owner (fresh heartbeat): fail fast, naming them.
    let now = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .expect("epoch time")
        .as_secs();
    fs::write(&lock_path, format!("owner tester\nheartbeat {now}\n")).expect("plant lease");
    match run_sweep(&spec, &resume()).expect_err("live lease must fail fast") {
        SweepError::LeaseHeld { owner, .. } => assert_eq!(owner, "tester"),
        other => panic!("expected SweepError::LeaseHeld, got {other}"),
    }

    // A crashed owner (ancient heartbeat): take the lease over and run.
    fs::write(&lock_path, "owner crashed\nheartbeat 1\n").expect("plant stale lease");
    let outcome = run_sweep(&spec, &resume()).expect("stale lease is taken over");
    assert_eq!(outcome.resumed, 1, "checkpoint survives the takeover");
    assert!(!lock_path.exists(), "lease released after the run");

    let _ = fs::remove_file(&first.checkpoint_path);
    let _ = fs::remove_file(&first.csv_path);
}

/// The staleness threshold is configurable per run
/// ([`SweepOptions::lease_stale_secs`]): a heartbeat 2 s old is a live
/// owner under the 30 s default but a crashed one under a 1 s threshold —
/// so this takeover test runs in milliseconds instead of sleeping out
/// `LEASE_STALE_SECS` of wall clock.
#[test]
fn lease_staleness_threshold_is_configurable() {
    let _serial = lock();
    let spec = tiny_spec("test_fault_lease_stale_secs", vec![PredictorSpec::off()]);
    let first = run_sweep(&spec, &fresh()).expect("seed sweep runs");
    let dir = first
        .checkpoint_path
        .parent()
        .expect("checkpoint lives under results/")
        .to_path_buf();
    let lock_path = dir.join("test_fault_lease_stale_secs.sweep.lock");

    let plant = || {
        let now = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .expect("epoch time")
            .as_secs();
        fs::write(
            &lock_path,
            format!("owner slowpoke\nheartbeat {}\n", now - 2),
        )
        .expect("plant 2s-old lease");
    };

    // Default threshold (30 s): a 2 s-old heartbeat is a live owner.
    plant();
    match run_sweep(&spec, &resume()).expect_err("2s-old lease is live under the default") {
        SweepError::LeaseHeld { owner, .. } => assert_eq!(owner, "slowpoke"),
        other => panic!("expected SweepError::LeaseHeld, got {other}"),
    }

    // 1 s threshold: the same lease is a crashed owner — taken over now,
    // without waiting out the production 30 s.
    plant();
    let outcome = run_sweep(
        &spec,
        &SweepOptions {
            lease_stale_secs: 1,
            ..resume()
        },
    )
    .expect("2s-old lease is stale under a 1s threshold");
    assert_eq!(outcome.resumed, 1, "checkpoint survives the takeover");
    assert!(!lock_path.exists(), "lease released after the run");

    let _ = fs::remove_file(&first.checkpoint_path);
    let _ = fs::remove_file(&first.csv_path);
}
