//! Chaos suite for cooperative sweeps: real child **worker processes** are
//! killed (`std::process::abort`, no unwinding, no `Drop` cleanup) at every
//! step of the claim/execute/publish/merge protocol, and the surviving
//! worker must still complete the grid with a canonical checkpoint
//! byte-identical — modulo the wall-clock `elapsed_ms` — to a sequential
//! single-process run of the same spec and seed.
//!
//! The mechanism: this test binary re-invokes itself
//! (`std::env::current_exe()`) filtered to [`chaos_child_entry`], which
//! turns into a cooperative sweep worker when `RTRM_CHAOS_OWNER` is set.
//! The kill schedule travels in `RTRM_FAILPOINTS` (parsed by
//! `rtrm_testkit::arm_from_env`), arming an `abort` action at one of:
//!
//! * `sweep::claim` key 0 — mid-claim, right after winning `create_new`
//!   and before the heartbeat write (an empty claim file, recovered via the
//!   mtime fallback);
//! * `batch::trace` — mid-cell, inside the warm pool's trace execution;
//! * `sweep::part_publish` key 1 — mid-shard-publish, between the temp
//!   write and the atomic rename (the shard must not be torn);
//! * `sweep::merge` keys 0/1 — mid-merge, before the canonical publish and
//!   after it but before shard/claim cleanup.
//!
//! Every test holds a global lock: all schedules share one sweep name and
//! one `results/` directory.

use std::fs;
use std::process::{Child, Command, Stdio};
use std::sync::Mutex;
use std::time::Duration;

use rtrm_bench::coop::{fresh_cleanup, CoopConfig};
use rtrm_bench::sweep::{run_sweep, GridWorkload, PredictorSpec, SweepOptions, SweepSpec};
use rtrm_bench::{Group, Policy, Scale};

/// All schedules share the `test_chaos_coop` sweep name, so the suite
/// serializes.
static SERIAL: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

const SWEEP_NAME: &str = "test_chaos_coop";

/// Staleness threshold for every chaos run: short enough that orphaned
/// claims are taken over in ~1 s instead of the production 30 s.
const STALE_SECS: u64 = 1;

/// The 4-cell grid every chaos schedule runs (2 groups × 2 predictors,
/// tiny traces so a full run takes milliseconds per cell).
fn chaos_spec() -> SweepSpec {
    SweepSpec {
        name: SWEEP_NAME,
        scale: Scale {
            traces: 2,
            trace_len: 20,
            seed: 23,
        },
        workload: GridWorkload::Paper {
            groups: vec![Group::Vt, Group::Lt],
        },
        policies: vec![Policy::Heuristic],
        predictors: vec![PredictorSpec::off(), PredictorSpec::perfect()],
    }
}

fn coop_options(owner: &str) -> SweepOptions {
    SweepOptions {
        quiet: true,
        lease_stale_secs: STALE_SECS,
        coop: Some(CoopConfig {
            owner: owner.to_string(),
            batch: 1,
        }),
        ..SweepOptions::default()
    }
}

/// Worker entry point, activated by `RTRM_CHAOS_OWNER`. In a normal test
/// run the variable is unset and this is a no-op. As a child process it
/// arms the kill schedule from `RTRM_FAILPOINTS` and runs one cooperative
/// worker to completion; an armed abort kills the process mid-protocol
/// (nonzero exit), an unarmed child exits 0 after the merge.
#[test]
fn chaos_child_entry() {
    let Ok(owner) = std::env::var("RTRM_CHAOS_OWNER") else {
        return;
    };
    let _armed = rtrm_testkit::arm_from_env();
    run_sweep(&chaos_spec(), &coop_options(&owner)).expect("cooperative worker completes");
}

/// Kills the child on drop so a panicking parent never leaks a live worker
/// into the rest of the build (the ci.sh timeout wrapper is the backstop,
/// not the cleanup path).
struct ChildGuard(Option<Child>);

impl ChildGuard {
    fn wait(mut self) -> std::process::ExitStatus {
        let mut child = self.0.take().expect("child present");
        child.wait().expect("wait on chaos child")
    }
}

impl Drop for ChildGuard {
    fn drop(&mut self) {
        if let Some(mut child) = self.0.take() {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

/// Spawns this same test binary as a cooperative worker process with the
/// given owner id and kill schedule (`""` = run to completion).
fn spawn_worker(owner: &str, failpoints: &str) -> ChildGuard {
    let exe = std::env::current_exe().expect("test binary path");
    let mut cmd = Command::new(exe);
    cmd.arg("chaos_child_entry")
        .arg("--exact")
        .env("RTRM_CHAOS_OWNER", owner)
        .stdout(Stdio::null())
        .stderr(Stdio::null());
    if failpoints.is_empty() {
        cmd.env_remove("RTRM_FAILPOINTS");
    } else {
        cmd.env("RTRM_FAILPOINTS", failpoints);
    }
    ChildGuard(Some(cmd.spawn().expect("spawn chaos worker")))
}

/// Zeroes `elapsed_ms` so deterministic checkpoints compare byte-equal
/// (cell order needs no normalization: both engines emit grid order).
fn normalize_checkpoint(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for line in text.lines() {
        match line.find("\"elapsed_ms\": ") {
            Some(pos) => {
                let prefix = &line[..pos + "\"elapsed_ms\": ".len()];
                let suffix = if line.ends_with("},") { "0}," } else { "0}" };
                out.push_str(prefix);
                out.push_str(suffix);
            }
            None => out.push_str(line),
        }
        out.push('\n');
    }
    out
}

/// Runs the sequential single-process reference once and returns its
/// normalized checkpoint, leaving `results/` wiped for the chaos run.
fn sequential_reference() -> String {
    fresh_cleanup(SWEEP_NAME);
    let outcome = run_sweep(
        &chaos_spec(),
        &SweepOptions {
            fresh: true,
            quiet: true,
            ..SweepOptions::default()
        },
    )
    .expect("sequential reference runs");
    let text = fs::read_to_string(&outcome.checkpoint_path).expect("read reference checkpoint");
    let _ = fs::remove_file(&outcome.csv_path);
    fresh_cleanup(SWEEP_NAME);
    normalize_checkpoint(&text)
}

/// One kill schedule: a victim worker armed with `failpoints` races a
/// surviving in-process worker. The victim must die (nonzero exit), the
/// survivor must finish the grid, and the merged canonical checkpoint must
/// equal the sequential reference byte-for-byte (modulo `elapsed_ms`).
fn run_schedule(failpoints: &str) {
    let reference = sequential_reference();

    let victim = spawn_worker("victim", failpoints);
    // Let the victim engage the protocol (claim, execute, die) before the
    // survivor starts sweeping cells out from under it.
    std::thread::sleep(Duration::from_millis(200));
    let outcome =
        run_sweep(&chaos_spec(), &coop_options("survivor")).expect("surviving worker completes");

    let status = victim.wait();
    assert!(
        !status.success(),
        "the victim must have been killed by its armed abort ({failpoints}), got {status}"
    );

    assert_eq!(outcome.cells.len(), 4, "survivor sees the full grid");
    let merged = fs::read_to_string(&outcome.checkpoint_path).expect("read merged checkpoint");
    assert_eq!(
        normalize_checkpoint(&merged),
        reference,
        "schedule '{failpoints}': merged checkpoint diverged from the sequential run"
    );

    let _ = fs::remove_file(&outcome.csv_path);
    fresh_cleanup(SWEEP_NAME);
}

#[test]
fn worker_killed_mid_claim_is_taken_over() {
    let _serial = lock();
    // Key 0: right after winning `create_new`, before the heartbeat write —
    // the orphaned claim file is empty and only its mtime marks it dead.
    run_schedule("sweep::claim=abort@1#0");
}

#[test]
fn worker_killed_mid_cell_is_taken_over() {
    let _serial = lock();
    run_schedule("batch::trace=abort@1");
}

#[test]
fn worker_killed_mid_shard_publish_loses_no_published_cells() {
    let _serial = lock();
    // Key 1: between the shard temp-file write and the atomic rename — the
    // live shard must be untorn and the unpublished cell re-executed.
    run_schedule("sweep::part_publish=abort@1#1");
}

#[test]
fn worker_killed_mid_merge_before_publish() {
    let _serial = lock();
    run_schedule("sweep::merge=abort@1#0");
}

#[test]
fn worker_killed_mid_merge_after_publish_before_cleanup() {
    let _serial = lock();
    run_schedule("sweep::merge=abort@1#1");
}

/// The acceptance-criteria fan-out: 4 real worker processes, no kill
/// schedule, all merging concurrently. Every worker must exit 0 and the
/// canonical checkpoint must match the sequential reference, with no
/// shard or claim debris left behind.
#[test]
fn four_process_cooperative_run_matches_sequential() {
    let _serial = lock();
    let reference = sequential_reference();

    let workers: Vec<ChildGuard> = (0..4)
        .map(|i| spawn_worker(&format!("proc{i}"), ""))
        .collect();
    for (i, worker) in workers.into_iter().enumerate() {
        let status = worker.wait();
        assert!(status.success(), "worker proc{i} failed: {status}");
    }

    // A late in-process worker finds everything covered, executes nothing,
    // and re-merges idempotently — handing us the canonical paths.
    let outcome =
        run_sweep(&chaos_spec(), &coop_options("verifier")).expect("post-hoc verifier completes");
    assert_eq!(
        outcome.resumed, 4,
        "the 4 worker processes did all the work; the verifier resumed everything"
    );
    let merged = fs::read_to_string(&outcome.checkpoint_path).expect("merged exists");
    assert_eq!(
        normalize_checkpoint(&merged),
        reference,
        "4-process merged checkpoint diverged from the sequential run"
    );
    let dir = outcome.checkpoint_path.parent().expect("results dir");
    assert!(
        !dir.join(format!("{SWEEP_NAME}.sweep.claims")).exists(),
        "claims directory cleaned up"
    );
    for entry in fs::read_dir(dir).expect("list results") {
        let name = entry.expect("entry").file_name();
        let name = name.to_string_lossy().into_owned();
        assert!(
            !(name.starts_with(&format!("{SWEEP_NAME}.sweep.")) && name.ends_with(".part.json")),
            "shard {name} left behind"
        );
    }

    let _ = fs::remove_file(&outcome.csv_path);
    fresh_cleanup(SWEEP_NAME);
}
