//! Schema sanity checks for the checked-in `BENCH_*.json` records: a
//! hand-rolled mini JSON parser (the workspace deliberately carries no JSON
//! dependency) that fails CI when a bench record goes stale — wrong shape,
//! missing series, or a depth sweep that no longer covers the acceptance
//! point (depth 128).

use std::collections::BTreeMap;

/// A minimal JSON value: just enough for flat bench records.
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Json>),
    Object(BTreeMap<String, Json>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(m) => m.get(key),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(a) => Some(a),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {} (found {:?})",
                b as char,
                self.pos,
                self.bytes.get(self.pos).map(|&c| c as char)
            ))
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(_) => self.number(),
            None => Err("unexpected end of input".into()),
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .map(Json::Number)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    // Bench records contain no escapes; pass them through
                    // verbatim so a malformed file still fails loudly later.
                    out.push('\\');
                    self.pos += 1;
                }
                Some(&b) => {
                    out.push(b as char);
                    self.pos += 1;
                }
                None => return Err("unterminated string".into()),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                other => return Err(format!("expected ',' or ']' (found {other:?})")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            map.insert(key, self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(map));
                }
                other => return Err(format!("expected ',' or '}}' (found {other:?})")),
            }
        }
    }
}

fn parse(text: &str) -> Json {
    let mut p = Parser::new(text);
    let v = p.value().expect("valid JSON");
    p.skip_ws();
    assert_eq!(p.pos, p.bytes.len(), "trailing garbage after JSON value");
    v
}

fn load(name: &str) -> Json {
    let path = format!("{}/../../{name}", env!("CARGO_MANIFEST_DIR"));
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("{name} must be checked in at the workspace root: {e}"));
    parse(&text)
}

/// Common envelope: `bench` name, `units`, non-empty `results` rows each
/// carrying a positive `depth` and a positive `speedup`, with depth 128
/// present (the acceptance point the README quotes).
fn check_envelope(doc: &Json, bench: &str, row_check: impl Fn(&Json)) {
    assert_eq!(doc.get("bench").and_then(Json::as_str), Some(bench));
    assert_eq!(
        doc.get("units").and_then(Json::as_str),
        Some("ns_per_call"),
        "stale units field"
    );
    let results = doc
        .get("results")
        .and_then(Json::as_array)
        .expect("results array");
    assert!(!results.is_empty(), "empty results");
    let mut saw_128 = false;
    for row in results {
        let depth = row.get("depth").and_then(Json::as_f64).expect("row depth");
        assert!(depth > 0.0 && depth.fract() == 0.0, "bad depth {depth}");
        saw_128 |= depth == 128.0;
        let speedup = row
            .get("speedup")
            .and_then(Json::as_f64)
            .expect("row speedup");
        assert!(speedup > 0.0, "non-positive speedup");
        row_check(row);
    }
    assert!(saw_128, "depth sweep must include the acceptance point 128");
}

#[test]
fn bench_edf_json_schema_is_current() {
    let doc = load("BENCH_edf.json");
    check_envelope(&doc, "edf_is_schedulable", |row| {
        let kind = row.get("kind").and_then(Json::as_str).expect("row kind");
        assert!(matches!(kind, "cpu" | "gpu"), "unknown kind {kind}");
        assert!(row.get("event_ns").and_then(Json::as_f64).unwrap() > 0.0);
        assert!(row.get("reference_ns").and_then(Json::as_f64).unwrap() > 0.0);
        // With-phantom columns: incremental timeline probe vs the memoized
        // engine oracle over a queue holding one future-released job.
        assert!(
            row.get("timeline_phantom_ns")
                .and_then(Json::as_f64)
                .expect("row timeline_phantom_ns")
                > 0.0
        );
        assert!(
            row.get("oracle_phantom_ns")
                .and_then(Json::as_f64)
                .expect("row oracle_phantom_ns")
                > 0.0
        );
        assert!(
            row.get("phantom_speedup")
                .and_then(Json::as_f64)
                .expect("row phantom_speedup")
                > 0.0
        );
    });
    // On the preemptable kind at the acceptance depth the segment sweep must
    // clearly beat re-running the engine per probe.
    let results = doc.get("results").and_then(Json::as_array).unwrap();
    let cpu_128 = results
        .iter()
        .find(|r| {
            r.get("kind").and_then(Json::as_str) == Some("cpu")
                && r.get("depth").and_then(Json::as_f64) == Some(128.0)
        })
        .expect("cpu row at depth 128");
    let phantom_speedup = cpu_128
        .get("phantom_speedup")
        .and_then(Json::as_f64)
        .unwrap();
    assert!(
        phantom_speedup >= 2.0,
        "cpu phantom probe speedup at depth 128 regressed below 2x: {phantom_speedup}"
    );
}

#[test]
fn bench_activation_json_schema_is_current() {
    let doc = load("BENCH_activation.json");
    let mut series = Vec::new();
    check_envelope(&doc, "activation_latency", |row| {
        let s = row
            .get("series")
            .and_then(Json::as_str)
            .expect("row series");
        assert!(
            matches!(
                s,
                "heuristic_decide"
                    | "milp_fallback_decide"
                    | "heuristic_decide_phantom"
                    | "milp_fallback_decide_phantom"
                    | "simulate_100_requests_heuristic"
            ),
            "unknown series {s}"
        );
        assert!(row.get("baseline_ns").and_then(Json::as_f64).unwrap() > 0.0);
        assert!(row.get("incremental_ns").and_then(Json::as_f64).unwrap() > 0.0);
    });
    for row in doc.get("results").and_then(Json::as_array).unwrap() {
        series.push((
            row.get("series").and_then(Json::as_str).unwrap().to_owned(),
            row.get("depth").and_then(Json::as_f64).unwrap() as u64,
            row.get("speedup").and_then(Json::as_f64).unwrap(),
        ));
    }
    // All five series must be present...
    for want in [
        "heuristic_decide",
        "milp_fallback_decide",
        "heuristic_decide_phantom",
        "milp_fallback_decide_phantom",
        "simulate_100_requests_heuristic",
    ] {
        assert!(
            series.iter().any(|(s, _, _)| s == want),
            "missing series {want}"
        );
    }
    // ...and the recorded speedups must meet the acceptance bars: 2x
    // end-to-end, and 2x for the with-phantom decide() series now that
    // preemptable future releases stay on the incremental path.
    for (want, label) in [
        ("simulate_100_requests_heuristic", "end-to-end"),
        ("heuristic_decide_phantom", "with-phantom heuristic"),
        ("milp_fallback_decide_phantom", "with-phantom milp fallback"),
    ] {
        let row_128 = series
            .iter()
            .find(|(s, d, _)| s == want && *d == 128)
            .unwrap_or_else(|| panic!("{want} row at depth 128"));
        assert!(
            row_128.2 >= 2.0,
            "recorded {label} speedup at depth 128 regressed below 2x: {}",
            row_128.2
        );
    }
}

/// `BENCH_platform.json` — the resource-count scaling record for the
/// pruned candidate path (`platform_scale` bin). The depth column is the
/// *resource count*; the acceptance bar is a >= 5x heuristic decide speedup
/// at 128 resources and beyond, pruned (shared `CandidateTable` + installed
/// `PlatformIndex`) vs the legacy rebuild-per-rung path.
#[test]
fn bench_platform_json_schema_is_current() {
    let doc = load("BENCH_platform.json");
    let mut series = Vec::new();
    check_envelope(&doc, "platform_scale", |row| {
        let s = row
            .get("series")
            .and_then(Json::as_str)
            .expect("row series");
        assert!(
            matches!(
                s,
                "heuristic_decide" | "heuristic_decide_phantom" | "exact_decide_phantom"
            ),
            "unknown series {s}"
        );
        assert!(row.get("baseline_ns").and_then(Json::as_f64).unwrap() > 0.0);
        assert!(row.get("pruned_ns").and_then(Json::as_f64).unwrap() > 0.0);
    });
    for row in doc.get("results").and_then(Json::as_array).unwrap() {
        series.push((
            row.get("series").and_then(Json::as_str).unwrap().to_owned(),
            row.get("depth").and_then(Json::as_f64).unwrap() as u64,
            row.get("speedup").and_then(Json::as_f64).unwrap(),
        ));
    }
    for want in [
        "heuristic_decide",
        "heuristic_decide_phantom",
        "exact_decide_phantom",
    ] {
        assert!(
            series.iter().any(|(s, _, _)| s == want),
            "missing series {want}"
        );
    }
    // The sweep must cover the full resource axis...
    for want in [6, 32, 128, 512] {
        assert!(
            series
                .iter()
                .any(|(s, d, _)| s == "heuristic_decide" && *d == want),
            "heuristic_decide must cover {want} resources"
        );
    }
    // ...and hold the acceptance bar at 128 resources and beyond: the
    // pruned heuristic decide must be at least 5x the unpruned baseline.
    for (s, d, speedup) in &series {
        if s.starts_with("heuristic") && *d >= 128 {
            assert!(
                *speedup >= 5.0,
                "recorded {s} speedup at {d} resources regressed below 5x: {speedup}"
            );
        }
        if s == "exact_decide_phantom" {
            assert!(
                *speedup >= 1.0,
                "pruned exact ladder slower than the legacy path at {d}: {speedup}"
            );
        }
    }
}

/// `BENCH_milp.json` — the exact-backend warm-start/presolve record
/// (`milp_scale` bin). The depth column is the resource count; the
/// acceptance bar is a >= 3x ladder-decide speedup at 128 resources and
/// beyond, warm-started + presolved defaults vs the cold/unpresolved
/// baseline on the contended pair fixture. The `milp_encoded_decide`
/// series (the literal Sec 4.2 encoding) is recorded for honesty at the
/// sizes its dense simplex tolerates — there the LP-guided search does not
/// fall into the DFS trap, so no bar beyond positivity applies.
#[test]
fn bench_milp_json_schema_is_current() {
    let doc = load("BENCH_milp.json");
    let mut series = Vec::new();
    check_envelope(&doc, "milp_scale", |row| {
        let s = row
            .get("series")
            .and_then(Json::as_str)
            .expect("row series");
        assert!(
            matches!(s, "milp_ladder_decide" | "milp_encoded_decide"),
            "unknown series {s}"
        );
        assert!(row.get("baseline_ns").and_then(Json::as_f64).unwrap() > 0.0);
        assert!(row.get("warm_ns").and_then(Json::as_f64).unwrap() > 0.0);
    });
    for row in doc.get("results").and_then(Json::as_array).unwrap() {
        series.push((
            row.get("series").and_then(Json::as_str).unwrap().to_owned(),
            row.get("depth").and_then(Json::as_f64).unwrap() as u64,
            row.get("speedup").and_then(Json::as_f64).unwrap(),
        ));
    }
    for want in ["milp_ladder_decide", "milp_encoded_decide"] {
        assert!(
            series.iter().any(|(s, _, _)| s == want),
            "missing series {want}"
        );
    }
    // The ladder series must cover the scaling axis...
    for want in [32, 128, 512] {
        assert!(
            series
                .iter()
                .any(|(s, d, _)| s == "milp_ladder_decide" && *d == want),
            "milp_ladder_decide must cover {want} resources"
        );
    }
    // ...and hold the acceptance bar at 128 resources and beyond: the
    // warm-started, presolved exact ladder must be at least 3x the cold
    // baseline (the recorded runs show ~20x and ~40x).
    for (s, d, speedup) in &series {
        if s == "milp_ladder_decide" && *d >= 128 {
            assert!(
                *speedup >= 3.0,
                "recorded {s} speedup at {d} resources regressed below 3x: {speedup}"
            );
        }
    }
}

/// `BENCH_horizon.json` — the horizon-depth scaling record (`horizon`
/// bin). The depth column is the number of admitted phantoms `k`, so it
/// does not go through [`check_envelope`] (which pins depth 128): the
/// acceptance points are k ∈ {1, 2, 4, 8} for the heuristic series, and
/// every row must record `engine_verdicts: 0` — the ISSUE's invariant that
/// deeper horizons stay on the preemptable fast path.
#[test]
fn bench_horizon_json_schema_is_current() {
    let doc = load("BENCH_horizon.json");
    assert_eq!(doc.get("bench").and_then(Json::as_str), Some("horizon"));
    assert_eq!(
        doc.get("units").and_then(Json::as_str),
        Some("ns_per_call"),
        "stale units field"
    );
    let results = doc
        .get("results")
        .and_then(Json::as_array)
        .expect("results array");
    assert!(!results.is_empty(), "empty results");
    let mut series = Vec::new();
    for row in results {
        let s = row
            .get("series")
            .and_then(Json::as_str)
            .expect("row series");
        assert!(
            matches!(s, "heuristic_decide" | "exact_decide"),
            "unknown series {s}"
        );
        let depth = row.get("depth").and_then(Json::as_f64).expect("row depth");
        assert!(depth > 0.0 && depth.fract() == 0.0, "bad depth {depth}");
        assert!(row.get("baseline_ns").and_then(Json::as_f64).unwrap() > 0.0);
        assert!(row.get("decide_ns").and_then(Json::as_f64).unwrap() > 0.0);
        assert!(row.get("ratio").and_then(Json::as_f64).unwrap() > 0.0);
        assert_eq!(
            row.get("engine_verdicts").and_then(Json::as_f64),
            Some(0.0),
            "{s} k={depth}: a preemptable probe left the incremental fast path"
        );
        series.push((s.to_owned(), depth as u64));
    }
    for want in [1, 2, 4, 8] {
        assert!(
            series
                .iter()
                .any(|(s, d)| s == "heuristic_decide" && *d == want),
            "heuristic_decide must cover horizon depth {want}"
        );
    }
    assert!(
        series.iter().any(|(s, d)| s == "exact_decide" && *d > 1),
        "exact_decide must cover a multi-phantom rung"
    );
}

/// `BENCH_sweep.json` has its own acceptance points (batch sizes 64 and
/// 512), so it does not go through [`check_envelope`] (which pins 128).
#[test]
fn bench_sweep_json_schema_is_current() {
    let doc = load("BENCH_sweep.json");
    assert_eq!(
        doc.get("bench").and_then(Json::as_str),
        Some("sweep_throughput")
    );
    assert_eq!(
        doc.get("units").and_then(Json::as_str),
        Some("ns_per_trace"),
        "stale units field"
    );
    let results = doc
        .get("results")
        .and_then(Json::as_array)
        .expect("results array");
    assert!(!results.is_empty(), "empty results");
    let mut batches = Vec::new();
    for row in results {
        assert_eq!(
            row.get("series").and_then(Json::as_str),
            Some("warm_pool_vs_cold"),
            "unknown series"
        );
        let depth = row.get("depth").and_then(Json::as_f64).expect("row depth");
        assert!(depth > 0.0 && depth.fract() == 0.0, "bad depth {depth}");
        batches.push(depth as u64);
        assert!(row.get("baseline_ns").and_then(Json::as_f64).unwrap() > 0.0);
        assert!(row.get("incremental_ns").and_then(Json::as_f64).unwrap() > 0.0);
        let speedup = row
            .get("speedup")
            .and_then(Json::as_f64)
            .expect("row speedup");
        assert!(speedup > 0.0, "non-positive speedup");
    }
    for want in [64, 512] {
        assert!(
            batches.contains(&want),
            "batch-size sweep must include the acceptance point {want}"
        );
    }
}

/// `BENCH_service.json` — the streaming service's latency record. Two
/// scenarios must be present: `poisson` (paced steady state, no budget —
/// so no timeout or degradation can appear) and `overload` (firehose with
/// a near-zero anytime budget — which must show the budget ladder working:
/// degraded verdicts and counted expiries, with the backlog still bounded).
#[test]
fn bench_service_json_schema_is_current() {
    let doc = load("BENCH_service.json");
    assert_eq!(
        doc.get("bench").and_then(Json::as_str),
        Some("service_latency")
    );
    assert_eq!(
        doc.get("units").and_then(Json::as_str),
        Some("ns"),
        "stale units field"
    );
    let scenarios = doc
        .get("scenarios")
        .and_then(Json::as_array)
        .expect("scenarios array");
    let mut names = Vec::new();
    for row in scenarios {
        let name = row
            .get("scenario")
            .and_then(Json::as_str)
            .expect("scenario name");
        names.push(name.to_owned());
        let field = |key: &str| {
            row.get(key)
                .and_then(Json::as_f64)
                .unwrap_or_else(|| panic!("{name}: numeric field {key}"))
        };
        let requests = field("requests");
        assert!(requests > 0.0, "{name}: empty run");
        assert_eq!(
            field("admitted") + field("rejected"),
            requests,
            "{name}: every request needs a verdict"
        );
        assert!(field("shards") >= 1.0);
        let (p50, p99, p999, max) = (
            field("p50_ns"),
            field("p99_ns"),
            field("p999_ns"),
            field("max_ns"),
        );
        assert!(p50 > 0.0, "{name}: zero p50");
        assert!(
            p50 <= p99 && p99 <= p999 && p999 <= max,
            "{name}: quantiles must be nondecreasing ({p50} / {p99} / {p999} / {max})"
        );
        assert!(field("throughput_per_sec") > 0.0, "{name}: no throughput");
        assert!(field("max_backlog") >= 0.0);
        assert!(field("backpressure_waits") >= 0.0);
        match name {
            "poisson" => {
                assert_eq!(field("degraded"), 0.0, "unbudgeted run cannot degrade");
                assert_eq!(field("solver_timeouts"), 0.0);
            }
            "overload" => {
                assert!(
                    field("degraded") > 0.0,
                    "overload must show the budget ladder degrading verdicts"
                );
                assert!(field("solver_timeouts") > 0.0);
                assert_eq!(
                    field("degraded"),
                    field("admitted"),
                    "near-zero budget: every admission comes from the ladder's floor"
                );
            }
            other => panic!("unknown scenario {other}"),
        }
    }
    for want in ["poisson", "overload"] {
        assert!(names.iter().any(|n| n == want), "missing scenario {want}");
    }
}

/// The sweep driver's checkpoint document: run a tiny sweep and validate
/// the file it persists under `results/` — header identity fields plus the
/// full per-cell metric set, so `load_checkpoint` and external consumers
/// agree on the schema.
#[test]
fn sweep_checkpoint_schema_is_current() {
    use rtrm_bench::sweep::{run_sweep, GridWorkload, PredictorSpec, SweepOptions, SweepSpec};
    use rtrm_bench::{Group, Policy, Scale};

    let spec = SweepSpec {
        name: "test_checkpoint_schema",
        scale: Scale {
            traces: 2,
            trace_len: 20,
            seed: 5,
        },
        workload: GridWorkload::Paper {
            groups: vec![Group::Vt],
        },
        policies: vec![Policy::Heuristic],
        predictors: vec![PredictorSpec::off(), PredictorSpec::perfect()],
    };
    let outcome = run_sweep(
        &spec,
        &SweepOptions {
            fresh: true,
            quiet: true,
            ..SweepOptions::default()
        },
    )
    .expect("sweep runs");
    let text = std::fs::read_to_string(&outcome.checkpoint_path).expect("checkpoint written");
    let doc = parse(&text);

    assert_eq!(
        doc.get("sweep").and_then(Json::as_str),
        Some("test_checkpoint_schema")
    );
    for (key, want) in [
        ("version", 2.0),
        ("seed", 5.0),
        ("traces_per_cell", 2.0),
        ("trace_len", 20.0),
    ] {
        assert_eq!(
            doc.get(key).and_then(Json::as_f64),
            Some(want),
            "header {key}"
        );
    }
    let cells = doc
        .get("cells")
        .and_then(Json::as_array)
        .expect("cells array");
    assert_eq!(cells.len(), 2, "one cell per predictor");
    for cell in cells {
        for key in ["key", "workload", "policy", "predictor"] {
            assert!(
                cell.get(key).and_then(Json::as_str).is_some(),
                "cell string field {key}"
            );
        }
        for key in [
            "traces",
            "requests",
            "accepted",
            "rejected",
            "mean_rejection_percent",
            "mean_energy",
            "degraded_activations",
            "elapsed_ms",
        ] {
            assert!(
                cell.get(key).and_then(Json::as_f64).is_some(),
                "cell numeric field {key}"
            );
        }
        let key = cell.get("key").and_then(Json::as_str).unwrap();
        let parts: Vec<&str> = key.split('/').collect();
        assert_eq!(parts.len(), 3, "key is workload/policy/predictor: {key}");
        assert_eq!(cell.get("workload").and_then(Json::as_str), Some(parts[0]));
        assert_eq!(cell.get("policy").and_then(Json::as_str), Some(parts[1]));
        assert_eq!(cell.get("predictor").and_then(Json::as_str), Some(parts[2]));
    }

    let _ = std::fs::remove_file(&outcome.checkpoint_path);
    let _ = std::fs::remove_file(&outcome.csv_path);
}

#[test]
fn mini_parser_rejects_malformed_records() {
    let mut p = Parser::new("{\"a\": [1, 2");
    assert!(p.value().is_err(), "unterminated array must not parse");
    let mut p = Parser::new("{\"a\" 1}");
    assert!(p.value().is_err(), "missing colon must not parse");
    // A stale-formatted record (results as an object) fails the envelope.
    let stale =
        parse("{\"bench\": \"edf_is_schedulable\", \"units\": \"ns_per_call\", \"results\": {}}");
    assert!(stale.get("results").and_then(Json::as_array).is_none());
}
