//! Offline drop-in subset of `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its data types but
//! never exercises an actual serializer (JSON output is written by hand in
//! the bench harness). This compat crate therefore provides the two traits
//! as markers plus no-op derive macros, which is exactly enough for every
//! `#[derive(Serialize, Deserialize)]` and `#[serde(...)]` attribute in the
//! tree to compile unchanged. If a future PR needs real serialization,
//! extend the traits here (or swap the real crates back in when registry
//! access is available) — call sites will not change.

#![warn(missing_docs)]

/// Marker for types whose values can be serialized.
///
/// No-op in the offline compat build; see the crate docs.
pub trait Serialize {}

/// Marker for types whose values can be deserialized.
///
/// No-op in the offline compat build; see the crate docs.
pub trait Deserialize<'de>: Sized {}

/// Marker for types deserializable without borrowing from the input.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T> DeserializeOwned for T where T: for<'de> Deserialize<'de> {}

pub use serde_derive::{Deserialize, Serialize};
