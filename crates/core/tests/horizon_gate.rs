//! Property suite for the confidence gate ([`rtrm_core::gate_horizon`]):
//! whatever the candidate stream looks like, the gated prefix must be a
//! subset of the input, sorted highest-confidence-first, capped at `depth`,
//! and strictly above θ — and θ = 1.0 must always gate everything.

use proptest::prelude::*;
use rtrm_core::{gate_horizon, HorizonPolicy};

fn candidates() -> impl Strategy<Value = Vec<(f64, usize)>> {
    prop::collection::vec(((0.0f64..=1.0, any::<bool>()), any::<usize>()), 0..32).prop_map(|v| {
        v.into_iter()
            // A sprinkle of NaN confidences: the gate must drop them.
            .map(|((c, nan), p)| (if nan && c < 0.05 { f64::NAN } else { c }, p))
            .collect()
    })
}

proptest! {
    /// The gated prefix: ≤ depth items, all strictly above θ, sorted
    /// descending, and each drawn from the input (by payload identity).
    #[test]
    fn gate_output_is_a_sorted_clearing_subset(
        mut cands in candidates(),
        depth in 0usize..8,
        theta in 0.0f64..=1.0,
    ) {
        let input = cands.clone();
        let policy = HorizonPolicy::new(depth, theta);
        gate_horizon(policy, &mut cands);

        prop_assert!(cands.len() <= depth);
        for &(confidence, payload) in &cands {
            prop_assert!(confidence > theta, "kept {confidence} at θ={theta}");
            prop_assert!(input.iter().any(|&(c, p)| p == payload && c == confidence));
        }
        for pair in cands.windows(2) {
            prop_assert!(pair[0].0 >= pair[1].0, "not sorted: {cands:?}");
        }
    }

    /// θ = 1.0 gates every candidate — confidence cannot strictly exceed 1.
    #[test]
    fn theta_one_gates_everything(mut cands in candidates(), depth in 0usize..8) {
        gate_horizon(HorizonPolicy::new(depth, 1.0), &mut cands);
        prop_assert!(cands.is_empty(), "survivors at θ=1: {cands:?}");
    }

    /// θ = 0.0 keeps exactly the positive-confidence candidates (up to
    /// depth) — NaN and zero-confidence never clear.
    #[test]
    fn theta_zero_keeps_positive_confidence(mut cands in candidates()) {
        let expect = cands.iter().filter(|(c, _)| *c > 0.0).count();
        gate_horizon(HorizonPolicy::new(usize::MAX, 0.0), &mut cands);
        prop_assert_eq!(cands.len(), expect);
    }
}
