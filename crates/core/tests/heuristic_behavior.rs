//! Behavioral tests pinning Algorithm 1's semantics and the fallback
//! ladder of the multi-phantom extension.

use rtrm_core::{Activation, ExactRm, HeuristicRm, JobView, ResourceManager};
use rtrm_platform::{Energy, Platform, ResourceId, TaskCatalog, TaskType, TaskTypeId, Time};
use rtrm_sched::JobKey;

fn rid(i: usize) -> ResourceId {
    ResourceId::new(i)
}

/// 2 CPUs + GPU; type 0 has a huge regret (GPU far cheaper), type 1 is
/// indifferent between CPUs.
fn regret_world() -> (Platform, TaskCatalog) {
    let platform = Platform::builder().cpus(2).gpu("g").build();
    let ids: Vec<_> = platform.ids().collect();
    let gpu_lover = TaskType::builder(0, &platform)
        .profile(ids[0], Time::new(6.0), Energy::new(50.0))
        .profile(ids[1], Time::new(6.0), Energy::new(50.0))
        .profile(ids[2], Time::new(5.0), Energy::new(1.0))
        .build();
    let indifferent = TaskType::builder(1, &platform)
        .profile(ids[0], Time::new(6.0), Energy::new(10.0))
        .profile(ids[1], Time::new(6.0), Energy::new(10.5))
        .profile(ids[2], Time::new(5.0), Energy::new(9.0))
        .build();
    (platform, TaskCatalog::new(vec![gpu_lover, indifferent]))
}

#[test]
fn max_regret_task_claims_the_contested_resource() {
    // Both tasks fit on the GPU alone, but not together (deadline 8 < 10).
    // The regret rule gives the GPU to the task that suffers most without
    // it (type 0: regret 49), not to the arriving task order.
    let (platform, catalog) = regret_world();
    let indifferent_active =
        JobView::fresh(JobKey(0), TaskTypeId::new(1), Time::ZERO, Time::new(8.0));
    let arriving = JobView::fresh(JobKey(1), TaskTypeId::new(0), Time::ZERO, Time::new(8.0));
    let mut rm = HeuristicRm::new();
    let d = rm.decide(&Activation {
        now: Time::ZERO,
        platform: &platform,
        catalog: &catalog,
        active: &[indifferent_active],
        arriving,
        predicted: &[],
    });
    assert!(d.admitted);
    let a1 = d.assignments.iter().find(|a| a.key == JobKey(1)).unwrap();
    assert_eq!(a1.resource, rid(2), "the high-regret task takes the GPU");
    let a0 = d.assignments.iter().find(|a| a.key == JobKey(0)).unwrap();
    assert_ne!(a0.resource, rid(2));
}

#[test]
fn ablation_variant_differs_and_both_stay_sound() {
    let (platform, catalog) = regret_world();
    let active = [
        JobView::fresh(JobKey(0), TaskTypeId::new(1), Time::ZERO, Time::new(8.0)),
        JobView::fresh(JobKey(1), TaskTypeId::new(1), Time::ZERO, Time::new(16.0)),
    ];
    let arriving = JobView::fresh(JobKey(2), TaskTypeId::new(0), Time::ZERO, Time::new(8.0));
    let activation = Activation {
        now: Time::ZERO,
        platform: &platform,
        catalog: &catalog,
        active: &active,
        arriving,
        predicted: &[],
    };
    let d_regret = HeuristicRm::new().decide(&activation);
    let d_plain = HeuristicRm::without_regret_ordering().decide(&activation);
    assert!(d_regret.admitted);
    assert!(d_plain.admitted);
    // Regret ordering finds the cheap plan (GPU to the gpu-lover); input
    // ordering lets an indifferent task sit on the GPU first.
    assert!(
        d_regret.objective <= d_plain.objective,
        "regret {} vs plain {}",
        d_regret.objective,
        d_plain.objective
    );
}

#[test]
fn fallback_ladder_drops_far_phantoms_first() {
    // GPU-only platform pressure: two phantoms cannot both fit, one can.
    let platform = Platform::builder().cpus(1).gpu("g").build();
    let ids: Vec<_> = platform.ids().collect();
    let ty = TaskType::builder(0, &platform)
        .profile(ids[0], Time::new(40.0), Energy::new(20.0))
        .profile(ids[1], Time::new(4.0), Energy::new(1.0))
        .build();
    let catalog = TaskCatalog::new(vec![ty]);
    let arriving = JobView::fresh(JobKey(0), TaskTypeId::new(0), Time::ZERO, Time::new(6.0));
    // Phantom 1 fits after the arriving task; phantom 2 cannot (deadline
    // math: GPU busy 0–4 (arriving), 4–8 (p1 ≤ 5+... ).
    let p1 = JobView::fresh(
        JobKey(100),
        TaskTypeId::new(0),
        Time::new(4.0),
        Time::new(9.0),
    );
    let p2 = JobView::fresh(
        JobKey(101),
        TaskTypeId::new(0),
        Time::new(5.0),
        Time::new(10.0),
    );
    let phantoms = [p1, p2];
    let mut rm = HeuristicRm::new();
    let d = rm.decide(&Activation {
        now: Time::ZERO,
        platform: &platform,
        catalog: &catalog,
        active: &[],
        arriving,
        predicted: &phantoms,
    });
    assert!(d.admitted);
    assert!(
        d.used_prediction,
        "dropping to one phantom must still count as prediction-guided"
    );
}

#[test]
fn exact_budget_zero_still_rejects_cleanly() {
    let (platform, catalog) = regret_world();
    let arriving = JobView::fresh(JobKey(0), TaskTypeId::new(0), Time::ZERO, Time::new(8.0));
    let mut rm = ExactRm::with_node_budget(0);
    let d = rm.decide(&Activation {
        now: Time::ZERO,
        platform: &platform,
        catalog: &catalog,
        active: &[],
        arriving,
        predicted: &[],
    });
    assert!(!d.admitted, "a zero budget finds nothing and must reject");
}

#[test]
fn gates_empty_when_phantom_lands_on_a_cpu() {
    // CPU-only platform: reservation gates never apply.
    let platform = Platform::builder().cpus(2).build();
    let ids: Vec<_> = platform.ids().collect();
    let ty = TaskType::builder(0, &platform)
        .profile(ids[0], Time::new(3.0), Energy::new(2.0))
        .profile(ids[1], Time::new(3.0), Energy::new(2.5))
        .build();
    let catalog = TaskCatalog::new(vec![ty]);
    let arriving = JobView::fresh(JobKey(0), TaskTypeId::new(0), Time::ZERO, Time::new(20.0));
    let phantom = JobView::fresh(
        JobKey(9),
        TaskTypeId::new(0),
        Time::new(1.0),
        Time::new(21.0),
    );
    let mut rm = HeuristicRm::new();
    let d = rm.decide(&Activation {
        now: Time::ZERO,
        platform: &platform,
        catalog: &catalog,
        active: &[],
        arriving,
        predicted: std::slice::from_ref(&phantom),
    });
    assert!(d.admitted && d.used_prediction);
    assert!(
        d.start_gates.is_empty(),
        "preemptable resources need no gates"
    );
}

#[test]
fn gates_cover_gpu_queue_when_phantom_reserves_it() {
    let platform = Platform::builder().cpus(1).gpu("g").build();
    let ids: Vec<_> = platform.ids().collect();
    let ty = TaskType::builder(0, &platform)
        .profile(ids[0], Time::new(30.0), Energy::new(20.0))
        .profile(ids[1], Time::new(4.0), Energy::new(1.0))
        .build();
    let catalog = TaskCatalog::new(vec![ty]);
    // A task is mid-run on the GPU (pinned, finishes at t=2). The phantom
    // (release 1, deadline 7) takes the slot right after it; the arriving
    // GPU-only task (deadline 20 < CPU wcet 30) is planned after the
    // phantom — its planned start is the gate the simulator will honour.
    let mut running = JobView::fresh(JobKey(5), TaskTypeId::new(0), Time::ZERO, Time::new(10.0));
    running.placement = Some(rtrm_core::Placement {
        resource: ids[1],
        remaining_fraction: 0.5, // 2 of 4 GPU units left
        started: true,
        speed: 1.0,
    });
    let arriving = JobView::fresh(JobKey(0), TaskTypeId::new(0), Time::ZERO, Time::new(20.0));
    let phantom = JobView::fresh(
        JobKey(9),
        TaskTypeId::new(0),
        Time::new(1.0),
        Time::new(7.0),
    );
    let mut rm = ExactRm::new();
    let d = rm.decide(&Activation {
        now: Time::ZERO,
        platform: &platform,
        catalog: &catalog,
        active: &[running],
        arriving,
        predicted: std::slice::from_ref(&phantom),
    });
    assert!(d.admitted && d.used_prediction, "{d:?}");
    let gate = d
        .start_gates
        .iter()
        .find(|(k, _)| *k == JobKey(0))
        .map(|(_, t)| *t)
        .expect("the arriving GPU task is gated");
    // Timeline: pinned task 0–2, phantom 2–6 (deadline 7), arriving 6–10.
    assert_eq!(gate, Time::new(6.0));
}

#[test]
fn window_counts_future_phantom_work_from_activation_instant() {
    // Regression for the K̄ capacity rule: the paper's t_left runs from the
    // activation instant t, so a future-released phantom's work must count
    // against the span up to its absolute deadline — otherwise feasible
    // plans get rejected by the knapsack capacity check.
    let platform = Platform::builder().cpus(1).gpu("g").build();
    let ids: Vec<_> = platform.ids().collect();
    let ty = TaskType::builder(0, &platform)
        .profile(ids[0], Time::new(40.0), Energy::new(20.0))
        .profile(ids[1], Time::new(4.0), Energy::new(1.0))
        .build();
    let catalog = TaskCatalog::new(vec![ty]);
    // Arriving: GPU 0–4 (deadline 6). Phantom: release 4, deadline 9 —
    // 8 total GPU busy time, but max release-relative t_left is only 6.
    let arriving = JobView::fresh(JobKey(0), TaskTypeId::new(0), Time::ZERO, Time::new(6.0));
    let phantom = JobView::fresh(
        JobKey(9),
        TaskTypeId::new(0),
        Time::new(4.0),
        Time::new(9.0),
    );
    let mut rm = HeuristicRm::new();
    let d = rm.decide(&Activation {
        now: Time::ZERO,
        platform: &platform,
        catalog: &catalog,
        active: &[],
        arriving,
        predicted: std::slice::from_ref(&phantom),
    });
    assert!(d.admitted);
    assert!(d.used_prediction, "the 8-unit GPU plan fits inside K̄ = 9");
}

#[test]
fn static_rm_works_with_the_simulator_end_to_end() {
    use rtrm_core::StaticRm;
    let platform = Platform::builder().cpus(1).gpu("g").build();
    let ids: Vec<_> = platform.ids().collect();
    let ty = TaskType::builder(0, &platform)
        .profile(ids[0], Time::new(6.0), Energy::new(5.0))
        .profile(ids[1], Time::new(2.0), Energy::new(1.0))
        .build();
    let catalog = TaskCatalog::new(vec![ty]);
    let mut rm = StaticRm::with_spill(&catalog);
    // Static plan always targets the GPU first; spilling rescues overflow.
    let d = rm.decide(&Activation {
        now: Time::ZERO,
        platform: &platform,
        catalog: &catalog,
        active: &[],
        arriving: JobView::fresh(JobKey(0), TaskTypeId::new(0), Time::ZERO, Time::new(10.0)),
        predicted: &[],
    });
    assert!(d.admitted);
    assert_eq!(d.assignments[0].resource, ids[1]);
}

#[test]
fn penalty_weight_scales_with_pathological_energies() {
    // The infeasibility penalty `M` in the desirability function must
    // dominate *any* candidate energy of the activation. With per-job
    // energies around 1e15, a fixed constant (the old `M = 1e12`) sinks
    // below the energy terms: the penalized option looks *cheaper*, regret
    // ordering inverts, and a schedulable pair gets rejected. The derived
    // `M = 2·max_energy + 1` keeps the ordering intact.
    let platform = Platform::builder().cpus(2).build();
    let ids: Vec<_> = platform.ids().collect();
    // Type A: r1 is energy-cheapest but too slow for A's deadline (6.5 > 6);
    // r0 fits. Honest desirability must penalize r1, giving A a huge regret.
    let a = TaskType::builder(0, &platform)
        .profile(ids[0], Time::new(4.0), Energy::new(2e15))
        .profile(ids[1], Time::new(6.5), Energy::new(1e15))
        .build();
    // Type B: fits either CPU; r0 is cheaper.
    let b = TaskType::builder(1, &platform)
        .profile(ids[0], Time::new(4.0), Energy::new(1e15))
        .profile(ids[1], Time::new(4.0), Energy::new(3e15))
        .build();
    let catalog = TaskCatalog::new(vec![a, b]);
    let active = [JobView::fresh(
        JobKey(0),
        TaskTypeId::new(1),
        Time::ZERO,
        Time::new(7.0),
    )];
    let arriving = JobView::fresh(JobKey(1), TaskTypeId::new(0), Time::ZERO, Time::new(6.0));
    let d = HeuristicRm::new().decide(&Activation {
        now: Time::ZERO,
        platform: &platform,
        catalog: &catalog,
        active: &active,
        arriving,
        predicted: &[],
    });
    // A (regret ≈ 5e15) must map before B (regret 2e15) and claim r0; B
    // then takes r1. A too-small M would order B first: B fills r0, A's
    // only remaining option r1 misses its deadline, and the activation is
    // rejected.
    assert!(d.admitted, "pathological energies must not distort regret");
    let a1 = d.assignments.iter().find(|x| x.key == JobKey(1)).unwrap();
    let a0 = d.assignments.iter().find(|x| x.key == JobKey(0)).unwrap();
    assert_eq!(a1.resource, rid(0), "high-regret task claims the fast CPU");
    assert_eq!(a0.resource, rid(1));
}
