//! Randomized cross-validation of the three resource managers.
//!
//! * Without prediction, `ExactRm` (timeline branch & bound) and `MilpRm`
//!   (the paper's Sec 4.2 formulation through the bundled solver) must agree
//!   exactly: same admission verdict, same optimal objective.
//! * With prediction on CPU-only platforms both encodings are exact, so they
//!   must still agree on admission; on platforms with a GPU the MILP uses
//!   the paper's conservative "predicted task last" rule, so `MilpRm`
//!   admitting implies `ExactRm` admitting.
//! * Whenever the heuristic admits, the exact manager must admit (it
//!   searches a superset), and its objective is never worse.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use rtrm_core::{Activation, ExactRm, HeuristicRm, JobView, MilpRm, Placement, ResourceManager};
use rtrm_platform::{Energy, Platform, ResourceKind, TaskCatalog, TaskType, TaskTypeId, Time};
use rtrm_sched::JobKey;
use rtrm_trace::{generate_catalog, CatalogConfig};

/// Regression (shrunk from `Scenario { cpus: 2, with_gpu: false, seed: 0,
/// active: [], arriving_type: 0, arriving_slack: 1.2, predicted: Some((0,
/// 26.368…, 1.2)) }`): `MilpRm` computed its big-M from the
/// *release-relative* horizon (`time_left`), but the predicted-task
/// disjunction constraints are written in *activation-relative* time. For a
/// phantom arriving far enough in the future (`Δ > M − q`), the z
/// disjunction `q ≥ Δ − M(1−z)` / `q ≤ Δ + Mz` was infeasible for both
/// values of `z`, the whole with-phantom model was declared infeasible, and
/// the manager silently fell back to planning without prediction —
/// disagreeing with `ExactRm` on `used_prediction` (and on the objective).
/// Built on an explicit catalog so it does not depend on any RNG stream.
#[test]
fn milp_honours_far_future_phantom() {
    let platform = Platform::builder().cpus(1).build();
    let r0 = platform.ids().next().expect("one cpu");
    let ty = TaskType::builder(0, &platform)
        .profile(r0, Time::new(2.0), Energy::new(1.0))
        .build();
    let catalog = TaskCatalog::new(vec![ty]);

    let now = Time::new(100.0);
    let arriving = JobView::fresh(JobKey(1), TaskTypeId::new(0), now, Time::new(105.0));
    // Far-future phantom: Δ = 30 exceeds the buggy big-M of
    // 2·(work + release-relative horizon) + 1 = 2·(4 + 5) + 1 = 19.
    let phantom = JobView::fresh(
        JobKey(2),
        TaskTypeId::new(0),
        Time::new(130.0),
        Time::new(135.0),
    );
    let phantoms = [phantom];
    let activation = Activation {
        now,
        platform: &platform,
        catalog: &catalog,
        active: &[],
        arriving,
        predicted: &phantoms,
    };

    let de = ExactRm::new().decide(&activation);
    let dm = MilpRm::new().decide(&activation);
    assert!(de.admitted && dm.admitted);
    assert!(de.used_prediction, "exact honours the phantom");
    assert!(dm.used_prediction, "milp must honour the phantom too");
    assert!(
        (de.objective.value() - dm.objective.value()).abs() < 1e-5,
        "objective mismatch: exact={} milp={}",
        de.objective,
        dm.objective
    );
}

/// A compact recipe for one random activation.
#[derive(Debug, Clone)]
struct Scenario {
    cpus: usize,
    with_gpu: bool,
    seed: u64,
    /// (type index, placement resource index or none, remaining fraction,
    /// deadline slack multiplier)
    active: Vec<(usize, Option<usize>, f64, f64)>,
    arriving_type: usize,
    arriving_slack: f64,
    predicted: Option<(usize, f64, f64)>, // (type, arrival offset, slack)
}

fn scenario(max_active: usize, force_cpu_only: bool) -> impl Strategy<Value = Scenario> {
    (
        2usize..4,
        if force_cpu_only {
            Just(false).boxed()
        } else {
            any::<bool>().boxed()
        },
        any::<u64>(),
        prop::collection::vec(
            (
                0usize..6,
                prop::option::of(0usize..4),
                0.05f64..1.0,
                1.2f64..4.0,
            ),
            0..max_active,
        ),
        0usize..6,
        1.2f64..4.0,
        prop::option::of((0usize..6, 0.1f64..30.0, 1.2f64..4.0)),
    )
        .prop_map(
            |(cpus, with_gpu, seed, active, arriving_type, arriving_slack, predicted)| Scenario {
                cpus,
                with_gpu,
                seed,
                active,
                arriving_type,
                arriving_slack,
                predicted,
            },
        )
}

/// Materializes a scenario into (platform, catalog, active jobs, arriving,
/// predicted). Invalid placements (two started jobs on one GPU, placements
/// on out-of-range resources) are repaired deterministically.
fn build(
    s: &Scenario,
) -> (
    Platform,
    TaskCatalog,
    Vec<JobView>,
    JobView,
    Option<JobView>,
) {
    let mut builder = Platform::builder();
    builder.cpus(s.cpus);
    if s.with_gpu {
        builder.gpu("gpu0");
    }
    let platform = builder.build();

    let mut rng = StdRng::seed_from_u64(s.seed);
    let cfg = CatalogConfig {
        num_types: 6,
        cpu_wcet_mean: 10.0,
        cpu_wcet_std: 3.0,
        cpu_energy_mean: 5.0,
        cpu_energy_std: 1.5,
        ..CatalogConfig::paper()
    };
    let catalog = generate_catalog(&platform, &cfg, &mut rng);

    let now = Time::new(100.0);
    let mut gpu_started_taken = vec![false; platform.len()];
    let mut active = Vec::new();
    for (i, &(ty, place, frac, slack)) in s.active.iter().enumerate() {
        let ty = TaskTypeId::new(ty % catalog.len());
        let wcet_mean = catalog.task_type(ty).mean_wcet();
        let deadline = now + wcet_mean * slack;
        let mut job = JobView::fresh(JobKey(i as u64), ty, now, deadline);
        if let Some(r) = place {
            let r = rtrm_platform::ResourceId::new(r % platform.len());
            if catalog.task_type(ty).is_executable_on(r) {
                let non_preemptable = !platform.resource(r).kind().is_preemptable();
                let mut started = true;
                if non_preemptable {
                    if gpu_started_taken[r.index()] {
                        started = false; // only one mid-run job per GPU
                    } else {
                        gpu_started_taken[r.index()] = true;
                    }
                }
                job.placement = Some(Placement {
                    resource: r,
                    remaining_fraction: if started { frac } else { 1.0 },
                    started,
                    speed: 1.0,
                });
            }
        }
        active.push(job);
    }

    let arr_ty = TaskTypeId::new(s.arriving_type % catalog.len());
    let arriving = JobView::fresh(
        JobKey(1000),
        arr_ty,
        now,
        now + catalog.task_type(arr_ty).mean_wcet() * s.arriving_slack,
    );

    let predicted = s.predicted.map(|(ty, offset, slack)| {
        let ty = TaskTypeId::new(ty % catalog.len());
        let arrival = now + Time::new(offset);
        JobView::fresh(
            JobKey(2000),
            ty,
            arrival,
            arrival + catalog.task_type(ty).mean_wcet() * slack,
        )
    });

    (platform, catalog, active, arriving, predicted)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn exact_and_milp_agree_without_prediction(s in scenario(5, false)) {
        let (platform, catalog, active, arriving, _) = build(&s);
        let activation = Activation {
            now: Time::new(100.0),
            platform: &platform,
            catalog: &catalog,
            active: &active,
            arriving,
            predicted: &[],
        };
        let de = ExactRm::new().decide(&activation);
        let dm = MilpRm::new().decide(&activation);
        prop_assert_eq!(de.admitted, dm.admitted, "exact={:?} milp={:?}", de, dm);
        if de.admitted {
            prop_assert!(
                (de.objective.value() - dm.objective.value()).abs() < 1e-5,
                "objective mismatch: exact={} milp={}",
                de.objective,
                dm.objective
            );
        }
    }

    #[test]
    fn exact_and_milp_agree_with_prediction_on_cpus(s in scenario(4, true)) {
        let (platform, catalog, active, arriving, predicted) = build(&s);
        prop_assume!(predicted.is_some());
        prop_assume!(platform.ids_of_kind(ResourceKind::Gpu).count() == 0);
        let phantoms: Vec<_> = predicted.into_iter().collect();
        let activation = Activation {
            now: Time::new(100.0),
            platform: &platform,
            catalog: &catalog,
            active: &active,
            arriving,
            predicted: &phantoms,
        };
        let de = ExactRm::new().decide(&activation);
        let dm = MilpRm::new().decide(&activation);
        prop_assert_eq!(de.admitted, dm.admitted);
        prop_assert_eq!(de.used_prediction, dm.used_prediction);
        if de.admitted && de.used_prediction {
            prop_assert!(
                (de.objective.value() - dm.objective.value()).abs() < 1e-5,
                "objective mismatch: exact={} milp={}",
                de.objective,
                dm.objective
            );
        }
    }

    #[test]
    fn milp_admission_implies_exact_admission_with_prediction(s in scenario(4, false)) {
        let (platform, catalog, active, arriving, predicted) = build(&s);
        prop_assume!(predicted.is_some());
        let phantoms: Vec<_> = predicted.into_iter().collect();
        let activation = Activation {
            now: Time::new(100.0),
            platform: &platform,
            catalog: &catalog,
            active: &active,
            arriving,
            predicted: &phantoms,
        };
        let dm = MilpRm::new().decide(&activation);
        if dm.admitted {
            let de = ExactRm::new().decide(&activation);
            prop_assert!(de.admitted, "milp admitted but exact rejected");
        }
    }

    #[test]
    fn heuristic_is_dominated_by_exact(s in scenario(6, false)) {
        let (platform, catalog, active, arriving, predicted) = build(&s);
        let phantoms: Vec<_> = predicted.into_iter().collect();
        let activation = Activation {
            now: Time::new(100.0),
            platform: &platform,
            catalog: &catalog,
            active: &active,
            arriving,
            predicted: &phantoms,
        };
        let dh = HeuristicRm::new().decide(&activation);
        if dh.admitted {
            let de = ExactRm::new().decide(&activation);
            prop_assert!(de.admitted, "heuristic admitted but exact rejected");
            if de.used_prediction == dh.used_prediction {
                prop_assert!(
                    de.objective <= dh.objective + rtrm_platform::Energy::new(1e-9),
                    "exact {} worse than heuristic {}",
                    de.objective,
                    dh.objective
                );
            }
        }
    }

    /// Every admitted plan is actually schedulable when replayed through the
    /// timeline engine — for all three managers.
    #[test]
    fn admitted_plans_are_schedulable(s in scenario(5, false)) {
        let (platform, catalog, active, arriving, predicted) = build(&s);
        let phantoms: Vec<_> = predicted.into_iter().collect();
        let activation = Activation {
            now: Time::new(100.0),
            platform: &platform,
            catalog: &catalog,
            active: &active,
            arriving,
            predicted: &phantoms,
        };
        let jobs: Vec<JobView> = active.iter().copied().chain([arriving]).collect();
        for decision in [
            ExactRm::new().decide(&activation),
            HeuristicRm::new().decide(&activation),
            MilpRm::new().decide(&activation),
        ] {
            if !decision.admitted {
                continue;
            }
            // Rebuild per-resource queues from the assignments and check.
            let mut queues: Vec<Vec<rtrm_sched::PlannedJob>> = vec![Vec::new(); platform.len()];
            for a in &decision.assignments {
                let job = jobs.iter().find(|j| j.key == a.key).expect("assigned job exists");
                let cand = rtrm_core::candidates(job, &platform, &catalog, true)
                    .into_iter()
                    .find(|c| {
                        c.resource == a.resource
                            && c.restart == a.restart
                            && (c.speed - a.speed).abs() < 1e-12
                    })
                    .expect("assignment corresponds to a candidate");
                queues[a.resource.index()].push(rtrm_sched::PlannedJob {
                    key: job.key,
                    release: job.release.max(Time::new(100.0)),
                    exec: cand.exec,
                    deadline: job.deadline,
                    pinned: cand.pinned,
                });
            }
            for r in platform.ids() {
                let kind = platform.resource(r).kind();
                prop_assert!(
                    rtrm_sched::is_schedulable(kind, Time::new(100.0), &queues[r.index()]),
                    "unschedulable plan on {r} from an admitted decision"
                );
            }
        }
    }
}
