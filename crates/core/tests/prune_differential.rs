//! Differential proof that the pruned candidate path is decision-identical.
//!
//! `HeuristicRm` and `ExactRm` default to the shared [`CandidateTable`]
//! (built once per decide, index-backed when the pool carries a
//! [`PlatformIndex`], scanned through shortlist-then-widen cursors). Setting
//! `unpruned_candidates` routes the same manager through the legacy
//! rebuild-per-rung path. The two must produce *identical* [`Decision`]s —
//! admission verdict, every assignment, objective, prediction use, node
//! counts, start gates — on random platforms up to 512 resources with mixed
//! DVFS ladders, with and without an installed index. This mirrors PR 2's
//! `oracle_feasibility` differential: the fast path is only allowed to be
//! fast, never different.
//!
//! [`CandidateTable`]: rtrm_core::CandidateTable
//! [`PlatformIndex`]: rtrm_platform::PlatformIndex
//! [`Decision`]: rtrm_core::Decision

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use rtrm_core::{
    Activation, Decision, ExactRm, HeuristicRm, JobView, Placement, ResourceManager, TimelinePool,
};
use rtrm_platform::{Energy, Platform, TaskCatalog, TaskType, TaskTypeId, Time};
use rtrm_sched::JobKey;
use rtrm_trace::{generate_catalog, CatalogConfig};

/// A compact recipe for one random activation on a sized platform.
#[derive(Debug, Clone)]
struct Scenario {
    resources: usize,
    with_gpu: bool,
    seed: u64,
    /// (type index, placement resource index or none, remaining fraction,
    /// deadline slack multiplier)
    active: Vec<(usize, Option<usize>, f64, f64)>,
    arriving_type: usize,
    arriving_slack: f64,
    predicted: Option<(usize, f64, f64)>,
}

fn scenario(max_resources: usize, max_active: usize) -> impl Strategy<Value = Scenario> {
    let sizes = if max_resources > 16 {
        // Weight towards small platforms (the oneof choice is uniform, so
        // the small range is listed thrice), but visit the scaling axis the
        // `platform_scale` bench sweeps (32 / 128 / 512) every run.
        prop_oneof![
            2usize..12,
            2usize..12,
            2usize..12,
            Just(32usize),
            Just(128usize),
            Just(512usize),
        ]
        .boxed()
    } else {
        (2usize..=max_resources).boxed()
    };
    (
        sizes,
        any::<bool>(),
        any::<u64>(),
        prop::collection::vec(
            (
                0usize..6,
                prop::option::of(0usize..8),
                0.05f64..1.0,
                1.2f64..4.0,
            ),
            0..max_active,
        ),
        0usize..6,
        1.2f64..4.0,
        prop::option::of((0usize..6, 0.1f64..30.0, 1.2f64..4.0)),
    )
        .prop_map(
            |(resources, with_gpu, seed, active, arriving_type, arriving_slack, predicted)| {
                Scenario {
                    resources,
                    with_gpu,
                    seed,
                    active,
                    arriving_type,
                    arriving_slack,
                    predicted,
                }
            },
        )
}

/// Materializes a scenario: a platform whose CPUs cycle through plain and
/// two different DVFS ladders (so index rows mix speed levels), a random
/// catalog, and the activation's jobs.
fn build(
    s: &Scenario,
) -> (
    Platform,
    TaskCatalog,
    Vec<JobView>,
    JobView,
    Option<JobView>,
) {
    let mut builder = Platform::builder();
    for i in 0..s.resources {
        match i % 3 {
            0 => builder.cpu(format!("c{i}")),
            1 => builder.cpu_with_dvfs(format!("c{i}"), &[0.5, 1.0]),
            _ => builder.cpu_with_dvfs(format!("c{i}"), &[0.25, 0.5, 1.0, 2.0]),
        };
    }
    if s.with_gpu {
        builder.gpu("gpu0");
    }
    let platform = builder.build();

    let mut rng = StdRng::seed_from_u64(s.seed);
    let cfg = CatalogConfig {
        num_types: 6,
        cpu_wcet_mean: 10.0,
        cpu_wcet_std: 3.0,
        cpu_energy_mean: 5.0,
        cpu_energy_std: 1.5,
        ..CatalogConfig::paper()
    };
    let catalog = generate_catalog(&platform, &cfg, &mut rng);

    let now = Time::new(100.0);
    let mut gpu_started_taken = vec![false; platform.len()];
    let mut active = Vec::new();
    for (i, &(ty, place, frac, slack)) in s.active.iter().enumerate() {
        let ty = TaskTypeId::new(ty % catalog.len());
        let deadline = now + catalog.task_type(ty).mean_wcet() * slack;
        let mut job = JobView::fresh(JobKey(i as u64), ty, now, deadline);
        if let Some(r) = place {
            let r = rtrm_platform::ResourceId::new(r % platform.len());
            if catalog.task_type(ty).is_executable_on(r) {
                let non_preemptable = !platform.resource(r).kind().is_preemptable();
                let mut started = true;
                if non_preemptable {
                    if gpu_started_taken[r.index()] {
                        started = false;
                    } else {
                        gpu_started_taken[r.index()] = true;
                    }
                }
                job.placement = Some(Placement {
                    resource: r,
                    remaining_fraction: if started { frac } else { 1.0 },
                    started,
                    speed: 1.0,
                });
            }
        }
        active.push(job);
    }

    let arr_ty = TaskTypeId::new(s.arriving_type % catalog.len());
    let arriving = JobView::fresh(
        JobKey(1000),
        arr_ty,
        now,
        now + catalog.task_type(arr_ty).mean_wcet() * s.arriving_slack,
    );
    let predicted = s.predicted.map(|(ty, offset, slack)| {
        let ty = TaskTypeId::new(ty % catalog.len());
        let arrival = now + Time::new(offset);
        JobView::fresh(
            JobKey(2000),
            ty,
            arrival,
            arrival + catalog.task_type(ty).mean_wcet() * slack,
        )
    });
    (platform, catalog, active, arriving, predicted)
}

/// Decides `activation` three ways with `pruned`/`unpruned` (the same
/// manager type, flag flipped): legacy path, pruned path on a plain pool,
/// and pruned path on an `ensure_index`'d pool. Returns the three decisions
/// plus whether the indexed pool actually borrowed index rows.
fn decide_three_ways<M: ResourceManager>(
    activation: &Activation<'_>,
    pruned: &mut M,
    unpruned: &mut M,
) -> (Decision, Decision, Decision, bool) {
    let legacy = unpruned.decide(activation);
    let mut plain_pool = TimelinePool::new();
    let plain = pruned.decide_with_pool(activation, &mut plain_pool);
    let mut indexed_pool = TimelinePool::new();
    indexed_pool.ensure_index(activation.platform, activation.catalog);
    let indexed = pruned.decide_with_pool(activation, &mut indexed_pool);
    let borrowed = indexed_pool.prune_stats().indexed_rows > 0;
    (legacy, plain, indexed, borrowed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// The heuristic's pruned path (with and without an installed index)
    /// matches the legacy rebuild-per-rung path decision-for-decision, up
    /// to 512 resources.
    #[test]
    fn heuristic_pruned_matches_unpruned(s in scenario(512, 6)) {
        let (platform, catalog, active, arriving, predicted) = build(&s);
        let phantoms: Vec<_> = predicted.into_iter().collect();
        let activation = Activation {
            now: Time::new(100.0),
            platform: &platform,
            catalog: &catalog,
            active: &active,
            arriving,
            predicted: &phantoms,
        };
        let mut pruned = HeuristicRm::new();
        let mut unpruned = HeuristicRm::new();
        unpruned.unpruned_candidates = true;
        let (legacy, plain, indexed, borrowed) =
            decide_three_ways(&activation, &mut pruned, &mut unpruned);
        prop_assert_eq!(&plain, &legacy, "pruned (no index) diverged");
        prop_assert_eq!(&indexed, &legacy, "pruned (indexed) diverged");
        // The arriving job is always fresh, so the indexed pool must have
        // actually exercised the borrowed-row path.
        prop_assert!(borrowed, "indexed pool never borrowed an index row");
    }

    /// The exact manager's pruned path matches its legacy path on platforms
    /// small enough for branch & bound.
    #[test]
    fn exact_pruned_matches_unpruned(s in scenario(6, 4)) {
        let (platform, catalog, active, arriving, predicted) = build(&s);
        let phantoms: Vec<_> = predicted.into_iter().collect();
        let activation = Activation {
            now: Time::new(100.0),
            platform: &platform,
            catalog: &catalog,
            active: &active,
            arriving,
            predicted: &phantoms,
        };
        let mut pruned = ExactRm::new();
        let mut unpruned = ExactRm::new();
        unpruned.unpruned_candidates = true;
        let (legacy, plain, indexed, _) =
            decide_three_ways(&activation, &mut pruned, &mut unpruned);
        prop_assert_eq!(&plain, &legacy, "pruned (no index) diverged");
        prop_assert_eq!(&indexed, &legacy, "pruned (indexed) diverged");
    }
}

/// Widen-on-infeasibility actually fires — and changes nothing. Ten CPUs
/// whose eight cheapest profiles (the whole default shortlist) are too slow
/// for the deadline: the ranked scan must continue past the shortlist
/// prefix, count one widening, and still admit on the only feasible CPU,
/// identically to the unpruned manager.
#[test]
fn widening_fires_and_preserves_the_decision() {
    let mut builder = Platform::builder();
    for i in 0..10 {
        builder.cpu(format!("c{i}"));
    }
    let platform = builder.build();
    let ids: Vec<_> = platform.ids().collect();
    let mut ty = TaskType::builder(0, &platform);
    for (i, &r) in ids.iter().enumerate().take(9) {
        // Energy-ascending, all far too slow for the deadline below.
        ty.profile(r, Time::new(100.0), Energy::new(1.0 + i as f64));
    }
    // The most expensive placement is the only deadline-feasible one.
    ty.profile(ids[9], Time::new(1.0), Energy::new(50.0));
    let catalog = TaskCatalog::new(vec![ty.build()]);

    let arriving = JobView::fresh(JobKey(0), TaskTypeId::new(0), Time::ZERO, Time::new(5.0));
    let activation = Activation {
        now: Time::ZERO,
        platform: &platform,
        catalog: &catalog,
        active: &[],
        arriving,
        predicted: &[],
    };

    let mut unpruned = HeuristicRm::new();
    unpruned.unpruned_candidates = true;
    let legacy = unpruned.decide(&activation);

    let mut pool = TimelinePool::new();
    pool.ensure_index(&platform, &catalog);
    assert!(
        pool.index().is_some_and(|ix| ix.shortlist_len() == 8),
        "test world must overflow the default shortlist"
    );
    let decision = HeuristicRm::new().decide_with_pool(&activation, &mut pool);

    assert!(pool.prune_stats().widened > 0, "widening never fired");
    assert_eq!(decision, legacy, "widening changed the decision");
    assert!(decision.admitted);
    assert_eq!(decision.assignments[0].resource, ids[9]);
}
