//! The paper's motivational example (Sec 3, Table 1 and Fig 1), replayed
//! against all three resource managers.
//!
//! Platform: CPU1, CPU2, GPU. Parameters (Table 1):
//!
//! |     | s | d | WCET cpu1/cpu2/gpu | Energy cpu1/cpu2/gpu |
//! |-----|---|---|--------------------|----------------------|
//! | τ1  | 0 | 8 | 8 / 12 / 5         | 7.3 / 8.4 / 2.0      |
//! | τ2  | 1 | 5 | 7 / 8.5 / 3        | 6.2 / 7.5 / 1.5      |

use rtrm_core::{
    Activation, Decision, ExactRm, HeuristicRm, JobView, MilpRm, Placement, ResourceManager,
};
use rtrm_platform::{Energy, Platform, ResourceId, TaskCatalog, TaskType, TaskTypeId, Time};
use rtrm_sched::JobKey;

fn setup() -> (Platform, TaskCatalog) {
    let platform = Platform::builder()
        .cpu("cpu1")
        .cpu("cpu2")
        .gpu("gpu")
        .build();
    let ids: Vec<_> = platform.ids().collect();
    let tau1 = TaskType::builder(0, &platform)
        .profile(ids[0], Time::new(8.0), Energy::new(7.3))
        .profile(ids[1], Time::new(12.0), Energy::new(8.4))
        .profile(ids[2], Time::new(5.0), Energy::new(2.0))
        .build();
    let tau2 = TaskType::builder(1, &platform)
        .profile(ids[0], Time::new(7.0), Energy::new(6.2))
        .profile(ids[1], Time::new(8.5), Energy::new(7.5))
        .profile(ids[2], Time::new(3.0), Energy::new(1.5))
        .build();
    (platform, TaskCatalog::new(vec![tau1, tau2]))
}

fn rid(i: usize) -> ResourceId {
    ResourceId::new(i)
}

/// Scenario (a): without prediction the manager parks τ1 on the GPU at t=0
/// (cheapest energy), and at t=1 τ2 cannot be saved: it must be rejected.
fn scenario_without_prediction(rm: &mut dyn ResourceManager) -> (Decision, Decision) {
    let (platform, catalog) = setup();
    let tau1 = JobView::fresh(
        JobKey(0),
        TaskTypeId::new(0),
        Time::new(0.0),
        Time::new(8.0),
    );

    let d1 = rm.decide(&Activation {
        now: Time::new(0.0),
        platform: &platform,
        catalog: &catalog,
        active: &[],
        arriving: tau1,
        predicted: &[],
    });
    assert!(d1.admitted);
    assert_eq!(d1.assignments[0].resource, rid(2), "GPU is cheapest for τ1");

    // t = 1: τ1 has run 1 of its 5 GPU units.
    let mut tau1_active = tau1;
    tau1_active.placement = Some(Placement {
        resource: rid(2),
        remaining_fraction: 4.0 / 5.0,
        started: true,
        speed: 1.0,
    });
    let tau2 = JobView::fresh(
        JobKey(1),
        TaskTypeId::new(1),
        Time::new(1.0),
        Time::new(6.0),
    );
    let d2 = rm.decide(&Activation {
        now: Time::new(1.0),
        platform: &platform,
        catalog: &catalog,
        active: &[tau1_active],
        arriving: tau2,
        predicted: &[],
    });
    (d1, d2)
}

/// Scenario (b): with an accurate prediction of τ2 at t=1, the manager maps
/// τ1 to CPU1 at t=0 and reserves the GPU; τ2 is admitted at t=1.
fn scenario_with_prediction(rm: &mut dyn ResourceManager) -> (Decision, Decision) {
    let (platform, catalog) = setup();
    let tau1 = JobView::fresh(
        JobKey(0),
        TaskTypeId::new(0),
        Time::new(0.0),
        Time::new(8.0),
    );
    // Phantom τ2: arrival 1, relative deadline 5 → absolute 6.
    let phantom = JobView::fresh(
        JobKey(100),
        TaskTypeId::new(1),
        Time::new(1.0),
        Time::new(6.0),
    );

    let d1 = rm.decide(&Activation {
        now: Time::new(0.0),
        platform: &platform,
        catalog: &catalog,
        active: &[],
        arriving: tau1,
        predicted: std::slice::from_ref(&phantom),
    });
    assert!(d1.admitted);
    assert!(d1.used_prediction);
    assert_eq!(
        d1.assignments[0].resource,
        rid(0),
        "τ1 must go to CPU1 so the GPU stays free for the predicted τ2"
    );

    // t = 1: τ1 has run 1 of its 8 CPU1 units; τ2 actually arrives.
    let mut tau1_active = tau1;
    tau1_active.placement = Some(Placement {
        resource: rid(0),
        remaining_fraction: 7.0 / 8.0,
        started: true,
        speed: 1.0,
    });
    let tau2 = JobView::fresh(
        JobKey(1),
        TaskTypeId::new(1),
        Time::new(1.0),
        Time::new(6.0),
    );
    let d2 = rm.decide(&Activation {
        now: Time::new(1.0),
        platform: &platform,
        catalog: &catalog,
        active: &[tau1_active],
        arriving: tau2,
        predicted: &[],
    });
    (d1, d2)
}

#[test]
fn exact_rejects_tau2_without_prediction() {
    let (_, d2) = scenario_without_prediction(&mut ExactRm::new());
    assert!(
        !d2.admitted,
        "paper: acceptance rate 1/2 without prediction"
    );
}

#[test]
fn heuristic_rejects_tau2_without_prediction() {
    let (_, d2) = scenario_without_prediction(&mut HeuristicRm::new());
    assert!(!d2.admitted);
}

#[test]
fn milp_rejects_tau2_without_prediction() {
    let (_, d2) = scenario_without_prediction(&mut MilpRm::new());
    assert!(!d2.admitted);
}

#[test]
fn exact_admits_both_with_prediction() {
    let (_, d2) = scenario_with_prediction(&mut ExactRm::new());
    assert!(d2.admitted, "paper: acceptance rate 2/2 with prediction");
    // τ2 lands on the reserved GPU; τ1 stays on CPU1. Total planned energy
    // at t=1: τ1 remaining 7/8·7.3 + τ2 1.5.
    let a2 = d2
        .assignments
        .iter()
        .find(|a| a.key == JobKey(1))
        .expect("τ2 assigned");
    assert_eq!(a2.resource, rid(2));
    let expected = 7.0 / 8.0 * 7.3 + 1.5;
    assert!((d2.objective.value() - expected).abs() < 1e-9);
}

#[test]
fn heuristic_admits_both_with_prediction() {
    let (_, d2) = scenario_with_prediction(&mut HeuristicRm::new());
    assert!(d2.admitted);
}

#[test]
fn milp_admits_both_with_prediction() {
    let (_, d2) = scenario_with_prediction(&mut MilpRm::new());
    assert!(d2.admitted);
}

/// The paper's "harmful inaccurate prediction" coda: predicting τ2 at t=1
/// when it actually arrives at t=3 still admits both tasks, but at 8.8 J
/// planned energy instead of 3.5 J for the non-predicting manager.
#[test]
fn inaccurate_prediction_costs_energy() {
    let (platform, catalog) = setup();
    let mut rm = ExactRm::new();

    // With (wrong) prediction: τ1 → CPU1 as in scenario (b). τ2 arrives at 3.
    let tau1 = JobView::fresh(
        JobKey(0),
        TaskTypeId::new(0),
        Time::new(0.0),
        Time::new(8.0),
    );
    let mut tau1_active = tau1;
    tau1_active.placement = Some(Placement {
        resource: rid(0),
        remaining_fraction: 5.0 / 8.0, // ran 3 of 8 units on CPU1
        started: true,
        speed: 1.0,
    });
    let tau2 = JobView::fresh(
        JobKey(1),
        TaskTypeId::new(1),
        Time::new(3.0),
        Time::new(8.0),
    );
    let d = rm.decide(&Activation {
        now: Time::new(3.0),
        platform: &platform,
        catalog: &catalog,
        active: &[tau1_active],
        arriving: tau2,
        predicted: &[],
    });
    assert!(d.admitted);
    // Full-run energy with the wrong prediction: 7.3 (τ1 on CPU1) + 1.5 = 8.8 J.
    // The remaining-energy objective at t=3 confirms the same placement:
    let expected = 5.0 / 8.0 * 7.3 + 1.5;
    assert!(
        (d.objective.value() - expected).abs() < 1e-9,
        "objective={}",
        d.objective
    );

    // Without prediction: τ1 → GPU finishes at 5; τ2 (arriving at 3) waits
    // and runs on the GPU 5→8, meeting its absolute deadline 11... in the
    // paper's tighter numbers, 8 ≤ 3+5. Total energy 2.0 + 1.5 = 3.5 J.
    let mut tau1_gpu = tau1;
    tau1_gpu.placement = Some(Placement {
        resource: rid(2),
        remaining_fraction: 2.0 / 5.0, // ran 3 of 5 GPU units
        started: true,
        speed: 1.0,
    });
    let d2 = rm.decide(&Activation {
        now: Time::new(3.0),
        platform: &platform,
        catalog: &catalog,
        active: &[tau1_gpu],
        arriving: tau2,
        predicted: &[],
    });
    assert!(d2.admitted);
    let a2 = d2.assignments.iter().find(|a| a.key == JobKey(1)).unwrap();
    assert_eq!(a2.resource, rid(2), "τ2 queues behind τ1 on the GPU");
    let expected2 = 2.0 / 5.0 * 2.0 + 1.5;
    assert!((d2.objective.value() - expected2).abs() < 1e-9);
}

/// A GPU-running task can be aborted and restarted when that is the only way
/// to admit an urgent arrival — and the exact manager finds it.
#[test]
fn gpu_abort_rescues_urgent_arrival() {
    let (platform, catalog) = setup();
    // τ1 running on GPU with plenty of slack (deadline 30), τ2 arrives with
    // a deadline only the GPU can meet.
    let mut tau1 = JobView::fresh(
        JobKey(0),
        TaskTypeId::new(0),
        Time::new(0.0),
        Time::new(30.0),
    );
    tau1.placement = Some(Placement {
        resource: rid(2),
        remaining_fraction: 0.9,
        started: true,
        speed: 1.0,
    });
    let tau2 = JobView::fresh(
        JobKey(1),
        TaskTypeId::new(1),
        Time::new(1.0),
        Time::new(4.5),
    );
    let mut rm = ExactRm::new();
    let d = rm.decide(&Activation {
        now: Time::new(1.0),
        platform: &platform,
        catalog: &catalog,
        active: &[tau1],
        arriving: tau2,
        predicted: &[],
    });
    assert!(d.admitted, "aborting τ1 frees the GPU for τ2");
    let a1 = d.assignments.iter().find(|a| a.key == JobKey(0)).unwrap();
    let a2 = d.assignments.iter().find(|a| a.key == JobKey(1)).unwrap();
    assert_eq!(a2.resource, rid(2));
    assert!(a1.restart, "τ1 loses its progress");
}
