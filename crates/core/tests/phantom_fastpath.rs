//! The future-release fast path from the managers' point of view.
//!
//! * A release within `TIME_EPSILON` of the activation instant must classify
//!   as *dense* everywhere — the engine's ready split, the timeline's
//!   dense/future classification, and `fits_or_defer`'s defer predicate —
//!   so the three can never disagree on a knife-edge release (the seed bug:
//!   the defer path used a strict `release > now`, deferring a verdict the
//!   engine considered immediately answerable, and dropping the job itself
//!   from the sub-queue check).
//! * With-phantom decisions on preemptable resources must be answered
//!   entirely by the incremental timelines: zero engine-fallback verdicts
//!   across every rung of the fallback ladder.

use rtrm_core::{
    Activation, Candidate, ExactRm, HeuristicRm, JobView, PlanBuilder, ResourceManager,
    TimelinePool,
};
use rtrm_platform::{
    Energy, Platform, ResourceId, ResourceKind, TaskCatalog, TaskType, TaskTypeId, Time,
    TIME_EPSILON,
};
use rtrm_sched::{is_schedulable, EdfTimeline, JobKey, PlannedJob};

fn world() -> (Platform, TaskCatalog) {
    let platform = Platform::builder().cpus(2).gpu("g").build();
    let ids: Vec<_> = platform.ids().collect();
    let ty = TaskType::builder(0, &platform)
        .profile(ids[0], Time::new(4.0), Energy::new(4.0))
        .profile(ids[1], Time::new(4.0), Energy::new(4.0))
        .profile(ids[2], Time::new(5.0), Energy::new(1.0))
        .build();
    (platform, TaskCatalog::new(vec![ty]))
}

/// A release at exactly `now + TIME_EPSILON/2` is dense to the engine, dense
/// to the timeline, and dense to the defer path — all three return the same
/// (real, not deferred) verdict.
#[test]
fn epsilon_release_agrees_across_engine_timeline_and_defer_path() {
    let (platform, catalog) = world();
    let now = Time::new(10.0);
    let release = Time::new(10.0 + TIME_EPSILON / 2.0);
    let gpu = ResourceId::new(2);

    // The job cannot fit: 5 units of GPU work in a 3-unit window.
    let arriving = JobView::fresh(JobKey(1), TaskTypeId::new(0), release, Time::new(13.0));
    let activation = Activation {
        now,
        platform: &platform,
        catalog: &catalog,
        active: &[],
        arriving,
        predicted: &[],
    };

    // Engine: released within epsilon counts as ready, so the verdict is an
    // immediate "does not fit".
    let planned = PlannedJob {
        key: arriving.key,
        release: release.max(now),
        exec: Time::new(5.0),
        deadline: arriving.deadline,
        pinned: false,
    };
    assert!(release.released_by(now));
    assert!(!is_schedulable(ResourceKind::Gpu, now, &[planned]));

    // Timeline: same classification (dense, no future stack), same verdict.
    let mut tl = EdfTimeline::new(ResourceKind::Gpu, now);
    assert!(!tl.fits(planned));
    let _ = tl.push(planned);
    assert!(!tl.has_future(), "epsilon release classifies as dense");
    let _ = tl.undo();

    // Defer path: with the strict `release > now` predicate this placement
    // deferred (returned true on an empty sub-queue); the epsilon-unified
    // predicate answers the real verdict instead.
    let mut pool = TimelinePool::new();
    let mut plan = PlanBuilder::new(&activation, &mut pool);
    let candidate = Candidate {
        resource: gpu,
        exec: Time::new(5.0),
        energy: Energy::new(1.0),
        pinned: false,
        restart: false,
        speed: 1.0,
    };
    assert!(
        !plan.fits_or_defer(&arriving, &candidate),
        "epsilon release must not defer: the engine's verdict is immediate"
    );
    assert!(!plan.fits(&arriving, &candidate));
}

fn phantom_activation<'a>(
    platform: &'a Platform,
    catalog: &'a TaskCatalog,
    active: &'a [JobView],
    arriving: JobView,
    predicted: &'a [JobView],
    now: Time,
) -> Activation<'a> {
    Activation {
        now,
        platform,
        catalog,
        active,
        arriving,
        predicted,
    }
}

/// With-phantom decisions keep every probe on a preemptable resource inside
/// the incremental timelines: the pool records zero engine verdicts for CPU
/// timelines across the whole fallback ladder, for both the heuristic and
/// the branch & bound manager.
#[test]
fn phantom_decides_stay_off_engine_on_preemptable_resources() {
    let (platform, catalog) = world();
    let now = Time::new(100.0);

    let active = [JobView::fresh(
        JobKey(0),
        TaskTypeId::new(0),
        now,
        Time::new(120.0),
    )];
    let arriving = JobView::fresh(JobKey(1), TaskTypeId::new(0), now, Time::new(109.0));
    // Two genuinely future phantoms exercise the multi-rung ladder.
    let predicted = [
        JobView::fresh(
            JobKey(2),
            TaskTypeId::new(0),
            Time::new(103.0),
            Time::new(111.0),
        ),
        JobView::fresh(
            JobKey(3),
            TaskTypeId::new(0),
            Time::new(106.0),
            Time::new(117.0),
        ),
    ];
    let activation = phantom_activation(&platform, &catalog, &active, arriving, &predicted, now);

    let mut heuristic = HeuristicRm::new();
    let mut pool = TimelinePool::new();
    let decision = heuristic.decide_with_pool(&activation, &mut pool);
    assert!(decision.admitted);
    for tl in pool.timelines() {
        if tl.kind().is_preemptable() {
            assert_eq!(
                tl.engine_verdicts(),
                0,
                "heuristic probed a preemptable timeline through the engine"
            );
        }
    }

    let mut exact = ExactRm::new();
    let mut pool = TimelinePool::new();
    let decision = exact.decide_with_pool(&activation, &mut pool);
    assert!(decision.admitted);
    for tl in pool.timelines() {
        if tl.kind().is_preemptable() {
            assert_eq!(
                tl.engine_verdicts(),
                0,
                "branch & bound probed a preemptable timeline through the engine"
            );
        }
    }

    // Sanity: the same decisions under the oracle pool (pre-incremental
    // baseline) are bit-identical, and *do* route through the engine.
    let mut oracle_pool = TimelinePool::oracle();
    let mut heuristic_oracle = HeuristicRm::new();
    heuristic_oracle.oracle_feasibility = true;
    let oracle_decision = heuristic_oracle.decide_with_pool(&activation, &mut oracle_pool);
    let mut pool = TimelinePool::new();
    let incremental_decision = HeuristicRm::new().decide_with_pool(&activation, &mut pool);
    assert_eq!(oracle_decision, incremental_decision);
    assert!(
        oracle_pool.engine_verdicts() > 0,
        "the oracle baseline answers through the engine by construction"
    );
}

/// CPU-only platform: the pool-wide engine-verdict count is zero for a
/// with-phantom exact decision — nothing anywhere routed through the engine.
#[test]
fn cpu_only_phantom_decide_uses_zero_engine_verdicts() {
    let platform = Platform::builder().cpus(3).build();
    let ids: Vec<_> = platform.ids().collect();
    let mut builder = TaskType::builder(0, &platform);
    for &r in &ids {
        builder.profile(r, Time::new(4.0), Energy::new(2.0));
    }
    let catalog = TaskCatalog::new(vec![builder.build()]);

    let now = Time::new(50.0);
    let arriving = JobView::fresh(JobKey(1), TaskTypeId::new(0), now, Time::new(58.0));
    let predicted = [JobView::fresh(
        JobKey(2),
        TaskTypeId::new(0),
        Time::new(53.0),
        Time::new(62.0),
    )];
    let activation = phantom_activation(&platform, &catalog, &[], arriving, &predicted, now);

    let mut pool = TimelinePool::new();
    let decision = ExactRm::new().decide_with_pool(&activation, &mut pool);
    assert!(decision.admitted);
    assert!(decision.used_prediction);
    assert_eq!(pool.engine_verdicts(), 0);
}
