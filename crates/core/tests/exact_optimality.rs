//! Brute-force optimality check for the exact optimizer: on tiny random
//! instances, enumerate *every* assignment of jobs to candidates and verify
//! `ExactRm` returns the minimum-energy feasible plan.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use rtrm_core::{
    candidates, Activation, Candidate, ExactRm, JobView, PlanBuilder, ResourceManager, TimelinePool,
};
use rtrm_platform::{Platform, TaskCatalog, TaskTypeId, Time};
use rtrm_sched::JobKey;
use rtrm_trace::{generate_catalog, CatalogConfig};

fn world(seed: u64, cpus: usize, gpu: bool) -> (Platform, TaskCatalog) {
    let mut b = Platform::builder();
    b.cpus(cpus);
    if gpu {
        b.gpu("g");
    }
    let platform = b.build();
    let cfg = CatalogConfig {
        num_types: 4,
        cpu_wcet_mean: 8.0,
        cpu_wcet_std: 2.0,
        cpu_energy_mean: 5.0,
        cpu_energy_std: 1.5,
        ..CatalogConfig::paper()
    };
    let catalog = generate_catalog(&platform, &cfg, &mut StdRng::seed_from_u64(seed));
    (platform, catalog)
}

/// Exhaustive minimum over all complete candidate assignments whose final
/// plan passes the full schedulability check.
fn brute_force_best(activation: &Activation<'_>) -> Option<f64> {
    let jobs: Vec<JobView> = activation.jobs_with_prediction().copied().collect();
    let cands: Vec<Vec<Candidate>> = jobs
        .iter()
        .map(|j| {
            candidates(j, activation.platform, activation.catalog, true)
                .into_iter()
                .filter(|c| c.exec <= j.time_left(activation.now))
                .collect()
        })
        .collect();
    if cands.iter().any(Vec::is_empty) {
        return None;
    }
    let mut best: Option<f64> = None;
    let mut index = vec![0usize; jobs.len()];
    loop {
        // Evaluate the current combination with a *full-plan* check only —
        // no partial pruning — so anomalies cannot hide solutions.
        let mut pool = TimelinePool::new();
        let mut plan = PlanBuilder::new(activation, &mut pool);
        let mut cost = 0.0;
        for (j, job) in jobs.iter().enumerate() {
            let c = &cands[j][index[j]];
            plan.place(job, c);
            cost += c.energy.value();
        }
        if plan.all_schedulable() && best.is_none_or(|b| cost < b) {
            best = Some(cost);
        }
        // Next combination (odometer).
        let mut pos = 0;
        loop {
            if pos == jobs.len() {
                return best;
            }
            index[pos] += 1;
            if index[pos] < cands[pos].len() {
                break;
            }
            index[pos] = 0;
            pos += 1;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn exact_matches_brute_force(
        seed in any::<u64>(),
        cpus in 1usize..3,
        gpu in any::<bool>(),
        slacks in prop::collection::vec(1.1f64..4.0, 1..4),
        types in prop::collection::vec(0usize..4, 1..4),
        with_phantom in any::<bool>(),
    ) {
        let (platform, catalog) = world(seed, cpus, gpu);
        let n = slacks.len().min(types.len());
        let now = Time::ZERO;
        // Jobs: the last is "arriving", the rest are unplaced actives (the
        // RM treats unplaced active tasks like fresh ones, keeping the
        // brute-force comparable).
        let jobs: Vec<JobView> = (0..n)
            .map(|i| {
                let ty = TaskTypeId::new(types[i] % catalog.len());
                JobView::fresh(
                    JobKey(i as u64),
                    ty,
                    now,
                    now + catalog.task_type(ty).mean_wcet() * slacks[i],
                )
            })
            .collect();
        let phantom = if with_phantom {
            let ty = TaskTypeId::new(types[0] % catalog.len());
            vec![JobView::fresh(
                JobKey(99),
                ty,
                Time::new(1.0),
                Time::new(1.0) + catalog.task_type(ty).min_wcet() * 1.6,
            )]
        } else {
            Vec::new()
        };
        let activation = Activation {
            now,
            platform: &platform,
            catalog: &catalog,
            active: &jobs[..n - 1],
            arriving: jobs[n - 1],
            predicted: &phantom,
        };

        let decision = ExactRm::new().decide(&activation);
        let brute = brute_force_best(&activation);
        match (decision.admitted && decision.used_prediction == with_phantom, brute) {
            (true, Some(b)) => {
                prop_assert!(
                    (decision.objective.value() - b).abs() < 1e-6,
                    "exact {} vs brute {b}",
                    decision.objective
                );
            }
            // If the full phantom set is infeasible, the manager falls back;
            // the brute force (which always includes the phantom) disagrees
            // by construction — skip those.
            (false, _) => {}
            (true, None) => prop_assert!(
                false,
                "exact admitted (with phantom honoured) but brute force found nothing"
            ),
        }
    }
}
