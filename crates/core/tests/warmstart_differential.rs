//! Differential proof that warm-started exact decisions are bit-identical
//! to cold ones.
//!
//! `ExactRm` and `MilpRm` default to seeding every fallback rung's search
//! with the heuristic's plan as a starting incumbent. The injected
//! incumbent only ever *prunes* — with the exact bound, no tolerance slack —
//! and the first equally good search-discovered leaf replaces it, so the
//! returned plan is always one the search itself reached. This suite pins
//! that contract: warm and cold runs must agree on the admission verdict,
//! every assignment, the objective, prediction use, and start gates, on
//! random platforms up to 512 mixed-DVFS resources and lookahead horizons
//! of up to 4 phantoms. Only [`Decision::nodes`] may differ (that is the
//! point of the warm start), so it is normalized out before comparing.
//!
//! Under a *binding* node budget bit-identity weakens to a one-sided
//! guarantee: a rung whose injected seed survives the cut reruns cold (and
//! is then exactly the cold anytime result), and a rung whose seed was
//! replaced holds an incumbent at least as good as cold's — so warm
//! admission never falls below cold admission, pinned by the budget-sweep
//! tests below.
//!
//! [`Decision::nodes`]: rtrm_core::Decision

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use rtrm_core::{Activation, Decision, ExactRm, JobView, MilpRm, Placement, ResourceManager};
use rtrm_platform::{Energy, Platform, TaskCatalog, TaskType, TaskTypeId, Time};
use rtrm_sched::JobKey;
use rtrm_trace::{generate_catalog, CatalogConfig};

/// A compact recipe for one random activation on a sized platform.
#[derive(Debug, Clone)]
struct Scenario {
    resources: usize,
    with_gpu: bool,
    seed: u64,
    /// (type index, placement resource index or none, remaining fraction,
    /// deadline slack multiplier)
    active: Vec<(usize, Option<usize>, f64, f64)>,
    arriving_type: usize,
    arriving_slack: f64,
    /// Up to four phantoms: (type index, release offset, slack multiplier).
    predicted: Vec<(usize, f64, f64)>,
}

fn scenario(max_resources: usize, max_active: usize) -> impl Strategy<Value = Scenario> {
    let sizes = if max_resources > 16 {
        // Weight towards small platforms but visit the scaling axis the
        // `milp_scale` bench sweeps (32 / 128 / 512) every run.
        prop_oneof![
            2usize..12,
            2usize..12,
            2usize..12,
            Just(32usize),
            Just(128usize),
            Just(512usize),
        ]
        .boxed()
    } else {
        (2usize..=max_resources).boxed()
    };
    (
        sizes,
        any::<bool>(),
        any::<u64>(),
        prop::collection::vec(
            (
                0usize..6,
                prop::option::of(0usize..8),
                0.05f64..1.0,
                1.2f64..4.0,
            ),
            0..max_active,
        ),
        0usize..6,
        1.2f64..4.0,
        prop::collection::vec((0usize..6, 0.1f64..30.0, 1.2f64..4.0), 0..=4),
    )
        .prop_map(
            |(resources, with_gpu, seed, active, arriving_type, arriving_slack, predicted)| {
                Scenario {
                    resources,
                    with_gpu,
                    seed,
                    active,
                    arriving_type,
                    arriving_slack,
                    predicted,
                }
            },
        )
}

/// Materializes a scenario: a platform whose CPUs cycle through plain and
/// two different DVFS ladders, a random catalog, and the activation's jobs.
/// The phantoms are sorted by release so the horizon is well-formed.
fn build(s: &Scenario) -> (Platform, TaskCatalog, Vec<JobView>, JobView, Vec<JobView>) {
    let mut builder = Platform::builder();
    for i in 0..s.resources {
        match i % 3 {
            0 => builder.cpu(format!("c{i}")),
            1 => builder.cpu_with_dvfs(format!("c{i}"), &[0.5, 1.0]),
            _ => builder.cpu_with_dvfs(format!("c{i}"), &[0.25, 0.5, 1.0, 2.0]),
        };
    }
    if s.with_gpu {
        builder.gpu("gpu0");
    }
    let platform = builder.build();

    let mut rng = StdRng::seed_from_u64(s.seed);
    let cfg = CatalogConfig {
        num_types: 6,
        cpu_wcet_mean: 10.0,
        cpu_wcet_std: 3.0,
        cpu_energy_mean: 5.0,
        cpu_energy_std: 1.5,
        ..CatalogConfig::paper()
    };
    let catalog = generate_catalog(&platform, &cfg, &mut rng);

    let now = Time::new(100.0);
    let mut gpu_started_taken = vec![false; platform.len()];
    let mut active = Vec::new();
    for (i, &(ty, place, frac, slack)) in s.active.iter().enumerate() {
        let ty = TaskTypeId::new(ty % catalog.len());
        let deadline = now + catalog.task_type(ty).mean_wcet() * slack;
        let mut job = JobView::fresh(JobKey(i as u64), ty, now, deadline);
        if let Some(r) = place {
            let r = rtrm_platform::ResourceId::new(r % platform.len());
            if catalog.task_type(ty).is_executable_on(r) {
                let non_preemptable = !platform.resource(r).kind().is_preemptable();
                let mut started = true;
                if non_preemptable {
                    if gpu_started_taken[r.index()] {
                        started = false;
                    } else {
                        gpu_started_taken[r.index()] = true;
                    }
                }
                job.placement = Some(Placement {
                    resource: r,
                    remaining_fraction: if started { frac } else { 1.0 },
                    started,
                    speed: 1.0,
                });
            }
        }
        active.push(job);
    }

    let arr_ty = TaskTypeId::new(s.arriving_type % catalog.len());
    let arriving = JobView::fresh(
        JobKey(1000),
        arr_ty,
        now,
        now + catalog.task_type(arr_ty).mean_wcet() * s.arriving_slack,
    );
    let mut offsets: Vec<(usize, f64, f64)> = s.predicted.clone();
    offsets.sort_by(|a, b| a.1.total_cmp(&b.1));
    let predicted: Vec<JobView> = offsets
        .iter()
        .enumerate()
        .map(|(i, &(ty, offset, slack))| {
            let ty = TaskTypeId::new(ty % catalog.len());
            let arrival = now + Time::new(offset);
            JobView::fresh(
                JobKey(2000 + i as u64),
                ty,
                arrival,
                arrival + catalog.task_type(ty).mean_wcet() * slack,
            )
        })
        .collect();
    (platform, catalog, active, arriving, predicted)
}

/// Node counts are the one field warm starts are *allowed* to change.
fn strip_nodes(mut d: Decision) -> Decision {
    d.nodes = 0;
    d
}

/// The `milp_scale` contended-pair world (see
/// `crates/bench/src/bin/milp_scale.rs`): `k` task pairs (A, B) contend for
/// one shared cheap slot each. The branch order tries A before B, so a cold
/// DFS parks every A on the shared slot and walks a long improvement
/// cascade; the regret heuristic maps the optimum directly. This is the
/// regime where a truncated warm search's injected seed survives un-replaced
/// while a truncated cold search holds a (suboptimal) anytime incumbent.
fn contended_world(k: usize) -> (Platform, TaskCatalog, Vec<JobView>, JobView) {
    const EXEC: f64 = 4.0;
    let mut builder = Platform::builder();
    for i in 0..(5 * k + 1) {
        builder.cpu(format!("c{i}"));
    }
    let platform = builder.build();
    let ids: Vec<_> = platform.ids().collect();
    let mut types = Vec::new();
    for p in 0..k {
        let e = 60.0 - p as f64 * 0.02;
        let base = 5 * p;
        let mut a = TaskType::builder(2 * p, &platform);
        a.profile(ids[base], Time::new(EXEC), Energy::new(1.0));
        a.profile(ids[base + 1], Time::new(EXEC), Energy::new(1.2));
        a.profile(ids[base + 2], Time::new(EXEC), Energy::new(e));
        types.push(a.build());
        let mut b = TaskType::builder(2 * p + 1, &platform);
        b.profile(ids[base], Time::new(EXEC), Energy::new(1.01));
        b.profile(ids[base + 3], Time::new(EXEC), Energy::new(e - 0.012));
        b.profile(ids[base + 4], Time::new(EXEC), Energy::new(e - 0.008));
        types.push(b.build());
    }
    let mut arr = TaskType::builder(2 * k, &platform);
    arr.profile(ids[5 * k], Time::new(EXEC), Energy::new(1.0));
    types.push(arr.build());
    let catalog = TaskCatalog::new(types);

    let deadline = Time::new(EXEC);
    let active: Vec<JobView> = (0..2 * k)
        .map(|i| JobView::fresh(JobKey(i as u64), TaskTypeId::new(i), Time::ZERO, deadline))
        .collect();
    let arriving = JobView::fresh(JobKey(10_000), TaskTypeId::new(2 * k), Time::ZERO, deadline);
    (platform, catalog, active, arriving)
}

/// Regression for the budget-cut discard: with a binding node budget the
/// cold search keeps its anytime incumbent and admits, while the warm
/// search's injected seed — strictly better than anything the truncated
/// walk reaches — used to be thrown away with no plan and no timeout flag,
/// so the ladder rejected. The warm rung must instead rerun cold and admit
/// whatever the cold search admits; once the seed is replaced it may only
/// improve on cold, never fall below it.
#[test]
fn binding_node_budget_never_turns_admission_into_rejection() {
    let (platform, catalog, active, arriving) = contended_world(3);
    let mut cold_admitted_somewhere_below_full = false;
    for budget in 0..=80u64 {
        let activation = Activation {
            now: Time::ZERO,
            platform: &platform,
            catalog: &catalog,
            active: &active,
            arriving,
            predicted: &[],
        };
        let mut warm = ExactRm::with_node_budget(budget);
        let mut cold = ExactRm::with_node_budget(budget);
        cold.warm_start = false;
        let warm_d = warm.decide(&activation);
        let cold_d = cold.decide(&activation);
        if cold_d.admitted {
            cold_admitted_somewhere_below_full |= budget < 80;
            assert!(
                warm_d.admitted,
                "budget={budget}: cold admits (objective {:?}) but warm rejects",
                cold_d.objective
            );
            assert!(
                warm_d.objective <= cold_d.objective,
                "budget={budget}: warm plan ({:?}) worse than cold ({:?})",
                warm_d.objective,
                cold_d.objective
            );
        }
    }
    assert!(
        cold_admitted_somewhere_below_full,
        "fixture error: no budget in the sweep exercised a binding-budget admission"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Admission monotonicity under a binding node budget on random worlds:
    /// wherever the truncated cold search admits, the warm search must
    /// admit too (it reruns cold whenever its injected seed survives the
    /// cut, and otherwise holds an incumbent at least as good).
    #[test]
    fn exact_warm_admission_never_below_cold_under_budget(
        s in scenario(10, 3),
        budget in 0u64..150,
    ) {
        let (platform, catalog, active, arriving, predicted) = build(&s);
        let activation = Activation {
            now: Time::new(100.0),
            platform: &platform,
            catalog: &catalog,
            active: &active,
            arriving,
            predicted: &predicted,
        };
        let mut warm = ExactRm::with_node_budget(budget);
        let mut cold = ExactRm::with_node_budget(budget);
        cold.warm_start = false;
        let warm_d = warm.decide(&activation);
        let cold_d = cold.decide(&activation);
        if cold_d.admitted {
            prop_assert!(
                warm_d.admitted,
                "budget {}: cold admits but warm rejects",
                budget
            );
        }
    }

    /// `ExactRm` warm vs cold, up to 512 resources and 4 phantoms.
    #[test]
    fn exact_warm_matches_cold(s in scenario(512, 4)) {
        let (platform, catalog, active, arriving, predicted) = build(&s);
        let activation = Activation {
            now: Time::new(100.0),
            platform: &platform,
            catalog: &catalog,
            active: &active,
            arriving,
            predicted: &predicted,
        };
        let mut warm = ExactRm::new();
        let mut cold = ExactRm::new();
        cold.warm_start = false;
        let warm_d = warm.decide(&activation);
        let cold_d = cold.decide(&activation);
        prop_assert_eq!(
            strip_nodes(warm_d),
            strip_nodes(cold_d),
            "warm-started ExactRm diverged from cold"
        );
    }

    /// `MilpRm` warm vs cold on platforms small enough for the dense
    /// simplex; the warm seed also exercises the z/w disjunction
    /// translation whenever a phantom is present.
    #[test]
    fn milp_warm_matches_cold(s in scenario(6, 3)) {
        let (platform, catalog, active, arriving, predicted) = build(&s);
        let activation = Activation {
            now: Time::new(100.0),
            platform: &platform,
            catalog: &catalog,
            active: &active,
            arriving,
            predicted: &predicted,
        };
        let mut warm = MilpRm::new();
        let mut cold = MilpRm::new();
        cold.warm_start = false;
        let warm_d = warm.decide(&activation);
        let cold_d = cold.decide(&activation);
        prop_assert_eq!(
            strip_nodes(warm_d),
            strip_nodes(cold_d),
            "warm-started MilpRm diverged from cold"
        );
    }
}
