//! Differential proof that the dominance presolve is decision-identical.
//!
//! `ExactRm` drops candidates dominated within their (resource, pinned)
//! group before the search, and `MilpRm` drops them before they become
//! variables (plus the solver-level singleton-equality fixing behind
//! `SolveOptions::presolve`). A dominated candidate — strictly cheaper
//! alternative at no more execution time on the same queue — is in no
//! optimal plan and in no equal-cost optimum, so presolved and unpresolved
//! runs must agree on everything except the node count, which presolve is
//! allowed (indeed supposed) to shrink.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use rtrm_core::{Activation, Decision, ExactRm, JobView, MilpRm, Placement, ResourceManager};
use rtrm_platform::{Platform, TaskCatalog, TaskTypeId, Time};
use rtrm_sched::JobKey;
use rtrm_trace::{generate_catalog, CatalogConfig};

/// A compact recipe for one random activation on a sized platform.
#[derive(Debug, Clone)]
struct Scenario {
    resources: usize,
    with_gpu: bool,
    seed: u64,
    /// (type index, placement resource index or none, remaining fraction,
    /// deadline slack multiplier)
    active: Vec<(usize, Option<usize>, f64, f64)>,
    arriving_type: usize,
    arriving_slack: f64,
    predicted: Option<(usize, f64, f64)>,
}

fn scenario(max_resources: usize, max_active: usize) -> impl Strategy<Value = Scenario> {
    let sizes = if max_resources > 16 {
        prop_oneof![
            2usize..12,
            2usize..12,
            2usize..12,
            Just(32usize),
            Just(128usize),
            Just(512usize),
        ]
        .boxed()
    } else {
        (2usize..=max_resources).boxed()
    };
    (
        sizes,
        any::<bool>(),
        any::<u64>(),
        prop::collection::vec(
            (
                0usize..6,
                prop::option::of(0usize..8),
                0.05f64..1.0,
                1.2f64..4.0,
            ),
            0..max_active,
        ),
        0usize..6,
        1.2f64..4.0,
        prop::option::of((0usize..6, 0.1f64..30.0, 1.2f64..4.0)),
    )
        .prop_map(
            |(resources, with_gpu, seed, active, arriving_type, arriving_slack, predicted)| {
                Scenario {
                    resources,
                    with_gpu,
                    seed,
                    active,
                    arriving_type,
                    arriving_slack,
                    predicted,
                }
            },
        )
}

/// Materializes a scenario (same world as `prune_differential.rs`).
fn build(
    s: &Scenario,
) -> (
    Platform,
    TaskCatalog,
    Vec<JobView>,
    JobView,
    Option<JobView>,
) {
    let mut builder = Platform::builder();
    for i in 0..s.resources {
        match i % 3 {
            0 => builder.cpu(format!("c{i}")),
            1 => builder.cpu_with_dvfs(format!("c{i}"), &[0.5, 1.0]),
            _ => builder.cpu_with_dvfs(format!("c{i}"), &[0.25, 0.5, 1.0, 2.0]),
        };
    }
    if s.with_gpu {
        builder.gpu("gpu0");
    }
    let platform = builder.build();

    let mut rng = StdRng::seed_from_u64(s.seed);
    let cfg = CatalogConfig {
        num_types: 6,
        cpu_wcet_mean: 10.0,
        cpu_wcet_std: 3.0,
        cpu_energy_mean: 5.0,
        cpu_energy_std: 1.5,
        ..CatalogConfig::paper()
    };
    let catalog = generate_catalog(&platform, &cfg, &mut rng);

    let now = Time::new(100.0);
    let mut gpu_started_taken = vec![false; platform.len()];
    let mut active = Vec::new();
    for (i, &(ty, place, frac, slack)) in s.active.iter().enumerate() {
        let ty = TaskTypeId::new(ty % catalog.len());
        let deadline = now + catalog.task_type(ty).mean_wcet() * slack;
        let mut job = JobView::fresh(JobKey(i as u64), ty, now, deadline);
        if let Some(r) = place {
            let r = rtrm_platform::ResourceId::new(r % platform.len());
            if catalog.task_type(ty).is_executable_on(r) {
                let non_preemptable = !platform.resource(r).kind().is_preemptable();
                let mut started = true;
                if non_preemptable {
                    if gpu_started_taken[r.index()] {
                        started = false;
                    } else {
                        gpu_started_taken[r.index()] = true;
                    }
                }
                job.placement = Some(Placement {
                    resource: r,
                    remaining_fraction: if started { frac } else { 1.0 },
                    started,
                    speed: 1.0,
                });
            }
        }
        active.push(job);
    }

    let arr_ty = TaskTypeId::new(s.arriving_type % catalog.len());
    let arriving = JobView::fresh(
        JobKey(1000),
        arr_ty,
        now,
        now + catalog.task_type(arr_ty).mean_wcet() * s.arriving_slack,
    );
    let predicted = s.predicted.map(|(ty, offset, slack)| {
        let ty = TaskTypeId::new(ty % catalog.len());
        let arrival = now + Time::new(offset);
        JobView::fresh(
            JobKey(2000),
            ty,
            arrival,
            arrival + catalog.task_type(ty).mean_wcet() * slack,
        )
    });
    (platform, catalog, active, arriving, predicted)
}

/// Node counts are the one field presolve is *allowed* to change.
fn strip_nodes(mut d: Decision) -> Decision {
    d.nodes = 0;
    d
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// `ExactRm` presolved vs unpresolved, up to 512 resources.
    #[test]
    fn exact_presolved_matches_unpresolved(s in scenario(512, 4)) {
        let (platform, catalog, active, arriving, predicted) = build(&s);
        let phantoms: Vec<_> = predicted.into_iter().collect();
        let activation = Activation {
            now: Time::new(100.0),
            platform: &platform,
            catalog: &catalog,
            active: &active,
            arriving,
            predicted: &phantoms,
        };
        let mut with = ExactRm::new();
        let mut without = ExactRm::new();
        without.presolve = false;
        let with_d = with.decide(&activation);
        let without_d = without.decide(&activation);
        prop_assert_eq!(
            strip_nodes(with_d),
            strip_nodes(without_d),
            "presolved ExactRm diverged from unpresolved"
        );
    }

    /// `MilpRm` presolved vs unpresolved on platforms small enough for the
    /// dense simplex. Toggling `SolveOptions::presolve` switches both the
    /// dominance drop and the solver's singleton-equality fixing (which
    /// every constraint-(1) row of a single-candidate job exercises).
    #[test]
    fn milp_presolved_matches_unpresolved(s in scenario(6, 3)) {
        let (platform, catalog, active, arriving, predicted) = build(&s);
        let phantoms: Vec<_> = predicted.into_iter().collect();
        let activation = Activation {
            now: Time::new(100.0),
            platform: &platform,
            catalog: &catalog,
            active: &active,
            arriving,
            predicted: &phantoms,
        };
        let mut with = MilpRm::new();
        let mut without = MilpRm::new();
        without.options.presolve = false;
        let with_d = with.decide(&activation);
        let without_d = without.decide(&activation);
        prop_assert_eq!(
            strip_nodes(with_d),
            strip_nodes(without_d),
            "presolved MilpRm diverged from unpresolved"
        );
    }
}
