//! Tests for the DVFS extension: speed levels scale time by `1/s` and
//! dynamic energy by `s²`, so running slower saves energy when deadlines
//! allow — and the managers exploit exactly that.

use rtrm_core::{Activation, ExactRm, HeuristicRm, JobView, MilpRm, ResourceManager};
use rtrm_platform::{Energy, Platform, TaskCatalog, TaskType, TaskTypeId, Time};
use rtrm_sched::JobKey;

/// One DVFS CPU with levels {0.5, 1.0}: at half speed a task takes 2× the
/// time at 1/4 the energy.
fn dvfs_world() -> (Platform, TaskCatalog) {
    let platform = {
        let mut b = Platform::builder();
        b.cpu_with_dvfs("big0", &[0.5, 1.0]);
        b.build()
    };
    let ids: Vec<_> = platform.ids().collect();
    let ty = TaskType::builder(0, &platform)
        .profile(ids[0], Time::new(4.0), Energy::new(8.0))
        .build();
    (platform, TaskCatalog::new(vec![ty]))
}

fn fresh(key: u64, release: f64, deadline: f64) -> JobView {
    JobView::fresh(
        JobKey(key),
        TaskTypeId::new(0),
        Time::new(release),
        Time::new(deadline),
    )
}

#[test]
fn candidates_enumerate_speed_levels() {
    let (platform, catalog) = dvfs_world();
    let job = fresh(0, 0.0, 100.0);
    let cands = rtrm_core::candidates(&job, &platform, &catalog, false);
    assert_eq!(cands.len(), 2);
    let slow = cands.iter().find(|c| c.speed == 0.5).expect("slow level");
    let fast = cands.iter().find(|c| c.speed == 1.0).expect("fast level");
    assert_eq!(slow.exec, Time::new(8.0)); // 4 / 0.5
    assert_eq!(slow.energy, Energy::new(2.0)); // 8 × 0.25
    assert_eq!(fast.exec, Time::new(4.0));
    assert_eq!(fast.energy, Energy::new(8.0));
}

#[test]
fn loose_deadline_picks_the_slow_level() {
    let (platform, catalog) = dvfs_world();
    for rm in [
        &mut ExactRm::new() as &mut dyn ResourceManager,
        &mut HeuristicRm::new(),
        &mut MilpRm::new(),
    ] {
        let d = rm.decide(&Activation {
            now: Time::ZERO,
            platform: &platform,
            catalog: &catalog,
            active: &[],
            arriving: fresh(0, 0.0, 20.0),
            predicted: &[],
        });
        assert!(d.admitted, "{}", rm.name());
        assert_eq!(d.assignments[0].speed, 0.5, "{} saves energy", rm.name());
        assert!((d.objective.value() - 2.0).abs() < 1e-9);
    }
}

#[test]
fn tight_deadline_forces_the_fast_level() {
    let (platform, catalog) = dvfs_world();
    for rm in [
        &mut ExactRm::new() as &mut dyn ResourceManager,
        &mut HeuristicRm::new(),
        &mut MilpRm::new(),
    ] {
        let d = rm.decide(&Activation {
            now: Time::ZERO,
            platform: &platform,
            catalog: &catalog,
            active: &[],
            arriving: fresh(0, 0.0, 5.0),
            predicted: &[],
        });
        assert!(d.admitted, "{}", rm.name());
        assert_eq!(d.assignments[0].speed, 1.0, "{} must race", rm.name());
    }
}

#[test]
fn load_forces_mixed_levels() {
    // Two tasks, deadline 16 each: both at 0.5 would need 8+8 = 16 ✓ — but
    // one arrives later; the optimizer balances speeds to fit both while
    // minimizing energy.
    let (platform, catalog) = dvfs_world();
    let mut active = fresh(0, 0.0, 12.0);
    active.placement = Some(rtrm_core::Placement::new(
        platform.ids().next().expect("one cpu"),
        1.0,
        false,
    ));
    let d = ExactRm::new().decide(&Activation {
        now: Time::ZERO,
        platform: &platform,
        catalog: &catalog,
        active: &[active],
        arriving: fresh(1, 0.0, 12.0),
        predicted: &[],
    });
    assert!(d.admitted);
    // EDF runs them back to back; total busy time must fit in 12:
    // {0.5, 0.5} → 16 ✗; {1.0, 0.5} → 12 ✓ (energy 10); {1.0, 1.0} → 8
    // (energy 16). The optimum mixes: one fast, one slow.
    let speeds: Vec<f64> = d.assignments.iter().map(|a| a.speed).collect();
    let mut sorted = speeds.clone();
    sorted.sort_by(f64::total_cmp);
    assert_eq!(sorted, vec![0.5, 1.0], "speeds={speeds:?}");
    assert!((d.objective.value() - 10.0).abs() < 1e-9);
}

#[test]
fn exact_and_milp_agree_with_dvfs() {
    let (platform, catalog) = dvfs_world();
    for deadline in [5.0, 9.0, 12.0, 20.0] {
        let activation = Activation {
            now: Time::ZERO,
            platform: &platform,
            catalog: &catalog,
            active: &[],
            arriving: fresh(0, 0.0, deadline),
            predicted: &[],
        };
        let de = ExactRm::new().decide(&activation);
        let dm = MilpRm::new().decide(&activation);
        assert_eq!(de.admitted, dm.admitted, "deadline {deadline}");
        if de.admitted {
            assert!(
                (de.objective.value() - dm.objective.value()).abs() < 1e-6,
                "deadline {deadline}: exact {} vs milp {}",
                de.objective,
                dm.objective
            );
        }
    }
}

#[test]
fn started_task_keeps_its_speed_when_staying() {
    let (platform, catalog) = dvfs_world();
    let cpu = platform.ids().next().expect("one cpu");
    let mut running = fresh(0, 0.0, 30.0);
    running.placement = Some(rtrm_core::Placement {
        resource: cpu,
        remaining_fraction: 0.5, // half of the effective 8-unit run left
        started: true,
        speed: 0.5,
    });
    let cands = rtrm_core::candidates(&running, &platform, &catalog, false);
    // Staying keeps speed 0.5: exec = (4/0.5)·0.5 = 4, energy = 2·0.5 = 1.
    assert_eq!(cands.len(), 1, "single-CPU platform: stay only");
    assert_eq!(cands[0].speed, 0.5);
    assert_eq!(cands[0].exec, Time::new(4.0));
    assert_eq!(cands[0].energy, Energy::new(1.0));
}
