//! Verdict-safe candidate pruning: the per-activation candidate table.
//!
//! At paper scale the managers can afford to rebuild every job's candidate
//! list from scratch for every rung of the phantom-fallback ladder — and the
//! heuristic even re-filters, re-clones, and re-sorts those lists once per
//! mapping iteration. At hundreds of resources that work dominates the
//! decide path. [`CandidateTable`] removes it without changing a single
//! decision:
//!
//! * **one build per decide** — rows for *all* jobs (active, arriving, every
//!   phantom) are materialized once and shared across all fallback rungs
//!   (rung `k` reads the prefix of `n_real + k` rows);
//! * **index-backed rows** — a fresh job's candidates are a pure function of
//!   its task type, so when a [`PlatformIndex`] is installed the row is
//!   *borrowed* from it instead of being recomputed (the index stores the
//!   same `(resource, speed)` placements, pre-sorted in the managers'
//!   candidate order);
//! * **sorted once** — owned rows are stable-sorted by `(energy, resource)`
//!   at build time; per-rung deadline filters and per-iteration capacity
//!   filters commute with a stable sort, so filtering *while scanning the
//!   pre-sorted row* reproduces the legacy scan order exactly;
//! * **partitioned desirability scans** — the heuristic's desirability order
//!   (energy plus a penalty `M` for deadline-infeasible placements) is the
//!   stable partition `[unpenalized | penalized]` of the `(energy,
//!   resource)`-sorted row, so [`RankedScan`] yields it in two passes with
//!   no per-iteration sort and no allocation;
//! * **prefix maxima** — the penalty weight `M = 2·max_energy + 1` of rung
//!   `k` needs the maximum candidate energy over that rung's jobs, which is
//!   [`CandidateTable::penalty_weight`]'s O(1) prefix-maximum read instead
//!   of a per-rung table flatten.
//!
//! The shortlist prefix of an index row is what a ranked scan touches in the
//! common case; continuing past it (because every shortlisted placement was
//! capacity- or deadline-infeasible) is the *widen-on-infeasibility*
//! fallback, counted in [`PruneStats::widened`]. Widening is a seamless
//! cursor continuation over the same sorted row, which is why verdicts (and
//! whole decisions) never change — see `DESIGN.md` §8 for the dominance
//! argument, including why a hard cross-resource Pareto filter
//! ([`pareto_front`]) must stay advisory.

use rtrm_platform::{PlatformIndex, TaskTypeId, Time, DEFAULT_SHORTLIST};

use crate::activation::Activation;
use crate::cost::{candidates_into, Candidate};
use crate::view::JobView;

/// Counters describing how the pruned decide path behaved, cumulative over
/// the lifetime of the owning [`TimelinePool`](crate::TimelinePool).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PruneStats {
    /// Candidate tables rebuilt (one per pruned decide).
    pub rebuilds: u64,
    /// Job rows borrowed from the installed
    /// [`PlatformIndex`] (fresh jobs).
    pub indexed_rows: u64,
    /// Job rows materialized through [`candidates`](crate::candidates)
    /// (placed jobs, or no index installed).
    pub owned_rows: u64,
    /// Ranked scans that widened past the shortlist prefix because every
    /// shortlisted placement was capacity- or deadline-infeasible.
    pub widened: u64,
}

/// How one job's candidate row is stored.
#[derive(Debug, Clone, Copy)]
enum RowKind {
    /// `arena[start..start + len]`.
    Owned { start: usize, len: usize },
    /// Borrowed from the [`PlatformIndex`] the table was built with.
    Indexed { ty: TaskTypeId },
}

/// The candidate rows of one activation, built once per decide and shared
/// across every rung of the phantom-fallback ladder.
///
/// Tables are recycled: a [`TimelinePool`](crate::TimelinePool) keeps one
/// and the managers [`rebuild`](CandidateTable::rebuild) it in place, so the
/// steady-state decide path performs no candidate allocations at all.
#[derive(Debug, Clone, Default)]
pub struct CandidateTable {
    /// All jobs of the activation: active, arriving, then every phantom —
    /// rung `k` of the ladder reads the prefix of `n_real + k` entries.
    jobs: Vec<JobView>,
    rows: Vec<RowKind>,
    /// Backing storage for every owned row.
    arena: Vec<Candidate>,
    /// `prefix_max[i]`: largest candidate energy over `jobs[..=i]`, so each
    /// rung's penalty weight is an O(1) read that matches the legacy
    /// per-rung table flatten bit for bit.
    prefix_max: Vec<f64>,
    shortlist: usize,
    stats: PruneStats,
}

impl CandidateTable {
    /// Creates an empty table.
    #[must_use]
    pub fn new() -> Self {
        CandidateTable::default()
    }

    /// Rebuilds the table in place for one activation.
    ///
    /// With `sorted`, owned rows are stable-sorted by `(energy, resource)` —
    /// the candidate order of [`HeuristicRm`](crate::HeuristicRm) and
    /// [`ExactRm`](crate::ExactRm); without it they keep
    /// [`candidates`](crate::candidates) emission order (the MILP encoding's
    /// variable order). Index-backed rows are only used when `sorted` (the
    /// index pre-sorts the same order) and the job is fresh; placed jobs
    /// always materialize through the cost model, which is the only place
    /// migration and abort costs exist.
    pub fn rebuild(
        &mut self,
        activation: &Activation<'_>,
        sorted: bool,
        gpu_restart_in_place: bool,
        index: Option<&PlatformIndex>,
    ) {
        self.jobs.clear();
        self.rows.clear();
        self.arena.clear();
        self.prefix_max.clear();
        self.jobs.extend(activation.jobs_with_prediction().copied());
        self.shortlist = index.map_or(DEFAULT_SHORTLIST, PlatformIndex::shortlist_len);
        self.stats.rebuilds += 1;

        let mut running_max = 0.0f64;
        for job in &self.jobs {
            let indexed = sorted
                && job.placement.is_none()
                && index.is_some_and(|ix| ix.matches(activation.platform, activation.catalog));
            let row_max = if indexed {
                self.rows.push(RowKind::Indexed { ty: job.task_type });
                self.stats.indexed_rows += 1;
                // Index rows are energy-ascending: the maximum is the tail.
                index
                    .expect("indexed implies index")
                    .row(job.task_type)
                    .last()
                    .map_or(0.0, |p| p.energy.value())
            } else {
                let start = self.arena.len();
                candidates_into(
                    job,
                    activation.platform,
                    activation.catalog,
                    gpu_restart_in_place,
                    &mut self.arena,
                );
                let row = &mut self.arena[start..];
                if sorted {
                    // Stable over emission order: exactly the comparator the
                    // managers sorted per-rung lists with.
                    row.sort_by(|a, b| a.energy.cmp(&b.energy).then(a.resource.cmp(&b.resource)));
                }
                let len = row.len();
                self.rows.push(RowKind::Owned { start, len });
                self.stats.owned_rows += 1;
                row.iter().map(|c| c.energy.value()).fold(0.0, f64::max)
            };
            running_max = running_max.max(row_max);
            self.prefix_max.push(running_max);
        }
    }

    /// All jobs of the activation (rung `k` is the prefix of
    /// `n_real + k` entries).
    #[must_use]
    pub fn jobs(&self) -> &[JobView] {
        &self.jobs
    }

    /// The penalty weight `M = 2·max_energy + 1` for a rung planning the
    /// first `n_jobs` jobs — identical to the legacy per-rung computation
    /// over the rung's full candidate table, as an O(1) prefix-maximum read.
    ///
    /// # Panics
    ///
    /// Panics if `n_jobs` is zero or exceeds the table's job count.
    #[must_use]
    pub fn penalty_weight(&self, n_jobs: usize) -> f64 {
        2.0 * self.prefix_max[n_jobs - 1] + 1.0
    }

    /// Cumulative behaviour counters.
    #[must_use]
    pub fn stats(&self) -> PruneStats {
        self.stats
    }

    /// Splits the table into the job list and a row accessor, so a solver
    /// can hold job views and scan rows at the same time.
    pub(crate) fn parts(&mut self) -> (&[JobView], RowAccess<'_>) {
        let CandidateTable {
            jobs,
            rows,
            arena,
            stats,
            shortlist,
            ..
        } = self;
        (
            jobs,
            RowAccess {
                rows,
                arena,
                stats,
                shortlist: *shortlist,
            },
        )
    }
}

/// Scanning access to the rows of a [`CandidateTable`].
#[derive(Debug)]
pub(crate) struct RowAccess<'a> {
    rows: &'a [RowKind],
    arena: &'a [Candidate],
    stats: &'a mut PruneStats,
    shortlist: usize,
}

/// One resolved row: either the arena slice or the borrowed index row.
#[derive(Debug, Clone, Copy)]
enum RowSlice<'a> {
    Owned(&'a [Candidate]),
    Indexed(&'a [rtrm_platform::RankedPlacement]),
}

impl RowSlice<'_> {
    fn len(&self) -> usize {
        match self {
            RowSlice::Owned(s) => s.len(),
            RowSlice::Indexed(s) => s.len(),
        }
    }

    fn get(&self, i: usize) -> Candidate {
        match self {
            RowSlice::Owned(s) => s[i],
            RowSlice::Indexed(s) => {
                let p = s[i];
                Candidate {
                    resource: p.resource,
                    exec: p.wcet,
                    energy: p.energy,
                    pinned: false,
                    restart: false,
                    speed: p.speed,
                }
            }
        }
    }
}

impl<'a> RowAccess<'a> {
    fn resolve<'s>(&'s self, j: usize, index: Option<&'s PlatformIndex>) -> RowSlice<'s> {
        match self.rows[j] {
            RowKind::Owned { start, len } => RowSlice::Owned(&self.arena[start..start + len]),
            RowKind::Indexed { ty } => RowSlice::Indexed(
                index
                    .expect("table built with an index must be scanned with it")
                    .row(ty),
            ),
        }
    }

    /// Appends job `j`'s deadline-feasible candidates (`exec <= tleft`) to
    /// `out` in stored order — the hot bulk-materialization path, kept
    /// monomorphic per storage kind so it compiles to a plain slice sweep.
    pub(crate) fn filtered_into(
        &self,
        j: usize,
        tleft: Time,
        index: Option<&PlatformIndex>,
        out: &mut Vec<Candidate>,
    ) {
        match self.resolve(j, index) {
            RowSlice::Owned(s) => out.extend(s.iter().filter(|c| c.exec <= tleft).copied()),
            RowSlice::Indexed(s) => {
                out.extend(s.iter().filter(|p| p.wcet <= tleft).map(|p| Candidate {
                    resource: p.resource,
                    exec: p.wcet,
                    energy: p.energy,
                    pinned: false,
                    restart: false,
                    speed: p.speed,
                }))
            }
        }
    }

    /// The stored length of job `j`'s row (before any deadline filter).
    pub(crate) fn row_len(&self, j: usize, index: Option<&PlatformIndex>) -> usize {
        self.resolve(j, index).len()
    }

    /// Scans job `j`'s row in the heuristic's desirability order: all
    /// deadline-feasible (`exec <= tleft`) candidates by `(energy,
    /// resource)`, then the penalized remainder in the same order. Requires
    /// a `sorted` table.
    pub(crate) fn ranked<'s>(
        &'s mut self,
        j: usize,
        tleft: Time,
        index: Option<&'s PlatformIndex>,
    ) -> RankedScan<'s> {
        let RowAccess {
            rows,
            arena,
            stats,
            shortlist,
        } = self;
        let row = match rows[j] {
            RowKind::Owned { start, len } => RowSlice::Owned(&arena[start..start + len]),
            RowKind::Indexed { ty } => RowSlice::Indexed(
                index
                    .expect("table built with an index must be scanned with it")
                    .row(ty),
            ),
        };
        RankedScan {
            row,
            stats,
            shortlist: *shortlist,
            tleft,
            pos: 0,
            pass: 0,
            penalized_seen: false,
            widened: false,
        }
    }
}

/// A desirability-ordered scan over one row (see [`RowAccess::ranked`]):
/// two passes over the `(energy, resource)`-sorted row, unpenalized
/// candidates first — the stable partition that *is* the legacy sort order,
/// without sorting anything per iteration.
#[derive(Debug)]
pub(crate) struct RankedScan<'a> {
    row: RowSlice<'a>,
    stats: &'a mut PruneStats,
    shortlist: usize,
    tleft: Time,
    pos: usize,
    pass: u8,
    penalized_seen: bool,
    widened: bool,
}

impl RankedScan<'_> {
    /// The next candidate in desirability order, with its penalty flag
    /// (`true` when `exec > tleft`, i.e. desirability carries `+M`).
    pub(crate) fn next(&mut self) -> Option<(Candidate, bool)> {
        loop {
            if self.pos >= self.row.len() {
                if self.pass == 0 && self.penalized_seen {
                    self.pass = 1;
                    self.pos = 0;
                    continue;
                }
                return None;
            }
            let rank = self.pos;
            self.pos += 1;
            let c = self.row.get(rank);
            let penalized = c.exec > self.tleft;
            self.penalized_seen |= penalized;
            if penalized == (self.pass == 1) {
                if !self.widened && rank >= self.shortlist {
                    self.widened = true;
                    self.stats.widened += 1;
                }
                return Some((c, penalized));
            }
        }
    }
}

/// The Pareto front of a candidate row on `(exec, energy)`: every candidate
/// not weakly dominated by another (one with `exec <=` and `energy <=`,
/// strictly better on at least one axis). A single sweep over the
/// energy-sorted row — O(m log m), not the naive O(m²) pairwise check.
///
/// Laxity-after-placement (`t_left − exec`) needs no third axis: for a
/// fixed job it is a monotone function of `exec`, so `(exec, energy)`
/// dominance implies laxity dominance.
///
/// The front is *advisory*: cross-resource dominance is not verdict-safe
/// (the dominating candidate's resource may be loaded while the dominated
/// one's is idle), so the managers never hard-drop dominated candidates —
/// the front instead characterizes which placements can ever stop a
/// first-fit scan when capacity alone binds, which is what the shortlist
/// prefix approximates and the widen fallback makes safe (`DESIGN.md` §8).
///
/// # Examples
///
/// ```
/// use rtrm_core::{pareto_front, Candidate};
/// use rtrm_platform::{Energy, ResourceId, Time};
///
/// let mk = |r: usize, exec: f64, energy: f64| Candidate {
///     resource: ResourceId::new(r),
///     exec: Time::new(exec),
///     energy: Energy::new(energy),
///     pinned: false,
///     restart: false,
///     speed: 1.0,
/// };
/// // (8, 1) and (5, 2) trade off; (9, 3) is dominated by both.
/// let front = pareto_front(&[mk(0, 8.0, 1.0), mk(1, 9.0, 3.0), mk(2, 5.0, 2.0)]);
/// let picked: Vec<usize> = front.iter().map(|c| c.resource.index()).collect();
/// assert_eq!(picked, vec![0, 2]);
/// ```
#[must_use]
pub fn pareto_front(row: &[Candidate]) -> Vec<Candidate> {
    let mut sorted: Vec<Candidate> = row.to_vec();
    sorted.sort_by(|a, b| {
        a.energy
            .cmp(&b.energy)
            .then(a.exec.cmp(&b.exec))
            .then(a.resource.cmp(&b.resource))
    });
    let mut front = Vec::new();
    let mut best_exec = Time::new(f64::INFINITY);
    for c in sorted {
        // Energy is non-decreasing, so `c` is undominated iff it strictly
        // improves the best execution time seen so far.
        if c.exec < best_exec {
            best_exec = c.exec;
            front.push(c);
        }
    }
    front
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtrm_platform::{Energy, Platform, ResourceId, TaskCatalog, TaskType};
    use rtrm_sched::JobKey;

    fn world() -> (Platform, TaskCatalog) {
        let mut b = Platform::builder();
        b.cpu_with_dvfs("c0", &[0.5, 1.0]).cpus(1).gpu("g");
        let platform = b.build();
        let ids: Vec<_> = platform.ids().collect();
        let ty = TaskType::builder(0, &platform)
            .profile(ids[0], Time::new(8.0), Energy::new(4.0))
            .profile(ids[1], Time::new(6.0), Energy::new(5.0))
            .profile(ids[2], Time::new(5.0), Energy::new(2.0))
            .build();
        (platform, TaskCatalog::new(vec![ty]))
    }

    fn activation<'a>(
        platform: &'a Platform,
        catalog: &'a TaskCatalog,
        arriving: &'a JobView,
        predicted: &'a [JobView],
    ) -> Activation<'a> {
        Activation {
            now: Time::ZERO,
            platform,
            catalog,
            active: &[],
            arriving: *arriving,
            predicted,
        }
    }

    #[test]
    fn indexed_and_owned_rows_scan_identically() {
        let (platform, catalog) = world();
        let arriving = JobView::fresh(
            JobKey(0),
            rtrm_platform::TaskTypeId::new(0),
            Time::ZERO,
            Time::new(12.0),
        );
        let act = activation(&platform, &catalog, &arriving, &[]);
        let index = PlatformIndex::build(&platform, &catalog);

        let mut owned = CandidateTable::new();
        owned.rebuild(&act, true, false, None);
        let mut indexed = CandidateTable::new();
        indexed.rebuild(&act, true, false, Some(&index));
        assert_eq!(owned.stats().owned_rows, 1);
        assert_eq!(indexed.stats().indexed_rows, 1);

        let (_, rows_o) = owned.parts();
        let (_, rows_i) = indexed.parts();
        let forever = Time::new(f64::INFINITY);
        let mut a: Vec<Candidate> = Vec::new();
        rows_o.filtered_into(0, forever, None, &mut a);
        let mut b: Vec<Candidate> = Vec::new();
        rows_i.filtered_into(0, forever, Some(&index), &mut b);
        assert_eq!(a, b);
        assert_eq!(
            owned.penalty_weight(1),
            indexed.penalty_weight(1),
            "prefix maxima agree between storage kinds"
        );
    }

    #[test]
    fn ranked_scan_partitions_by_deadline_feasibility() {
        let (platform, catalog) = world();
        // tleft = 7: c0@0.5 (exec 16) and c0@1.0 (exec 8) are penalized;
        // cpu1 (6) and gpu (5) are not.
        let arriving = JobView::fresh(
            JobKey(0),
            rtrm_platform::TaskTypeId::new(0),
            Time::ZERO,
            Time::new(7.0),
        );
        let act = activation(&platform, &catalog, &arriving, &[]);
        let mut table = CandidateTable::new();
        table.rebuild(&act, true, false, None);
        let (jobs, mut rows) = table.parts();
        let tleft = jobs[0].time_left(Time::ZERO);
        let mut scan = rows.ranked(0, tleft, None);
        let mut order = Vec::new();
        while let Some((c, penalized)) = scan.next() {
            order.push((c.energy.value(), penalized));
        }
        // Unpenalized energy-ascending, then penalized energy-ascending —
        // the legacy (desirability, resource) sort order.
        assert_eq!(
            order,
            vec![(2.0, false), (5.0, false), (1.0, true), (4.0, true)]
        );
    }

    #[test]
    fn ranked_scan_counts_widening_past_the_shortlist() {
        let (platform, catalog) = world();
        let index = PlatformIndex::with_shortlist(&platform, &catalog, 2);
        let arriving = JobView::fresh(
            JobKey(0),
            rtrm_platform::TaskTypeId::new(0),
            Time::ZERO,
            Time::new(30.0),
        );
        let act = activation(&platform, &catalog, &arriving, &[]);
        let mut table = CandidateTable::new();
        table.rebuild(&act, true, false, Some(&index));
        {
            let (_, mut rows) = table.parts();
            let mut scan = rows.ranked(0, Time::new(30.0), Some(&index));
            scan.next();
            scan.next();
        }
        assert_eq!(table.stats().widened, 0, "stopped inside the shortlist");
        {
            let (_, mut rows) = table.parts();
            let mut scan = rows.ranked(0, Time::new(30.0), Some(&index));
            while scan.next().is_some() {}
        }
        assert_eq!(table.stats().widened, 1, "exhausting the row widens once");
    }

    #[test]
    fn pareto_front_drops_weakly_dominated_candidates() {
        let mk = |r: usize, exec: f64, energy: f64| Candidate {
            resource: ResourceId::new(r),
            exec: Time::new(exec),
            energy: Energy::new(energy),
            pinned: false,
            restart: false,
            speed: 1.0,
        };
        let row = [
            mk(0, 8.0, 1.0),
            mk(1, 8.0, 1.0), // duplicate of 0: weakly dominated
            mk(2, 8.0, 2.0), // dominated by 0 (same exec, more energy)
            mk(3, 4.0, 2.0), // on the front (faster than 0)
            mk(4, 5.0, 3.0), // dominated by 3
            mk(5, 2.0, 9.0), // on the front (fastest)
        ];
        let front = pareto_front(&row);
        let picked: Vec<usize> = front.iter().map(|c| c.resource.index()).collect();
        assert_eq!(picked, vec![0, 3, 5]);
        assert!(pareto_front(&[]).is_empty());
    }
}
