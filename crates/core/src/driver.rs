//! The with-prediction / without-prediction fallback shared by all
//! resource managers (paper Sec 4.1, last paragraph): if no feasible plan
//! honours the predicted task, a plan without it is attempted before the
//! arriving task is rejected.

use rtrm_platform::{Energy, Time};
use rtrm_sched::JobKey;

use crate::activation::{Activation, Assignment, Decision};
use crate::cost::Candidate;

/// A complete plan produced by one solver attempt: a placement for every
/// *real* job (active + arriving, in activation order), the objective value
/// (including the phantom task's energy when it was planned), and the search
/// effort.
#[derive(Debug, Clone)]
pub struct Plan {
    /// Chosen candidate per real job, in activation order.
    pub placements: Vec<(JobKey, Candidate)>,
    /// Objective value of the plan.
    pub objective: Energy,
    /// Search effort (nodes / iterations).
    pub nodes: u64,
    /// Planned start times on the phantom's non-preemptable resource (see
    /// [`Decision::start_gates`]).
    pub start_gates: Vec<(JobKey, Time)>,
}

impl Plan {
    /// Converts the plan into the external decision form.
    #[must_use]
    pub fn into_decision(self, used_prediction: bool) -> Decision {
        Decision {
            admitted: true,
            assignments: self
                .placements
                .into_iter()
                .map(|(key, c)| Assignment {
                    key,
                    resource: c.resource,
                    restart: c.restart,
                    speed: c.speed,
                })
                .collect(),
            objective: self.objective,
            used_prediction,
            nodes: self.nodes,
            start_gates: if used_prediction {
                self.start_gates
            } else {
                Vec::new()
            },
        }
    }
}

/// Runs `solve` with all phantoms first, then with progressively fewer
/// (dropping the furthest-future ones), and finally without any, turning
/// the first success into a [`Decision`]; rejects the arriving task if
/// every attempt fails. With a single phantom this is exactly the paper's
/// Sec 4.1 fallback rule; with more it generalizes it to multi-step
/// lookahead.
///
/// `solve(activation, k)` must plan for the active tasks, the arriving
/// task, and the first `k` phantoms.
pub fn decide_with_fallback<F>(activation: &Activation<'_>, mut solve: F) -> Decision
where
    F: FnMut(&Activation<'_>, usize) -> Option<Plan>,
{
    for k in (1..=activation.predicted.len()).rev() {
        if let Some(plan) = solve(activation, k) {
            return plan.into_decision(true);
        }
    }
    match solve(activation, 0) {
        Some(plan) => plan.into_decision(false),
        None => Decision::reject(),
    }
}
