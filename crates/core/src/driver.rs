//! The with-prediction / without-prediction fallback shared by all
//! resource managers (paper Sec 4.1, last paragraph): if no feasible plan
//! honours the predicted task, a plan without it is attempted before the
//! arriving task is rejected — plus the confidence gate ([`HorizonPolicy`])
//! that decides *which* predicted phantoms are worth planning around.

use rtrm_platform::{Energy, Time};
use rtrm_sched::JobKey;
use serde::{Deserialize, Serialize};

use crate::activation::{Activation, Assignment, Decision};
use crate::cost::Candidate;

/// Uncertainty-weighted admission policy for multi-step horizons: plan only
/// around phantoms whose confidence *strictly* exceeds `theta`, keep at
/// most `depth` of them, highest confidence first.
///
/// The strict comparison fixes the endpoints: `theta = 1.0` gates
/// everything (even a deterministic chain's confidence-1.0 phantom) and is
/// decision-identical to prediction-off, while `theta = 0.0` admits every
/// prediction with positive confidence. Both pins are enforced by
/// `crates/core/tests/horizon_gate.rs`.
///
/// **Why the gated prefix is verdict-safe.** The fallback ladder
/// ([`decide_with_fallback_tracked`]) tries rung `k = |predicted|` down to
/// `k = 0`; with a gated horizon, rung `k`'s prefix is the `k`
/// highest-confidence phantoms instead of "the one phantom, `k` times".
/// The rung-0 floor and the anytime-budget degradation semantics never see
/// the phantoms at all, so gating can only change *which* optional
/// constraints the upper rungs try — never the guaranteed-admission path.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HorizonPolicy {
    /// Maximum number of phantoms to plan around (horizon depth `k`).
    pub depth: usize,
    /// Confidence threshold θ: a phantom is kept iff `confidence > theta`.
    pub theta: f64,
}

impl HorizonPolicy {
    /// Creates a policy with horizon depth `depth` and threshold `theta`.
    #[must_use]
    pub fn new(depth: usize, theta: f64) -> Self {
        HorizonPolicy { depth, theta }
    }

    /// Whether a phantom with this confidence clears the gate. `NaN` never
    /// clears.
    #[must_use]
    pub fn clears(&self, confidence: f64) -> bool {
        confidence > self.theta
    }
}

/// Applies a [`HorizonPolicy`] to `(confidence, payload)` pairs in place:
/// retains pairs whose confidence clears the gate, stable-sorts them by
/// descending confidence (stability preserves nearest-first order among
/// equal confidences), and truncates to the policy's depth.
///
/// The payload is generic so the gate can run on predictions before any
/// phantom `JobView` is materialized — `rtrm-core` never needs to know
/// what a prediction is.
pub fn gate_horizon<T>(policy: HorizonPolicy, candidates: &mut Vec<(f64, T)>) {
    candidates.retain(|(confidence, _)| policy.clears(*confidence));
    // NaNs were dropped by the gate above, so the comparison is total.
    candidates.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
    candidates.truncate(policy.depth);
}

/// A complete plan produced by one solver attempt: a placement for every
/// *real* job (active + arriving, in activation order), the objective value
/// (including the phantom task's energy when it was planned), and the search
/// effort.
#[derive(Debug, Clone)]
pub struct Plan {
    /// Chosen candidate per real job, in activation order.
    pub placements: Vec<(JobKey, Candidate)>,
    /// Objective value of the plan.
    pub objective: Energy,
    /// Search effort (nodes / iterations).
    pub nodes: u64,
    /// Planned start times on the phantom's non-preemptable resource (see
    /// [`Decision::start_gates`]).
    pub start_gates: Vec<(JobKey, Time)>,
}

impl Plan {
    /// Converts the plan into the external decision form.
    #[must_use]
    pub fn into_decision(self, used_prediction: bool) -> Decision {
        Decision {
            admitted: true,
            assignments: self
                .placements
                .into_iter()
                .map(|(key, c)| Assignment {
                    key,
                    resource: c.resource,
                    restart: c.restart,
                    speed: c.speed,
                })
                .collect(),
            objective: self.objective,
            used_prediction,
            nodes: self.nodes,
            start_gates: if used_prediction {
                self.start_gates
            } else {
                Vec::new()
            },
            solver_timeouts: 0,
            degraded: false,
        }
    }
}

/// Outcome of one solver rung on the fallback ladder: the plan (if any) and
/// whether the rung's solver hit its wall-clock budget. A rung can time out
/// *and* still produce a plan — the anytime incumbent.
#[derive(Debug, Clone, Default)]
pub struct Attempt {
    /// The plan, when the rung found one.
    pub plan: Option<Plan>,
    /// `true` when the rung's solver hit its wall-clock budget.
    pub timed_out: bool,
}

impl From<Option<Plan>> for Attempt {
    /// A solver without a wall-clock budget never times out.
    fn from(plan: Option<Plan>) -> Self {
        Attempt {
            plan,
            timed_out: false,
        }
    }
}

/// Runs `solve` with all phantoms first, then with progressively fewer
/// (dropping the furthest-future ones), and finally without any, turning
/// the first success into a [`Decision`]; rejects the arriving task if
/// every attempt fails. With a single phantom this is exactly the paper's
/// Sec 4.1 fallback rule; with more it generalizes it to multi-step
/// lookahead.
///
/// `solve(activation, k)` must plan for the active tasks, the arriving
/// task, and the first `k` phantoms.
pub fn decide_with_fallback<F>(activation: &Activation<'_>, mut solve: F) -> Decision
where
    F: FnMut(&Activation<'_>, usize) -> Option<Plan>,
{
    decide_with_fallback_tracked(activation, |act, k| Attempt::from(solve(act, k)), |_| None)
}

/// The fault-tolerant form of [`decide_with_fallback`]: rungs report
/// wall-clock expiry through [`Attempt`], the returned [`Decision`] carries
/// the timeout/degradation accounting, and when *every* rung fails with at
/// least one timeout among them, the `floor` solver (typically the paper's
/// heuristic, planning without phantoms) gets a last chance before the
/// arriving task is rejected — so an activation is never dropped just
/// because the solver ran long.
///
/// Degradation bookkeeping: a decision is `degraded` when its plan came
/// from a rung below one that timed out (a failed higher rung that was
/// *infeasible* is the paper's normal fallback, not degradation), when the
/// *winning* rung itself timed out and handed back its anytime incumbent
/// (the plan is feasible but possibly suboptimal), or from the `floor`.
pub fn decide_with_fallback_tracked<F, G>(
    activation: &Activation<'_>,
    mut solve: F,
    mut floor: G,
) -> Decision
where
    F: FnMut(&Activation<'_>, usize) -> Attempt,
    G: FnMut(&Activation<'_>) -> Option<Plan>,
{
    let mut timeouts: u32 = 0;
    let mut timed_out_above = false;
    let finish = |plan: Plan, used_prediction: bool, degraded: bool, timeouts: u32| {
        let mut decision = plan.into_decision(used_prediction);
        decision.solver_timeouts = timeouts;
        decision.degraded = degraded;
        decision
    };
    for k in (1..=activation.predicted.len()).rev() {
        let attempt = solve(activation, k);
        if attempt.timed_out {
            timeouts += 1;
        }
        if let Some(plan) = attempt.plan {
            return finish(plan, true, timed_out_above || attempt.timed_out, timeouts);
        }
        timed_out_above |= attempt.timed_out;
    }
    let attempt = solve(activation, 0);
    if attempt.timed_out {
        timeouts += 1;
    }
    if let Some(plan) = attempt.plan {
        return finish(plan, false, timed_out_above || attempt.timed_out, timeouts);
    }
    timed_out_above |= attempt.timed_out;
    if timed_out_above {
        if let Some(plan) = floor(activation) {
            return finish(plan, false, true, timeouts);
        }
    }
    let mut decision = Decision::reject();
    decision.solver_timeouts = timeouts;
    decision
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtrm_platform::{Platform, TaskCatalog, TaskTypeId};

    use crate::view::JobView;

    fn plan() -> Plan {
        Plan {
            placements: Vec::new(),
            objective: Energy::new(1.0),
            nodes: 1,
            start_gates: Vec::new(),
        }
    }

    /// Drives `decide_with_fallback_tracked` over a fabricated one-phantom
    /// activation with a scripted rung outcome per `k`.
    fn run_ladder(rungs: impl Fn(usize) -> Attempt, floor: impl Fn() -> Option<Plan>) -> Decision {
        let platform = Platform::paper_default();
        let catalog = TaskCatalog::new(Vec::new());
        let arriving = JobView::fresh(JobKey(0), TaskTypeId::new(0), Time::ZERO, Time::new(1.0));
        let phantom = [JobView::fresh(
            JobKey(u64::MAX),
            TaskTypeId::new(0),
            Time::new(1.0),
            Time::new(2.0),
        )];
        let activation = Activation {
            now: Time::ZERO,
            platform: &platform,
            catalog: &catalog,
            active: &[],
            arriving,
            predicted: &phantom,
        };
        decide_with_fallback_tracked(&activation, |_, k| rungs(k), |_| floor())
    }

    #[test]
    fn winning_rung_incumbent_on_timeout_is_degraded() {
        // The top rung times out but hands back its anytime incumbent: the
        // plan is feasible yet possibly suboptimal, so the decision must be
        // counted as degraded (and the timeout recorded).
        let decision = run_ladder(
            |_| Attempt {
                plan: Some(plan()),
                timed_out: true,
            },
            || None,
        );
        assert!(decision.admitted);
        assert!(decision.used_prediction);
        assert!(decision.degraded, "incumbent-on-timeout must degrade");
        assert_eq!(decision.solver_timeouts, 1);
    }

    #[test]
    fn phantom_free_rung_incumbent_on_timeout_is_degraded() {
        // Top rung infeasible (clean failure), k=0 rung times out with an
        // incumbent: degraded, two distinct accounting paths.
        let decision = run_ladder(
            |k| {
                if k > 0 {
                    Attempt::default()
                } else {
                    Attempt {
                        plan: Some(plan()),
                        timed_out: true,
                    }
                }
            },
            || None,
        );
        assert!(decision.admitted);
        assert!(!decision.used_prediction);
        assert!(decision.degraded);
        assert_eq!(decision.solver_timeouts, 1);
    }

    #[test]
    fn clean_win_below_infeasible_rung_is_not_degraded() {
        // A failed higher rung that was *infeasible* (no timeout) is the
        // paper's normal fallback, not degradation.
        let decision = run_ladder(
            |k| {
                if k > 0 {
                    Attempt::default()
                } else {
                    Attempt::from(Some(plan()))
                }
            },
            || None,
        );
        assert!(decision.admitted);
        assert!(!decision.degraded);
        assert_eq!(decision.solver_timeouts, 0);
    }

    #[test]
    fn win_below_timed_out_rung_is_degraded() {
        let decision = run_ladder(
            |k| {
                if k > 0 {
                    Attempt {
                        plan: None,
                        timed_out: true,
                    }
                } else {
                    Attempt::from(Some(plan()))
                }
            },
            || None,
        );
        assert!(decision.admitted);
        assert!(decision.degraded);
        assert_eq!(decision.solver_timeouts, 1);
    }

    #[test]
    fn gate_keeps_highest_confidence_prefix() {
        let mut candidates = vec![(0.3, "c"), (0.9, "a"), (0.5, "b"), (0.9, "a2"), (0.1, "d")];
        gate_horizon(HorizonPolicy::new(3, 0.2), &mut candidates);
        // 0.1 gated out; top three by confidence, ties in original order.
        assert_eq!(candidates, vec![(0.9, "a"), (0.9, "a2"), (0.5, "b")]);
    }

    #[test]
    fn gate_theta_one_drops_everything() {
        let mut candidates = vec![(1.0, 0), (0.99, 1)];
        gate_horizon(HorizonPolicy::new(8, 1.0), &mut candidates);
        assert!(candidates.is_empty(), "theta=1.0 must gate even certainty");
    }

    #[test]
    fn gate_theta_zero_keeps_positive_confidence_only() {
        let mut candidates = vec![(0.0, 0), (f64::NAN, 1), (0.01, 2)];
        gate_horizon(HorizonPolicy::new(8, 0.0), &mut candidates);
        assert_eq!(candidates.len(), 1);
        assert_eq!(candidates[0].1, 2);
    }

    #[test]
    fn floor_after_all_timeouts_is_degraded() {
        let decision = run_ladder(
            |_| Attempt {
                plan: None,
                timed_out: true,
            },
            || Some(plan()),
        );
        assert!(decision.admitted);
        assert!(decision.degraded);
        assert_eq!(decision.solver_timeouts, 2);
    }
}
