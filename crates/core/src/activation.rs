//! The resource-manager interface: activations, plans, and decisions.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use rtrm_platform::{Energy, Platform, PlatformIndex, ResourceId, ResourceKind, TaskCatalog, Time};
use rtrm_sched::{
    is_schedulable_with, simulate_into, EdfScratch, EdfTimeline, JobKey, JobOutcome, PlannedJob,
};

use crate::cost::Candidate;
use crate::prune::{CandidateTable, PruneStats};
use crate::view::JobView;

/// Everything the resource manager sees when it is activated by an arrival
/// (the paper's Sec 4.1): the current time, the platform, the set of active
/// tasks, the arriving task, and — when prediction is enabled — the phantom
/// task for the predicted next request.
#[derive(Debug, Clone, Copy)]
pub struct Activation<'a> {
    /// The activation instant `t`.
    pub now: Time,
    /// The platform.
    pub platform: &'a Platform,
    /// The task catalog.
    pub catalog: &'a TaskCatalog,
    /// Admitted, unfinished tasks (with their placements).
    pub active: &'a [JobView],
    /// The task triggered by the arriving request. Its `release` may lie
    /// after `now` when prediction overhead is charged (Sec 5.5).
    pub arriving: JobView,
    /// Phantom tasks for the predicted next requests, nearest first. Empty
    /// when prediction is off; one element reproduces the paper; more give
    /// multi-step lookahead (an extension, see `ext_lookahead`).
    pub predicted: &'a [JobView],
}

impl Activation<'_> {
    /// The paper's time window K̄: the latest `t_left` over all tasks the
    /// manager plans (active + arriving + predicted).
    #[must_use]
    pub fn window(&self) -> Time {
        self.jobs_with_prediction()
            .map(|j| j.time_left(self.now))
            .max()
            .unwrap_or(Time::ZERO)
    }

    /// All jobs of S̄ including every phantom: active tasks first, then the
    /// arriving task, then the phantoms.
    pub fn jobs_with_prediction(&self) -> impl Iterator<Item = &JobView> {
        self.jobs_with_phantoms(self.predicted.len())
    }

    /// Active tasks, the arriving task, and the first `k` phantoms.
    ///
    /// # Panics
    ///
    /// Panics if `k` exceeds the number of phantoms.
    pub fn jobs_with_phantoms(&self, k: usize) -> impl Iterator<Item = &JobView> {
        self.active
            .iter()
            .chain(std::iter::once(&self.arriving))
            .chain(self.predicted[..k].iter())
    }

    /// All real jobs (active + arriving), excluding the phantom.
    pub fn jobs_without_prediction(&self) -> impl Iterator<Item = &JobView> {
        self.active.iter().chain(std::iter::once(&self.arriving))
    }
}

/// The placement the manager chose for one real task.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Assignment {
    /// Which task.
    pub key: JobKey,
    /// Where it goes.
    pub resource: ResourceId,
    /// `true` if the task's progress is discarded and it restarts from
    /// scratch (GPU abort).
    pub restart: bool,
    /// DVFS speed level the placement runs at (`1.0` without frequency
    /// scaling).
    pub speed: f64,
}

/// The outcome of one manager activation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Decision {
    /// `true` if the arriving task was admitted. When `false`, `assignments`
    /// is empty and the previous plan remains in force (the paper rejects
    /// the arriving task and changes nothing).
    pub admitted: bool,
    /// New placements for every real task (active + arriving), in the order
    /// they appeared in the activation. Empty on rejection.
    pub assignments: Vec<Assignment>,
    /// The optimization objective of the chosen plan: not-yet-consumed
    /// energy plus migration overheads, including the phantom task if the
    /// plan honoured it (the paper's objective).
    pub objective: Energy,
    /// `true` if the chosen plan also accommodates the predicted task;
    /// `false` if the fallback without prediction was used (Sec 4.1) or
    /// prediction was off.
    pub used_prediction: bool,
    /// Search effort (branch & bound nodes, or heuristic iterations).
    pub nodes: u64,
    /// Planned start times on the predicted task's *non-preemptable*
    /// resource (empty otherwise). The paper's manager decides "the moment
    /// in time at which to schedule the start" of each task (Sec 2); on a
    /// GPU that plan includes waiting for the predicted task's slot, which
    /// work-conserving dispatch would destroy. The simulator holds each
    /// listed job back to its planned start until the next activation
    /// replans.
    pub start_gates: Vec<(JobKey, Time)>,
    /// Fallback-ladder rungs whose solver hit its wall-clock budget during
    /// this activation (0 unless an anytime budget is configured).
    pub solver_timeouts: u32,
    /// `true` when the plan came from a rung *below* one that timed out —
    /// i.e. the decision was degraded by solver latency, not by genuine
    /// infeasibility of the higher rungs (the paper's normal Sec 4.1
    /// fallback is not degradation).
    pub degraded: bool,
}

impl Decision {
    /// The rejection decision: nothing changes.
    #[must_use]
    pub fn reject() -> Self {
        Decision {
            admitted: false,
            assignments: Vec::new(),
            objective: Energy::ZERO,
            used_prediction: false,
            nodes: 0,
            start_gates: Vec::new(),
            solver_timeouts: 0,
            degraded: false,
        }
    }
}

/// A resource-management policy: decides mapping (and implicitly, through
/// per-resource EDF, scheduling) at every activation.
pub trait ResourceManager {
    /// A short human-readable policy name ("heuristic", "milp", ...).
    fn name(&self) -> &str;

    /// Plans the activation: either admits the arriving task with a full set
    /// of assignments, or rejects it (leaving the previous plan in force).
    ///
    /// Implementations must follow the paper's fallback rule: if no feasible
    /// plan honours the predicted task, retry without it before rejecting.
    fn decide(&mut self, activation: &Activation<'_>) -> Decision;

    /// Like [`decide`](ResourceManager::decide), but planning inside a
    /// caller-held [`TimelinePool`] so timelines, scratch buffers, and
    /// engine-fallback memo entries stay warm across activations (and across
    /// traces, when the caller simulates a batch).
    ///
    /// The decision is identical to [`decide`](ResourceManager::decide) —
    /// pools carry no plan state, only reusable allocations and exact-keyed
    /// memo entries. The default implementation ignores the pool; managers
    /// with a hot placement search ([`HeuristicRm`](crate::HeuristicRm),
    /// [`ExactRm`](crate::ExactRm)) override it.
    fn decide_with_pool(
        &mut self,
        activation: &Activation<'_>,
        pool: &mut TimelinePool,
    ) -> Decision {
        let _ = pool;
        self.decide(activation)
    }

    /// Sets the per-decision wall-clock budget in seconds (`None` removes
    /// it), effective from the next [`decide`](ResourceManager::decide).
    ///
    /// This is the overload-control knob of the anytime fallback ladder: a
    /// caller watching its backlog shrinks the budget toward `Some(0.0)`,
    /// which forces every rung to expire immediately and degrades each
    /// decision to the heuristic floor — bounded decide latency instead of
    /// an unbounded queue. Managers without an anytime solver ignore it
    /// (the default); [`MilpRm`](crate::MilpRm) and
    /// [`ExactRm`](crate::ExactRm) honour it.
    fn set_wall_clock(&mut self, budget: Option<f64>) {
        let _ = budget;
    }
}

/// Reusable state backing [`PlanBuilder`]s: one persistent [`EdfTimeline`]
/// per resource plus scratch buffers and a memo for the ad-hoc sub-queue
/// checks of [`PlanBuilder::fits_or_defer`].
///
/// A manager threads one pool through every [`PlanBuilder::new`] of an
/// activation — in particular through all rungs of the phantom-count
/// fallback ladder — so timeline allocations and engine-fallback memo
/// entries are shared across the whole placement search instead of being
/// rebuilt per rung.
///
/// Pools may also outlive a single activation: a caller that simulates many
/// traces can hold one warm pool per worker and pass it to
/// [`ResourceManager::decide_with_pool`] on every activation, eliminating
/// the steady-state timeline/buffer allocations. This is safe because every
/// memoized verdict is keyed by the exact probe content *including* the
/// activation instant and the resource's preemptability, and
/// [`PlanBuilder::new`] resets the timelines for the new instant.
#[derive(Debug, Clone, Default)]
pub struct TimelinePool {
    /// When `true`, timelines run in oracle mode: every feasibility probe is
    /// a memoized from-scratch engine run — the pre-incremental baseline,
    /// kept callable for benchmarks and differential tests.
    oracle: bool,
    /// One timeline per resource, reset (not reallocated) per builder.
    timelines: Vec<EdfTimeline>,
    /// Queue buffer for sub-queue checks and gate replays.
    queue: Vec<PlannedJob>,
    /// Encoded memo key for the queue under test.
    probe: Vec<u64>,
    /// Outcome buffer for [`PlanBuilder::reservation_gates`].
    outcomes: Vec<JobOutcome>,
    /// EDF engine state for queue checks outside the timelines.
    edf: EdfScratch,
    /// Exact-keyed verdicts for sub-queue checks, cleared when it outgrows
    /// [`MEMO_CAP`].
    memo: HashMap<Vec<u64>, bool>,
    /// Instant of the last [`PlanBuilder::new`]. Memo keys include the
    /// instant, so entries from other instants can never hit again; the
    /// builder flushes them instead of letting a long-lived pool drag a
    /// memo full of dead keys through every lookup.
    last_now: Option<Time>,
    /// Builder generation. A timeline is only reset (and only *iterated* by
    /// whole-plan reads) when its [`touched_epoch`](TimelinePool) entry
    /// matches the current epoch — so a builder over a 512-resource platform
    /// that places jobs on a handful of resources does O(touched) work, not
    /// O(platform).
    epoch: u64,
    /// Per-resource epoch of the last touch. `0` = never touched (epochs
    /// start at 1).
    touched_epoch: Vec<u64>,
    /// Resources touched by the current builder, in first-touch order — the
    /// shard the whole-plan reads iterate.
    touched: Vec<ResourceId>,
    /// Ranked placement rows for fresh jobs, installed per run via
    /// [`ensure_index`](TimelinePool::ensure_index); `None` falls back to
    /// per-decide row materialization (identical decisions).
    index: Option<PlatformIndex>,
    /// Recycled per-decide candidate table for the pruned decide path.
    table: CandidateTable,
}

impl TimelinePool {
    /// Creates an empty pool (incremental feasibility, the default).
    #[must_use]
    pub fn new() -> Self {
        TimelinePool::default()
    }

    /// Creates a pool whose timelines answer every probe with the memoized
    /// from-scratch engine instead of the incremental tree. Verdicts are
    /// identical; this exists so benchmarks can compare against the
    /// pre-incremental baseline inside the same binary.
    #[must_use]
    pub fn oracle() -> Self {
        TimelinePool {
            oracle: true,
            ..TimelinePool::default()
        }
    }

    /// Switches the pool between incremental feasibility (the default,
    /// `false`) and the memoized from-scratch engine baseline (`true`).
    /// Managers that accept an external pool
    /// ([`ResourceManager::decide_with_pool`]) call this on every activation
    /// so the pool's mode always matches the manager's own
    /// `oracle_feasibility` flag, whichever pool it is handed.
    pub fn set_oracle(&mut self, oracle: bool) {
        self.oracle = oracle;
    }

    /// The per-resource timelines currently held by the pool (shorter than
    /// the platform until the first [`PlanBuilder::new`] sizes it).
    #[must_use]
    pub fn timelines(&self) -> &[EdfTimeline] {
        &self.timelines
    }

    /// Total feasibility verdicts the pool's timelines answered with the
    /// from-scratch engine (memo hits included) instead of the incremental
    /// trees. Diagnostics: tests assert that probes on preemptable resources
    /// — phantoms included — never route through the engine.
    #[must_use]
    pub fn engine_verdicts(&self) -> u64 {
        self.timelines
            .iter()
            .map(EdfTimeline::engine_verdicts)
            .sum()
    }

    /// Installs (or refreshes) the [`PlatformIndex`] for this world,
    /// rebuilding only when the cached index's
    /// [fingerprint](PlatformIndex::world_fingerprint) no longer matches —
    /// callers invoke this once per simulation run, so a warm pool carried
    /// across traces (or across whole sweep cells with different worlds)
    /// never serves stale rows.
    pub fn ensure_index(&mut self, platform: &Platform, catalog: &TaskCatalog) {
        let fingerprint = PlatformIndex::world_fingerprint(platform, catalog);
        if self
            .index
            .as_ref()
            .is_none_or(|ix| ix.fingerprint() != fingerprint)
        {
            self.index = Some(PlatformIndex::build(platform, catalog));
        }
    }

    /// Drops the cached [`PlatformIndex`]; subsequent decides materialize
    /// every candidate row through the cost model (identical decisions).
    pub fn clear_index(&mut self) {
        self.index = None;
    }

    /// The cached [`PlatformIndex`], if one is installed.
    #[must_use]
    pub fn index(&self) -> Option<&PlatformIndex> {
        self.index.as_ref()
    }

    /// Cumulative pruned-path behaviour counters (table rebuilds, row
    /// storage kinds, shortlist widenings).
    #[must_use]
    pub fn prune_stats(&self) -> PruneStats {
        self.table.stats()
    }

    /// Moves the recycled candidate table out of the pool for the duration
    /// of one decide (so the table and the pool's timelines can be borrowed
    /// independently); return it with
    /// [`restore_table`](TimelinePool::restore_table).
    pub(crate) fn take_table(&mut self) -> CandidateTable {
        std::mem::take(&mut self.table)
    }

    /// Moves the cached index out alongside [`take_table`](TimelinePool::take_table).
    pub(crate) fn take_index(&mut self) -> Option<PlatformIndex> {
        self.index.take()
    }

    /// Returns the table (and index) taken at the start of a decide.
    pub(crate) fn restore_table(&mut self, table: CandidateTable, index: Option<PlatformIndex>) {
        self.table = table;
        if self.index.is_none() {
            self.index = index;
        }
    }
}

/// A partial plan under construction: one persistent [`EdfTimeline`] per
/// resource. Shared by the heuristic and the exact optimizer.
///
/// Feasibility probes ([`fits`](PlanBuilder::fits)) splice the candidate into
/// the retained timeline and read the verdict incrementally in O(log n) for
/// dense queues — the common case — instead of re-simulating the whole
/// queue; committing ([`place`](PlanBuilder::place)) and backtracking
/// ([`unplace_last`](PlanBuilder::unplace_last)) keep the timeline in sync at
/// the same cost. Queues containing future-released jobs (phantoms, delayed
/// arrivals) stay incremental on preemptable resources — the timeline answers
/// them with a per-release-segment demand-criterion sweep — and fall back to
/// memoized from-scratch engine runs only on non-preemptable ones, where the
/// scheduling anomaly genuinely needs the engine; exactness is never traded
/// away.
#[derive(Debug)]
pub struct PlanBuilder<'a> {
    activation: &'a Activation<'a>,
    pool: &'a mut TimelinePool,
}

/// Memo entries kept before the cache is wholesale cleared. Activations plan
/// a handful of jobs over a handful of resources, so in practice the cache
/// never fills; the cap only bounds memory on adversarial inputs.
const MEMO_CAP: usize = 4096;

/// Feasibility of `queue` on `resource`, memoized by exact queue content
/// (bit patterns, not a lossy hash — a hit can never return a wrong
/// verdict). The key includes the activation instant and the resource's
/// preemptability, so a pool reused across activations — or even across
/// simulators — can never serve a stale verdict.
fn queue_schedulable(
    queue: &[PlannedJob],
    resource: ResourceId,
    kind: ResourceKind,
    now: Time,
    edf: &mut EdfScratch,
    memo: &mut HashMap<Vec<u64>, bool>,
    probe: &mut Vec<u64>,
) -> bool {
    probe.clear();
    probe.push(resource.index() as u64);
    probe.push(now.value().to_bits());
    probe.push(u64::from(kind.is_preemptable()));
    for j in queue {
        probe.push(j.key.0);
        probe.push(j.release.value().to_bits());
        probe.push(j.exec.value().to_bits());
        probe.push(j.deadline.value().to_bits());
        probe.push(u64::from(j.pinned));
    }
    if let Some(&verdict) = memo.get(probe.as_slice()) {
        return verdict;
    }
    let verdict = is_schedulable_with(kind, now, queue, edf);
    if memo.len() >= MEMO_CAP {
        memo.clear();
    }
    memo.insert(probe.clone(), verdict);
    verdict
}

impl<'a> PlanBuilder<'a> {
    /// Creates an empty plan for the activation's platform, reusing the
    /// pool's timelines and buffers.
    ///
    /// O(1) amortized in the platform size: timelines are reset *lazily*, on
    /// first touch by this builder (the epoch scheme), so a builder that
    /// probes a handful of shortlisted resources never walks the other
    /// hundreds — untouched resources are by definition empty, hence
    /// trivially schedulable, and the whole-plan reads
    /// ([`all_schedulable`](PlanBuilder::all_schedulable),
    /// [`reservation_gates`](PlanBuilder::reservation_gates)) iterate only
    /// the touched shard.
    #[must_use]
    pub fn new(activation: &'a Activation<'a>, pool: &'a mut TimelinePool) -> Self {
        if pool.last_now != Some(activation.now) {
            pool.memo.clear();
            pool.last_now = Some(activation.now);
        }
        while pool.timelines.len() < activation.platform.len() {
            pool.timelines
                .push(EdfTimeline::new(ResourceKind::Cpu, activation.now));
        }
        if pool.touched_epoch.len() < pool.timelines.len() {
            pool.touched_epoch.resize(pool.timelines.len(), 0);
        }
        pool.epoch += 1;
        pool.touched.clear();
        PlanBuilder { activation, pool }
    }

    /// Resets `r`'s timeline on this builder's first touch of it and tracks
    /// it in the touched shard; every timeline access routes through here.
    fn prepare(&mut self, r: ResourceId) -> &mut EdfTimeline {
        let i = r.index();
        if self.pool.touched_epoch[i] != self.pool.epoch {
            self.pool.touched_epoch[i] = self.pool.epoch;
            self.pool.touched.push(r);
            let timeline = &mut self.pool.timelines[i];
            timeline.reset(
                self.activation.platform.resource(r).kind(),
                self.activation.now,
            );
            timeline.set_oracle(self.pool.oracle);
        }
        &mut self.pool.timelines[i]
    }

    /// The [`PlannedJob`] a (job, candidate) pair contributes to a resource
    /// queue.
    #[must_use]
    pub fn planned_job(&self, job: &JobView, candidate: &Candidate) -> PlannedJob {
        PlannedJob {
            key: job.key,
            release: job.release.max(self.activation.now),
            exec: candidate.exec,
            deadline: job.deadline,
            pinned: candidate.pinned,
        }
    }

    /// Returns `true` if adding `job` via `candidate` keeps that resource's
    /// queue schedulable (the heuristic's `IsSchedulable`). An incremental
    /// probe of the retained timeline: O(log n) on dense queues.
    #[must_use]
    pub fn fits(&mut self, job: &JobView, candidate: &Candidate) -> bool {
        let planned = self.planned_job(job, candidate);
        self.prepare(candidate.resource).fits(planned)
    }

    /// Like [`fits`](PlanBuilder::fits), but *defers* the verdict (returns
    /// `true`) when the target resource is non-preemptable and its queue
    /// would contain a future-released job. On such queues feasibility is
    /// not monotone under job addition — a later placement can push the
    /// dispatch of an early job past the future release and *repair* the
    /// schedule (a classic non-preemptive scheduling anomaly) — so an exact
    /// search must not prune on the partial check; it re-validates complete
    /// plans with [`all_schedulable`](PlanBuilder::all_schedulable).
    #[must_use]
    pub fn fits_or_defer(&mut self, job: &JobView, candidate: &Candidate) -> bool {
        let r = candidate.resource;
        let kind = self.activation.platform.resource(r).kind();
        if !kind.is_preemptable() {
            let now = self.activation.now;
            // `released_by` is the same epsilon-tolerant predicate the engine
            // and the timelines classify with, and `has_future` reads the
            // timeline's retained release stack in O(1) instead of rescanning
            // the queue.
            let has_future = self.prepare(r).has_future();
            let future = !job.release.released_by(now) || has_future;
            if future {
                // Sound necessary condition that survives the anomaly: the
                // sub-queue of already-released jobs runs in pure EDF order
                // regardless of the future releases (removing future work
                // only shortens its prefix sums), so if *it* misses a
                // deadline, no completion of this partial plan can fix it.
                let planned = self.planned_job(job, candidate);
                let TimelinePool {
                    timelines,
                    queue,
                    probe,
                    edf,
                    memo,
                    ..
                } = &mut *self.pool;
                queue.clear();
                queue.extend(
                    timelines[r.index()]
                        .jobs()
                        .iter()
                        .filter(|j| j.release.released_by(now))
                        .copied(),
                );
                if planned.release.released_by(now) {
                    queue.push(planned);
                }
                return queue_schedulable(queue, r, kind, now, edf, memo, probe);
            }
        }
        self.fits(job, candidate)
    }

    /// Commits `job` to `candidate`'s resource, splicing it into the
    /// retained timeline (callers are expected to have checked
    /// [`fits`](PlanBuilder::fits) first; placing an infeasible job is
    /// allowed and simply leaves the timeline infeasible).
    pub fn place(&mut self, job: &JobView, candidate: &Candidate) {
        let planned = self.planned_job(job, candidate);
        let _ = self.prepare(candidate.resource).push(planned);
    }

    /// Removes the most recently placed job from `resource` (backtracking).
    ///
    /// # Panics
    ///
    /// Panics if nothing is placed on `resource`.
    pub fn unplace_last(&mut self, resource: ResourceId) {
        let _ = self.prepare(resource).undo();
    }

    /// Number of jobs currently placed on `resource` (0 for resources this
    /// builder never touched — their stale timeline contents belong to an
    /// earlier builder).
    #[must_use]
    pub fn load(&self, resource: ResourceId) -> usize {
        let i = resource.index();
        if self.pool.touched_epoch[i] == self.pool.epoch {
            self.pool.timelines[i].len()
        } else {
            0
        }
    }

    /// Returns `true` if every resource queue is schedulable (sanity check
    /// for complete plans). Reads the retained verdicts of the touched
    /// shard: untouched resources are empty, hence trivially schedulable.
    #[must_use]
    pub fn all_schedulable(&mut self) -> bool {
        let PlanBuilder { pool, .. } = self;
        pool.touched
            .iter()
            .all(|r| pool.timelines[r.index()].feasible())
    }

    /// Planned start times of the real jobs sharing a phantom's resource,
    /// for every *non-preemptable* resource hosting one — the paper's
    /// "schedule the start of execution" made explicit so the simulator can
    /// follow the plan (including the idle wait that reserves the slot for
    /// the predicted task). Phantoms on preemptable resources contribute no
    /// gates: there, preemption at the actual arrival recovers the plan
    /// without reservations.
    #[must_use]
    pub fn reservation_gates(&mut self, phantoms: &[JobKey]) -> Vec<(JobKey, Time)> {
        let mut gates = Vec::new();
        let PlanBuilder { activation, pool } = self;
        // Only touched resources can hold a phantom; sorted so gate order
        // matches the legacy platform-order iteration.
        let mut shard: Vec<ResourceId> = pool
            .touched
            .iter()
            .copied()
            .filter(|&r| !activation.platform.resource(r).kind().is_preemptable())
            .collect();
        shard.sort_unstable();
        let TimelinePool {
            timelines,
            edf,
            outcomes,
            ..
        } = &mut **pool;
        for resource in shard {
            let kind = activation.platform.resource(resource).kind();
            let queue = timelines[resource.index()].jobs();
            if !queue.iter().any(|j| phantoms.contains(&j.key)) {
                continue;
            }
            simulate_into(kind, activation.now, queue, None, edf, outcomes);
            gates.extend(
                queue
                    .iter()
                    .zip(outcomes.iter())
                    .filter(|(j, _)| !phantoms.contains(&j.key))
                    .map(|(j, o)| {
                        let finish = o.finish.expect("unbounded simulation finishes all jobs");
                        (j.key, finish - j.exec)
                    }),
            );
        }
        gates
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtrm_platform::{TaskType, TaskTypeId};

    fn setup() -> (Platform, TaskCatalog) {
        let platform = Platform::builder().cpus(1).gpu("g").build();
        let ids: Vec<_> = platform.ids().collect();
        let ty = TaskType::builder(0, &platform)
            .profile(ids[0], Time::new(4.0), Energy::new(4.0))
            .profile(ids[1], Time::new(2.0), Energy::new(1.0))
            .build();
        (platform, TaskCatalog::new(vec![ty]))
    }

    #[test]
    fn window_is_max_time_left() {
        let (platform, catalog) = setup();
        let active = [JobView::fresh(
            JobKey(0),
            TaskTypeId::new(0),
            Time::ZERO,
            Time::new(30.0),
        )];
        let activation = Activation {
            now: Time::new(10.0),
            platform: &platform,
            catalog: &catalog,
            active: &active,
            arriving: JobView::fresh(
                JobKey(1),
                TaskTypeId::new(0),
                Time::new(10.0),
                Time::new(18.0),
            ),
            predicted: &[],
        };
        assert_eq!(activation.window(), Time::new(20.0));
        assert_eq!(activation.jobs_with_prediction().count(), 2);
        assert_eq!(activation.jobs_without_prediction().count(), 2);
    }

    #[test]
    fn reused_pool_matches_fresh_pool_across_activations() {
        // A warm pool handed to decide_with_pool across activations with
        // different instants (and hence different memo keys) must produce
        // exactly the decisions of per-activation fresh pools.
        let (platform, catalog) = setup();
        let mut warm = TimelinePool::new();
        let mut rm_warm = crate::HeuristicRm::new();
        let mut rm_fresh = crate::HeuristicRm::new();
        for step in 0..4u64 {
            let now = Time::new(step as f64 * 1.5);
            let arriving = JobView::fresh(
                JobKey(step),
                TaskTypeId::new(0),
                now,
                now + Time::new(2.5 + step as f64),
            );
            let activation = Activation {
                now,
                platform: &platform,
                catalog: &catalog,
                active: &[],
                arriving,
                predicted: &[],
            };
            let with_warm = rm_warm.decide_with_pool(&activation, &mut warm);
            let with_fresh = rm_fresh.decide(&activation);
            assert_eq!(with_warm, with_fresh, "step {step}");
        }
    }

    #[test]
    fn plan_builder_checks_and_backtracks() {
        let (platform, catalog) = setup();
        let arriving = JobView::fresh(JobKey(1), TaskTypeId::new(0), Time::ZERO, Time::new(3.0));
        let activation = Activation {
            now: Time::ZERO,
            platform: &platform,
            catalog: &catalog,
            active: &[],
            arriving,
            predicted: &[],
        };
        let mut pool = TimelinePool::new();
        let mut plan = PlanBuilder::new(&activation, &mut pool);
        let cpu = Candidate {
            resource: ResourceId::new(0),
            exec: Time::new(4.0),
            energy: Energy::new(4.0),
            pinned: false,
            restart: false,
            speed: 1.0,
        };
        let gpu = Candidate {
            resource: ResourceId::new(1),
            exec: Time::new(2.0),
            energy: Energy::new(1.0),
            pinned: false,
            restart: false,
            speed: 1.0,
        };
        assert!(!plan.fits(&arriving, &cpu), "4 units in a 3-unit window");
        assert!(plan.fits(&arriving, &gpu));
        plan.place(&arriving, &gpu);
        assert_eq!(plan.load(ResourceId::new(1)), 1);
        assert!(plan.all_schedulable());
        plan.unplace_last(ResourceId::new(1));
        assert_eq!(plan.load(ResourceId::new(1)), 0);
    }
}
