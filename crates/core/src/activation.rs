//! The resource-manager interface: activations, plans, and decisions.

use std::cell::RefCell;
use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use rtrm_platform::{Energy, Platform, ResourceId, ResourceKind, TaskCatalog, Time};
use rtrm_sched::{is_schedulable_with, simulate_into, EdfScratch, JobKey, JobOutcome, PlannedJob};

use crate::cost::Candidate;
use crate::view::JobView;

/// Everything the resource manager sees when it is activated by an arrival
/// (the paper's Sec 4.1): the current time, the platform, the set of active
/// tasks, the arriving task, and — when prediction is enabled — the phantom
/// task for the predicted next request.
#[derive(Debug, Clone, Copy)]
pub struct Activation<'a> {
    /// The activation instant `t`.
    pub now: Time,
    /// The platform.
    pub platform: &'a Platform,
    /// The task catalog.
    pub catalog: &'a TaskCatalog,
    /// Admitted, unfinished tasks (with their placements).
    pub active: &'a [JobView],
    /// The task triggered by the arriving request. Its `release` may lie
    /// after `now` when prediction overhead is charged (Sec 5.5).
    pub arriving: JobView,
    /// Phantom tasks for the predicted next requests, nearest first. Empty
    /// when prediction is off; one element reproduces the paper; more give
    /// multi-step lookahead (an extension, see `ext_lookahead`).
    pub predicted: &'a [JobView],
}

impl Activation<'_> {
    /// The paper's time window K̄: the latest `t_left` over all tasks the
    /// manager plans (active + arriving + predicted).
    #[must_use]
    pub fn window(&self) -> Time {
        self.jobs_with_prediction()
            .map(|j| j.time_left(self.now))
            .max()
            .unwrap_or(Time::ZERO)
    }

    /// All jobs of S̄ including every phantom: active tasks first, then the
    /// arriving task, then the phantoms.
    pub fn jobs_with_prediction(&self) -> impl Iterator<Item = &JobView> {
        self.jobs_with_phantoms(self.predicted.len())
    }

    /// Active tasks, the arriving task, and the first `k` phantoms.
    ///
    /// # Panics
    ///
    /// Panics if `k` exceeds the number of phantoms.
    pub fn jobs_with_phantoms(&self, k: usize) -> impl Iterator<Item = &JobView> {
        self.active
            .iter()
            .chain(std::iter::once(&self.arriving))
            .chain(self.predicted[..k].iter())
    }

    /// All real jobs (active + arriving), excluding the phantom.
    pub fn jobs_without_prediction(&self) -> impl Iterator<Item = &JobView> {
        self.active.iter().chain(std::iter::once(&self.arriving))
    }
}

/// The placement the manager chose for one real task.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Assignment {
    /// Which task.
    pub key: JobKey,
    /// Where it goes.
    pub resource: ResourceId,
    /// `true` if the task's progress is discarded and it restarts from
    /// scratch (GPU abort).
    pub restart: bool,
    /// DVFS speed level the placement runs at (`1.0` without frequency
    /// scaling).
    pub speed: f64,
}

/// The outcome of one manager activation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Decision {
    /// `true` if the arriving task was admitted. When `false`, `assignments`
    /// is empty and the previous plan remains in force (the paper rejects
    /// the arriving task and changes nothing).
    pub admitted: bool,
    /// New placements for every real task (active + arriving), in the order
    /// they appeared in the activation. Empty on rejection.
    pub assignments: Vec<Assignment>,
    /// The optimization objective of the chosen plan: not-yet-consumed
    /// energy plus migration overheads, including the phantom task if the
    /// plan honoured it (the paper's objective).
    pub objective: Energy,
    /// `true` if the chosen plan also accommodates the predicted task;
    /// `false` if the fallback without prediction was used (Sec 4.1) or
    /// prediction was off.
    pub used_prediction: bool,
    /// Search effort (branch & bound nodes, or heuristic iterations).
    pub nodes: u64,
    /// Planned start times on the predicted task's *non-preemptable*
    /// resource (empty otherwise). The paper's manager decides "the moment
    /// in time at which to schedule the start" of each task (Sec 2); on a
    /// GPU that plan includes waiting for the predicted task's slot, which
    /// work-conserving dispatch would destroy. The simulator holds each
    /// listed job back to its planned start until the next activation
    /// replans.
    pub start_gates: Vec<(JobKey, Time)>,
}

impl Decision {
    /// The rejection decision: nothing changes.
    #[must_use]
    pub fn reject() -> Self {
        Decision {
            admitted: false,
            assignments: Vec::new(),
            objective: Energy::ZERO,
            used_prediction: false,
            nodes: 0,
            start_gates: Vec::new(),
        }
    }
}

/// A resource-management policy: decides mapping (and implicitly, through
/// per-resource EDF, scheduling) at every activation.
pub trait ResourceManager {
    /// A short human-readable policy name ("heuristic", "milp", ...).
    fn name(&self) -> &str;

    /// Plans the activation: either admits the arriving task with a full set
    /// of assignments, or rejects it (leaving the previous plan in force).
    ///
    /// Implementations must follow the paper's fallback rule: if no feasible
    /// plan honours the predicted task, retry without it before rejecting.
    fn decide(&mut self, activation: &Activation<'_>) -> Decision;
}

/// A partial plan under construction: per-resource job queues, checked with
/// the EDF timeline engine. Shared by the heuristic and the exact optimizer.
///
/// Feasibility checks run through a per-builder [`EdfScratch`] (no allocation
/// in steady state) and a memoized verdict cache: the exact optimizer's
/// branch & bound revisits the same `(resource, queue)` configurations many
/// times while backtracking, and the heuristic probes the same queue once per
/// candidate. The cache key is the exact queue content (bit patterns, not a
/// lossy hash), so a hit can never return a wrong verdict.
#[derive(Debug, Clone)]
pub struct PlanBuilder<'a> {
    activation: &'a Activation<'a>,
    per_resource: Vec<Vec<PlannedJob>>,
    scratch: RefCell<FitScratch>,
}

/// Reusable buffers for [`PlanBuilder`] feasibility checks, behind a
/// `RefCell` so the read-only query API (`fits`, `all_schedulable`) stays
/// `&self`.
#[derive(Debug, Clone, Default)]
struct FitScratch {
    /// EDF engine state.
    edf: EdfScratch,
    /// Queue under test (committed jobs + the probed candidate).
    queue: Vec<PlannedJob>,
    /// Encoded memo key for the queue under test.
    probe: Vec<u64>,
    /// Outcome buffer for [`PlanBuilder::reservation_gates`].
    outcomes: Vec<JobOutcome>,
    /// Exact-keyed feasibility verdicts, cleared when it outgrows
    /// [`MEMO_CAP`].
    memo: HashMap<Vec<u64>, bool>,
}

/// Memo entries kept before the cache is wholesale cleared. Activations plan
/// a handful of jobs over a handful of resources, so in practice the cache
/// never fills; the cap only bounds memory on adversarial inputs.
const MEMO_CAP: usize = 4096;

impl FitScratch {
    /// Feasibility of `self.queue` on `resource`, memoized by exact queue
    /// content.
    fn queue_schedulable(&mut self, resource: ResourceId, kind: ResourceKind, now: Time) -> bool {
        self.probe.clear();
        self.probe.push(resource.index() as u64);
        for j in &self.queue {
            self.probe.push(j.key.0);
            self.probe.push(j.release.value().to_bits());
            self.probe.push(j.exec.value().to_bits());
            self.probe.push(j.deadline.value().to_bits());
            self.probe.push(u64::from(j.pinned));
        }
        if let Some(&verdict) = self.memo.get(self.probe.as_slice()) {
            return verdict;
        }
        let verdict = is_schedulable_with(kind, now, &self.queue, &mut self.edf);
        if self.memo.len() >= MEMO_CAP {
            self.memo.clear();
        }
        self.memo.insert(self.probe.clone(), verdict);
        verdict
    }
}

impl<'a> PlanBuilder<'a> {
    /// Creates an empty plan for the activation's platform.
    #[must_use]
    pub fn new(activation: &'a Activation<'a>) -> Self {
        PlanBuilder {
            activation,
            per_resource: vec![Vec::new(); activation.platform.len()],
            scratch: RefCell::new(FitScratch::default()),
        }
    }

    /// The [`PlannedJob`] a (job, candidate) pair contributes to a resource
    /// queue.
    #[must_use]
    pub fn planned_job(&self, job: &JobView, candidate: &Candidate) -> PlannedJob {
        PlannedJob {
            key: job.key,
            release: job.release.max(self.activation.now),
            exec: candidate.exec,
            deadline: job.deadline,
            pinned: candidate.pinned,
        }
    }

    /// Returns `true` if adding `job` via `candidate` keeps that resource's
    /// queue schedulable (the heuristic's `IsSchedulable`).
    #[must_use]
    pub fn fits(&self, job: &JobView, candidate: &Candidate) -> bool {
        let r = candidate.resource;
        let kind = self.activation.platform.resource(r).kind();
        let scratch = &mut *self.scratch.borrow_mut();
        scratch.queue.clear();
        scratch
            .queue
            .extend_from_slice(&self.per_resource[r.index()]);
        scratch.queue.push(self.planned_job(job, candidate));
        scratch.queue_schedulable(r, kind, self.activation.now)
    }

    /// Like [`fits`](PlanBuilder::fits), but *defers* the verdict (returns
    /// `true`) when the target resource is non-preemptable and its queue
    /// would contain a future-released job. On such queues feasibility is
    /// not monotone under job addition — a later placement can push the
    /// dispatch of an early job past the future release and *repair* the
    /// schedule (a classic non-preemptive scheduling anomaly) — so an exact
    /// search must not prune on the partial check; it re-validates complete
    /// plans with [`all_schedulable`](PlanBuilder::all_schedulable).
    #[must_use]
    pub fn fits_or_defer(&self, job: &JobView, candidate: &Candidate) -> bool {
        let r = candidate.resource;
        let kind = self.activation.platform.resource(r).kind();
        if !kind.is_preemptable() {
            let now = self.activation.now;
            let future =
                job.release > now || self.per_resource[r.index()].iter().any(|j| j.release > now);
            if future {
                // Sound necessary condition that survives the anomaly: the
                // sub-queue of already-released jobs runs in pure EDF order
                // regardless of the future releases (removing future work
                // only shortens its prefix sums), so if *it* misses a
                // deadline, no completion of this partial plan can fix it.
                let scratch = &mut *self.scratch.borrow_mut();
                scratch.queue.clear();
                scratch.queue.extend(
                    self.per_resource[r.index()]
                        .iter()
                        .filter(|j| j.release <= now)
                        .copied(),
                );
                let planned = self.planned_job(job, candidate);
                if planned.release <= now {
                    scratch.queue.push(planned);
                }
                return scratch.queue_schedulable(r, kind, now);
            }
        }
        self.fits(job, candidate)
    }

    /// Commits `job` to `candidate`'s resource.
    ///
    /// # Panics
    ///
    /// Panics (debug) if the addition violates schedulability; callers must
    /// check [`fits`](PlanBuilder::fits) first.
    pub fn place(&mut self, job: &JobView, candidate: &Candidate) {
        let planned = self.planned_job(job, candidate);
        self.per_resource[candidate.resource.index()].push(planned);
    }

    /// Removes the most recently placed job from `resource` (backtracking).
    pub fn unplace_last(&mut self, resource: ResourceId) {
        self.per_resource[resource.index()]
            .pop()
            .expect("unplace_last on empty resource queue");
    }

    /// Number of jobs currently placed on `resource`.
    #[must_use]
    pub fn load(&self, resource: ResourceId) -> usize {
        self.per_resource[resource.index()].len()
    }

    /// Returns `true` if every resource queue is schedulable (sanity check
    /// for complete plans).
    #[must_use]
    pub fn all_schedulable(&self) -> bool {
        let scratch = &mut *self.scratch.borrow_mut();
        self.activation.platform.ids().all(|r| {
            let kind = self.activation.platform.resource(r).kind();
            scratch.queue.clear();
            scratch
                .queue
                .extend_from_slice(&self.per_resource[r.index()]);
            scratch.queue_schedulable(r, kind, self.activation.now)
        })
    }

    /// Planned start times of the real jobs sharing a phantom's resource,
    /// for every *non-preemptable* resource hosting one — the paper's
    /// "schedule the start of execution" made explicit so the simulator can
    /// follow the plan (including the idle wait that reserves the slot for
    /// the predicted task). Phantoms on preemptable resources contribute no
    /// gates: there, preemption at the actual arrival recovers the plan
    /// without reservations.
    #[must_use]
    pub fn reservation_gates(&self, phantoms: &[JobKey]) -> Vec<(JobKey, Time)> {
        let mut gates = Vec::new();
        for resource in self.activation.platform.ids() {
            let kind = self.activation.platform.resource(resource).kind();
            if kind.is_preemptable() {
                continue;
            }
            let queue = &self.per_resource[resource.index()];
            if !queue.iter().any(|j| phantoms.contains(&j.key)) {
                continue;
            }
            let scratch = &mut *self.scratch.borrow_mut();
            let FitScratch { edf, outcomes, .. } = scratch;
            simulate_into(kind, self.activation.now, queue, None, edf, outcomes);
            gates.extend(
                queue
                    .iter()
                    .zip(outcomes.iter())
                    .filter(|(j, _)| !phantoms.contains(&j.key))
                    .map(|(j, o)| {
                        let finish = o.finish.expect("unbounded simulation finishes all jobs");
                        (j.key, finish - j.exec)
                    }),
            );
        }
        gates
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtrm_platform::{TaskType, TaskTypeId};

    fn setup() -> (Platform, TaskCatalog) {
        let platform = Platform::builder().cpus(1).gpu("g").build();
        let ids: Vec<_> = platform.ids().collect();
        let ty = TaskType::builder(0, &platform)
            .profile(ids[0], Time::new(4.0), Energy::new(4.0))
            .profile(ids[1], Time::new(2.0), Energy::new(1.0))
            .build();
        (platform, TaskCatalog::new(vec![ty]))
    }

    #[test]
    fn window_is_max_time_left() {
        let (platform, catalog) = setup();
        let active = [JobView::fresh(
            JobKey(0),
            TaskTypeId::new(0),
            Time::ZERO,
            Time::new(30.0),
        )];
        let activation = Activation {
            now: Time::new(10.0),
            platform: &platform,
            catalog: &catalog,
            active: &active,
            arriving: JobView::fresh(
                JobKey(1),
                TaskTypeId::new(0),
                Time::new(10.0),
                Time::new(18.0),
            ),
            predicted: &[],
        };
        assert_eq!(activation.window(), Time::new(20.0));
        assert_eq!(activation.jobs_with_prediction().count(), 2);
        assert_eq!(activation.jobs_without_prediction().count(), 2);
    }

    #[test]
    fn plan_builder_checks_and_backtracks() {
        let (platform, catalog) = setup();
        let arriving = JobView::fresh(JobKey(1), TaskTypeId::new(0), Time::ZERO, Time::new(3.0));
        let activation = Activation {
            now: Time::ZERO,
            platform: &platform,
            catalog: &catalog,
            active: &[],
            arriving,
            predicted: &[],
        };
        let mut plan = PlanBuilder::new(&activation);
        let cpu = Candidate {
            resource: ResourceId::new(0),
            exec: Time::new(4.0),
            energy: Energy::new(4.0),
            pinned: false,
            restart: false,
            speed: 1.0,
        };
        let gpu = Candidate {
            resource: ResourceId::new(1),
            exec: Time::new(2.0),
            energy: Energy::new(1.0),
            pinned: false,
            restart: false,
            speed: 1.0,
        };
        assert!(!plan.fits(&arriving, &cpu), "4 units in a 3-unit window");
        assert!(plan.fits(&arriving, &gpu));
        plan.place(&arriving, &gpu);
        assert_eq!(plan.load(ResourceId::new(1)), 1);
        assert!(plan.all_schedulable());
        plan.unplace_last(ResourceId::new(1));
        assert_eq!(plan.load(ResourceId::new(1)), 0);
    }
}
